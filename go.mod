module ist

go 1.24
