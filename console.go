package ist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ConsoleOracle asks a human the pairwise questions over an io.Reader /
// io.Writer pair (used by cmd/istcli and the interactive examples). Each
// question prints the two tuples' attributes and accepts "1"/"2" (or
// "a"/"b") as the answer; invalid input re-prompts. On EOF it defaults to
// preferring the first tuple, so scripted input never deadlocks.
type ConsoleOracle struct {
	in        *bufio.Scanner
	out       io.Writer
	attrs     []string
	questions int
	// Denormalize, when set, converts a normalized point back to raw
	// attribute values for display.
	Denormalize func(Point) []string
}

// NewConsoleOracle builds a console oracle with the given attribute names.
func NewConsoleOracle(in io.Reader, out io.Writer, attrs []string) *ConsoleOracle {
	return &ConsoleOracle{in: bufio.NewScanner(in), out: out, attrs: attrs}
}

// Prefer implements Oracle.
func (c *ConsoleOracle) Prefer(p, q Point) bool {
	c.questions++
	fmt.Fprintf(c.out, "\nQuestion %d — which do you prefer?\n", c.questions)
	c.printOption(1, p)
	c.printOption(2, q)
	for {
		fmt.Fprintf(c.out, "Enter 1 or 2: ")
		if !c.in.Scan() {
			fmt.Fprintln(c.out, "1 (end of input)")
			return true
		}
		switch strings.TrimSpace(strings.ToLower(c.in.Text())) {
		case "1", "a":
			return true
		case "2", "b":
			return false
		}
		fmt.Fprintln(c.out, "Please answer 1 or 2.")
	}
}

// Questions implements Oracle.
func (c *ConsoleOracle) Questions() int { return c.questions }

func (c *ConsoleOracle) printOption(idx int, p Point) {
	fmt.Fprintf(c.out, "  [%d]", idx)
	if c.Denormalize != nil {
		for i, v := range c.Denormalize(p) {
			name := fmt.Sprintf("attr%d", i+1)
			if i < len(c.attrs) {
				name = c.attrs[i]
			}
			fmt.Fprintf(c.out, " %s=%s", name, v)
		}
	} else {
		for i, v := range p {
			name := fmt.Sprintf("attr%d", i+1)
			if i < len(c.attrs) {
				name = c.attrs[i]
			}
			fmt.Fprintf(c.out, " %s=%.3f", name, v)
		}
	}
	fmt.Fprintln(c.out)
}
