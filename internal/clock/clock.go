// Package clock is the injected time source behind budgets, deadlines and
// uptime accounting. Library code never reads the wall clock directly (the
// wallclock analyzer in internal/analysis enforces this); it takes a Clock
// so that tests and transcript replay control time, and so a deadline
// observed during a live session means the same thing when the session is
// rebuilt from its answer log. This package is the single sanctioned
// time.Now call site.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real reads the wall clock.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Since reports the time elapsed on c since t — time.Since for injected
// clocks. Library code that batches or measures durations (the WAL's
// interval fsync policy, its fsync-latency histogram) uses this so fake
// clocks drive it deterministically.
func Since(c Clock, t time.Time) time.Duration { return c.Now().Sub(t) }

// Func adapts a plain func() time.Time to a Clock, bridging APIs (like the
// HTTP server's replaceable now field) that predate the interface.
type Func func() time.Time

// Now implements Clock.
func (f Func) Now() time.Time { return f() }

// Fake is a controllable clock for tests: it returns a programmed time,
// optionally auto-advancing by a fixed step per read so a single-threaded
// algorithm under test experiences passing time without sleeping. Safe for
// concurrent use.
type Fake struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewFake returns a Fake frozen at start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock. Each read advances the clock by the configured step
// (zero by default).
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.now
	f.now = f.now.Add(f.step)
	return t
}

// Advance moves the clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// SetStep makes every subsequent Now read advance the clock by d.
func (f *Fake) SetStep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.step = d
}
