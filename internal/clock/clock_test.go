package clock

import (
	"testing"
	"time"
)

func TestRealAdvances(t *testing.T) {
	a := Real.Now()
	b := Real.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestFuncAdapts(t *testing.T) {
	want := time.Unix(42, 0)
	c := Func(func() time.Time { return want })
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Func clock: got %v, want %v", got, want)
	}
}

func TestFakeFrozenAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) || !f.Now().Equal(start) {
		t.Fatal("fake clock moved without Advance")
	}
	f.Advance(3 * time.Second)
	if got := f.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("after Advance: got %v", got)
	}
}

func TestFakeStep(t *testing.T) {
	start := time.Unix(0, 0)
	f := NewFake(start)
	f.SetStep(time.Second)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("first stepped read: got %v, want %v", got, start)
	}
	if got := f.Now(); !got.Equal(start.Add(time.Second)) {
		t.Fatalf("second stepped read: got %v, want start+1s", got)
	}
}
