package experiments

import "sync"

// Parallel cell execution. Every comparison figure is a grid of independent
// (k, algorithm) measurements; Config.Parallel > 1 dispatches them to a
// worker pool. Question counts and accuracies are unaffected (each cell is
// deterministic given the config seed), but wall-clock *time* measurements
// inflate under contention — use parallel runs to explore question-count
// shapes quickly and sequential runs for the recorded time series.

// runCells executes f(0..n-1) with `parallel` workers (sequentially when
// parallel <= 1).
func runCells(parallel, n int, f func(i int)) {
	if parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if parallel > n {
		parallel = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
