package experiments

import (
	"math/rand"
	"time"

	"ist/internal/baseline"
	"ist/internal/oracle"
)

// ExtSorting evaluates the Sorting-Random / Sorting-Simplex algorithms of
// [40] that the paper discusses in Section 2 but does not benchmark. It
// measures both the display rounds [40] reports AND the underlying pairwise
// effort, substantiating the paper's argument that sorting "does not reduce
// the user effort essentially, since giving an order among tuples is
// equivalent to picking the favorite tuple several times".
func ExtSorting(cfg Config) *Table {
	cfg = cfg.withDefaults()
	ds := buildDataset("anti", cfg)
	t := newTable("Extension: sorting-based interaction [40] (anti-correlated)", "k", floats(cfg.Ks))

	type variant struct {
		name    string
		simplex bool
	}
	for _, v := range []variant{{"Sorting-Random", false}, {"Sorting-Simplex", true}} {
		var rounds, pairwise, secs []float64
		for _, k := range cfg.Ks {
			band := preprocess(ds.Points, k)
			var r, pw, sc float64
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
				u := oracle.RandomUtility(rng, cfg.D)
				eps := epsilonForTopK(band, u, k)
				alg := &baseline.SortingUH{
					Simplex: v.simplex, Eps: eps, DisplaySize: 4,
					Rng: rand.New(rand.NewSource(cfg.Seed + int64(trial))),
				}
				user := oracle.NewUser(u)
				start := time.Now()
				alg.Run(band, k, user)
				sc += time.Since(start).Seconds()
				r += float64(alg.DisplayRounds())
				pw += float64(user.Questions())
			}
			f := float64(cfg.Trials)
			rounds = append(rounds, r/f)
			pairwise = append(pairwise, pw/f)
			secs = append(secs, sc/f)
		}
		t.add("display rounds", v.name, rounds)
		t.add("pairwise questions", v.name, pairwise)
		t.add("time(s)", v.name, secs)
	}

	// Reference: UH-Random's pairwise questions on the same workloads.
	var uhQ []float64
	for _, k := range cfg.Ks {
		band := preprocess(ds.Points, k)
		var pw float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
			u := oracle.RandomUtility(rng, cfg.D)
			eps := epsilonForTopK(band, u, k)
			user := oracle.NewUser(u)
			(&baseline.UH{Eps: eps, Rng: rand.New(rand.NewSource(cfg.Seed + int64(trial)))}).Run(band, k, user)
			pw += float64(user.Questions())
		}
		uhQ = append(uhQ, pw/float64(cfg.Trials))
	}
	t.add("pairwise questions", "UH-Random (reference)", uhQ)
	return t
}
