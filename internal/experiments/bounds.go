package experiments

import (
	"math/rand"

	"ist/internal/core"
	"ist/internal/oracle"
)

// TheoryBoundsRatios measures how close each interactive algorithm lands to
// the paper's 2-d question-count bounds (core.TheoryBounds): for each k it
// runs Trials random users over a 2-d anti-correlated skyband and reports
// the average question count as a ratio of the Thm 3.2 lower bound
// ⌈log₂(n/k)⌉ and the Thm 4.5 upper bound ⌈log₂⌈2n/(k+1)⌉⌉. The
// "questions/upper" row for 2D-PI must stay at or below 1.0 — that is the
// same guarantee the server exports live as ist_questions_vs_upper_bound —
// while the other algorithms show their distance to the 2-d optimum. This
// is the data behind BENCH_9.json.
func TheoryBoundsRatios(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 2 // the paper's bounds are two-dimensional statements
	tab := newTable("Questions vs theory bounds (2-d anti-correlated)", "k", floats(cfg.Ks))
	points := buildDataset("anti", cfg).Points

	specs := []obsSpec{
		{name: "2D-PI", make: func(int64) core.Algorithm { return &core.TwoDPI{} }},
		{name: "HD-PI-sampling", make: func(seed int64) core.Algorithm {
			return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
		}},
		{name: "RH", make: func(seed int64) core.Algorithm {
			return core.NewRHDefault(seed)
		}},
	}

	lowers := make([]float64, len(cfg.Ks))
	uppers := make([]float64, len(cfg.Ks))
	for xi, k := range cfg.Ks {
		band := preprocess(points, k)
		lowers[xi], uppers[xi] = core.TheoryBounds(len(band), k)
	}
	tab.add("bound", "lower (Thm 3.2)", lowers)
	tab.add("bound", "upper (Thm 4.5)", uppers)

	for _, spec := range specs {
		questions := make([]float64, len(cfg.Ks))
		vsLower := make([]float64, len(cfg.Ks))
		vsUpper := make([]float64, len(cfg.Ks))
		for xi, k := range cfg.Ks {
			band := preprocess(points, k)
			var q float64
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
				u := oracle.RandomUtility(rng, 2)
				alg := spec.make(cfg.Seed + int64(trial))
				user := oracle.NewUser(u)
				alg.Run(band, k, user)
				q += float64(user.Questions())
			}
			q /= float64(cfg.Trials)
			questions[xi] = q
			if lowers[xi] > 0 {
				vsLower[xi] = q / lowers[xi]
			}
			if uppers[xi] > 0 {
				vsUpper[xi] = q / uppers[xi]
			}
		}
		tab.add("questions", spec.name, questions)
		tab.add("questions/lower", spec.name, vsLower)
		tab.add("questions/upper", spec.name, vsUpper)
	}
	return tab
}
