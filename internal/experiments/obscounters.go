package experiments

import (
	"math/rand"

	"ist/internal/core"
	"ist/internal/obs"
	"ist/internal/oracle"
)

// obsSpec is an instrumented-algorithm factory for the observability
// profile: unlike AlgSpec, every algorithm here implements core.Observable.
type obsSpec struct {
	name string
	twoD bool
	make func(seed int64) core.Algorithm
}

// ObsCounters profiles the instrumented interactive algorithms through the
// trace observer: questions asked, LP solves per question, halfspace cuts
// per question, and candidates pruned per question, averaged over Trials
// random users for each k. The counts come from an attached obs.Counting
// observer, not from instrumenting the experiment loop — so the table also
// exercises the full event path the production /metrics endpoint relies on.
// This is the data behind BENCH_4.json.
func ObsCounters(cfg Config) *Table {
	cfg = cfg.withDefaults()
	tab := newTable("Observability counters (anti-correlated)", "k", floats(cfg.Ks))

	// 2D-PI only runs in two dimensions; everything else uses cfg.D.
	cfg2 := cfg
	cfg2.D = 2
	anti := buildDataset("anti", cfg).Points
	anti2 := buildDataset("anti", cfg2).Points

	specs := []obsSpec{
		{name: "2D-PI", twoD: true, make: func(int64) core.Algorithm {
			return &core.TwoDPI{}
		}},
		{name: "HD-PI-sampling", make: func(seed int64) core.Algorithm {
			return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
		}},
		{name: "HD-PI-accurate", make: func(seed int64) core.Algorithm {
			return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		}},
		{name: "RH", make: func(seed int64) core.Algorithm {
			return core.NewRHDefault(seed)
		}},
	}

	for _, spec := range specs {
		questions := make([]float64, len(cfg.Ks))
		lpPerQ := make([]float64, len(cfg.Ks))
		cutsPerQ := make([]float64, len(cfg.Ks))
		prunedPerQ := make([]float64, len(cfg.Ks))
		for xi, k := range cfg.Ks {
			points := anti
			if spec.twoD {
				points = anti2
			}
			band := preprocess(points, k)
			var q, lps, cuts, pruned float64
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
				u := oracle.RandomUtility(rng, len(points[0]))
				alg := spec.make(cfg.Seed + int64(trial))
				c := obs.NewCounting()
				alg.(core.Observable).SetObserver(c)
				alg.Run(band, k, oracle.NewUser(u))
				q += float64(c.Count(obs.KindQuestionAsked))
				lps += float64(c.Count(obs.KindLPSolve))
				cuts += float64(c.Count(obs.KindHalfspaceCut))
				pruned += float64(c.Sum(obs.KindCandidatePruned))
			}
			f := float64(cfg.Trials)
			q /= f
			questions[xi] = q
			if q > 0 {
				lpPerQ[xi] = lps / f / q
				cutsPerQ[xi] = cuts / f / q
				prunedPerQ[xi] = pruned / f / q
			}
		}
		tab.add("questions", spec.name, questions)
		tab.add("lp-solves/question", spec.name, lpPerQ)
		tab.add("cuts/question", spec.name, cutsPerQ)
		tab.add("pruned/question", spec.name, prunedPerQ)
	}
	return tab
}
