package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one of the paper's tables or figures.
type Runner func(Config) *Table

// Registry maps experiment ids (as used by `istbench -exp`) to runners.
var Registry = map[string]Runner{
	"table1": Table1Bounds,
	"fig5":   Fig5Bounding,
	"fig6":   Fig6Beta,
	"fig7":   Fig7Accuracy,
	"fig8":   Fig8TwoD,
	"fig9":   Fig9FourD,
	"fig10":  Fig10VaryN,
	"fig11":  Fig11VaryD,
	"fig12":  Fig12Weather,
	"fig13":  Fig13NBA,
	"fig14":  Fig14AllTopK,
	"fig15":  Fig15AllTopKNBA,
	"fig16":  Fig16UserStudy,
	"fig17":  Fig17SomeTopK,
	// Technical-report figures (Island and Car, Section 6.3):
	"fig-island": FigIsland,
	"fig-car":    FigCar,
	// Extensions beyond the paper (documented in EXPERIMENTS.md):
	"ext-noise":           ExtNoise,
	"ext-sorting":         ExtSorting,
	"obs-counters":        ObsCounters,
	"theory-bounds":       TheoryBoundsRatios,
	"sessions-throughput": SessionsThroughput,
}

// Names returns the registered experiment ids in a stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run looks up and executes an experiment.
func Run(name string, cfg Config) (*Table, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg), nil
}
