package experiments

import (
	"math"
	"math/rand"
	"time"

	"ist/internal/core"
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// Fig5Bounding reproduces Figure 5: the effective ratio (share of
// hyperplane/partition relationships decided by the bounding volume alone)
// and the execution time of HD-PI under the Ball, Rectangle and no-bounding
// strategies. The paper reports ratios around 20% (ball) and 30%
// (rectangle) with the ball being fastest; Section 5.1's RectSideFast
// (our O(d) ablation) is included as an extension series.
func Fig5Bounding(cfg Config) *Table {
	cfg = cfg.withDefaults()
	ds := buildDataset("anti", cfg)
	t := newTable("Figure 5: bounding strategies (HD-PI, anti-correlated)", "k", floats(cfg.Ks))

	strategies := []struct {
		name  string
		strat polytope.Strategy
	}{
		{"HD-PI(Ball)", polytope.StrategyBall},
		{"HD-PI(Rectangle)", polytope.StrategyRect},
		{"HD-PI(RectFast)", polytope.StrategyRectFast},
		{"HD-PI(NoBall-NoRectangle)", polytope.StrategyNone},
	}
	type resRow struct{ ratio, seconds []float64 }
	rows := make([]resRow, len(strategies))

	for ki, k := range cfg.Ks {
		band := preprocess(ds.Points, k)
		for si, s := range strategies {
			var stats polytope.BoundStats
			var secs, qs float64
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
				u := oracle.RandomUtility(rng, cfg.D)
				alg := core.NewHDPI(core.HDPIOptions{
					Mode: core.ConvexSampling, Strategy: s.strat, Stats: &stats,
					Rng: rand.New(rand.NewSource(cfg.Seed + int64(trial))),
				})
				user := oracle.NewUser(u)
				start := time.Now()
				alg.Run(band, k, user)
				secs += time.Since(start).Seconds()
				qs += float64(user.Questions())
			}
			rows[si].ratio = append(rows[si].ratio, stats.EffectiveRatio())
			rows[si].seconds = append(rows[si].seconds, secs/float64(cfg.Trials))
		}
		_ = ki
	}
	for si, s := range strategies {
		if s.strat != polytope.StrategyNone {
			t.add("effective ratio", s.name, rows[si].ratio)
		}
		t.add("time(s)", s.name, rows[si].seconds)
	}
	return t
}

// Fig6Beta reproduces Figure 6: HD-PI's execution time and question count
// as the even-score balance β varies. The paper observes both increase with
// β and fixes β = 0.01.
func Fig6Beta(cfg Config) *Table {
	cfg = cfg.withDefaults()
	ds := buildDataset("anti", cfg)
	betas := []float64{0.001, 0.01, 0.1, 1, 10}
	k := 20
	band := preprocess(ds.Points, k)
	t := newTable("Figure 6: balancing parameter beta (HD-PI, k=20)", "beta", betas)

	var qs, secs []float64
	for _, beta := range betas {
		var q, s float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
			u := oracle.RandomUtility(rng, cfg.D)
			alg := core.NewHDPI(core.HDPIOptions{
				Mode: core.ConvexSampling, Beta: beta,
				Rng: rand.New(rand.NewSource(cfg.Seed + int64(trial))),
			})
			user := oracle.NewUser(u)
			start := time.Now()
			alg.Run(band, k, user)
			s += time.Since(start).Seconds()
			q += float64(user.Questions())
		}
		qs = append(qs, q/float64(cfg.Trials))
		secs = append(secs, s/float64(cfg.Trials))
	}
	t.add("questions", "HD-PI-sampling", qs)
	t.add("time(s)", "HD-PI-sampling", secs)
	return t
}

// Fig7Accuracy reproduces Figure 7: the accuracy f(p)/f(p_k) of
// HD-PI-sampling's returned point across all six datasets; the paper
// reports values close to 1 everywhere.
func Fig7Accuracy(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := newTable("Figure 7: accuracy of HD-PI-sampling per dataset", "k", floats(cfg.Ks))
	for _, name := range []string{"anti", "corr", "indep", "island", "weather", "car", "nba"} {
		dcfg := cfg
		if name == "island" {
			dcfg.D = 2
		}
		if name == "nba" {
			dcfg.D = 6
		}
		ds := buildDataset(name, dcfg)
		var accs []float64
		for _, k := range cfg.Ks {
			band := preprocess(ds.Points, k)
			spec := AlgSpec{Name: "HD-PI-sampling", Make: func(seed int64, eps float64) core.Algorithm {
				return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
			}}
			accs = append(accs, measure(band, k, spec, dcfg).Accuracy)
		}
		t.add("accuracy", name, accs)
	}
	return t
}

// varyK runs the full algorithm roster on one dataset across the configured
// k values; used by Figures 8, 9, 12 and 13.
func varyK(title, dsName string, cfg Config) *Table {
	ds := buildDataset(dsName, cfg)
	d := ds.Dim()
	t := newTable(title, "k", floats(cfg.Ks))
	specs := Specs(d, cfg.Heavy)

	type acc struct{ q, s []float64 }
	results := make([]acc, len(specs))
	for si := range results {
		results[si].q = make([]float64, len(cfg.Ks))
		results[si].s = make([]float64, len(cfg.Ks))
	}
	bands := make([][]geom.Vector, len(cfg.Ks))
	for ki, k := range cfg.Ks {
		bands[ki] = preprocess(ds.Points, k)
	}
	runCells(cfg.Parallel, len(cfg.Ks)*len(specs), func(cell int) {
		ki, si := cell/len(specs), cell%len(specs)
		m := measure(bands[ki], cfg.Ks[ki], specs[si], cfg)
		results[si].q[ki] = m.Questions
		results[si].s[ki] = m.Seconds
	})
	for si, spec := range specs {
		t.add("questions", spec.Name, results[si].q)
		t.add("time(s)", spec.Name, results[si].s)
	}
	return t
}

// Fig8TwoD reproduces Figure 8: the 2-d anti-correlated comparison over k,
// including the 2-d-only algorithms (2D-PI, Median, Hull and, with Heavy,
// their -Adapt versions).
func Fig8TwoD(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 2
	return varyK("Figure 8: 2-dimensional dataset (anti-correlated)", "anti", cfg)
}

// Fig9FourD reproduces Figure 9: the 4-d anti-correlated comparison over k.
func Fig9FourD(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 4
	return varyK("Figure 9: 4-dimensional dataset (anti-correlated)", "anti", cfg)
}

// Fig10VaryN reproduces Figure 10: scalability in the dataset size n at
// k=20 on 4-d anti-correlated data. The paper sweeps 100k–1M; the sweep
// here is {N/4, N/2, N, 2N} around the configured N.
func Fig10VaryN(cfg Config) *Table {
	cfg = cfg.withDefaults()
	ns := []int{cfg.N / 4, cfg.N / 2, cfg.N, cfg.N * 2}
	k := 20
	t := newTable("Figure 10: varying dataset size n (anti-correlated 4d, k=20)", "n", floats(ns))
	specs := Specs(cfg.D, false)
	type acc struct{ q, s []float64 }
	results := make([]acc, len(specs))
	for _, n := range ns {
		nCfg := cfg
		nCfg.N = n
		ds := buildDataset("anti", nCfg)
		band := preprocess(ds.Points, k)
		for si, spec := range specs {
			m := measure(band, k, spec, cfg)
			results[si].q = append(results[si].q, m.Questions)
			results[si].s = append(results[si].s, m.Seconds)
		}
	}
	for si, spec := range specs {
		t.add("questions", spec.Name, results[si].q)
		t.add("time(s)", spec.Name, results[si].s)
	}
	return t
}

// Fig11VaryD reproduces Figure 11: scalability in the dimensionality d at
// k=20 on anti-correlated data (paper: d in 2..5).
func Fig11VaryD(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dims := []int{2, 3, 4, 5}
	k := 20
	t := newTable("Figure 11: varying dimensionality d (anti-correlated, k=20)", "d", floats(dims))
	type acc struct{ q, s []float64 }
	// The roster is the d-dimensional one (no 2-d-only algorithms) so that
	// every series spans all dims.
	specs := Specs(3, false)
	results := make([]acc, len(specs))
	for _, d := range dims {
		dCfg := cfg
		dCfg.D = d
		ds := buildDataset("anti", dCfg)
		band := preprocess(ds.Points, k)
		for si, spec := range specs {
			m := measure(band, k, spec, dCfg)
			results[si].q = append(results[si].q, m.Questions)
			results[si].s = append(results[si].s, m.Seconds)
		}
	}
	for si, spec := range specs {
		t.add("questions", spec.Name, results[si].q)
		t.add("time(s)", spec.Name, results[si].s)
	}
	return t
}

// Fig12Weather reproduces Figure 12: the Weather dataset (4-d) over k.
func Fig12Weather(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 4
	return varyK("Figure 12: Weather dataset", "weather", cfg)
}

// Fig13NBA reproduces Figure 13: the NBA dataset (6-d) over k.
func Fig13NBA(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 6
	return varyK("Figure 13: NBA dataset", "nba", cfg)
}

// Table1Bounds verifies Table 1 empirically: measured question counts of RH
// and HD-PI against their analytic guarantees (the c·d·log₂n expected bound
// for RH and the IST lower bound log₂(n/k)).
func Table1Bounds(cfg Config) *Table {
	cfg = cfg.withDefaults()
	ds := buildDataset("anti", cfg)
	t := newTable("Table 1: measured questions vs analytic bounds", "k", floats(cfg.Ks))
	var rhQ, hdQ, lower, upper []float64
	for _, k := range cfg.Ks {
		band := preprocess(ds.Points, k)
		n := float64(len(band))
		rhQ = append(rhQ, measure(band, k, AlgSpec{Name: "RH", Make: func(seed int64, _ float64) core.Algorithm {
			return core.NewRHDefault(seed)
		}}, cfg).Questions)
		hdQ = append(hdQ, measure(band, k, AlgSpec{Name: "HD-PI", Make: func(seed int64, _ float64) core.Algorithm {
			return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
		}}, cfg).Questions)
		lower = append(lower, math.Max(0, math.Log2(n/float64(k))))
		upper = append(upper, float64(cfg.D)*math.Log2(math.Max(n, 2)))
	}
	t.add("questions", "RH (measured)", rhQ)
	t.add("questions", "HD-PI (measured)", hdQ)
	t.add("questions", "lower bound log2(n/k)", lower)
	t.add("questions", "RH bound d*log2(n), c=1", upper)
	return t
}

// FigIsland covers the Island dataset results the paper defers to its
// technical report ("The results on Island and Car can be found in the
// technical report"), completing the six-dataset evaluation.
func FigIsland(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 2
	return varyK("Island dataset (technical-report figure)", "island", cfg)
}

// FigCar covers the Car dataset results the paper defers to its technical
// report.
func FigCar(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 4
	return varyK("Car dataset (technical-report figure)", "car", cfg)
}
