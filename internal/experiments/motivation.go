package experiments

import (
	"math/rand"
	"time"

	"ist/internal/baseline"
	"ist/internal/core"
	"ist/internal/oracle"
)

// newUH builds the Section 6.4 re-adapted UH variants: ε = 0 guarantees a
// top-k answer without peeking at the hidden utility.
func newUH(simplex bool, seed int64) core.Algorithm {
	return &baseline.UH{Simplex: simplex, Eps: 0, Rng: rand.New(rand.NewSource(seed))}
}

// newPLValidate builds Preference-Learning with the 75%-prediction stopping
// rule of Section 6.4.
func newPLValidate(seed int64) core.Algorithm {
	return &baseline.PreferenceLearning{Validate: true, Rng: rand.New(rand.NewSource(seed))}
}

func newActiveRanking(seed int64) core.Algorithm {
	return &baseline.ActiveRanking{Rng: rand.New(rand.NewSource(seed))}
}

// This file reproduces the user study (Section 6.4, Figure 16) and the
// motivation study (Section 6.5, Figures 14, 15 and 17). The paper's 30
// human participants are simulated by noisy users (DESIGN.md §3): each
// answers with a per-question error rate, and their reported "degree of
// boredness" follows the boredom model fitted to the paper's own
// (questions, boredness) pairs (oracle.Boredom).

// UserErrRate is the simulated per-question mistake probability standing in
// for the human participants of Sections 6.4 and 6.5.2.
const UserErrRate = 0.05

// multiSpec is a factory for the multi-answer algorithm variants.
type multiSpec struct {
	Name string
	Make func(seed int64) core.MultiAlgorithm
}

func allTopKSpecs() []multiSpec {
	return []multiSpec{
		{"RH", func(seed int64) core.MultiAlgorithm {
			return core.NewRHMulti(core.RHOptions{Rng: rand.New(rand.NewSource(seed)), UseBall: true})
		}},
		{"HD-PI-sampling", func(seed int64) core.MultiAlgorithm {
			return core.NewHDPIMulti(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
		}},
		{"HD-PI-accurate", func(seed int64) core.MultiAlgorithm {
			return core.NewHDPIMulti(core.HDPIOptions{Mode: core.ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		}},
	}
}

// allTopK measures the "return one" vs "return all" cost on one dataset
// (Figures 14 and 15): for each k, the questions/time of the original
// (want=1) and the AllTopK (want=k) versions.
func allTopK(title, dsName string, cfg Config) *Table {
	cfg = cfg.withDefaults()
	ds := buildDataset(dsName, cfg)
	d := ds.Dim()
	t := newTable(title, "k", floats(cfg.Ks))
	specs := allTopKSpecs()
	type acc struct{ qOne, sOne, qAll, sAll []float64 }
	results := make([]acc, len(specs))

	for _, k := range cfg.Ks {
		band := preprocess(ds.Points, k)
		for si, spec := range specs {
			var qo, so, qa, sa float64
			wants := []int{1, k}
			if k == 1 {
				wants = wants[:1] // want=1 IS the AllTopK run at k=1
			}
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
				u := oracle.RandomUtility(rng, d)
				for _, want := range wants {
					alg := spec.Make(cfg.Seed + int64(trial))
					user := oracle.NewUser(u)
					start := time.Now()
					alg.RunMulti(band, k, want, user)
					sec := time.Since(start).Seconds()
					if want == 1 {
						qo += float64(user.Questions())
						so += sec
					} else {
						qa += float64(user.Questions())
						sa += sec
					}
				}
			}
			f := float64(cfg.Trials)
			if k == 1 {
				qa, sa = qo, so
			}
			results[si].qOne = append(results[si].qOne, qo/f)
			results[si].sOne = append(results[si].sOne, so/f)
			results[si].qAll = append(results[si].qAll, qa/f)
			results[si].sAll = append(results[si].sAll, sa/f)
		}
	}
	for si, spec := range specs {
		t.add("questions", spec.Name, results[si].qOne)
		t.add("questions", spec.Name+"-AllTopK", results[si].qAll)
		t.add("time(s)", spec.Name, results[si].sOne)
		t.add("time(s)", spec.Name+"-AllTopK", results[si].sAll)
	}
	return t
}

// Fig14AllTopK reproduces Figure 14: one-vs-all top-k cost on the 4-d
// synthetic dataset. The paper reports the AllTopK versions needing 4–10x
// more questions and 1–2 orders of magnitude more time for k >= 20.
func Fig14AllTopK(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 4
	return allTopK("Figure 14: one vs ALL top-k (anti-correlated 4d)", "anti", cfg)
}

// Fig15AllTopKNBA reproduces Figure 15: the same on the NBA dataset.
func Fig15AllTopKNBA(cfg Config) *Table {
	cfg = cfg.withDefaults()
	cfg.D = 6
	return allTopK("Figure 15: one vs ALL top-k (NBA)", "nba", cfg)
}

// Fig16UserStudy reproduces the Section 6.4 user study: 1000 candidate cars,
// top-20, 30 (simulated) participants who err with probability UserErrRate;
// the measurements are average questions, degree of boredness, and rank.
// The paper reports HD-PI-sampling 4.1 / HD-PI-accurate 4.8 / RH 7.1
// questions with the existing algorithms above 8.4.
func Fig16UserStudy(cfg Config) *Table {
	cfg = cfg.withDefaults()
	carCfg := cfg
	carCfg.N = 1000
	carCfg.D = 4
	ds := buildDataset("car", carCfg)
	k := 20
	band := preprocess(ds.Points, k)
	// 3 simulated participants per configured trial: the paper's 30 at the
	// default Trials=10, proportionally fewer for quick runs.
	participants := 3 * cfg.Trials

	specs := []AlgSpec{
		{Name: "HD-PI-sampling", Make: func(seed int64, _ float64) core.Algorithm {
			return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
		}},
		{Name: "HD-PI-accurate", Make: func(seed int64, _ float64) core.Algorithm {
			return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		}},
		{Name: "RH", Make: func(seed int64, _ float64) core.Algorithm {
			return core.NewRHDefault(seed)
		}},
		// Section 6.4 re-adaptations: ε = 0 for the UH algorithms (a top-20
		// guarantee without the hidden utility), 75%-prediction stopping for
		// Preference-Learning.
		{Name: "UH-Random", Make: func(seed int64, _ float64) core.Algorithm {
			return newUH(false, seed)
		}},
		{Name: "UH-Simplex", Make: func(seed int64, _ float64) core.Algorithm {
			return newUH(true, seed)
		}},
		{Name: "Preference-Learning", Make: func(seed int64, _ float64) core.Algorithm {
			return newPLValidate(seed)
		}},
		{Name: "Active-Ranking", Make: func(seed int64, _ float64) core.Algorithm {
			return newActiveRanking(seed)
		}},
	}

	questions := make([]float64, len(specs))
	accuracy := make([]float64, len(specs))
	for si, spec := range specs {
		for p := 0; p < participants; p++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
			u := oracle.RandomUtility(rng, 4)
			user := oracle.NewNoisyUser(u, UserErrRate, rng)
			alg := spec.Make(cfg.Seed+int64(p), 0)
			idx := alg.Run(band, k, user)
			questions[si] += float64(user.Questions())
			accuracy[si] += oracle.Accuracy(band, u, k, band[idx])
		}
		questions[si] /= float64(participants)
		accuracy[si] /= float64(participants)
	}
	boredom := make([]float64, len(specs))
	for i, q := range questions {
		boredom[i] = oracle.Boredom(q)
	}
	ranks := oracle.RankByBoredom(questions)

	t := newTable("Figure 16: user study (Car, top-20, noisy users)", "algorithm#", nil)
	for i := range specs {
		t.X = append(t.X, float64(i+1))
	}
	t.add("questions", "avg questions", questions)
	t.add("boredness", "degree of boredness", boredom)
	rk := make([]float64, len(ranks))
	for i, r := range ranks {
		rk[i] = float64(r)
	}
	t.add("rank", "rank (1=best)", rk)
	t.add("result accuracy", "f(p)/f(p_k)", accuracy)
	// Record the algorithm order in the title for readability.
	t.Title += " | order:"
	for _, s := range specs {
		t.Title += " " + s.Name
	}
	return t
}

// Fig17SomeTopK reproduces the Section 6.5.2 user study: returning
// k' ∈ {1,5,10,15,20} of the top-20 cars. Questions rise steeply with the
// output size and k'=1 ranks best.
func Fig17SomeTopK(cfg Config) *Table {
	cfg = cfg.withDefaults()
	carCfg := cfg
	carCfg.N = 1000
	carCfg.D = 4
	ds := buildDataset("car", carCfg)
	k := 20
	band := preprocess(ds.Points, k)
	wants := []int{1, 5, 10, 15, 20}
	participants := 3 * cfg.Trials

	t := newTable("Figure 17: returning k' of the top-20 (Car, noisy users)", "k'", floats(wants))
	for _, spec := range allTopKSpecs() {
		var qs, bs []float64
		for _, want := range wants {
			var q float64
			for p := 0; p < participants; p++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
				u := oracle.RandomUtility(rng, 4)
				user := oracle.NewNoisyUser(u, UserErrRate, rng)
				alg := spec.Make(cfg.Seed + int64(p))
				alg.RunMulti(band, k, want, user)
				q += float64(user.Questions())
			}
			q /= float64(participants)
			qs = append(qs, q)
			bs = append(bs, oracle.Boredom(q))
		}
		t.add("questions", spec.Name+"-SomeTopK", qs)
		t.add("boredness", spec.Name+"-SomeTopK", bs)
		ranks := oracle.RankByBoredom(qs)
		rk := make([]float64, len(ranks))
		for i, r := range ranks {
			rk[i] = float64(r)
		}
		t.add("rank", spec.Name+"-SomeTopK", rk)
	}
	return t
}
