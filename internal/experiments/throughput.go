package experiments

import (
	"runtime"
	"sync/atomic"
	"time"

	"ist/internal/hull"
	"ist/internal/lp"
	"ist/internal/obs"
	"ist/internal/prep"
	"ist/internal/skyband"
)

// SessionsThroughput profiles the two serving-path optimizations of the
// parallel interaction engine (DESIGN.md §14) on an anti-correlated dataset:
//
//   - The deterministic LP fan-out: wall-clock time of the exact
//     convex-point scan at 1/2/4/8 workers, plus the useful-work fraction
//     (committed LP solves / executed LP solves — speculation discarded by
//     the ordered-commit protocol is wasted work) and the projected
//     multicore speedup (workers x fraction). Wall-clock numbers are only
//     meaningful relative to host_cpus: on a single-core host every worker
//     count shares one core, so the projection is the hardware-independent
//     figure while wall time degrades by exactly the wasted-speculation
//     fraction.
//
//   - The shared preprocessing cache: time to assemble a session's
//     preprocessing (k-skyband + exact convex points) cold versus from a
//     warm prep.Cache — the per-session setup cost a high-session-count
//     server pays once instead of per session.
//
// This is the data behind BENCH_10.json.
func SessionsThroughput(cfg Config) *Table {
	cfg = cfg.withDefaults()
	// One representative k: small enough that the skyband is convex-point
	// heavy (the LP-bound regime the fan-out targets), matching the k used
	// by the parallel engine's micro-benchmarks.
	const k = 3
	workers := []int{1, 2, 4, 8}
	tab := newTable("Sessions throughput (anti-correlated)", "workers", floats(workers))

	points := buildDataset("anti", cfg).Points
	band := preprocess(points, k)

	// Total executed LP solves, including speculative solves whose results
	// the ordered commit discards. The solve hook is the chaos-test seam;
	// installing a pure counter here keeps the measured code identical to
	// production (no forked solver path) and is removed before returning.
	var executed atomic.Int64
	counting := func(*lp.Result) { executed.Add(1) }
	lp.SetSolveHook(counting)
	defer lp.SetSolveHook(nil)

	serialMS := make([]float64, len(workers))
	parallelMS := make([]float64, len(workers))
	fraction := make([]float64, len(workers))
	projected := make([]float64, len(workers))
	cpus := make([]float64, len(workers))

	// Committed (useful) solves are identical at every worker count — that
	// is the determinism contract — so measure them once, serially. The same
	// run yields heap allocations per LP solve, documenting the pooled
	// simplex-scratch path (DESIGN.md §14.2): the whole scan should sit at a
	// handful of allocations per solve (the returned vertex plus scan
	// bookkeeping), where the unpooled solver alone paid ~90.
	c := obs.NewCounting()
	var ms0, ms1 runtime.MemStats
	executed.Store(0)
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	serial, _ := hull.ConvexPointsExactParallel(band, nil, false, c, 1)
	serialSec := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	useful := float64(c.Count(obs.KindLPSolve))
	var allocsPerSolve float64
	if n := executed.Load(); n > 0 {
		allocsPerSolve = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	}

	for xi, w := range workers {
		var sec float64
		var exec int64
		for trial := 0; trial < cfg.Trials; trial++ {
			executed.Store(0)
			start := time.Now()
			v, _ := hull.ConvexPointsExactParallel(band, nil, false, nil, w)
			sec += time.Since(start).Seconds()
			exec += executed.Load()
			if len(v) != len(serial) {
				panic("sessions-throughput: parallel scan diverged from serial")
			}
		}
		f := float64(cfg.Trials)
		parallelMS[xi] = sec / f * 1000
		serialMS[xi] = serialSec * 1000
		if exec > 0 {
			fraction[xi] = useful * f / float64(exec)
		}
		projected[xi] = float64(w) * fraction[xi]
		cpus[xi] = float64(runtime.NumCPU())
	}

	tab.add("convex_wall_ms", "parallel", parallelMS)
	tab.add("convex_wall_ms", "serial", serialMS)
	tab.add("useful_work_fraction", "measured", fraction)
	tab.add("projected_multicore_speedup", "workers_x_fraction", projected)
	tab.add("host_cpus", "host", cpus)
	alloc := make([]float64, len(workers))
	for xi := range alloc {
		alloc[xi] = allocsPerSolve
	}
	tab.add("allocs_per_lp_solve", "pooled_scratch", alloc)

	// Shared preprocessing cache: cold populate vs warm replay of the full
	// session-setup sequence (skyband + exact convex points), keyed the way
	// the server keys them.
	cache := prep.New(0)
	// The fingerprint only namespaces keys inside this private cache; any
	// non-zero constant works (the server derives it from the dataset).
	const fp = 1
	setup := func() {
		bandKey := prep.Key{Fingerprint: fp, Kind: "skyband", Param: k}
		v, err := cache.Do(bandKey, nil, func(obs.Observer) (any, int64, error) {
			idx := skyband.KSkyband(points, k)
			return idx, int64(len(idx))*8 + 24, nil
		})
		if err != nil {
			panic(err)
		}
		pts := skyband.Filter(points, v.([]int))
		convexKey := prep.Key{Fingerprint: fp, Kind: "convex-exact"}
		if _, err := cache.Do(convexKey, nil, func(o obs.Observer) (any, int64, error) {
			vs, cerr := hull.ConvexPointsExactParallel(pts, nil, false, o, 1)
			return vs, int64(len(vs))*8 + 24, cerr
		}); err != nil {
			panic(err)
		}
	}
	start = time.Now()
	setup()
	coldSec := time.Since(start).Seconds()
	var warmSec float64
	for trial := 0; trial < cfg.Trials; trial++ {
		start = time.Now()
		setup()
		warmSec += time.Since(start).Seconds()
	}
	warmSec /= float64(cfg.Trials)

	coldMS := make([]float64, len(workers))
	warmMS := make([]float64, len(workers))
	speedup := make([]float64, len(workers))
	for xi := range workers {
		coldMS[xi] = coldSec * 1000
		warmMS[xi] = warmSec * 1000
		if warmSec > 0 {
			speedup[xi] = coldSec / warmSec
		}
	}
	tab.add("preprocess_cold_ms", "cold", coldMS)
	tab.add("preprocess_cached_ms", "cached", warmMS)
	tab.add("preprocess_cache_speedup", "cold_over_cached", speedup)

	return tab
}
