package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := newTable("Figure X: sample", "k", []float64{1, 20, 40})
	t.add("questions", "HD-PI", []float64{8, 7, 6})
	t.add("questions", "RH", []float64{30, 9, 8})
	t.add("time(s)", "HD-PI", []float64{0.01, 0.02, 0.04})
	return t
}

func TestTableRender(t *testing.T) {
	out := sampleTable().String()
	for _, want := range []string{"Figure X", "questions", "time(s)", "HD-PI", "RH", "30"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Metrics render in sorted order: "questions" before "time(s)".
	if strings.Index(out, "questions") > strings.Index(out, "time(s)") {
		t.Fatal("metrics not sorted")
	}
}

func TestTableWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back JSONResult
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "Figure X: sample" || len(back.X) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	qs := back.Metrics["questions"]
	if len(qs) != 2 || qs[0].Name != "HD-PI" || qs[1].Values[0] != 30 {
		t.Fatalf("metrics lost: %+v", back.Metrics)
	}
}

func TestTablePlot(t *testing.T) {
	var b strings.Builder
	sampleTable().Plot(&b)
	out := b.String()
	if !strings.Contains(out, "Figure X: sample — questions") {
		t.Fatalf("plot missing chart title:\n%s", out)
	}
	if !strings.Contains(out, "log10") {
		t.Fatal("time metric must plot on a log scale")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("plot missing markers")
	}
}

func TestRunCells(t *testing.T) {
	for _, parallel := range []int{0, 1, 3, 100} {
		n := 37
		got := make([]int, n)
		runCells(parallel, n, func(i int) { got[i] = i + 1 })
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("parallel=%d: cell %d not executed", parallel, i)
			}
		}
	}
	// n=0 and n=1 degenerate safely.
	runCells(4, 0, func(int) { t.Fatal("no cells to run") })
	ran := false
	runCells(4, 1, func(int) { ran = true })
	if !ran {
		t.Fatal("single cell skipped")
	}
}

func TestParallelMatchesSequentialQuestions(t *testing.T) {
	// Question counts are deterministic per cell, so a parallel run must
	// produce the identical questions table.
	cfg := Config{N: 300, D: 3, Ks: []int{1, 10}, Trials: 2, Seed: 9}
	seq := Fig9FourD(cfg)
	cfg.Parallel = 4
	par := Fig9FourD(cfg)
	for mi, s := range seq.Metrics["questions"] {
		p := par.Metrics["questions"][mi]
		for i := range s.Values {
			if s.Values[i] != p.Values[i] {
				t.Fatalf("series %s diverged: %v vs %v", s.Name, s.Values, p.Values)
			}
		}
	}
}
