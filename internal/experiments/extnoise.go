package experiments

import (
	"math/rand"

	"ist/internal/core"
	"ist/internal/oracle"
)

// ExtNoise is our extension experiment for the paper's stated future work
// (conclusion: "users might make mistakes when answering questions"). It
// sweeps the per-question error rate and measures how often each strategy
// still returns a true top-k point, plus the questions it costs:
//
//   - HD-PI (plain): the paper's algorithm, which hard-eliminates
//     partitions and therefore cannot recover from a wrong answer;
//   - HD-PI + 3-vote majority: every question repeated up to 3 times;
//   - Robust-HD-PI: multiplicative-weight partitions (soft elimination);
//   - RH (plain) for reference.
func ExtNoise(cfg Config) *Table {
	cfg = cfg.withDefaults()
	ds := buildDataset("anti", cfg)
	k := 10
	band := preprocess(ds.Points, k)
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3}
	t := newTable("Extension: answer-noise tolerance (anti-correlated, k=10)", "error rate", rates)

	type strat struct {
		name string
		run  func(seed int64, o oracle.Oracle) int
	}
	strats := []strat{
		{"HD-PI-sampling", func(seed int64, o oracle.Oracle) int {
			alg := core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
			return alg.Run(band, k, o)
		}},
		{"HD-PI+majority3", func(seed int64, o oracle.Oracle) int {
			alg := core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
			return alg.Run(band, k, oracle.NewMajorityOracle(o, 3))
		}},
		{"Robust-HD-PI", func(seed int64, o oracle.Oracle) int {
			alg := core.NewRobustHDPI(core.RobustHDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
			return alg.Run(band, k, o)
		}},
		{"RH", func(seed int64, o oracle.Oracle) int {
			return core.NewRHDefault(seed).Run(band, k, o)
		}},
	}

	for _, st := range strats {
		var hit, qs []float64
		for _, rate := range rates {
			okCount, q := 0, 0
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
				u := oracle.RandomUtility(rng, cfg.D)
				user := oracle.NewNoisyUser(u, rate, rng)
				idx := st.run(cfg.Seed+int64(trial), user)
				if oracle.IsTopK(band, u, k, band[idx]) {
					okCount++
				}
				q += user.Questions()
			}
			hit = append(hit, float64(okCount)/float64(cfg.Trials))
			qs = append(qs, float64(q)/float64(cfg.Trials))
		}
		t.add("top-k hit rate", st.name, hit)
		t.add("questions", st.name, qs)
	}
	return t
}
