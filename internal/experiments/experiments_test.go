package experiments

import (
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests.
func tiny() Config {
	return Config{N: 300, D: 3, Ks: []int{1, 5, 10}, Trials: 2, Seed: 1}
}

func TestAllRunnersSmoke(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := tiny()
			if name == "fig16" || name == "fig17" {
				// User studies fix their own dataset but honour Trials/Seed.
				cfg.Trials = 1
			}
			tab, err := Run(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tab == nil || len(tab.Metrics) == 0 {
				t.Fatalf("%s produced no metrics", name)
			}
			out := tab.String()
			if !strings.Contains(out, "==") || len(out) < 40 {
				t.Fatalf("%s rendered suspiciously short output:\n%s", name, out)
			}
			for metric, series := range tab.Metrics {
				for _, s := range series {
					if len(s.Values) != len(tab.X) {
						t.Fatalf("%s metric %q series %q: %d values for %d x points",
							name, metric, s.Name, len(s.Values), len(tab.X))
					}
					for _, v := range s.Values {
						if v < 0 {
							t.Fatalf("%s metric %q series %q has negative value %v", name, metric, s.Name, v)
						}
					}
				}
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	// The paper's robust shape claims at reduced scale (EXPERIMENTS.md
	// discusses which parts need paper scale): (1) our algorithms' question
	// counts drop substantially as k grows (>=32% in the paper); (2) HD-PI
	// never asks meaningfully more questions than the UH baselines; (3) the
	// UH baselines pay more processing time than RH.
	cfg := Config{N: 800, D: 4, Ks: []int{1, 40}, Trials: 4, Seed: 2}
	tab := Fig9FourD(cfg)
	q := map[string][]float64{}
	tm := map[string][]float64{}
	for _, s := range tab.Metrics["questions"] {
		q[s.Name] = s.Values
	}
	for _, s := range tab.Metrics["time(s)"] {
		tm[s.Name] = s.Values
	}
	last := len(tab.X) - 1
	// (1) questions decrease with k for our algorithms.
	for _, ours := range []string{"HD-PI-sampling", "RH"} {
		if q[ours][last] >= q[ours][0] {
			t.Errorf("%s questions did not decrease with k: %v", ours, q[ours])
		}
	}
	// (2) HD-PI at most marginally behind the strongest baseline.
	for _, theirs := range []string{"UH-Random", "UH-Simplex"} {
		if q["HD-PI-sampling"][last] > q[theirs][last]+2 {
			t.Errorf("at k=40, HD-PI asks %.1f questions vs %s %.1f",
				q["HD-PI-sampling"][last], theirs, q[theirs][last])
		}
	}
	// (3) RH is faster than the UH baselines (paper: 4x+ at this dimension).
	if tm["RH"][last] > tm["UH-Simplex"][last] {
		t.Errorf("RH %.4fs slower than UH-Simplex %.4fs at k=40",
			tm["RH"][last], tm["UH-Simplex"][last])
	}
}

func TestFig14AllTopKCostsMore(t *testing.T) {
	cfg := Config{N: 300, D: 3, Ks: []int{10}, Trials: 2, Seed: 3}
	tab := Fig14AllTopK(cfg)
	q := map[string][]float64{}
	for _, s := range tab.Metrics["questions"] {
		q[s.Name] = s.Values
	}
	for _, base := range []string{"RH", "HD-PI-sampling"} {
		if q[base+"-AllTopK"][0] <= q[base][0] {
			t.Errorf("%s-AllTopK %.1f questions <= %s %.1f; returning all must cost more",
				base, q[base+"-AllTopK"][0], base, q[base][0])
		}
	}
}

func TestFig16Ordering(t *testing.T) {
	cfg := Config{Seed: 4}
	tab := Fig16UserStudy(cfg)
	qs := tab.Metrics["questions"][0].Values
	// Order: HD-PI-sampling, HD-PI-accurate, RH, UH-Random, UH-Simplex,
	// Preference-Learning, Active-Ranking. Active-Ranking must ask the most
	// questions of all (paper: 45.4 vs everything else below 21).
	ar := qs[len(qs)-1]
	for i := 0; i < len(qs)-1; i++ {
		if qs[i] >= ar {
			t.Errorf("algorithm %d asks %.1f questions >= Active-Ranking %.1f", i, qs[i], ar)
		}
	}
	// Our algorithms (first three) must beat Active-Ranking by a wide margin
	// and be among the best ranked.
	ranks := tab.Metrics["rank"][0].Values
	if ranks[len(ranks)-1] != float64(len(qs)) {
		t.Errorf("Active-Ranking rank = %v, want worst (%d)", ranks[len(ranks)-1], len(qs))
	}
}
