// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6). Each Fig* function returns a Table containing the
// same series the paper plots (question counts, execution times, accuracy,
// boredom...), rendered as aligned text by Table.Render. cmd/istbench is
// the command-line driver and bench_test.go wraps each runner in a
// testing.B benchmark.
//
// Scale note: the paper runs n up to 1,000,000 on a C++ testbed; the
// default Config here uses n=10,000 so that the full suite completes in
// minutes. Every runner honours Config.N/Trials, so paper-scale runs are a
// flag away (see EXPERIMENTS.md).
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ist/internal/baseline"
	"ist/internal/core"
	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/skyband"
	"ist/internal/viz"
)

// Config controls an experiment run.
type Config struct {
	// N is the synthetic dataset size (default 10000).
	N int
	// D is the dimensionality for synthetic data (default 4).
	D int
	// Ks are the k values swept (default {1, 20, 40, 60, 80, 100}).
	Ks []int
	// Trials is the number of random users averaged per point (default 10,
	// as in the paper).
	Trials int
	// Seed makes everything reproducible (default 1).
	Seed int64
	// Heavy includes the slow baselines (Preference-Learning,
	// Active-Ranking, the -Adapt variants) where the figure calls for them.
	Heavy bool
	// Parallel dispatches independent measurement cells to this many
	// workers (default 1). Time measurements inflate under contention; use
	// parallel runs for question-count exploration.
	Parallel int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 10000
	}
	if c.D == 0 {
		c.D = 4
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{1, 20, 40, 60, 80, 100}
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Series is one line of a figure: a metric as a function of the x values.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Table is a rendered experiment: the x axis plus any number of series,
// grouped into named metrics (e.g. "questions" and "time(s)").
type Table struct {
	Title   string
	XLabel  string
	X       []float64
	Metrics map[string][]Series
}

// newTable builds an empty table.
func newTable(title, xlabel string, x []float64) *Table {
	return &Table{Title: title, XLabel: xlabel, X: x, Metrics: map[string][]Series{}}
}

// add appends a series under a metric.
func (t *Table) add(metric, name string, values []float64) {
	t.Metrics[metric] = append(t.Metrics[metric], Series{Name: name, Values: values})
}

// Render writes the table as aligned text, one block per metric.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	metrics := make([]string, 0, len(t.Metrics))
	for m := range t.Metrics {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	for _, m := range metrics {
		fmt.Fprintf(w, "-- %s --\n", m)
		fmt.Fprintf(w, "%-24s", t.XLabel)
		for _, x := range t.X {
			fmt.Fprintf(w, "%12.4g", x)
		}
		fmt.Fprintln(w)
		for _, s := range t.Metrics[m] {
			fmt.Fprintf(w, "%-24s", s.Name)
			for _, v := range s.Values {
				fmt.Fprintf(w, "%12.4g", v)
			}
			fmt.Fprintln(w)
		}
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// AlgSpec is an algorithm factory: baselines need a fresh instance per run
// because the adapted regret threshold ε depends on the hidden utility.
type AlgSpec struct {
	Name  string
	TwoD  bool // only applicable in 2 dimensions
	Heavy bool // slow baseline, included only with Config.Heavy
	Make  func(seed int64, eps float64) core.Algorithm
}

// Specs returns the algorithm roster for a comparison figure.
func Specs(d int, heavy bool) []AlgSpec {
	specs := []AlgSpec{
		{Name: "HD-PI-sampling", Make: func(seed int64, eps float64) core.Algorithm {
			return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(seed))})
		}},
		{Name: "RH", Make: func(seed int64, eps float64) core.Algorithm {
			return core.NewRHDefault(seed)
		}},
		{Name: "UH-Random", Make: func(seed int64, eps float64) core.Algorithm {
			return &baseline.UH{Eps: eps, Rng: rand.New(rand.NewSource(seed))}
		}},
		{Name: "UH-Simplex", Make: func(seed int64, eps float64) core.Algorithm {
			return &baseline.UH{Simplex: true, Eps: eps, Rng: rand.New(rand.NewSource(seed))}
		}},
		{Name: "UtilityApprox", Make: func(seed int64, eps float64) core.Algorithm {
			return &baseline.UtilityApprox{Eps: eps}
		}},
	}
	if d == 2 {
		specs = append(specs,
			AlgSpec{Name: "2D-PI", TwoD: true, Make: func(int64, float64) core.Algorithm { return core.TwoDPI{} }},
			AlgSpec{Name: "Median", TwoD: true, Make: func(int64, float64) core.Algorithm { return baseline.Median{} }},
			AlgSpec{Name: "Hull", TwoD: true, Make: func(int64, float64) core.Algorithm { return baseline.Hull{} }},
		)
	}
	if heavy {
		specs = append(specs,
			AlgSpec{Name: "UH-Random-Adapt", Heavy: true, Make: func(seed int64, eps float64) core.Algorithm {
				return &baseline.UH{Adapt: true, Rng: rand.New(rand.NewSource(seed))}
			}},
			AlgSpec{Name: "UH-Simplex-Adapt", Heavy: true, Make: func(seed int64, eps float64) core.Algorithm {
				return &baseline.UH{Simplex: true, Adapt: true, Rng: rand.New(rand.NewSource(seed))}
			}},
			AlgSpec{Name: "Preference-Learning", Heavy: true, Make: func(seed int64, eps float64) core.Algorithm {
				return &baseline.PreferenceLearning{Rng: rand.New(rand.NewSource(seed))}
			}},
			AlgSpec{Name: "Active-Ranking", Heavy: true, Make: func(seed int64, eps float64) core.Algorithm {
				return &baseline.ActiveRanking{Rng: rand.New(rand.NewSource(seed))}
			}},
		)
		if d == 2 {
			specs = append(specs,
				AlgSpec{Name: "Median-Adapt", TwoD: true, Heavy: true, Make: func(int64, float64) core.Algorithm { return baseline.MedianAdapt{} }},
				AlgSpec{Name: "Hull-Adapt", TwoD: true, Heavy: true, Make: func(int64, float64) core.Algorithm { return baseline.HullAdapt{} }},
			)
		}
	}
	return specs
}

// measurement is the averaged outcome of Trials runs.
type measurement struct {
	Questions float64
	Seconds   float64
	Accuracy  float64
}

// measure runs one algorithm spec on a preprocessed point set for Trials
// random users and averages the paper's measurements.
func measure(points []geom.Vector, k int, spec AlgSpec, cfg Config) measurement {
	d := len(points[0])
	var m measurement
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
		u := oracle.RandomUtility(rng, d)
		eps := epsilonForTopK(points, u, k)
		alg := spec.Make(cfg.Seed+int64(trial), eps)
		user := oracle.NewUser(u)
		start := time.Now()
		idx := alg.Run(points, k, user)
		m.Seconds += time.Since(start).Seconds()
		m.Questions += float64(user.Questions())
		m.Accuracy += oracle.Accuracy(points, u, k, points[idx])
	}
	f := float64(cfg.Trials)
	m.Questions /= f
	m.Seconds /= f
	m.Accuracy /= f
	return m
}

// epsilonForTopK is ε = 1 − f(p_k)/f(p₁) (the Section 6 adaptation).
func epsilonForTopK(points []geom.Vector, u geom.Vector, k int) float64 {
	if len(points) == 0 {
		return 0
	}
	f1 := u.Dot(points[oracle.TopK(points, u, 1)[0]])
	if f1 <= 0 {
		return 0
	}
	return 1 - oracle.KthUtility(points, u, k)/f1
}

// buildDataset creates a named dataset under the config's seed.
func buildDataset(name string, cfg Config) *dataset.Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds, err := dataset.ByName(name, rng, cfg.N, cfg.D)
	if err != nil {
		panic(err)
	}
	return ds
}

// preprocess reduces to the k-skyband as in all of the paper's experiments.
func preprocess(points []geom.Vector, k int) []geom.Vector {
	return skyband.Filter(points, skyband.KSkyband(points, k))
}

// floats converts ints for table x axes.
func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Plot renders each metric of the table as an ASCII chart (shapes are the
// object of this reproduction; the charts make them visible without leaving
// the terminal). Time metrics are drawn on a log scale.
func (t *Table) Plot(w io.Writer) {
	metrics := make([]string, 0, len(t.Metrics))
	for m := range t.Metrics {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	for _, m := range metrics {
		series := make([]viz.Series, 0, len(t.Metrics[m]))
		for _, s := range t.Metrics[m] {
			series = append(series, viz.Series{Name: s.Name, Values: s.Values})
		}
		c := &viz.Chart{
			Title:  fmt.Sprintf("%s — %s", t.Title, m),
			XLabel: t.XLabel,
			X:      t.X,
			Series: series,
			LogY:   strings.Contains(m, "time"),
		}
		c.Render(w)
		fmt.Fprintln(w)
	}
}

// JSONResult is the serializable form of a Table for archival and
// downstream plotting.
type JSONResult struct {
	Title   string              `json:"title"`
	XLabel  string              `json:"xLabel"`
	X       []float64           `json:"x"`
	Metrics map[string][]Series `json:"metrics"`
}

// WriteJSON serializes the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONResult{Title: t.Title, XLabel: t.XLabel, X: t.X, Metrics: t.Metrics})
}
