package core

import (
	"context"
	"time"

	"ist/internal/clock"
	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// This file is the anytime engine: a Budget bounds an interaction (question
// count, deadline on an injected clock, context cancellation), a tracker
// threads it through an algorithm's question boundaries and heavy loops, and
// a Certificate reports honestly what the returned point is worth. The
// unbudgeted Run entry points pass a nil tracker, whose methods are all
// no-op on the nil receiver, so the hot experiment paths pay nothing and —
// crucially for transcript replay — consume no randomness and ask exactly
// the same question sequence as before the engine existed.

// Budget bounds an interactive run. The zero value is inactive: no limits,
// identical behaviour to plain Run.
type Budget struct {
	// MaxQuestions caps how many questions the algorithm may ask
	// (0 = unlimited). Each Oracle.Prefer call from the algorithm counts
	// once, regardless of any vote amplification inside the oracle.
	MaxQuestions int
	// Deadline stops the run once Clock reaches it (zero = none).
	Deadline time.Time
	// Clock supplies time for Deadline checks and the degradation ladder;
	// nil defaults to clock.Real.
	Clock clock.Clock
	// Ctx cancels the run between question boundaries and inside heavy
	// loops when its Done channel fires (nil = no cancellation).
	Ctx context.Context
}

// Active reports whether the budget constrains anything.
func (b Budget) Active() bool {
	return b.MaxQuestions > 0 || !b.Deadline.IsZero() || b.Ctx != nil
}

// StopReason says why a budgeted run returned.
type StopReason string

const (
	// StopConverged is the algorithm's own stopping rule: the result is
	// guaranteed top-k (up to the algorithm's usual caveats, e.g. sampled
	// convex points).
	StopConverged StopReason = "converged"
	// StopQuestions means the question budget ran out.
	StopQuestions StopReason = "question-budget"
	// StopDeadline means the deadline passed.
	StopDeadline StopReason = "deadline"
	// StopCanceled means the context was canceled.
	StopCanceled StopReason = "canceled"
	// StopDegenerate means the utility region collapsed (an erring user or
	// numerically degenerate input) and the result is a best guess.
	StopDegenerate StopReason = "degenerate-region"
	// StopPanic means the algorithm panicked mid-run and the engine
	// recovered with the best point known at that moment.
	StopPanic StopReason = "panic-recovered"
)

// Certificate is the honest receipt attached to a budgeted result.
type Certificate struct {
	// Certified reports whether the point is guaranteed to be among the
	// user's top-k; false means best effort.
	Certified bool `json:"certified"`
	// Reason says which condition ended the run.
	Reason StopReason `json:"reason"`
	// Questions is how many questions this run asked.
	Questions int `json:"questions"`
	// Candidates counts the points not yet certainly beaten by k others
	// over the surviving utility region — the set the true answer is still
	// hiding in. It shrinks toward k (and below, to the certified answers)
	// as answers accumulate; len(points) means nothing was narrowed.
	Candidates int `json:"candidates"`
	// CredibleWeight is the posterior weight fraction behind the answer
	// (RobustHDPI only; 0 otherwise).
	CredibleWeight float64 `json:"credibleWeight,omitempty"`
	// Degradations lists the quality trade-offs the degradation ladder took
	// under pressure (bounding downgrades, convex-mode fallback, ...).
	Degradations []string `json:"degradations,omitempty"`
	// Elapsed is the run's wall time, measured on the budget's injected
	// clock (zero for inactive budgets, which perform no clock reads).
	// JSON carries it as integer nanoseconds.
	Elapsed time.Duration `json:"elapsed,omitempty"`
}

// tracker carries one budgeted run's accounting. A nil tracker is the
// unbudgeted fast path: every method is safe and free on the nil receiver.
type tracker struct {
	active bool
	// budgeted marks trackers built by newTracker (budget machinery in
	// play, even if the budget itself is inactive); observer-only trackers
	// from obsTracker leave it false so instrumentation never changes how
	// an unbudgeted run handles faults (e.g. strict vs historical LP error
	// handling in convex-point detection).
	budgeted bool
	budget   Budget
	clk      clock.Clock
	// obs receives trace events; nil is the silent fast path. Events carry
	// only already-computed state, so an attached observer consumes no
	// randomness and leaves transcripts bit-identical.
	obs obs.Observer

	// Degradation-ladder state. start/horizon scale deadline pressure;
	// strategy and stopEvery are the knobs algorithms re-read each round.
	start     time.Time
	horizon   time.Duration
	ladder    int
	strategy  polytope.Strategy
	stopEvery int
	notes     []string

	asked     int
	exhReason StopReason

	// Best-effort state observed along the way, for panic rescue and the
	// final certificate.
	lastU     geom.Vector
	lastVerts []geom.Vector

	certified bool
	reason    StopReason
	credible  float64
}

// newTracker builds a tracker for the budget, seeded with the algorithm's
// configured bounding strategy and stop-check cadence (the ladder's knobs)
// and carrying the run's trace observer (nil for untraced runs).
func newTracker(b Budget, strat polytope.Strategy, stopEvery int, o obs.Observer) *tracker {
	if stopEvery <= 0 {
		stopEvery = 1
	}
	t := &tracker{budget: b, strategy: strat, stopEvery: stopEvery, active: b.Active(), budgeted: true, obs: o}
	if !t.active {
		return t
	}
	t.clk = b.Clock
	if t.clk == nil {
		t.clk = clock.Real
	}
	t.start = t.clk.Now()
	if !b.Deadline.IsZero() {
		t.horizon = b.Deadline.Sub(t.start)
	}
	return t
}

// obsTracker returns a tracker that only carries a trace observer — no
// budget, no clock — or nil when there is nothing to observe, keeping the
// uninstrumented fast path allocation-free. It is how the plain Run entry
// points thread an attached observer without changing any behaviour:
// every budget gate checks active (false here) and the fault-handling
// routing checks budgeted (also false here).
func obsTracker(o obs.Observer) *tracker {
	if o == nil {
		return nil
	}
	return &tracker{obs: o}
}

// observer returns the trace observer, nil-safe on a nil tracker.
func (t *tracker) observer() obs.Observer {
	if t == nil {
		return nil
	}
	return t.obs
}

// ask emits a question-asked event immediately before the oracle is
// consulted; i and j are the compared point indices.
func (t *tracker) ask(i, j int) {
	if t != nil {
		obs.QuestionAsked(t.obs, i, j)
	}
}

// pruned emits a candidate-pruned event for n eliminated candidates.
func (t *tracker) pruned(n int) {
	if t != nil {
		obs.CandidatePruned(t.obs, n)
	}
}

// stopCheck emits a stop-check event with the stopping rule's outcome.
func (t *tracker) stopCheck(ok bool) {
	if t != nil {
		obs.StopConditionCheck(t.obs, ok)
	}
}

// exhausted reports whether the budget has run out, recording the first
// reason sticky so every later check agrees. It consumes no randomness.
func (t *tracker) exhausted() bool {
	if t == nil || !t.active {
		return false
	}
	if t.exhReason != "" {
		return true
	}
	switch {
	case t.budget.Ctx != nil && t.budget.Ctx.Err() != nil:
		t.exhReason = StopCanceled
	case t.budget.MaxQuestions > 0 && t.asked >= t.budget.MaxQuestions:
		t.exhReason = StopQuestions
	case !t.budget.Deadline.IsZero() && !t.clk.Now().Before(t.budget.Deadline):
		t.exhReason = StopDeadline
	}
	return t.exhReason != ""
}

// stopReason is the exhaustion (or collapse) reason for a best-effort exit.
func (t *tracker) stopReason() StopReason {
	if t == nil || t.exhReason == "" {
		return StopDegenerate
	}
	return t.exhReason
}

// question accounts one answered question and emits the answer-received
// event. Call it after Oracle.Prefer returns, so a question that panicked
// mid-ask is not billed to the user; i and j are the compared point indices
// and preferFirst is the user's answer.
func (t *tracker) question(i, j int, preferFirst bool) {
	if t != nil {
		t.asked++
		obs.AnswerReceived(t.obs, i, j, preferFirst)
	}
}

// observe remembers the algorithm's current location estimate (a utility
// vector inside the surviving region) and, when non-nil, the region's
// vertices — the state a best-effort answer is built from.
func (t *tracker) observe(u geom.Vector, verts []geom.Vector) {
	if t == nil {
		return
	}
	if u != nil {
		t.lastU = u
	}
	if verts != nil {
		t.lastVerts = verts
	}
}

// maybeDegrade walks the degradation ladder under deadline pressure: past
// half the time budget the bounding shortcut downgrades Ball→Rect, past
// three quarters Rect→None and the stop-check cadence doubles. Dropping
// bounding-volume maintenance trades average-case speed for predictable
// per-question latency (no cache rebuilds on heavily cut polytopes), and a
// sparser Lemma 5.5 check spends the remaining time on region-shrinking
// questions rather than on certification attempts that keep failing.
func (t *tracker) maybeDegrade() {
	if t == nil || !t.active || t.horizon <= 0 {
		return
	}
	elapsed := t.clk.Now().Sub(t.start)
	if t.ladder < 1 && elapsed*2 >= t.horizon {
		t.ladder = 1
		if t.strategy == polytope.StrategyBall {
			t.strategy = polytope.StrategyRectFast
			t.note("bounding ball→rect under deadline pressure")
		}
	}
	if t.ladder < 2 && elapsed*4 >= t.horizon*3 {
		t.ladder = 2
		if t.strategy != polytope.StrategyNone {
			t.strategy = polytope.StrategyNone
			t.note("bounding rect→none under deadline pressure")
		}
		t.stopEvery *= 2
		t.note("stop-check cadence halved under deadline pressure")
	}
}

// note records a degradation once, emitting a degradation-step event on
// first occurrence.
func (t *tracker) note(msg string) {
	if t == nil {
		return
	}
	for _, n := range t.notes {
		if n == msg {
			return
		}
	}
	t.notes = append(t.notes, msg)
	obs.DegradationStep(t.obs, msg)
}

// finish records the run's outcome; verts (may be nil) is the surviving
// utility region the certificate's candidate count is computed over.
func (t *tracker) finish(certified bool, reason StopReason, verts []geom.Vector) {
	if t == nil {
		return
	}
	t.certified = certified
	t.reason = reason
	if verts != nil {
		t.lastVerts = verts
	}
}

// certificate packages the run's accounting.
func (t *tracker) certificate(points []geom.Vector, k int) Certificate {
	if t == nil {
		return Certificate{}
	}
	reason := t.reason
	if reason == "" {
		reason = StopConverged
	}
	var elapsed time.Duration
	if t.clk != nil {
		elapsed = t.clk.Now().Sub(t.start)
	}
	return Certificate{
		Certified:      t.certified,
		Reason:         reason,
		Questions:      t.asked,
		Candidates:     countCandidates(points, k, t.lastVerts),
		CredibleWeight: t.credible,
		Degradations:   t.notes,
		Elapsed:        elapsed,
	}
}

// rescue is the panic barrier of the budgeted entry points: a panic inside
// a budget-active run (a poisoned oracle, a numerical explosion) is
// converted into a best-effort answer with an honest panic-recovered
// certificate instead of unwinding into the caller. Unbudgeted runs keep
// their propagate-the-panic contract — the session layer's own isolation
// depends on it.
func (t *tracker) rescue(points []geom.Vector, k int, idx *int, cert *Certificate) {
	if t == nil || !t.active {
		return
	}
	if r := recover(); r == nil {
		return
	}
	u := t.lastU
	if u == nil {
		u = uniformUtility(len(points[0]))
	}
	*idx = argmaxAt(points, u)
	t.finish(false, StopPanic, nil)
	*cert = t.certificate(points, k)
}

// rescueMulti is rescue for the multi-answer variants.
func (t *tracker) rescueMulti(points []geom.Vector, k, want int, idx *[]int, cert *Certificate) {
	if t == nil || !t.active {
		return
	}
	if r := recover(); r == nil {
		return
	}
	u := t.lastU
	if u == nil {
		u = uniformUtility(len(points[0]))
	}
	*idx = oracle.TopK(points, u, want)
	t.finish(false, StopPanic, nil)
	*cert = t.certificate(points, k)
}

// countCandidates counts the points that could still be in the user's top-k
// given that the utility vector lies in the region spanned by verts: a point
// is ruled out only when k other points certainly beat it, i.e. beat it at
// every region vertex. With no region information, every point is a
// candidate. Over the full simplex this is exactly the k-skyband.
func countCandidates(points []geom.Vector, k int, verts []geom.Vector) int {
	n := len(points)
	if len(verts) == 0 {
		return n
	}
	// util[j][vi] = verts[vi]·points[j], computed once.
	util := make([][]float64, n)
	for j, p := range points {
		row := make([]float64, len(verts))
		for vi, v := range verts {
			row[vi] = v.Dot(p)
		}
		util[j] = row
	}
	candidates := 0
	for i := 0; i < n; i++ {
		beaters := 0
		for j := 0; j < n && beaters < k; j++ {
			if j == i {
				continue
			}
			certain := true
			for vi := range verts {
				if util[j][vi] <= util[i][vi]+geom.Eps {
					certain = false
					break
				}
			}
			if certain {
				beaters++
			}
		}
		if beaters < k {
			candidates++
		}
	}
	return candidates
}
