package core

import (
	"math/rand"
	"testing"

	"ist/internal/dataset"
	"ist/internal/oracle"
	"ist/internal/skyband"
)

func TestRobustHDPITruthfulUser(t *testing.T) {
	// With a truthful user RobustHDPI must be correct like HD-PI
	// (top-1 accuracy measured exactly; top-k membership checked).
	rng := rand.New(rand.NewSource(1))
	ok, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(3)
		n := 50 + rng.Intn(100)
		k := 1 + rng.Intn(8)
		ds := dataset.AntiCorrelated(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		alg := NewRobustHDPI(RobustHDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(int64(trial)))})
		got := alg.Run(band, k, oracle.NewUser(u))
		total++
		if oracle.IsTopK(band, u, k, band[got]) {
			ok++
		}
	}
	// The weighted scheme stops at a confidence threshold, not a proof, so
	// tolerate a small slack even without noise.
	if float64(ok)/float64(total) < 0.9 {
		t.Fatalf("truthful-user accuracy %d/%d too low", ok, total)
	}
}

func TestRobustHDPIBeatsPlainUnderNoise(t *testing.T) {
	// The point of the extension: under a 25% error rate, the robust
	// variant should return top-k points more often than plain HD-PI.
	rng := rand.New(rand.NewSource(2))
	ds := dataset.AntiCorrelated(rng, 200, 3)
	k := 5
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	trials := 40
	robustOK, plainOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		u := oracle.RandomUtility(rng, 3)
		seed := int64(trial)

		noisy1 := oracle.NewNoisyUser(u, 0.25, rand.New(rand.NewSource(seed)))
		r := NewRobustHDPI(RobustHDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		if oracle.IsTopK(band, u, k, band[r.Run(band, k, noisy1)]) {
			robustOK++
		}

		noisy2 := oracle.NewNoisyUser(u, 0.25, rand.New(rand.NewSource(seed)))
		p := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		if oracle.IsTopK(band, u, k, band[p.Run(band, k, noisy2)]) {
			plainOK++
		}
	}
	if robustOK <= plainOK {
		t.Fatalf("robust %d/%d vs plain %d/%d under noise; expected robust better",
			robustOK, trials, plainOK, trials)
	}
}

func TestRobustHDPIQuestionBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := dataset.AntiCorrelated(rng, 150, 3)
	k := 5
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	u := oracle.RandomUtility(rng, 3)
	alg := NewRobustHDPI(RobustHDPIOptions{
		Mode: ConvexExact, MaxQuestions: 7, Rng: rand.New(rand.NewSource(1)),
	})
	user := oracle.NewNoisyUser(u, 0.3, rng)
	alg.Run(band, k, user)
	if user.Questions() > 7 {
		t.Fatalf("asked %d questions, budget 7", user.Questions())
	}
}

func TestMajorityOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := oracle.RandomUtility(rng, 3)
	ds := dataset.AntiCorrelated(rng, 100, 3)
	k := 4
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))

	// Majority voting over a noisy user lowers the effective error rate:
	// HD-PI through a 3-vote wrapper should succeed more often than through
	// the raw noisy oracle at the same per-answer error.
	trials := 30
	rawOK, majOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		uu := oracle.RandomUtility(rng, 3)
		seed := int64(trial)
		raw := oracle.NewNoisyUser(uu, 0.3, rand.New(rand.NewSource(seed)))
		alg := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		if oracle.IsTopK(band, uu, k, band[alg.Run(band, k, raw)]) {
			rawOK++
		}
		maj := oracle.NewMajorityOracle(oracle.NewNoisyUser(uu, 0.3, rand.New(rand.NewSource(seed))), 5)
		alg2 := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		if oracle.IsTopK(band, uu, k, band[alg2.Run(band, k, maj)]) {
			majOK++
		}
	}
	if majOK <= rawOK {
		t.Fatalf("majority %d/%d vs raw %d/%d; voting must help", majOK, trials, rawOK, trials)
	}
	_ = u
}

func TestMajorityOraclePanicsOnEvenVotes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even vote count")
		}
	}()
	oracle.NewMajorityOracle(oracle.NewUser(oracle.RandomUtility(rand.New(rand.NewSource(1)), 2)), 2)
}

func TestMajorityOracleEarlyExit(t *testing.T) {
	// A truthful user answers consistently, so 5-vote majority needs only 3
	// repetitions per question.
	u := oracle.NewUser([]float64{0.7, 0.3})
	m := oracle.NewMajorityOracle(u, 5)
	m.Prefer([]float64{0.9, 0.1}, []float64{0.1, 0.9})
	if u.Questions() != 3 {
		t.Fatalf("asked %d repetitions, want 3 (early majority)", u.Questions())
	}
}
