package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
	"ist/internal/skyband"
)

var paperPoints = []geom.Vector{
	{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0},
}

func TestTwoDPIPaperExample(t *testing.T) {
	// Example 4.4: u = (0.4, 0.6), k = 2. The user prefers p3 to p4 at the
	// boundary question, so q1 = p3 is returned.
	user := oracle.NewUser(geom.Vector{0.4, 0.6})
	got := TwoDPI{}.Run(paperPoints, 2, user)
	if got != 2 {
		t.Fatalf("returned p%d, want p3", got+1)
	}
	if user.Questions() != 1 {
		t.Fatalf("asked %d questions, want 1", user.Questions())
	}
	if !oracle.IsTopK(paperPoints, geom.Vector{0.4, 0.6}, 2, paperPoints[got]) {
		t.Fatal("returned point not in top-2")
	}
}

func TestTwoDPICorrectnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(90)
		k := 1 + rng.Intn(10)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		u := oracle.RandomUtility(rng, 2)
		user := oracle.NewUser(u)
		got := TwoDPI{}.Run(pts, k, user)
		if !oracle.IsTopK(pts, u, k, pts[got]) {
			t.Fatalf("trial %d: returned point %d not top-%d", trial, got, k)
		}
	}
}

func TestTwoDPIQuestionBound(t *testing.T) {
	// Theorem 4.5: at most O(log2(ceil(2n/(k+1)))) questions; the binary
	// search asks exactly ceil(log2(#partitions)) questions.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		u := oracle.RandomUtility(rng, 2)
		user := oracle.NewUser(u)
		TwoDPI{}.Run(pts, k, user)
		parts := TwoDPI{}.Partitions(pts, k)
		maxQ := int(math.Ceil(math.Log2(float64(len(parts))))) + 1
		if user.Questions() > maxQ {
			t.Fatalf("trial %d: %d questions for %d partitions", trial, user.Questions(), len(parts))
		}
		bound := int(math.Ceil(2 * float64(n) / float64(k+1)))
		if len(parts) > bound {
			t.Fatalf("trial %d: %d partitions > theorem bound %d", trial, len(parts), bound)
		}
	}
}

func runCorrectnessTrials(t *testing.T, alg Algorithm, d int, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		n := 30 + rng.Intn(120)
		k := 1 + rng.Intn(10)
		ds := dataset.AntiCorrelated(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		user := oracle.NewUser(u)
		got := alg.Run(band, k, user)
		if got < 0 || got >= len(band) {
			t.Fatalf("trial %d: bad index %d", trial, got)
		}
		if !oracle.IsTopK(band, u, k, band[got]) {
			t.Fatalf("trial %d (%s, d=%d, n=%d, k=%d): returned point not top-%d after %d questions",
				trial, alg.Name(), d, len(band), k, k, user.Questions())
		}
	}
}

func TestHDPIExactCorrectness(t *testing.T) {
	for d := 2; d <= 5; d++ {
		alg := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(7)), Strategy: polytope.StrategyBall})
		runCorrectnessTrials(t, alg, d, 12, int64(100+d))
	}
}

func TestHDPISamplingMostlyCorrect(t *testing.T) {
	// Sampling mode may miss convex points, so correctness is probabilistic
	// (Figure 7 reports accuracy near 1). Require high accuracy.
	rng := rand.New(rand.NewSource(3))
	ok, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		n := 40 + rng.Intn(100)
		k := 1 + rng.Intn(8)
		ds := dataset.AntiCorrelated(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		alg := NewHDPI(HDPIOptions{Mode: ConvexSampling, Samples: 300, Rng: rand.New(rand.NewSource(int64(trial)))})
		got := alg.Run(band, k, oracle.NewUser(u))
		total++
		if oracle.IsTopK(band, u, k, band[got]) {
			ok++
		}
	}
	if float64(ok)/float64(total) < 0.85 {
		t.Fatalf("sampling accuracy %d/%d too low", ok, total)
	}
}

func TestRHCorrectness(t *testing.T) {
	for d := 2; d <= 5; d++ {
		alg := NewRH(RHOptions{Rng: rand.New(rand.NewSource(11)), UseBall: true})
		runCorrectnessTrials(t, alg, d, 12, int64(200+d))
	}
}

func TestRHNoBallMatches(t *testing.T) {
	// The bounding-ball pre-test must not change behaviour, only speed.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		ds := dataset.AntiCorrelated(rng, 80, 3)
		k := 3
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, 3)
		a := NewRH(RHOptions{Rng: rand.New(rand.NewSource(42)), UseBall: true})
		b := NewRH(RHOptions{Rng: rand.New(rand.NewSource(42)), UseBall: false})
		ua, ub := oracle.NewUser(u), oracle.NewUser(u)
		ra, rb := a.Run(band, k, ua), b.Run(band, k, ub)
		if ra != rb || ua.Questions() != ub.Questions() {
			t.Fatalf("trial %d: ball %d/%dq vs noball %d/%dq", trial, ra, ua.Questions(), rb, ub.Questions())
		}
	}
}

func TestHDPIOnLowerBoundDataset(t *testing.T) {
	// Theorem 3.2's all-duplicates dataset: groups of k identical points on
	// a convex arc. Algorithms must terminate and return a top-k point.
	rng := rand.New(rand.NewSource(5))
	ds := dataset.LowerBound(rng, 60, 2, 5)
	u := oracle.RandomUtility(rng, 2)
	for _, alg := range []Algorithm{
		NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(1))}),
		NewRH(RHOptions{Rng: rand.New(rand.NewSource(1))}),
		TwoDPI{},
	} {
		user := oracle.NewUser(u)
		got := alg.Run(ds.Points, 5, user)
		if !oracle.IsTopK(ds.Points, u, 5, ds.Points[got]) {
			t.Fatalf("%s returned non-top-5 point on duplicate dataset", alg.Name())
		}
	}
}

func TestLowerBoundQuestions(t *testing.T) {
	// Theorem 3.2: on the adversarial dataset, locating a top-k group needs
	// Ω(log2(n/k)) questions; our algorithms should be near log2(n/k), not 0.
	rng := rand.New(rand.NewSource(6))
	n, k := 256, 4
	ds := dataset.LowerBound(rng, n, 2, k)
	qs := 0
	trials := 20
	for trial := 0; trial < trials; trial++ {
		u := oracle.RandomUtility(rng, 2)
		user := oracle.NewUser(u)
		TwoDPI{}.Run(ds.Points, k, user)
		qs += user.Questions()
	}
	avg := float64(qs) / float64(trials)
	logNk := math.Log2(float64(n) / float64(k))
	if avg < 1 {
		t.Fatalf("average questions %.1f suspiciously low", avg)
	}
	if avg > 4*logNk {
		t.Fatalf("average questions %.1f far above O(log(n/k)) = %.1f", avg, logNk)
	}
}

func TestHDPIStopCheckEveryAblation(t *testing.T) {
	// Less frequent stopping checks must stay correct (maybe more questions).
	rng := rand.New(rand.NewSource(8))
	ds := dataset.AntiCorrelated(rng, 100, 3)
	k := 5
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	u := oracle.RandomUtility(rng, 3)
	for _, every := range []int{1, 3, 10} {
		alg := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(1)), StopCheckEvery: every})
		user := oracle.NewUser(u)
		got := alg.Run(band, k, user)
		if !oracle.IsTopK(band, u, k, band[got]) {
			t.Fatalf("StopCheckEvery=%d: wrong answer", every)
		}
	}
}

func TestNoisyUserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		ds := dataset.AntiCorrelated(rng, 60, 3)
		k := 4
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, 3)
		noisy := oracle.NewNoisyUser(u, 0.3, rng)
		for _, alg := range []Algorithm{
			NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(int64(trial)))}),
			NewRH(RHOptions{Rng: rand.New(rand.NewSource(int64(trial)))}),
		} {
			got := alg.Run(band, k, noisy)
			if got < 0 || got >= len(band) {
				t.Fatalf("%s returned invalid index with noisy user", alg.Name())
			}
		}
	}
}

// Property: for random inputs and k = 1 the returned point must be the
// exact top-1 (IST with k=1 degenerates to finding the favourite).
func TestQuickTopOneExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		n := 20 + rng.Intn(60)
		ds := dataset.Independent(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.Skyline(ds.Points))
		u := oracle.RandomUtility(rng, d)
		alg := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(seed))})
		got := alg.Run(band, 1, oracle.NewUser(u))
		// top-1 with ties allowed
		return oracle.IsTopK(band, u, 1, band[got])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHDPIFewerQuestionsAsKGrows(t *testing.T) {
	// The headline claim: the number of questions decreases substantially
	// as k grows (Section 6.2 reports at least 32% reduction).
	rng := rand.New(rand.NewSource(10))
	ds := dataset.AntiCorrelated(rng, 400, 4)
	avgQ := func(k int) float64 {
		total := 0
		trials := 8
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		for trial := 0; trial < trials; trial++ {
			u := oracle.RandomUtility(rng, 4)
			user := oracle.NewUser(u)
			NewHDPI(HDPIOptions{Mode: ConvexSampling, Samples: 300, Rng: rand.New(rand.NewSource(int64(trial)))}).Run(band, k, user)
			total += user.Questions()
		}
		return float64(total) / float64(trials)
	}
	q1, q50 := avgQ(1), avgQ(50)
	if q50 >= q1 {
		t.Fatalf("questions did not decrease with k: k=1 %.1f vs k=50 %.1f", q1, q50)
	}
}

func TestRHStoppingCondition3(t *testing.T) {
	// Force the ladder to exhaust: with k = 1 and three widely separated
	// convex points, Lemma 5.5 needs R small; a tiny dataset lets the walk
	// resolve every pair, after which stopping condition 3 must return the
	// exact top-1 at R's centre.
	pts := []geom.Vector{{1, 0.1}, {0.1, 1}, {0.6, 0.6}}
	for trial := 0; trial < 10; trial++ {
		u := oracle.RandomUtility(rand.New(rand.NewSource(int64(trial))), 2)
		alg := NewRH(RHOptions{Rng: rand.New(rand.NewSource(int64(trial)))})
		user := oracle.NewUser(u)
		got := alg.Run(pts, 1, user)
		if !oracle.IsTopK(pts, u, 1, pts[got]) {
			t.Fatalf("trial %d: stop-3 path returned non-top-1", trial)
		}
	}
}

func TestTwoDPIQuestionCountIsLogOfPartitions(t *testing.T) {
	// The binary search asks exactly ceil(log2(m)) questions for m
	// partitions — verify the exact count, not just a bound.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 30 + rng.Intn(100)
		k := 1 + rng.Intn(6)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		m := len(TwoDPI{}.Partitions(pts, k))
		ceilLog := 0
		for c := 1; c < m; c *= 2 {
			ceilLog++
		}
		floorLog := ceilLog
		if m > 1 && 1<<uint(ceilLog) != m {
			floorLog = ceilLog - 1
		}
		user := oracle.NewUser(oracle.RandomUtility(rng, 2))
		TwoDPI{}.Run(pts, k, user)
		if q := user.Questions(); q < floorLog || q > ceilLog {
			t.Fatalf("trial %d: %d questions for %d partitions, want in [%d,%d]",
				trial, q, m, floorLog, ceilLog)
		}
	}
}

func TestHDPIBetaZeroUsesDefault(t *testing.T) {
	// Beta = 0 must fall back to the paper's 0.01, not divide by zero
	// semantics or a degenerate score.
	alg := NewHDPI(HDPIOptions{Rng: rand.New(rand.NewSource(1))})
	if alg.opt.Beta != 0.01 {
		t.Fatalf("default beta = %v", alg.opt.Beta)
	}
	if alg.opt.Samples != 400 || alg.opt.StopCheckEvery != 1 {
		t.Fatalf("defaults = %+v", alg.opt)
	}
}

func TestSinglePointDataset(t *testing.T) {
	pts := []geom.Vector{{0.5, 0.5, 0.5}}
	u := geom.Vector{0.3, 0.3, 0.4}
	for _, alg := range []Algorithm{
		NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(1))}),
		NewRH(RHOptions{Rng: rand.New(rand.NewSource(1))}),
	} {
		user := oracle.NewUser(u)
		if got := alg.Run(pts, 1, user); got != 0 {
			t.Fatalf("%s on singleton returned %d", alg.Name(), got)
		}
		if user.Questions() != 0 {
			t.Fatalf("%s asked %d questions for a singleton", alg.Name(), user.Questions())
		}
	}
}
