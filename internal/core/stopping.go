package core

import (
	"ist/internal/geom"
	"ist/internal/oracle"
)

// lemma55 implements stopping condition 2 (Lemma 5.5): given the vertices of
// the current utility range R and a probe utility vector u inside R, it
// checks whether one of the top-k points w.r.t. u is guaranteed to be among
// the top-k for every utility vector in R. A point p_j can displace p_i only
// if some u' in R has u'·p_j > u'·p_i, i.e. some vertex of R lies strictly
// above the hyperplane h_{j,i}; if fewer than k points can displace p_i,
// p_i is certainly top-k.
//
// It returns the qualifying point's index and true, or (0, false).
func lemma55(points []geom.Vector, k int, rVerts []geom.Vector, probe geom.Vector) (int, bool) {
	if len(rVerts) == 0 {
		return 0, false
	}
	for _, i := range oracle.TopK(points, probe, k) {
		if countPossibleBeaters(points, i, rVerts, k) < k {
			return i, true
		}
	}
	return 0, false
}

// countPossibleBeaters counts points that strictly beat points[i] somewhere
// in the region spanned by rVerts, stopping early at limit.
func countPossibleBeaters(points []geom.Vector, i int, rVerts []geom.Vector, limit int) int {
	pi := points[i]
	// Pre-compute the utility of p_i at every region vertex once.
	base := make([]float64, len(rVerts))
	for vi, v := range rVerts {
		base[vi] = v.Dot(pi)
	}
	count := 0
	for j, pj := range points {
		if j == i {
			continue
		}
		for vi, v := range rVerts {
			if v.Dot(pj) > base[vi]+geom.Eps {
				count++
				break
			}
		}
		if count >= limit {
			return count
		}
	}
	return count
}

// argmaxAt returns the index of the highest-utility point w.r.t. u.
func argmaxAt(points []geom.Vector, u geom.Vector) int {
	best, bestVal := 0, u.Dot(points[0])
	for i := 1; i < len(points); i++ {
		if v := u.Dot(points[i]); v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}
