package core

import (
	"ist/internal/geom"
	"ist/internal/polytope"
)

// gammaRow is one row of the list Γ: a candidate question hyperplane between
// two convex points.
type gammaRow struct {
	i, j int // point indices
	h    geom.Hyperplane
}

// gammaTable is Γ with cached partition classifications. The paper
// recomputes every row's relationship to every partition after each answer;
// because a cut can only shrink partitions, a cached Above/Below
// classification stays valid forever and only Intersect entries ever need
// rechecking, which turns the per-round cost from
// O(rows·partitions·vertices) into O(rows·changed-partitions).
type gammaTable struct {
	rows    []gammaRow
	classes [][]int8 // classes[r][c]: relationship of row r to partition c
	nAbove  []int
	nBelow  []int
	nInt    []int
	opt     HDPIOptions
}

// buildGamma constructs Γ rows for all pairs of the given point indices.
func buildGamma(points []geom.Vector, V []int) []gammaRow {
	var gamma []gammaRow
	for a := 0; a < len(V); a++ {
		for b := a + 1; b < len(V); b++ {
			h := geom.NewHyperplane(points[V[a]], points[V[b]])
			if h.Degenerate() {
				continue
			}
			gamma = append(gamma, gammaRow{i: V[a], j: V[b], h: h})
		}
	}
	return gamma
}

// newGammaTable classifies every row against every partition once and drops
// rows that cannot split R.
func newGammaTable(points []geom.Vector, V []int, C []partition, opt HDPIOptions) *gammaTable {
	g := &gammaTable{opt: opt}
	for _, row := range buildGamma(points, V) {
		cls := make([]int8, len(C))
		na, nb, ni := 0, 0, 0
		for ci, part := range C {
			c := part.poly.ClassifyWith(row.h, opt.Strategy, opt.Stats)
			cls[ci] = int8(c)
			switch c {
			case polytope.ClassAbove:
				na++
			case polytope.ClassBelow:
				nb++
			case polytope.ClassIntersect:
				ni++
			}
		}
		if ni == 0 && (na == 0 || nb == 0) {
			continue // preference already implied over R
		}
		g.rows = append(g.rows, row)
		g.classes = append(g.classes, cls)
		g.nAbove = append(g.nAbove, na)
		g.nBelow = append(g.nBelow, nb)
		g.nInt = append(g.nInt, ni)
	}
	return g
}

// best returns the index of the row with the highest even score
// min{N+, N−} − βN (Definition 5.4), or -1 when no informative row remains.
func (g *gammaTable) best() int {
	bestRow, bestScore := -1, 0.0
	for r := range g.rows {
		score := float64(min(g.nAbove[r], g.nBelow[r])) - g.opt.Beta*float64(g.nInt[r])
		if bestRow == -1 || score > bestScore {
			bestRow, bestScore = r, score
		}
	}
	return bestRow
}

// apply cuts the partition set with the answered halfspace h (the user's
// utility vector is in h+), removes the asked row, updates all cached
// classifications incrementally, and returns the surviving partitions.
func (g *gammaTable) apply(h geom.Hyperplane, C []partition, asked int) []partition {
	// Classify and update partitions first, remembering the fate of each
	// old index: its new index, or -1 when removed; cutPart marks shrunk
	// partitions whose Intersect cache entries must be rechecked.
	newIdx := make([]int, len(C))
	cutPart := make([]bool, len(C))
	var next []partition
	for ci, part := range C {
		switch part.poly.ClassifyWith(h, g.opt.Strategy, g.opt.Stats) {
		case polytope.ClassAbove:
			newIdx[ci] = len(next)
			next = append(next, part)
		case polytope.ClassIntersect:
			part.poly.CutObserved(h, g.opt.Observer)
			if !part.poly.IsEmpty() {
				newIdx[ci] = len(next)
				cutPart[ci] = true
				next = append(next, part)
			} else {
				newIdx[ci] = -1
			}
		default: // Below, On, Empty: cannot contain the utility vector
			newIdx[ci] = -1
		}
	}

	// Rebuild each row's cache over the surviving partitions.
	keepRows := 0
	for r := range g.rows {
		if r == asked {
			continue
		}
		cls := make([]int8, len(next))
		na, nb, ni := 0, 0, 0
		for ci := range C {
			ni2 := newIdx[ci]
			if ni2 < 0 {
				continue
			}
			c := polytope.Class(g.classes[r][ci])
			if cutPart[ci] && c == polytope.ClassIntersect {
				// The partition shrank: an Intersect entry may have resolved.
				c = next[ni2].poly.ClassifyWith(g.rows[r].h, g.opt.Strategy, g.opt.Stats)
			}
			cls[ni2] = int8(c)
			switch c {
			case polytope.ClassAbove:
				na++
			case polytope.ClassBelow:
				nb++
			case polytope.ClassIntersect:
				ni++
			}
		}
		if ni == 0 && (na == 0 || nb == 0) {
			continue
		}
		g.rows[keepRows] = g.rows[r]
		g.classes[keepRows] = cls
		g.nAbove[keepRows] = na
		g.nBelow[keepRows] = nb
		g.nInt[keepRows] = ni
		keepRows++
	}
	g.rows = g.rows[:keepRows]
	g.classes = g.classes[:keepRows]
	g.nAbove = g.nAbove[:keepRows]
	g.nBelow = g.nBelow[:keepRows]
	g.nInt = g.nInt[:keepRows]
	return next
}
