package core

import (
	"fmt"
	"math/rand"

	"ist/internal/geom"
	"ist/internal/hull"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// ConvexMode selects how HD-PI finds the convex points that seed its
// utility-space partitions (Section 5.2.1).
type ConvexMode int

const (
	// ConvexSampling approximates the convex points by sampling utility
	// vectors (the paper's practical default; Figure 7 measures its cost).
	ConvexSampling ConvexMode = iota
	// ConvexExact computes the convex points exactly with LPs.
	ConvexExact
)

func (m ConvexMode) String() string {
	if m == ConvexExact {
		return "accurate"
	}
	return "sampling"
}

// HDPIOptions configures HD-PI.
type HDPIOptions struct {
	// Mode selects exact vs sampled convex points. Default ConvexSampling.
	Mode ConvexMode
	// Samples is the number of utility samples in sampling mode (default 400).
	Samples int
	// Beta is the even-score balance parameter β of Definition 5.4
	// (default 0.01, the value the paper settles on in Figure 6).
	Beta float64
	// Strategy is the bounding shortcut for classifying partitions against
	// hyperplanes. The zero value is the bounding ball, the paper's choice
	// after Figure 5.
	Strategy polytope.Strategy
	// Rng drives sampling; required. Use a fixed seed for reproducibility.
	Rng *rand.Rand
	// Stats, when non-nil, accumulates bounding-strategy effectiveness
	// counters (Figure 5's "effective ratio").
	Stats *polytope.BoundStats
	// StopCheckEvery runs the Lemma 5.5 stopping check every this many
	// rounds (default 1 = every round; ablation knob).
	StopCheckEvery int
}

// HDPI is the high-dimensional partition-based algorithm of Section 5.2.
// It asks O(n) questions in the worst case and O(log n) in the optimal case
// (Theorem 5.6), and empirically the fewest among all evaluated algorithms.
type HDPI struct {
	opt HDPIOptions
}

// NewHDPI builds an HD-PI instance, filling in option defaults.
func NewHDPI(opt HDPIOptions) *HDPI {
	if opt.Samples <= 0 {
		opt.Samples = 400
	}
	if opt.Beta == 0 {
		opt.Beta = 0.01
	}
	if opt.StopCheckEvery <= 0 {
		opt.StopCheckEvery = 1
	}
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(1))
	}
	return &HDPI{opt: opt}
}

// Name implements Algorithm.
func (a *HDPI) Name() string { return fmt.Sprintf("HD-PI-%s", a.opt.Mode) }

// partition is one element of the set C: a polytope of the utility space
// whose every utility vector has points[point] as top-1 among the convex
// points.
type partition struct {
	poly  *polytope.Polytope
	point int
}

// Run implements Algorithm.
func (a *HDPI) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	d := len(points[0])
	rng := a.opt.Rng

	// Convex points V (Section 5.2.1).
	V := convexPoints(points, a.opt.Mode, a.opt.Samples, rng)

	// Initial partitions: Θ_i = {u : u·(p_i − p_j) >= 0 ∀ p_j ∈ V\{p_i}}.
	C := a.buildPartitions(points, V, d)
	if len(C) == 0 {
		// Degenerate input (e.g. a single point duplicated); the winner at
		// the simplex centre is top-1 everywhere it matters.
		return argmaxAt(points, uniformUtility(d))
	}

	// Γ with cached partition relationships (Section 5.2.1's list).
	gamma := newGammaTable(points, V, C, a.opt)

	round := 0
	lastProbe := uniformUtility(d)
	for {
		// Stopping condition 1: a single partition left.
		if len(C) == 1 {
			return C[0].point
		}
		// Stopping condition 2: Lemma 5.5 over R = union of partitions.
		if round%a.opt.StopCheckEvery == 0 {
			verts := allVertices(C)
			probe := C[rng.Intn(len(C))].poly.Sample(rng)
			lastProbe = probe
			if p, ok := lemma55(points, k, verts, probe); ok {
				return p
			}
		}
		round++

		// Point selection: the Γ row with the highest even score.
		best := gamma.best()
		if best < 0 {
			// No informative hyperplane remains: the relative order of all
			// convex points is fixed over R, so the top-1 at any point of R
			// is determined and certainly among the top-k.
			return argmaxAt(points, C[0].poly.Center())
		}

		// Ask the user and update C and Γ (information maintenance).
		row := gamma.rows[best]
		h := row.h
		if !o.Prefer(points[row.i], points[row.j]) {
			h = h.Flip()
		}
		C = gamma.apply(h, C, best)
		if len(C) == 0 {
			// Only possible with an erring user (Section 6.4): every
			// partition contradicted some answer. Fall back to the best
			// point at the last known location estimate.
			return argmaxAt(points, lastProbe)
		}
	}
}

// convexPoints picks the right convex-point detection for the mode and
// dimension: the exact mode uses the LP-free upper-envelope method in 2-d
// and the output-sensitive LP method otherwise.
func convexPoints(points []geom.Vector, mode ConvexMode, samples int, rng *rand.Rand) []int {
	if mode == ConvexExact {
		if len(points) > 0 && len(points[0]) == 2 {
			return hull.ConvexPoints2D(points)
		}
		return hull.ConvexPointsExact(points)
	}
	return hull.ConvexPointsSampling(points, samples, rng)
}

// buildPartitions constructs the initial partition set C from the convex
// points, skipping empty (and therefore impossible) cells.
func (a *HDPI) buildPartitions(points []geom.Vector, V []int, d int) []partition {
	var C []partition
	for _, i := range V {
		poly := polytope.NewSimplex(d)
		for _, j := range V {
			if i == j {
				continue
			}
			h := geom.NewHyperplane(points[i], points[j])
			if h.Degenerate() {
				continue
			}
			poly.Cut(h)
			if poly.IsEmpty() {
				break
			}
		}
		if !poly.IsEmpty() {
			C = append(C, partition{poly: poly, point: i})
		}
	}
	return C
}

// allVertices concatenates the vertex sets of every partition: the vertex
// set of R = ⋃Θ for the Lemma 5.5 check.
func allVertices(C []partition) []geom.Vector {
	var out []geom.Vector
	for _, part := range C {
		out = append(out, part.poly.Vertices()...)
	}
	return out
}

func uniformUtility(d int) geom.Vector {
	u := geom.NewVector(d)
	for i := range u {
		u[i] = 1 / float64(d)
	}
	return u
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
