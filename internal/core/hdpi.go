package core

import (
	"fmt"
	"math/rand"

	"ist/internal/geom"
	"ist/internal/hull"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/polytope"
	"ist/internal/prep"
)

// ConvexMode selects how HD-PI finds the convex points that seed its
// utility-space partitions (Section 5.2.1).
type ConvexMode int

const (
	// ConvexSampling approximates the convex points by sampling utility
	// vectors (the paper's practical default; Figure 7 measures its cost).
	ConvexSampling ConvexMode = iota
	// ConvexExact computes the convex points exactly with LPs.
	ConvexExact
)

func (m ConvexMode) String() string {
	if m == ConvexExact {
		return "accurate"
	}
	return "sampling"
}

// HDPIOptions configures HD-PI.
type HDPIOptions struct {
	// Mode selects exact vs sampled convex points. Default ConvexSampling.
	Mode ConvexMode
	// Samples is the number of utility samples in sampling mode (default 400).
	Samples int
	// Beta is the even-score balance parameter β of Definition 5.4
	// (default 0.01, the value the paper settles on in Figure 6).
	Beta float64
	// Strategy is the bounding shortcut for classifying partitions against
	// hyperplanes. The zero value is the bounding ball, the paper's choice
	// after Figure 5.
	Strategy polytope.Strategy
	// Rng drives sampling; required. Use a fixed seed for reproducibility.
	Rng *rand.Rand
	// Stats, when non-nil, accumulates bounding-strategy effectiveness
	// counters (Figure 5's "effective ratio").
	Stats *polytope.BoundStats
	// StopCheckEvery runs the Lemma 5.5 stopping check every this many
	// rounds (default 1 = every round; ablation knob).
	StopCheckEvery int
	// Observer receives trace events (internal/obs); nil disables tracing.
	Observer obs.Observer
	// Parallelism is the worker-pool degree for the exact convex-point
	// scan. 0 or 1 keeps the serial legacy path byte for byte; higher
	// values run internal/hull's speculative engine, which is guaranteed
	// to produce identical results and event streams. Callers wanting
	// "all cores" resolve GOMAXPROCS themselves (parallel.Degree).
	Parallelism int
	// PrepCache, when non-nil and PrepFingerprint != 0, memoizes
	// dataset-level preprocessing (the exact convex-point set) across
	// sessions over the same dataset. Sampling mode is never cached (it
	// consumes randomness); budgeted runs only read the cache, never
	// populate it (a mid-scan stop would poison it with partial results).
	PrepCache *prep.Cache
	// PrepFingerprint keys PrepCache entries — ist.Fingerprint of the
	// dataset the algorithm will run on. 0 disables caching.
	PrepFingerprint uint64
}

// HDPI is the high-dimensional partition-based algorithm of Section 5.2.
// It asks O(n) questions in the worst case and O(log n) in the optimal case
// (Theorem 5.6), and empirically the fewest among all evaluated algorithms.
type HDPI struct {
	opt HDPIOptions
}

// NewHDPI builds an HD-PI instance, filling in option defaults.
func NewHDPI(opt HDPIOptions) *HDPI {
	if opt.Samples <= 0 {
		opt.Samples = 400
	}
	if opt.Beta == 0 {
		opt.Beta = 0.01
	}
	if opt.StopCheckEvery <= 0 {
		opt.StopCheckEvery = 1
	}
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(1))
	}
	return &HDPI{opt: opt}
}

// Name implements Algorithm.
func (a *HDPI) Name() string { return fmt.Sprintf("HD-PI-%s", a.opt.Mode) }

// SetObserver implements Observable.
func (a *HDPI) SetObserver(o obs.Observer) { a.opt.Observer = o }

// SetParallelism implements Parallelizable.
func (a *HDPI) SetParallelism(workers int) { a.opt.Parallelism = workers }

// SetPrepCache implements PrepCached.
func (a *HDPI) SetPrepCache(c *prep.Cache, fingerprint uint64) {
	a.opt.PrepCache, a.opt.PrepFingerprint = c, fingerprint
}

// partition is one element of the set C: a polytope of the utility space
// whose every utility vector has points[point] as top-1 among the convex
// points.
type partition struct {
	poly  *polytope.Polytope
	point int
}

// Run implements Algorithm.
func (a *HDPI) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	return a.run(points, k, o, obsTracker(a.opt.Observer))
}

// RunBudgeted implements Budgeted. On exhaustion it returns the top-1 at
// the mean vertex of the surviving partitions.
func (a *HDPI) RunBudgeted(points []geom.Vector, k int, o oracle.Oracle, b Budget) (idx int, cert Certificate) {
	tr := newTracker(b, a.opt.Strategy, a.opt.StopCheckEvery, a.opt.Observer)
	defer tr.rescue(points, k, &idx, &cert)
	idx = a.run(points, k, o, tr)
	cert = tr.certificate(points, k)
	return idx, cert
}

// bestEffortCells finishes a budget-exhausted run over a partition set: the
// answer is the top-1 at the mean of the surviving vertices.
func bestEffortCells(points []geom.Vector, C []partition, tr *tracker) int {
	verts := allVertices(C)
	if len(verts) == 0 {
		tr.finish(false, tr.stopReason(), nil)
		return argmaxAt(points, uniformUtility(len(points[0])))
	}
	tr.finish(false, tr.stopReason(), verts)
	return argmaxAt(points, geom.Mean(verts))
}

func (a *HDPI) run(points []geom.Vector, k int, o oracle.Oracle, tr *tracker) int {
	d := len(points[0])
	rng := a.opt.Rng

	// Convex points V (Section 5.2.1).
	V := convexPoints(points, a.opt, tr)

	// Initial partitions: Θ_i = {u : u·(p_i − p_j) >= 0 ∀ p_j ∈ V\{p_i}}.
	C := a.buildPartitions(points, V, d, tr)
	if tr.exhausted() {
		// The budget died during construction; C may be partial, so even a
		// single cell proves nothing.
		return bestEffortCells(points, C, tr)
	}
	if len(C) == 0 {
		// Degenerate input (e.g. a single point duplicated); the winner at
		// the simplex centre is top-1 everywhere it matters.
		tr.finish(true, StopConverged, nil)
		return argmaxAt(points, uniformUtility(d))
	}

	// Γ with cached partition relationships (Section 5.2.1's list).
	gamma := newGammaTable(points, V, C, a.opt)

	round := 0
	stopEvery := a.opt.StopCheckEvery
	lastProbe := uniformUtility(d)
	for {
		// Stopping condition 1: a single partition left.
		if len(C) == 1 {
			tr.finish(true, StopConverged, C[0].poly.Vertices())
			return C[0].point
		}
		if tr.exhausted() {
			return bestEffortCells(points, C, tr)
		}
		tr.maybeDegrade()
		if tr != nil && tr.active {
			stopEvery = tr.stopEvery
			gamma.opt.Strategy = tr.strategy
		}
		// Stopping condition 2: Lemma 5.5 over R = union of partitions.
		if round%stopEvery == 0 {
			verts := allVertices(C)
			probe := C[rng.Intn(len(C))].poly.Sample(rng)
			lastProbe = probe
			tr.observe(probe, verts)
			p, ok := lemma55(points, k, verts, probe)
			tr.stopCheck(ok)
			if ok {
				tr.finish(true, StopConverged, verts)
				return p
			}
		}
		round++

		// Point selection: the Γ row with the highest even score.
		best := gamma.best()
		if best < 0 {
			// No informative hyperplane remains: the relative order of all
			// convex points is fixed over R, so the top-1 at any point of R
			// is determined and certainly among the top-k.
			tr.finish(true, StopConverged, allVertices(C))
			return argmaxAt(points, C[0].poly.Center())
		}

		// Ask the user and update C and Γ (information maintenance).
		row := gamma.rows[best]
		h := row.h
		tr.ask(row.i, row.j)
		ans := o.Prefer(points[row.i], points[row.j])
		if !ans {
			h = h.Flip()
		}
		tr.question(row.i, row.j, ans)
		beforeCells := len(C)
		C = gamma.apply(h, C, best)
		tr.pruned(beforeCells - len(C))
		if len(C) == 0 {
			// Only possible with an erring user (Section 6.4): every
			// partition contradicted some answer. Fall back to the best
			// point at the last known location estimate.
			tr.finish(false, StopDegenerate, nil)
			return argmaxAt(points, lastProbe)
		}
	}
}

// prepKindConvexExact is the prep.Cache kind for the exact convex-point set
// (both the 2-d envelope and the LP engine: the path is determined by the
// dimension, so one kind covers both).
const prepKindConvexExact = "convex-exact"

// convexPoints picks the right convex-point detection for the mode and
// dimension: the exact mode uses the LP-free upper-envelope method in 2-d
// and the output-sensitive LP method otherwise. Under a tracker the exact
// mode is budget-aware and degrades to sampling when its LPs go bad (a
// non-Optimal solve on a healthy problem) instead of silently mislabeling
// convex points.
//
// The exact paths honour opt.Parallelism (the speculative worker-pool
// engine; 0/1 = serial legacy) and opt.PrepCache: unbudgeted exact results
// are memoized under the dataset fingerprint with their event tape, so a
// cached session emits the same stream a cold one does. Budgeted runs only
// read the cache — a hit hands them the complete exact set for free, a miss
// computes locally without populating (the scan may stop mid-way). Sampling
// mode consumes randomness and is never cached.
func convexPoints(points []geom.Vector, opt HDPIOptions, tr *tracker) []int {
	o := tr.observer()
	if opt.Mode != ConvexExact {
		V := hull.ConvexPointsSampling(points, opt.Samples, opt.Rng)
		obs.ConvexPointsFound(o, len(V), "sampling")
		return V
	}
	cache := opt.PrepCache
	if opt.PrepFingerprint == 0 {
		cache = nil
	}
	key := prep.Key{Fingerprint: opt.PrepFingerprint, Kind: prepKindConvexExact}
	if len(points) > 0 && len(points[0]) == 2 {
		if cache != nil {
			v, err := cache.Do(key, o, func(co obs.Observer) (any, int64, error) {
				V := hull.ConvexPoints2D(points)
				obs.ConvexPointsFound(co, len(V), "2d-envelope")
				return V, intsBytes(V), nil
			})
			if err == nil {
				return copyInts(v.([]int))
			}
		}
		V := hull.ConvexPoints2D(points)
		obs.ConvexPointsFound(o, len(V), "2d-envelope")
		return V
	}
	if tr == nil || !tr.budgeted {
		// Plain (possibly observer-carrying) run: the historical
		// reject-on-bad-LP behaviour, traced when an observer rides along.
		if cache != nil {
			v, err := cache.Do(key, o, func(co obs.Observer) (any, int64, error) {
				V, _ := hull.ConvexPointsExactParallel(points, nil, false, co, opt.Parallelism)
				return V, intsBytes(V), nil
			})
			if err == nil {
				return copyInts(v.([]int))
			}
		}
		V, _ := hull.ConvexPointsExactParallel(points, nil, false, o, opt.Parallelism)
		return V
	}
	if v, ok := cache.Lookup(key, o); ok {
		return copyInts(v.([]int))
	}
	V, err := hull.ConvexPointsExactParallel(points, tr.exhausted, true, o, opt.Parallelism)
	if err == nil {
		return V
	}
	tr.note("convex accurate→sampling (" + err.Error() + ")")
	V = hull.ConvexPointsSampling(points, opt.Samples, opt.Rng)
	obs.ConvexPointsFound(o, len(V), "sampling")
	return V
}

// copyInts detaches a cached slice from the cache: callers own their result
// and the shared entry must stay immutable.
func copyInts(v []int) []int {
	if v == nil {
		return nil
	}
	return append([]int(nil), v...)
}

// intsBytes approximates a cached []int's resident size for the byte cap.
func intsBytes(v []int) int64 { return int64(len(v))*8 + 24 }

// buildPartitions constructs the initial partition set C from the convex
// points, skipping empty (and therefore impossible) cells. Under an
// exhausted budget it stops early and returns the cells built so far
// (callers detect this via the tracker and answer best-effort).
func (a *HDPI) buildPartitions(points []geom.Vector, V []int, d int, tr *tracker) []partition {
	var C []partition
	for _, i := range V {
		if tr.exhausted() {
			break
		}
		poly := polytope.NewSimplex(d)
		for _, j := range V {
			if i == j {
				continue
			}
			h := geom.NewHyperplane(points[i], points[j])
			if h.Degenerate() {
				continue
			}
			poly.Cut(h)
			if poly.IsEmpty() {
				break
			}
		}
		if !poly.IsEmpty() {
			C = append(C, partition{poly: poly, point: i})
		}
	}
	return C
}

// allVertices concatenates the vertex sets of every partition: the vertex
// set of R = ⋃Θ for the Lemma 5.5 check.
func allVertices(C []partition) []geom.Vector {
	var out []geom.Vector
	for _, part := range C {
		out = append(out, part.poly.Vertices()...)
	}
	return out
}

func uniformUtility(d int) geom.Vector {
	u := geom.NewVector(d)
	for i := range u {
		u[i] = 1 / float64(d)
	}
	return u
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
