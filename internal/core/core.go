// Package core implements the paper's interactive algorithms for the IST
// problem (Interactive Search for one of the Top-k): 2D-PI (Section 4),
// HD-PI (Section 5.2), RH (Section 5.3), and their AllTopK / SomeTopK
// variants (Sections 6.5.1 and 6.5.2).
//
// All algorithms interact with an oracle.Oracle — the (real or simulated)
// user — and return the index of a point guaranteed to be among the user's
// top-k. Inputs are expected to be preprocessed to the k-skyband (package
// skyband), matching the experimental setup of Section 6; the algorithms
// remain correct without the preprocessing, just slower.
package core

import (
	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/prep"
)

// Algorithm is an interactive IST solver.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Run interacts with the oracle until it can return the index of a point
	// that is among the user's top-k points of the input.
	Run(points []geom.Vector, k int, o oracle.Oracle) int
}

// MultiAlgorithm solves the AllTopK/SomeTopK variants: it returns several
// point indices, all guaranteed to be among the user's top-k.
type MultiAlgorithm interface {
	Name() string
	// RunMulti returns `want` indices among the user's top-k (or all k for
	// the AllTopK variants when want == k).
	RunMulti(points []geom.Vector, k, want int, o oracle.Oracle) []int
}

// Budgeted is an Algorithm that can run anytime-style under a Budget:
// it checks the budget at every question boundary and inside its heavy
// loops, and on exhaustion returns a best-effort point with an honest
// Certificate instead of running on.
type Budgeted interface {
	Algorithm
	RunBudgeted(points []geom.Vector, k int, o oracle.Oracle, b Budget) (int, Certificate)
}

// BudgetedMulti is the multi-answer counterpart of Budgeted.
type BudgetedMulti interface {
	MultiAlgorithm
	RunMultiBudgeted(points []geom.Vector, k, want int, o oracle.Oracle, b Budget) ([]int, Certificate)
}

// Observable is implemented by algorithms that can attach a trace observer
// (internal/obs) to their subsequent runs. A nil observer restores the
// uninstrumented fast path; a non-nil observer receives the question, cut,
// prune, LP and stop-check event stream but never changes behaviour —
// events carry only already-computed state, so transcripts and results stay
// bit-identical and no randomness is consumed.
type Observable interface {
	SetObserver(o obs.Observer)
}

// Parallelizable is implemented by algorithms whose preprocessing can fan
// out over a bounded worker pool (internal/hull's speculative LP engine).
// The contract is strict determinism: any worker count must produce the
// same answers, transcripts and event streams as workers == 1, which is
// the serial legacy path (DESIGN.md §14). Callers resolve "use all cores"
// themselves (parallel.Degree); 0 and 1 both mean serial here.
type Parallelizable interface {
	SetParallelism(workers int)
}

// PrepCached is implemented by algorithms that can memoize dataset-level
// preprocessing (convex points, sweep partitions) in a shared prep.Cache.
// fingerprint keys the entries (ist.Fingerprint of the dataset); 0 disables
// caching even with a cache attached. Cached and cold runs emit identical
// event streams — the cache replays the recorded preprocessing tape.
type PrepCached interface {
	SetPrepCache(c *prep.Cache, fingerprint uint64)
}

// RunBudgeted runs alg under b. Algorithms without budget support run to
// their own stopping rule (which is the guarantee their result carries) and
// report a converged certificate; the budget is ignored for them, which is
// honest but unbounded — callers needing hard limits should pick a Budgeted
// implementation.
func RunBudgeted(alg Algorithm, points []geom.Vector, k int, o oracle.Oracle, b Budget) (int, Certificate) {
	if ba, ok := alg.(Budgeted); ok {
		return ba.RunBudgeted(points, k, o, b)
	}
	before := o.Questions()
	idx := alg.Run(points, k, o)
	return idx, Certificate{
		Certified:  true,
		Reason:     StopConverged,
		Questions:  o.Questions() - before,
		Candidates: len(points),
	}
}

// RunMultiBudgeted is RunBudgeted for multi-answer algorithms.
func RunMultiBudgeted(alg MultiAlgorithm, points []geom.Vector, k, want int, o oracle.Oracle, b Budget) ([]int, Certificate) {
	if ba, ok := alg.(BudgetedMulti); ok {
		return ba.RunMultiBudgeted(points, k, want, o, b)
	}
	before := o.Questions()
	idx := alg.RunMulti(points, k, want, o)
	return idx, Certificate{
		Certified:  true,
		Reason:     StopConverged,
		Questions:  o.Questions() - before,
		Candidates: len(points),
	}
}
