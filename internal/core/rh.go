package core

import (
	"math/rand"

	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// RHOptions configures the RH algorithm.
type RHOptions struct {
	// Rng drives the random point order and the stopping-check sampling;
	// required for reproducibility (defaults to a fixed seed).
	Rng *rand.Rand
	// StopCheckEvery runs the Lemma 5.5 check every this many rounds
	// (default 1; ablation knob).
	StopCheckEvery int
	// UseBall enables the O(1) bounding-ball pre-test when scanning
	// candidate hyperplanes (default true).
	UseBall bool
}

// RH is the random-hyperplane algorithm of Section 5.3. It maintains a
// single utility range R, walks a random order of the points, and at each
// step asks the question whose hyperplane intersects R closest to R's
// centre. It asks O(c·d·log n) questions in expectation (Theorem 5.7),
// asymptotically optimal for fixed d (Corollary 5.8), and is the fastest of
// the paper's algorithms.
type RH struct {
	opt RHOptions
}

// NewRH builds an RH instance, filling in option defaults.
func NewRH(opt RHOptions) *RH {
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(1))
	}
	if opt.StopCheckEvery <= 0 {
		opt.StopCheckEvery = 1
	}
	return &RH{opt: opt}
}

// NewRHDefault returns RH with default options and the given seed.
func NewRHDefault(seed int64) *RH {
	return NewRH(RHOptions{Rng: rand.New(rand.NewSource(seed)), UseBall: true})
}

// Name implements Algorithm.
func (a *RH) Name() string { return "RH" }

// Run implements Algorithm.
func (a *RH) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	n := len(points)
	d := len(points[0])
	rng := a.opt.Rng
	R := polytope.NewSimplex(d)
	perm := rng.Perm(n)

	i := 1 // current ladder position: H_i holds hyperplanes (perm[i], perm[j<i])
	round := 0
	for {
		// Stopping condition 2 (Lemma 5.5) on the single polytope R.
		if round%a.opt.StopCheckEvery == 0 {
			verts := R.Vertices()
			if len(verts) == 0 {
				// Only with an erring user: contradictory cuts emptied R.
				return argmaxAt(points, uniformUtility(d))
			}
			probe := R.Sample(rng)
			if p, ok := lemma55(points, k, verts, probe); ok {
				return p
			}
		}
		round++

		// Hyperplane selection (Section 5.3.3): within the current H_i, the
		// intersecting hyperplane closest to R's centre; advance the ladder
		// when H_i has no intersecting hyperplane left. R only shrinks, so
		// abandoned ladders never need revisiting.
		center := R.Center()
		bestJ, bestDist := -1, 0.0
		for {
			for j := 0; j < i; j++ {
				h := geom.NewHyperplane(points[perm[i]], points[perm[j]])
				if h.Degenerate() {
					continue
				}
				if a.opt.UseBall {
					if c := R.BallSide(h); c == polytope.ClassAbove || c == polytope.ClassBelow {
						continue
					}
				}
				if R.Classify(h) != polytope.ClassIntersect {
					continue
				}
				if dist := h.Distance(center); bestJ < 0 || dist < bestDist {
					bestJ, bestDist = j, dist
				}
			}
			if bestJ >= 0 {
				break
			}
			i++
			if i >= n {
				// Stopping condition 3: no pair hyperplane intersects R, so
				// the ranking of all points is fixed over R; the top-1 at
				// R's centre is certainly among the top-k.
				return argmaxAt(points, center)
			}
		}

		pi, pj := points[perm[i]], points[perm[bestJ]]
		h := geom.NewHyperplane(pi, pj)
		if !o.Prefer(pi, pj) {
			h = h.Flip()
		}
		R.Cut(h)
	}
}
