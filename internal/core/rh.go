package core

import (
	"math/rand"

	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// RHOptions configures the RH algorithm.
type RHOptions struct {
	// Rng drives the random point order and the stopping-check sampling;
	// required for reproducibility (defaults to a fixed seed).
	Rng *rand.Rand
	// StopCheckEvery runs the Lemma 5.5 check every this many rounds
	// (default 1; ablation knob).
	StopCheckEvery int
	// UseBall enables the O(1) bounding-ball pre-test when scanning
	// candidate hyperplanes (default true).
	UseBall bool
	// Observer receives trace events (internal/obs); nil disables tracing.
	Observer obs.Observer
}

// strategy is the bounding shortcut the options ask for; the degradation
// ladder may downgrade it mid-run under deadline pressure.
func (opt RHOptions) strategy() polytope.Strategy {
	if opt.UseBall {
		return polytope.StrategyBall
	}
	return polytope.StrategyNone
}

// RH is the random-hyperplane algorithm of Section 5.3. It maintains a
// single utility range R, walks a random order of the points, and at each
// step asks the question whose hyperplane intersects R closest to R's
// centre. It asks O(c·d·log n) questions in expectation (Theorem 5.7),
// asymptotically optimal for fixed d (Corollary 5.8), and is the fastest of
// the paper's algorithms.
type RH struct {
	opt RHOptions
}

// NewRH builds an RH instance, filling in option defaults.
func NewRH(opt RHOptions) *RH {
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(1))
	}
	if opt.StopCheckEvery <= 0 {
		opt.StopCheckEvery = 1
	}
	return &RH{opt: opt}
}

// NewRHDefault returns RH with default options and the given seed.
func NewRHDefault(seed int64) *RH {
	return NewRH(RHOptions{Rng: rand.New(rand.NewSource(seed)), UseBall: true})
}

// Name implements Algorithm.
func (a *RH) Name() string { return "RH" }

// SetObserver implements Observable.
func (a *RH) SetObserver(o obs.Observer) { a.opt.Observer = o }

// Run implements Algorithm.
func (a *RH) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	return a.run(points, k, o, obsTracker(a.opt.Observer))
}

// RunBudgeted implements Budgeted. On exhaustion it returns the top-1 at
// R's centre — the centre of everything the answers so far have not ruled
// out.
func (a *RH) RunBudgeted(points []geom.Vector, k int, o oracle.Oracle, b Budget) (idx int, cert Certificate) {
	tr := newTracker(b, a.opt.strategy(), a.opt.StopCheckEvery, a.opt.Observer)
	defer tr.rescue(points, k, &idx, &cert)
	idx = a.run(points, k, o, tr)
	cert = tr.certificate(points, k)
	return idx, cert
}

// bestEffortRegion finishes a budget-exhausted run on the single polytope R:
// the answer is the top-1 at R's centre, the certificate's candidate count
// is computed over R's vertices.
func bestEffortRegion(points []geom.Vector, R *polytope.Polytope, tr *tracker) int {
	verts := R.Vertices()
	if len(verts) == 0 {
		tr.finish(false, tr.stopReason(), nil)
		return argmaxAt(points, uniformUtility(len(points[0])))
	}
	tr.finish(false, tr.stopReason(), verts)
	return argmaxAt(points, R.Center())
}

func (a *RH) run(points []geom.Vector, k int, o oracle.Oracle, tr *tracker) int {
	n := len(points)
	d := len(points[0])
	rng := a.opt.Rng
	R := polytope.NewSimplex(d)
	perm := rng.Perm(n)

	strat := a.opt.strategy()
	stopEvery := a.opt.StopCheckEvery

	i := 1 // current ladder position: H_i holds hyperplanes (perm[i], perm[j<i])
	round := 0
	for {
		if tr.exhausted() {
			return bestEffortRegion(points, R, tr)
		}
		tr.maybeDegrade()
		if tr != nil && tr.active {
			strat, stopEvery = tr.strategy, tr.stopEvery
		}
		// Stopping condition 2 (Lemma 5.5) on the single polytope R.
		if round%stopEvery == 0 {
			verts := R.Vertices()
			if len(verts) == 0 {
				// Only with an erring user: contradictory cuts emptied R.
				tr.finish(false, StopDegenerate, nil)
				return argmaxAt(points, uniformUtility(d))
			}
			probe := R.Sample(rng)
			tr.observe(probe, verts)
			p, ok := lemma55(points, k, verts, probe)
			tr.stopCheck(ok)
			if ok {
				tr.finish(true, StopConverged, verts)
				return p
			}
		}
		round++

		// Hyperplane selection (Section 5.3.3): within the current H_i, the
		// intersecting hyperplane closest to R's centre; advance the ladder
		// when H_i has no intersecting hyperplane left. R only shrinks, so
		// abandoned ladders never need revisiting.
		center := R.Center()
		tr.observe(center, nil)
		bestJ, bestDist := -1, 0.0
		for {
			for j := 0; j < i; j++ {
				if tr.exhausted() {
					return bestEffortRegion(points, R, tr)
				}
				h := geom.NewHyperplane(points[perm[i]], points[perm[j]])
				if h.Degenerate() {
					continue
				}
				if R.ClassifyWith(h, strat, nil) != polytope.ClassIntersect {
					continue
				}
				if dist := h.Distance(center); bestJ < 0 || dist < bestDist {
					bestJ, bestDist = j, dist
				}
			}
			if bestJ >= 0 {
				break
			}
			i++
			if i >= n {
				// Stopping condition 3: no pair hyperplane intersects R, so
				// the ranking of all points is fixed over R; the top-1 at
				// R's centre is certainly among the top-k.
				tr.finish(true, StopConverged, R.Vertices())
				return argmaxAt(points, center)
			}
		}

		pi, pj := points[perm[i]], points[perm[bestJ]]
		h := geom.NewHyperplane(pi, pj)
		tr.ask(perm[i], perm[bestJ])
		ans := o.Prefer(pi, pj)
		if !ans {
			h = h.Flip()
		}
		tr.question(perm[i], perm[bestJ], ans)
		R.CutObserved(h, tr.observer())
	}
}
