package core

import (
	"math/rand"
	"testing"

	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/skyband"
)

func checkMulti(t *testing.T, name string, got []int, pts []geom.Vector, u geom.Vector, k, want int) {
	t.Helper()
	if len(got) != want {
		t.Fatalf("%s: returned %d points, want %d", name, len(got), want)
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatalf("%s: duplicate point %d in answer", name, i)
		}
		seen[i] = true
		if !oracle.IsTopK(pts, u, k, pts[i]) {
			t.Fatalf("%s: point %d not among the top-%d", name, i, k)
		}
	}
}

func TestRHMultiAllTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(3)
		k := 2 + rng.Intn(5)
		ds := dataset.AntiCorrelated(rng, 80, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		alg := NewRHMulti(RHOptions{Rng: rand.New(rand.NewSource(int64(trial))), UseBall: true})
		user := oracle.NewUser(u)
		got := alg.RunMulti(band, k, k, user)
		checkMulti(t, alg.Name(), got, band, u, k, k)
	}
}

func TestHDPIMultiAllTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		d := 2 + rng.Intn(2)
		k := 2 + rng.Intn(4)
		ds := dataset.AntiCorrelated(rng, 60, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		alg := NewHDPIMulti(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(int64(trial)))})
		user := oracle.NewUser(u)
		got := alg.RunMulti(band, k, k, user)
		checkMulti(t, alg.Name(), got, band, u, k, k)
	}
}

func TestSomeTopKNeedsFewerQuestionsThanAll(t *testing.T) {
	// Section 6.5.2's core finding: returning 1 of the top-k asks far fewer
	// questions than returning all k.
	rng := rand.New(rand.NewSource(3))
	ds := dataset.AntiCorrelated(rng, 150, 3)
	k := 10
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	qFor := func(want int) int {
		total := 0
		for trial := 0; trial < 5; trial++ {
			u := oracle.RandomUtility(rng, 3)
			user := oracle.NewUser(u)
			alg := NewRHMulti(RHOptions{Rng: rand.New(rand.NewSource(int64(trial)))})
			alg.RunMulti(band, k, want, user)
			total += user.Questions()
		}
		return total
	}
	q1, qAll := qFor(1), qFor(k)
	if q1 >= qAll {
		t.Fatalf("want=1 took %d questions, want=%d took %d; expected fewer", q1, k, qAll)
	}
}

func TestMultiWantGreaterThanKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	alg := NewRHMulti(RHOptions{Rng: rand.New(rand.NewSource(1))})
	ds := dataset.Independent(rand.New(rand.NewSource(1)), 10, 2)
	alg.RunMulti(ds.Points, 2, 3, oracle.NewUser(oracle.RandomUtility(rand.New(rand.NewSource(2)), 2)))
}

func TestMultiWantOneMatchesSingle(t *testing.T) {
	// want=1 must deliver a valid single answer like the base algorithms.
	rng := rand.New(rand.NewSource(4))
	ds := dataset.AntiCorrelated(rng, 80, 3)
	k := 5
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	u := oracle.RandomUtility(rng, 3)
	for _, tc := range []struct {
		name string
		got  []int
	}{
		{"rh", NewRHMulti(RHOptions{Rng: rand.New(rand.NewSource(7))}).RunMulti(band, k, 1, oracle.NewUser(u))},
		{"hdpi", NewHDPIMulti(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(7))}).RunMulti(band, k, 1, oracle.NewUser(u))},
	} {
		if len(tc.got) != 1 {
			t.Fatalf("%s: got %v", tc.name, tc.got)
		}
		if !oracle.IsTopK(band, u, k, band[tc.got[0]]) {
			t.Fatalf("%s: point not top-%d", tc.name, k)
		}
	}
}
