package core

import (
	"fmt"

	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/polytope"
	"ist/internal/prep"
)

// This file implements the motivation-study variants of Section 6.5:
// returning `want` (SomeTopK, Section 6.5.2) or all k (AllTopK,
// Section 6.5.1) of the user's top-k points. The stopping condition becomes
// "there are `want` points which fulfil Lemma 5.5", and HD-PI additionally
// refines its partitioning with deeper convex-point layers (the V_d set)
// once a single partition remains.

// lemma55Multi returns up to want point indices that are guaranteed top-k
// w.r.t. every utility vector of the region spanned by rVerts, and whether
// at least want such points exist among the probe's top-k candidates.
func lemma55Multi(points []geom.Vector, k int, rVerts []geom.Vector, probe geom.Vector, want int) ([]int, bool) {
	if len(rVerts) == 0 {
		return nil, false
	}
	var qualified []int
	for _, i := range oracle.TopK(points, probe, k) {
		if countPossibleBeaters(points, i, rVerts, k) < k {
			qualified = append(qualified, i)
			if len(qualified) >= want {
				return qualified, true
			}
		}
	}
	return qualified, false
}

// RHMulti is RH with the modified stopping condition (RH-AllTopK /
// RH-SomeTopK of Section 6.5).
type RHMulti struct {
	opt RHOptions
}

// NewRHMulti builds the multi-answer RH variant.
func NewRHMulti(opt RHOptions) *RHMulti {
	return &RHMulti{opt: NewRH(opt).opt}
}

// Name implements MultiAlgorithm.
func (a *RHMulti) Name() string { return "RH-SomeTopK" }

// SetObserver implements Observable.
func (a *RHMulti) SetObserver(o obs.Observer) { a.opt.Observer = o }

// RunMulti implements MultiAlgorithm.
func (a *RHMulti) RunMulti(points []geom.Vector, k, want int, o oracle.Oracle) []int {
	return a.runMulti(points, k, want, o, obsTracker(a.opt.Observer))
}

// RunMultiBudgeted implements BudgetedMulti. On exhaustion it returns the
// top-want at R's centre, best-effort.
func (a *RHMulti) RunMultiBudgeted(points []geom.Vector, k, want int, o oracle.Oracle, b Budget) (idx []int, cert Certificate) {
	tr := newTracker(b, a.opt.strategy(), a.opt.StopCheckEvery, a.opt.Observer)
	defer tr.rescueMulti(points, k, want, &idx, &cert)
	idx = a.runMulti(points, k, want, o, tr)
	cert = tr.certificate(points, k)
	return idx, cert
}

// bestEffortRegionMulti finishes a budget-exhausted multi run on R.
func bestEffortRegionMulti(points []geom.Vector, want int, R *polytope.Polytope, tr *tracker) []int {
	verts := R.Vertices()
	if len(verts) == 0 {
		tr.finish(false, tr.stopReason(), nil)
		return oracle.TopK(points, uniformUtility(len(points[0])), want)
	}
	tr.finish(false, tr.stopReason(), verts)
	return oracle.TopK(points, R.Center(), want)
}

func (a *RHMulti) runMulti(points []geom.Vector, k, want int, o oracle.Oracle, tr *tracker) []int {
	if want > k {
		panic(fmt.Sprintf("core: want %d > k %d", want, k))
	}
	n := len(points)
	d := len(points[0])
	rng := a.opt.Rng
	R := polytope.NewSimplex(d)
	perm := rng.Perm(n)

	strat := a.opt.strategy()

	i := 1
	for {
		if tr.exhausted() {
			return bestEffortRegionMulti(points, want, R, tr)
		}
		tr.maybeDegrade()
		if tr != nil && tr.active {
			strat = tr.strategy
		}
		verts := R.Vertices()
		if len(verts) == 0 {
			tr.finish(false, StopDegenerate, nil)
			return oracle.TopK(points, uniformUtility(d), want)
		}
		probe := R.Sample(rng)
		tr.observe(probe, verts)
		res, resOK := lemma55Multi(points, k, verts, probe, want)
		tr.stopCheck(resOK)
		if resOK {
			tr.finish(true, StopConverged, verts)
			return res
		}

		center := R.Center()
		tr.observe(center, nil)
		bestJ, bestDist := -1, 0.0
		for {
			for j := 0; j < i; j++ {
				if tr.exhausted() {
					return bestEffortRegionMulti(points, want, R, tr)
				}
				h := geom.NewHyperplane(points[perm[i]], points[perm[j]])
				if h.Degenerate() {
					continue
				}
				if R.ClassifyWith(h, strat, nil) != polytope.ClassIntersect {
					continue
				}
				if dist := h.Distance(center); bestJ < 0 || dist < bestDist {
					bestJ, bestDist = j, dist
				}
			}
			if bestJ >= 0 {
				break
			}
			i++
			if i >= n {
				// Ranking fixed over R: the top-k at the centre is exact.
				tr.finish(true, StopConverged, R.Vertices())
				return oracle.TopK(points, center, want)
			}
		}
		pi, pj := points[perm[i]], points[perm[bestJ]]
		h := geom.NewHyperplane(pi, pj)
		tr.ask(perm[i], perm[bestJ])
		ans := o.Prefer(pi, pj)
		if !ans {
			h = h.Flip()
		}
		tr.question(perm[i], perm[bestJ], ans)
		R.CutObserved(h, tr.observer())
	}
}

// HDPIMulti is HD-PI with the modified stopping condition and the V_d
// partition-refinement of Section 6.5.1 (HD-PI-AllTopK / HD-PI-SomeTopK).
type HDPIMulti struct {
	opt HDPIOptions
}

// NewHDPIMulti builds the multi-answer HD-PI variant.
func NewHDPIMulti(opt HDPIOptions) *HDPIMulti {
	return &HDPIMulti{opt: NewHDPI(opt).opt}
}

// Name implements MultiAlgorithm.
func (a *HDPIMulti) Name() string { return fmt.Sprintf("HD-PI-%s-SomeTopK", a.opt.Mode) }

// SetObserver implements Observable.
func (a *HDPIMulti) SetObserver(o obs.Observer) { a.opt.Observer = o }

// SetParallelism implements Parallelizable.
func (a *HDPIMulti) SetParallelism(workers int) { a.opt.Parallelism = workers }

// SetPrepCache implements PrepCached.
func (a *HDPIMulti) SetPrepCache(c *prep.Cache, fingerprint uint64) {
	a.opt.PrepCache, a.opt.PrepFingerprint = c, fingerprint
}

// RunMulti implements MultiAlgorithm.
func (a *HDPIMulti) RunMulti(points []geom.Vector, k, want int, o oracle.Oracle) []int {
	return a.runMulti(points, k, want, o, obsTracker(a.opt.Observer))
}

// RunMultiBudgeted implements BudgetedMulti. On exhaustion it returns the
// top-want at the mean vertex of the surviving partitions, best-effort.
func (a *HDPIMulti) RunMultiBudgeted(points []geom.Vector, k, want int, o oracle.Oracle, b Budget) (idx []int, cert Certificate) {
	tr := newTracker(b, a.opt.Strategy, a.opt.StopCheckEvery, a.opt.Observer)
	defer tr.rescueMulti(points, k, want, &idx, &cert)
	idx = a.runMulti(points, k, want, o, tr)
	cert = tr.certificate(points, k)
	return idx, cert
}

func (a *HDPIMulti) runMulti(points []geom.Vector, k, want int, o oracle.Oracle, tr *tracker) []int {
	if want > k {
		panic(fmt.Sprintf("core: want %d > k %d", want, k))
	}
	d := len(points[0])
	rng := a.opt.Rng

	convex := func(excluded map[int]bool) []int {
		// Convex points of D \ V_d, reported as indices into points.
		var sub []geom.Vector
		var back []int
		for i, p := range points {
			if !excluded[i] {
				sub = append(sub, p)
				back = append(back, i)
			}
		}
		if len(sub) == 0 {
			return nil
		}
		sopt := a.opt
		if len(sub) != len(points) {
			// Subset scans are keyed by nothing the fingerprint describes;
			// the full-set scan (first round) is the cacheable one.
			sopt.PrepCache, sopt.PrepFingerprint = nil, 0
		}
		vs := convexPoints(sub, sopt, tr)
		out := make([]int, len(vs))
		for i, v := range vs {
			out[i] = back[v]
		}
		return out
	}

	vd := map[int]bool{} // confirmed points (paper's V_d)
	V := convex(nil)
	hd := &HDPI{opt: a.opt}
	C := hd.buildPartitions(points, V, d, tr)
	gamma := newGammaTable(points, V, C, a.opt)

	// bestEffort answers from whatever region survives; certified=false
	// because the refinement could not finish (degenerate geometry, erring
	// user, or an exhausted budget).
	bestEffort := func(reason StopReason) []int {
		verts := allVertices(C)
		if len(verts) == 0 {
			tr.finish(false, reason, nil)
			return oracle.TopK(points, uniformUtility(d), want)
		}
		tr.finish(false, reason, verts)
		return oracle.TopK(points, geom.Mean(verts), want)
	}

	for {
		if tr.exhausted() {
			return bestEffort(tr.stopReason())
		}
		if len(C) == 0 {
			return bestEffort(StopDegenerate)
		}
		tr.maybeDegrade()
		if tr != nil && tr.active {
			gamma.opt.Strategy = tr.strategy
		}
		verts := allVertices(C)
		probe := C[rng.Intn(len(C))].poly.Sample(rng)
		tr.observe(probe, verts)
		res, resOK := lemma55Multi(points, k, verts, probe, want)
		tr.stopCheck(resOK)
		if resOK {
			tr.finish(true, StopConverged, verts)
			return res
		}

		needRefine := len(C) == 1
		bestRow := -1
		if !needRefine {
			bestRow = gamma.best()
			if bestRow < 0 {
				needRefine = true
			}
		}

		if needRefine {
			// Section 6.5.1: confirm the associated points of the remaining
			// partitions (top-1 over R), subdivide by the next convex layer.
			progress := false
			for _, part := range C {
				if !vd[part.point] {
					vd[part.point] = true
					progress = true
				}
			}
			if len(vd) >= k || !progress {
				return bestEffort(StopDegenerate)
			}
			Vnext := convex(vd)
			if len(Vnext) == 0 {
				return bestEffort(StopDegenerate)
			}
			var refined []partition
			for _, part := range C {
				if tr.exhausted() {
					break
				}
				for _, i := range Vnext {
					cell := part.poly.Clone()
					for _, j := range Vnext {
						if i == j {
							continue
						}
						h := geom.NewHyperplane(points[i], points[j])
						if h.Degenerate() {
							continue
						}
						cell.Cut(h)
						if cell.IsEmpty() {
							break
						}
					}
					if !cell.IsEmpty() {
						refined = append(refined, partition{poly: cell, point: i})
					}
				}
			}
			if tr.exhausted() {
				return bestEffort(tr.stopReason())
			}
			if len(refined) == 0 {
				return bestEffort(StopDegenerate)
			}
			C = refined
			gamma = newGammaTable(points, Vnext, C, a.opt)
			continue
		}

		row := gamma.rows[bestRow]
		h := row.h
		tr.ask(row.i, row.j)
		ans := o.Prefer(points[row.i], points[row.j])
		if !ans {
			h = h.Flip()
		}
		tr.question(row.i, row.j, ans)
		beforeCells := len(C)
		C = gamma.apply(h, C, bestRow)
		tr.pruned(beforeCells - len(C))
		if len(C) == 0 {
			tr.finish(false, StopDegenerate, nil)
			return oracle.TopK(points, uniformUtility(d), want)
		}
	}
}
