package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/hull"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// rebuildCounts recomputes a row's (N+, N−, N_int) from scratch.
func rebuildCounts(h geom.Hyperplane, C []partition) (na, nb, ni int) {
	for _, part := range C {
		switch part.poly.Classify(h) {
		case polytope.ClassAbove:
			na++
		case polytope.ClassBelow:
			nb++
		case polytope.ClassIntersect:
			ni++
		}
	}
	return
}

// TestGammaIncrementalMatchesScratch drives the cached Γ table through a
// simulated interaction and verifies after every apply() that the cached
// counters equal a from-scratch classification of every surviving row.
func TestGammaIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(3)
		ds := dataset.AntiCorrelated(rng, 60, d)
		pts := ds.Points
		V := hull.ConvexPointsSampling(pts, 150, rng)
		if len(V) < 3 {
			continue
		}
		opt := NewHDPI(HDPIOptions{Rng: rand.New(rand.NewSource(int64(trial)))}).opt
		// Use the exact strategy so cached and scratch classifications use
		// identical predicates.
		opt.Strategy = polytope.StrategyNone
		hd := &HDPI{opt: opt}
		C := hd.buildPartitions(pts, V, d, nil)
		if len(C) < 2 {
			continue
		}
		g := newGammaTable(pts, V, C, opt)
		u := oracle.RandomUtility(rng, d)

		for round := 0; round < 6 && len(g.rows) > 0 && len(C) > 1; round++ {
			best := g.best()
			if best < 0 {
				break
			}
			row := g.rows[best]
			h := row.h
			if u.Dot(pts[row.i]) < u.Dot(pts[row.j]) {
				h = h.Flip()
			}
			C = g.apply(h, C, best)
			for r := range g.rows {
				na, nb, ni := rebuildCounts(g.rows[r].h, C)
				if na != g.nAbove[r] || nb != g.nBelow[r] || ni != g.nInt[r] {
					t.Fatalf("trial %d round %d row %d: cached (%d,%d,%d) vs scratch (%d,%d,%d)",
						trial, round, r, g.nAbove[r], g.nBelow[r], g.nInt[r], na, nb, ni)
				}
			}
		}
	}
}

// Property: apply() never keeps a partition on the wrong side of the
// answered halfspace, and the surviving region always contains the true
// utility vector when answers are truthful.
func TestQuickGammaApplySoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(2)
		ds := dataset.AntiCorrelated(rng, 40, d)
		pts := ds.Points
		V := hull.ConvexPointsSampling(pts, 100, rng)
		if len(V) < 3 {
			return true
		}
		opt := NewHDPI(HDPIOptions{Rng: rng}).opt
		hd := &HDPI{opt: opt}
		C := hd.buildPartitions(pts, V, d, nil)
		if len(C) < 2 {
			return true
		}
		g := newGammaTable(pts, V, C, opt)
		u := oracle.RandomUtility(rng, d)
		for round := 0; round < 5 && len(C) > 1; round++ {
			best := g.best()
			if best < 0 {
				break
			}
			row := g.rows[best]
			h := row.h
			if u.Dot(pts[row.i]) < u.Dot(pts[row.j]) {
				h = h.Flip()
			}
			C = g.apply(h, C, best)
			// No surviving partition may have a vertex strictly below h
			// (they were cut to the closed positive side).
			for _, part := range C {
				for _, v := range part.poly.Vertices() {
					if h.SideOf(v) == geom.Below {
						return false
					}
				}
			}
			// The true u must remain covered by some partition.
			covered := false
			for _, part := range C {
				if part.poly.Contains(u) {
					covered = true
					break
				}
			}
			if !covered && len(C) > 0 {
				// u may sit exactly on a removed sliver's boundary; accept
				// only if u is within eps of some partition via its center
				// distance — otherwise fail.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
