package core

import (
	"math"
	"math/rand"
	"testing"

	"ist/internal/geom"
	"ist/internal/oracle"
)

func TestTheoryBoundsKnownValues(t *testing.T) {
	cases := []struct {
		n, k         int
		lower, upper float64
	}{
		{0, 5, 0, 0},   // empty instance
		{10, 10, 0, 0}, // n <= k: everything is top-k
		{5, 10, 0, 0},
		{1000, 20, 6, 7},  // lower=⌈log₂50⌉=6, upper=⌈log₂⌈2000/21⌉⌉=⌈log₂96⌉=7
		{500, 2, 8, 9},    // lower=⌈log₂250⌉=8, upper=⌈log₂⌈1000/3⌉⌉=⌈log₂334⌉=9
		{1024, 1, 10, 10}, // k=1: both collapse to log₂n
		{16, 15, 1, 1},    // tiny gap: upper clamps to the floor
	}
	for _, c := range cases {
		lo, up := TheoryBounds(c.n, c.k)
		if lo != c.lower || up != c.upper {
			t.Errorf("TheoryBounds(%d, %d) = (%g, %g), want (%g, %g)", c.n, c.k, lo, up, c.lower, c.upper)
		}
		if up < lo {
			t.Errorf("TheoryBounds(%d, %d): upper %g below lower %g", c.n, c.k, up, lo)
		}
	}
}

// TestTwoDPIWithinTheoryUpper is the property the vs_upper gauge relies on:
// on any 2-d instance, 2D-PI certifies within TheoryBounds' upper bound, so
// ist_questions_vs_upper_bound stays <= 1.0 for every 2D-PI session.
func TestTwoDPIWithinTheoryUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(400)
		k := 1 + rng.Intn(25)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		u := oracle.RandomUtility(rng, 2)
		user := oracle.NewUser(u)
		TwoDPI{}.Run(pts, k, user)
		_, upper := TheoryBounds(n, k)
		if qs := float64(user.Questions()); upper > 0 && qs > upper {
			t.Fatalf("trial %d (n=%d k=%d): %g questions exceed theory upper bound %g",
				trial, n, k, qs, upper)
		}
		if qs := user.Questions(); upper == 0 && qs > int(math.Ceil(math.Log2(float64(n)))) {
			t.Fatalf("trial %d (n=%d k=%d): zero bound but %d questions", trial, n, k, qs)
		}
	}
}
