package core

import (
	"context"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/geom"
	"ist/internal/polytope"
)

func TestBudgetActive(t *testing.T) {
	cases := []struct {
		name string
		b    Budget
		want bool
	}{
		{"zero", Budget{}, false},
		{"questions", Budget{MaxQuestions: 5}, true},
		{"deadline", Budget{Deadline: time.Unix(1, 0)}, true},
		{"context", Budget{Ctx: context.Background()}, true},
	}
	for _, c := range cases {
		if got := c.b.Active(); got != c.want {
			t.Errorf("%s: Active() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestNilTrackerIsFree asserts the unbudgeted fast path: every tracker
// method must be a safe no-op on the nil receiver, because the plain Run
// entry points thread a nil tracker through the shared implementations.
func TestNilTrackerIsFree(t *testing.T) {
	var tr *tracker
	if tr.exhausted() {
		t.Fatal("nil tracker reports exhaustion")
	}
	tr.question(0, 1, true)
	tr.ask(0, 1)
	tr.pruned(3)
	tr.stopCheck(false)
	if tr.observer() != nil {
		t.Fatal("nil tracker has an observer")
	}
	tr.observe(geom.Vector{1, 0}, nil)
	tr.maybeDegrade()
	tr.note("ignored")
	tr.finish(true, StopConverged, nil)
	if got := tr.certificate(nil, 1); got.Certified || got.Reason != "" || got.Questions != 0 || got.Candidates != 0 {
		t.Fatalf("nil tracker certificate = %+v, want zero", got)
	}
	if tr.stopReason() != StopDegenerate {
		t.Fatalf("nil tracker stopReason = %q", tr.stopReason())
	}
}

func TestTrackerQuestionBudget(t *testing.T) {
	tr := newTracker(Budget{MaxQuestions: 2}, polytope.StrategyNone, 1, nil)
	if tr.exhausted() {
		t.Fatal("exhausted before any question")
	}
	tr.question(0, 1, true)
	if tr.exhausted() {
		t.Fatal("exhausted after 1 of 2 questions")
	}
	tr.question(0, 1, false)
	if !tr.exhausted() {
		t.Fatal("not exhausted after 2 of 2 questions")
	}
	if tr.stopReason() != StopQuestions {
		t.Fatalf("stopReason = %q, want %q", tr.stopReason(), StopQuestions)
	}
}

func TestTrackerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := newTracker(Budget{Ctx: ctx}, polytope.StrategyNone, 1, nil)
	if tr.exhausted() {
		t.Fatal("exhausted before cancellation")
	}
	cancel()
	if !tr.exhausted() {
		t.Fatal("not exhausted after cancellation")
	}
	if tr.stopReason() != StopCanceled {
		t.Fatalf("stopReason = %q, want %q", tr.stopReason(), StopCanceled)
	}
}

// TestTrackerDeadlineLadder walks the degradation ladder on a fake clock:
// Ball survives the first half of the horizon, downgrades to RectFast past
// one half, then to None (with a doubled stop-check cadence) past three
// quarters, and the deadline finally exhausts the run.
func TestTrackerDeadlineLadder(t *testing.T) {
	start := time.Unix(100, 0)
	fake := clock.NewFake(start)
	tr := newTracker(Budget{Deadline: start.Add(1 * time.Second), Clock: fake}, polytope.StrategyBall, 2, nil)

	tr.maybeDegrade()
	if tr.strategy != polytope.StrategyBall {
		t.Fatalf("degraded at t=0: strategy %v", tr.strategy)
	}

	fake.Advance(500 * time.Millisecond) // exactly half the horizon
	tr.maybeDegrade()
	if tr.strategy != polytope.StrategyRectFast {
		t.Fatalf("at half horizon: strategy %v, want RectFast", tr.strategy)
	}
	if tr.stopEvery != 2 {
		t.Fatalf("stop cadence changed at stage 1: %d", tr.stopEvery)
	}

	fake.Advance(250 * time.Millisecond) // three quarters
	tr.maybeDegrade()
	if tr.strategy != polytope.StrategyNone {
		t.Fatalf("at three-quarter horizon: strategy %v, want None", tr.strategy)
	}
	if tr.stopEvery != 4 {
		t.Fatalf("stop cadence not doubled at stage 2: %d", tr.stopEvery)
	}
	if tr.exhausted() {
		t.Fatal("exhausted before the deadline")
	}

	fake.Advance(250 * time.Millisecond) // the deadline itself
	if !tr.exhausted() {
		t.Fatal("not exhausted at the deadline")
	}
	if tr.stopReason() != StopDeadline {
		t.Fatalf("stopReason = %q, want %q", tr.stopReason(), StopDeadline)
	}

	notes := tr.notes
	if len(notes) != 3 {
		t.Fatalf("degradation notes = %v, want 3 entries", notes)
	}
	// Notes are deduplicated: walking the ladder again records nothing new.
	tr.maybeDegrade()
	if len(tr.notes) != len(notes) {
		t.Fatalf("duplicate degradation notes recorded: %v", tr.notes)
	}
}

// TestCountCandidates pins the candidate counter on a hand-checkable 2-d
// instance: p0 dominates p2 everywhere, so over the full simplex p2 is ruled
// out for k=1 while p0 and p1 (each winning a corner) stay candidates.
func TestCountCandidates(t *testing.T) {
	points := []geom.Vector{
		{0.9, 0.2}, // p0: wins at u=(1,0)
		{0.1, 0.9}, // p1: wins at u=(0,1)
		{0.5, 0.1}, // p2: beaten by p0 at every u
	}
	simplex := []geom.Vector{{1, 0}, {0, 1}}

	if got := countCandidates(points, 1, simplex); got != 2 {
		t.Fatalf("k=1 over the simplex: %d candidates, want 2", got)
	}
	// With k=2 a single certain beater is not enough to rule anyone out.
	if got := countCandidates(points, 2, simplex); got != 3 {
		t.Fatalf("k=2 over the simplex: %d candidates, want 3", got)
	}
	// No region information: everything is a candidate.
	if got := countCandidates(points, 1, nil); got != 3 {
		t.Fatalf("no region: %d candidates, want 3", got)
	}
	// A region where p0 certainly wins: only p0 survives... plus p1? At
	// u=(1,0): p0=0.9 > p1=0.1 and at u=(0.8,0.2): p0=0.76 > p1=0.26 — both
	// vertices rule p1 and p2 out for k=1.
	narrow := []geom.Vector{{1, 0}, {0.8, 0.2}}
	if got := countCandidates(points, 1, narrow); got != 1 {
		t.Fatalf("narrow region: %d candidates, want 1", got)
	}
}
