package core

import (
	"fmt"
	"math/rand"
	"sort"

	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/polytope"
	"ist/internal/prep"
)

// RobustHDPI is our extension for the paper's stated future work
// ("the situation that users might make mistakes when answering
// questions"). Where HD-PI hard-eliminates every partition inconsistent
// with an answer — so a single wrong answer can eliminate the partition
// holding the true utility vector — RobustHDPI keeps all partitions and
// maintains a multiplicative weight per partition (the weighted-majority /
// noisy-binary-search scheme): partitions on the side contradicted by an
// answer are multiplied by Eta < 1 instead of removed. It stops when one
// partition holds a Confidence fraction of the total weight and returns its
// associated point.
//
// With a truthful user the behaviour converges to HD-PI's (the true
// partition's weight is never discounted); with an erring user a mistake
// costs weight but is recoverable, trading a few extra questions for
// accuracy (see the ext-noise experiment in EXPERIMENTS.md).
type RobustHDPI struct {
	opt RobustHDPIOptions
}

// RobustHDPIOptions configures RobustHDPI.
type RobustHDPIOptions struct {
	// Mode and Samples control convex-point detection as in HDPIOptions.
	Mode    ConvexMode
	Samples int
	// Eta is the multiplicative penalty for partitions contradicting an
	// answer (default 0.25). Smaller trusts the user more. It plays the
	// role of p/(1-p) in a posterior update with assumed error rate p.
	Eta float64
	// Cooldown is how many rounds must pass before the same question can be
	// asked again (default 2). Re-asking is what lets the posterior average
	// out answer noise, but a human should not see the identical pair twice
	// in a row.
	Cooldown int
	// Confidence is the weight fraction one partition must reach to stop
	// (default 0.95).
	Confidence float64
	// MaxQuestions caps the interaction (default 4·log₂ of the partition
	// count + 16, enough for several recoveries).
	MaxQuestions int
	// Rng drives sampling; required.
	Rng *rand.Rand
	// Observer receives trace events (internal/obs); nil disables tracing.
	Observer obs.Observer
	// Parallelism, PrepCache and PrepFingerprint control the exact
	// convex-point scan as in HDPIOptions.
	Parallelism     int
	PrepCache       *prep.Cache
	PrepFingerprint uint64
}

// NewRobustHDPI builds the noise-tolerant HD-PI variant.
func NewRobustHDPI(opt RobustHDPIOptions) *RobustHDPI {
	if opt.Samples <= 0 {
		opt.Samples = 400
	}
	if opt.Eta == 0 {
		opt.Eta = 0.25
	}
	if opt.Confidence == 0 {
		opt.Confidence = 0.95
	}
	if opt.Cooldown <= 0 {
		opt.Cooldown = 2
	}
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(1))
	}
	return &RobustHDPI{opt: opt}
}

// Name implements Algorithm.
func (a *RobustHDPI) Name() string { return fmt.Sprintf("Robust-HD-PI-%s", a.opt.Mode) }

// SetObserver implements Observable.
func (a *RobustHDPI) SetObserver(o obs.Observer) { a.opt.Observer = o }

// SetParallelism implements Parallelizable.
func (a *RobustHDPI) SetParallelism(workers int) { a.opt.Parallelism = workers }

// SetPrepCache implements PrepCached.
func (a *RobustHDPI) SetPrepCache(c *prep.Cache, fingerprint uint64) {
	a.opt.PrepCache, a.opt.PrepFingerprint = c, fingerprint
}

// Run implements Algorithm.
func (a *RobustHDPI) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	return a.run(points, k, o, obsTracker(a.opt.Observer))
}

// RunBudgeted implements Budgeted. The certificate additionally reports the
// posterior weight fraction behind the answer (CredibleWeight).
func (a *RobustHDPI) RunBudgeted(points []geom.Vector, k int, o oracle.Oracle, b Budget) (idx int, cert Certificate) {
	tr := newTracker(b, polytope.StrategyBall, 1, a.opt.Observer)
	defer tr.rescue(points, k, &idx, &cert)
	idx = a.run(points, k, o, tr)
	cert = tr.certificate(points, k)
	return idx, cert
}

func (a *RobustHDPI) run(points []geom.Vector, k int, o oracle.Oracle, tr *tracker) int {
	d := len(points[0])
	rng := a.opt.Rng

	V := convexPoints(points, HDPIOptions{
		Mode: a.opt.Mode, Samples: a.opt.Samples, Rng: rng,
		Parallelism: a.opt.Parallelism,
		PrepCache:   a.opt.PrepCache, PrepFingerprint: a.opt.PrepFingerprint,
	}, tr)
	base := &HDPI{opt: HDPIOptions{Rng: rng}}
	C := base.buildPartitions(points, V, d, tr)
	if tr.exhausted() {
		return bestEffortCells(points, C, tr)
	}
	if len(C) == 0 {
		tr.finish(true, StopConverged, nil)
		return argmaxAt(points, uniformUtility(d))
	}
	if len(C) == 1 {
		tr.finish(true, StopConverged, C[0].poly.Vertices())
		return C[0].point
	}

	// Fixed partitions, multiplicative weights. The bounding strategy starts
	// at the paper's ball and may be downgraded by the degradation ladder.
	strat := polytope.StrategyBall
	w := make([]float64, len(C))
	for i := range w {
		w[i] = 1
	}
	centers := make([]geom.Vector, len(C))
	for i, part := range C {
		centers[i] = part.poly.Center()
	}
	gamma := buildGamma(points, V)

	// credible returns the smallest set of cells (by descending weight)
	// holding at least a Confidence fraction of the total weight — the
	// region the posterior believes the utility vector is in — and the
	// weight fraction that set actually holds.
	credible := func() ([]int, float64) {
		idx := make([]int, len(C))
		for i := range idx {
			idx[i] = i
		}
		sortByWeightDesc(idx, w)
		total := 0.0
		for _, wi := range w {
			total += wi
		}
		need := a.opt.Confidence * total
		var cells []int
		acc := 0.0
		for _, ci := range idx {
			cells = append(cells, ci)
			acc += w[ci]
			if acc >= need {
				break
			}
		}
		if total <= 0 {
			return cells, 0
		}
		return cells, acc / total
	}

	// answer extracts a point that is certainly top-k if the user's utility
	// vector lies in the credible region (Lemma 5.5 over the region's
	// vertices), falling back to the top-1 at the weighted centre. It also
	// returns the region's vertices for certificate accounting.
	answer := func(cells []int, strict bool) (int, []geom.Vector, bool) {
		var verts []geom.Vector
		probe := geom.NewVector(d)
		var wsum float64
		for _, ci := range cells {
			verts = append(verts, C[ci].poly.Vertices()...)
			probe = probe.AddScaled(w[ci], centers[ci])
			wsum += w[ci]
		}
		probe = probe.Scale(1 / wsum)
		tr.observe(probe, nil)
		p, ok := lemma55(points, k, verts, probe)
		tr.stopCheck(ok)
		if ok {
			return p, verts, true
		}
		if strict {
			return 0, verts, false
		}
		return argmaxAt(points, probe), verts, true
	}

	maxQ := a.opt.MaxQuestions
	if maxQ <= 0 {
		maxQ = 16
		for m := 1; m < len(C); m *= 2 {
			maxQ += 4
		}
	}
	lastAsked := map[int]int{}

	finish := func(certified bool, reason StopReason, frac float64, verts []geom.Vector) {
		if tr != nil {
			tr.credible = frac
		}
		tr.finish(certified, reason, verts)
	}

	for q := 0; q < maxQ; q++ {
		// Stopping: Lemma 5.5 over the credible region — the posterior's
		// generalization of HD-PI's stopping condition 2.
		cells, frac := credible()
		if p, verts, ok := answer(cells, true); ok {
			finish(true, StopConverged, frac, verts)
			return p
		}
		if tr.exhausted() {
			break
		}
		tr.maybeDegrade()
		if tr != nil && tr.active {
			strat = tr.strategy
		}

		// Question selection: the hyperplane splitting the WEIGHT most
		// evenly (the weighted analogue of the even score). Partition/
		// hyperplane relationships are exact (with the bounding-ball
		// shortcut); straddling partitions count half their weight per side.
		// Rows stay askable after a cooldown — repeating an informative
		// question is exactly how a posterior shakes off answer noise.
		bestRow, bestScore := -1, -1.0
		for ri, row := range gamma {
			if tr.exhausted() {
				break
			}
			if asked, ok := lastAsked[ri]; ok && q-asked <= a.opt.Cooldown {
				continue
			}
			var above, below float64
			for ci, part := range C {
				switch part.poly.ClassifyWith(row.h, strat, nil) {
				case polytope.ClassAbove:
					above += w[ci]
				case polytope.ClassBelow:
					below += w[ci]
				case polytope.ClassIntersect:
					above += w[ci] / 2
					below += w[ci] / 2
				}
			}
			score := above
			if below < above {
				score = below
			}
			if score > bestScore {
				bestRow, bestScore = ri, score
			}
		}
		if tr.exhausted() {
			break
		}
		if bestRow < 0 || bestScore <= geom.TieEps {
			break // nothing splits the remaining mass
		}
		row := gamma[bestRow]
		lastAsked[bestRow] = q
		h := row.h
		tr.ask(row.i, row.j)
		ans := o.Prefer(points[row.i], points[row.j])
		if !ans {
			h = h.Flip()
		}
		tr.question(row.i, row.j, ans)
		// Posterior-style reweight: partitions entirely on the
		// contradicted side decay by Eta (≈ p/(1-p) for assumed error p);
		// straddling partitions split the difference. A degenerate ClassOn
		// cell lies in the hyperplane itself, so the answer carries no
		// evidence against it — it gets the same mild treatment as a
		// straddler, not the full contradiction penalty. With a truthful
		// user the true partition is never entirely contradicted, so
		// repeated questions let it out-weigh every wrong cell.
		mild := (1 + a.opt.Eta) / 2
		for ci, part := range C {
			switch part.poly.ClassifyWith(h, strat, nil) {
			case polytope.ClassBelow:
				w[ci] *= a.opt.Eta
			case polytope.ClassIntersect, polytope.ClassOn:
				w[ci] *= mild
			}
		}
	}

	cells, frac := credible()
	p, verts, _ := answer(cells, false)
	reason := tr.stopReason()
	if tr == nil || tr.exhReason == "" {
		// The algorithm's own question cap (or an uninformative Γ) ended the
		// run without posterior convergence — best effort, not a budget
		// fault.
		reason = StopQuestions
	}
	finish(false, reason, frac, verts)
	return p
}

// sortByWeightDesc sorts cell indices by their weights, descending.
func sortByWeightDesc(idx []int, w []float64) {
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
}
