package core

import "math"

// This file turns the paper's question-count guarantees into numbers the
// server can hold itself to at runtime (DESIGN.md §13): every certified
// session's question count is compared against these bounds and exported as
// the ist_questions_vs_{lower,upper}_bound gauges.

// TheoryBounds returns the paper's two-dimensional question-count bounds
// for an instance with n candidate tuples and top-k tolerance k:
//
//	lower = ⌈log₂(n/k)⌉          — Theorem 3.2's Ω(log₂(n/k)) floor: any
//	                               interactive strategy needs this many
//	                               pairwise questions in the worst case.
//	upper = ⌈log₂⌈2n/(k+1)⌉⌉     — Theorem 4.5: 2D-PI certifies within this
//	                               many questions, because the utility
//	                               space splits into at most ⌈2n/(k+1)⌉
//	                               partitions (Lemma 4.4) and the algorithm
//	                               binary-searches over them.
//
// Both floor at zero (n ≤ k means every tuple is already top-k and zero
// questions suffice). n is the instance size BEFORE k-skyband reduction —
// the adversary of Thm 3.2 chooses among all n tuples — but callers that
// only know the skyband size get a conservative (smaller) pair of bounds,
// which keeps the vs_upper gauge honest: ratios can only look worse, never
// better, than the true guarantee.
func TheoryBounds(n, k int) (lower, upper float64) {
	if n <= 0 || k <= 0 || n <= k {
		return 0, 0
	}
	lower = math.Ceil(math.Log2(float64(n) / float64(k)))
	parts := math.Ceil(2 * float64(n) / float64(k+1))
	upper = math.Ceil(math.Log2(parts))
	if lower < 0 {
		lower = 0
	}
	if upper < lower {
		// The two ceilings can cross for tiny instances (n barely above k);
		// a guarantee below the information floor is meaningless, so clamp.
		upper = lower
	}
	return lower, upper
}
