package core

import (
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/sweep"
)

// TwoDPI is the 2-dimensional algorithm of Section 4: utility-space
// partitioning by plane sweep (Algorithm 1) followed by binary search over
// the partitions through user questions (Algorithm 2). It asks
// O(log₂⌈2n/(k+1)⌉) questions, which is asymptotically optimal
// (Theorem 4.5, Corollary 4.6).
type TwoDPI struct{}

// Name implements Algorithm.
func (TwoDPI) Name() string { return "2D-PI" }

// Run implements Algorithm. It panics if the points are not 2-dimensional.
func (TwoDPI) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	parts := sweep.PartitionUtilitySpace(points, k)
	left, right := 0, len(parts)-1
	for left < right {
		x := (left + right) / 2 // median partition
		part := parts[x]
		// The boundary pair crosses exactly at part.R, with BoundaryI
		// ranking higher for u[1] < part.R (Section 4.3).
		if o.Prefer(points[part.BoundaryI], points[part.BoundaryJ]) {
			right = x
		} else {
			left = x + 1
		}
	}
	return parts[left].Point
}

// Partitions exposes the Algorithm 1 output for inspection (examples and
// the istcli tool visualize it).
func (TwoDPI) Partitions(points []geom.Vector, k int) []sweep.Partition {
	return sweep.PartitionUtilitySpace(points, k)
}
