package core

import (
	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/polytope"
	"ist/internal/prep"
	"ist/internal/sweep"
)

// TwoDPI is the 2-dimensional algorithm of Section 4: utility-space
// partitioning by plane sweep (Algorithm 1) followed by binary search over
// the partitions through user questions (Algorithm 2). It asks
// O(log₂⌈2n/(k+1)⌉) questions, which is asymptotically optimal
// (Theorem 4.5, Corollary 4.6).
type TwoDPI struct {
	// Obs receives trace events from subsequent runs; nil disables tracing.
	Obs obs.Observer
	// Cache and Fingerprint memoize the Algorithm 1 sweep partitions across
	// sessions over the same dataset (prep.Cache semantics: fingerprint 0
	// or a nil cache disables). The sweep is deterministic and emits no
	// events, so a hit is behaviour-identical to recomputing.
	Cache       *prep.Cache
	Fingerprint uint64
}

// Name implements Algorithm.
func (TwoDPI) Name() string { return "2D-PI" }

// SetObserver implements Observable.
func (t *TwoDPI) SetObserver(o obs.Observer) { t.Obs = o }

// SetPrepCache implements PrepCached.
func (t *TwoDPI) SetPrepCache(c *prep.Cache, fingerprint uint64) {
	t.Cache, t.Fingerprint = c, fingerprint
}

// Run implements Algorithm. It panics if the points are not 2-dimensional.
func (t TwoDPI) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	return t.run(points, k, o, obsTracker(t.Obs))
}

// RunBudgeted implements Budgeted. On exhaustion it returns the point of the
// median surviving partition — the binary search's current best guess.
func (t TwoDPI) RunBudgeted(points []geom.Vector, k int, o oracle.Oracle, b Budget) (idx int, cert Certificate) {
	tr := newTracker(b, polytope.StrategyNone, 1, t.Obs)
	defer tr.rescue(points, k, &idx, &cert)
	idx = t.run(points, k, o, tr)
	cert = tr.certificate(points, k)
	return idx, cert
}

func (t TwoDPI) run(points []geom.Vector, k int, o oracle.Oracle, tr *tracker) int {
	parts := t.partitions(points, k)
	left, right := 0, len(parts)-1
	for left < right {
		x := (left + right) / 2 // median partition
		if tr.exhausted() {
			tr.finish(false, tr.stopReason(), twoDPIRegion(parts, left, right))
			return parts[x].Point
		}
		part := parts[x]
		tr.observe(geom.Vector{part.R, 1 - part.R}, nil)
		before := right - left + 1
		// The boundary pair crosses exactly at part.R, with BoundaryI
		// ranking higher for u[1] < part.R (Section 4.3).
		tr.ask(part.BoundaryI, part.BoundaryJ)
		ans := o.Prefer(points[part.BoundaryI], points[part.BoundaryJ])
		if ans {
			right = x
		} else {
			left = x + 1
		}
		tr.question(part.BoundaryI, part.BoundaryJ, ans)
		tr.pruned(before - (right - left + 1))
	}
	tr.finish(true, StopConverged, twoDPIRegion(parts, left, left))
	return parts[left].Point
}

// partitions returns the sweep partitions, memoized in the prep cache when
// one is attached. The binary search only reads the slice, so sessions can
// share one cached copy. The sweep runs before the first budget check in
// both Run and RunBudgeted, so populating from either is safe — the
// computation always completes.
func (t TwoDPI) partitions(points []geom.Vector, k int) []sweep.Partition {
	if t.Cache == nil || t.Fingerprint == 0 {
		return sweep.PartitionUtilitySpace(points, k)
	}
	key := prep.Key{Fingerprint: t.Fingerprint, Kind: "sweep-2d", Param: k}
	v, err := t.Cache.Do(key, t.Obs, func(obs.Observer) (any, int64, error) {
		parts := sweep.PartitionUtilitySpace(points, k)
		// L, R float64 + Point, BoundaryI, BoundaryJ ints per partition.
		return parts, int64(len(parts))*40 + 24, nil
	})
	if err != nil {
		return sweep.PartitionUtilitySpace(points, k)
	}
	return v.([]sweep.Partition)
}

// twoDPIRegion is the utility region still in play when partitions
// left..right survive the binary search: the sweep parameterizes the 2-d
// simplex as u = (x, 1−x), so the region's two vertices sit at the range's
// outer bounds.
func twoDPIRegion(parts []sweep.Partition, left, right int) []geom.Vector {
	lo, hi := parts[left].L, parts[right].R
	return []geom.Vector{{lo, 1 - lo}, {hi, 1 - hi}}
}

// Partitions exposes the Algorithm 1 output for inspection (examples and
// the istcli tool visualize it).
func (TwoDPI) Partitions(points []geom.Vector, k int) []sweep.Partition {
	return sweep.PartitionUtilitySpace(points, k)
}
