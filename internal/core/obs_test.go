package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/skyband"
)

// recordingOracle wraps a simulated user and logs every question put to it
// (both points and the verdict) so two runs can be compared transcript by
// transcript.
type recordingOracle struct {
	inner oracle.Oracle
	log   []recordedQuestion
}

type recordedQuestion struct {
	P, Q    geom.Vector
	Answer  bool
	Ordinal int
}

func (r *recordingOracle) Prefer(p, q geom.Vector) bool {
	ans := r.inner.Prefer(p, q)
	r.log = append(r.log, recordedQuestion{
		P:       append(geom.Vector(nil), p...),
		Q:       append(geom.Vector(nil), q...),
		Answer:  ans,
		Ordinal: len(r.log),
	})
	return ans
}

func (r *recordingOracle) Questions() int { return r.inner.Questions() }

// observedCase is one instrumented algorithm variant under test. run builds
// a fresh algorithm (same seed every call), attaches the observer, and
// returns the result indices.
type observedCase struct {
	name string
	d    int
	run  func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int
}

func observedCases() []observedCase {
	return []observedCase{
		{"2dpi", 2, func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int {
			alg := &TwoDPI{}
			alg.SetObserver(o)
			return []int{alg.Run(band, k, user)}
		}},
		{"hdpi-sampling", 3, func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int {
			alg := NewHDPI(HDPIOptions{Mode: ConvexSampling, Rng: rand.New(rand.NewSource(9))})
			alg.SetObserver(o)
			return []int{alg.Run(band, k, user)}
		}},
		{"hdpi-accurate", 3, func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int {
			alg := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(9))})
			alg.SetObserver(o)
			return []int{alg.Run(band, k, user)}
		}},
		{"rh", 3, func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int {
			alg := NewRHDefault(5)
			alg.SetObserver(o)
			return []int{alg.Run(band, k, user)}
		}},
		{"robust-hdpi", 3, func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int {
			alg := NewRobustHDPI(RobustHDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(3))})
			alg.SetObserver(o)
			return []int{alg.Run(band, k, user)}
		}},
		{"rh-multi", 3, func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int {
			alg := NewRHMulti(RHOptions{Rng: rand.New(rand.NewSource(5))})
			alg.SetObserver(o)
			return alg.RunMulti(band, k, 2, user)
		}},
		{"hdpi-multi", 3, func(o obs.Observer, band []geom.Vector, k int, user oracle.Oracle) []int {
			alg := NewHDPIMulti(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(5))})
			alg.SetObserver(o)
			return alg.RunMulti(band, k, 2, user)
		}},
	}
}

// TestNilObserverTranscripts is the tentpole guarantee of the observability
// layer: attaching an observer is passive. For every algorithm variant, a
// run with a counting observer must produce the exact same question
// transcript (questions, order, answers) and the same result as a run with
// a nil observer — proving instrumentation changes no control flow and
// consumes no randomness.
func TestNilObserverTranscripts(t *testing.T) {
	k := 4
	u3 := geom.Vector{0.5, 0.3, 0.2}
	u2 := geom.Vector{0.4, 0.6}
	for _, c := range observedCases() {
		t.Run(c.name, func(t *testing.T) {
			u := u3
			if c.d == 2 {
				u = u2
			}
			rng := rand.New(rand.NewSource(42))
			ds := dataset.AntiCorrelated(rng, 120, c.d)
			band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))

			plain := &recordingOracle{inner: oracle.NewUser(u)}
			plainRes := c.run(nil, band, k, plain)

			counting := obs.NewCounting()
			observed := &recordingOracle{inner: oracle.NewUser(u)}
			observedRes := c.run(counting, band, k, observed)

			if !reflect.DeepEqual(plainRes, observedRes) {
				t.Fatalf("results diverge: nil=%v observed=%v", plainRes, observedRes)
			}
			if !reflect.DeepEqual(plain.log, observed.log) {
				t.Fatalf("transcripts diverge after %d vs %d questions", len(plain.log), len(observed.log))
			}
			if got := counting.Count(obs.KindAnswerReceived); got != int64(len(observed.log)) {
				t.Fatalf("observer saw %d answers, oracle answered %d", got, len(observed.log))
			}
			if got := counting.Count(obs.KindQuestionAsked); got != int64(len(observed.log)) {
				t.Fatalf("observer saw %d questions, oracle answered %d", got, len(observed.log))
			}
		})
	}
}

// TestObserverCountsSanity spot-checks that the per-algorithm event streams
// carry the work the algorithms actually do: RH cuts its polytope per
// answer, HD-PI prunes partitions, and accurate mode runs LPs.
func TestObserverCountsSanity(t *testing.T) {
	k := 4
	rng := rand.New(rand.NewSource(42))
	ds := dataset.AntiCorrelated(rng, 120, 3)
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	u := geom.Vector{0.5, 0.3, 0.2}

	rhC := obs.NewCounting()
	rh := NewRHDefault(5)
	rh.SetObserver(rhC)
	rh.Run(band, k, oracle.NewUser(u))
	if rhC.Count(obs.KindAnswerReceived) == 0 {
		t.Fatal("RH asked no questions")
	}
	if rhC.Count(obs.KindHalfspaceCut) == 0 {
		t.Fatal("RH cut no halfspaces")
	}
	if rhC.Count(obs.KindStopConditionCheck) == 0 {
		t.Fatal("RH checked no stop condition")
	}

	hdC := obs.NewCounting()
	hd := NewHDPI(HDPIOptions{Mode: ConvexExact, Rng: rand.New(rand.NewSource(9))})
	hd.SetObserver(hdC)
	hd.Run(band, k, oracle.NewUser(u))
	if hdC.Sum(obs.KindCandidatePruned) == 0 {
		t.Fatal("HD-PI pruned no candidates")
	}
	if hdC.Count(obs.KindLPSolve) == 0 {
		t.Fatal("accurate HD-PI ran no LPs")
	}
	if hdC.Count(obs.KindConvexPointTest) == 0 {
		t.Fatal("accurate HD-PI reported no convex-point tests")
	}
}

// tickingOracle advances a fake clock by one second per question, so tests
// can pin clock-derived certificate fields exactly.
type tickingOracle struct {
	inner oracle.Oracle
	fake  *clock.Fake
}

func (o tickingOracle) Prefer(p, q geom.Vector) bool {
	o.fake.Advance(time.Second)
	return o.inner.Prefer(p, q)
}

func (o tickingOracle) Questions() int { return o.inner.Questions() }

// TestCertificateElapsed pins the clock-measured Elapsed field on a fake
// clock: each question advances the fake by one second and nothing else
// moves it, so the certificate must report exactly the questions asked,
// in seconds.
func TestCertificateElapsed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds := dataset.AntiCorrelated(rng, 120, 3)
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, 4))
	fake := clock.NewFake(time.Unix(500, 0))
	alg := NewRHDefault(5)
	user := tickingOracle{inner: oracle.NewUser(geom.Vector{0.5, 0.3, 0.2}), fake: fake}
	_, cert := alg.RunBudgeted(band, 4, user, Budget{MaxQuestions: 2, Clock: fake})
	want := time.Duration(cert.Questions) * time.Second
	if cert.Questions == 0 || cert.Elapsed != want {
		t.Fatalf("Elapsed = %v after %d questions, want %v", cert.Elapsed, cert.Questions, want)
	}
}
