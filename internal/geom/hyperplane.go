package geom

import "math"

// Side classifies a point relative to a hyperplane.
type Side int

const (
	// Below means the point is strictly on the negative side (normal·x < -Eps).
	Below Side = iota - 1
	// On means the point lies on the hyperplane within Eps.
	On
	// Above means the point is strictly on the positive side (normal·x > Eps).
	Above
)

func (s Side) String() string {
	switch s {
	case Below:
		return "below"
	case Above:
		return "above"
	default:
		return "on"
	}
}

// Hyperplane is a hyperplane through the origin, {x : Normal·x = 0}, as used
// for the preference hyperplanes h_{i,j} of the paper (Section 5.1): for
// points p_i and p_j, h_{i,j} has normal p_i − p_j, its positive halfspace
// h⁺_{i,j} holds the utility vectors preferring p_i, and the negative
// halfspace h⁻_{i,j} those preferring p_j.
type Hyperplane struct {
	Normal Vector
}

// NewHyperplane builds the preference hyperplane h_{i,j} with normal pi − pj.
func NewHyperplane(pi, pj Vector) Hyperplane {
	return Hyperplane{Normal: pi.Sub(pj)}
}

// Degenerate reports whether the hyperplane's normal is (numerically) zero,
// which happens exactly when p_i and p_j coincide. A degenerate hyperplane
// carries no preference information: every utility vector is "on" it.
func (h Hyperplane) Degenerate() bool { return h.Normal.IsZero() }

// Value returns Normal·x, the signed (unnormalized) offset of x.
func (h Hyperplane) Value(x Vector) float64 { return h.Normal.Dot(x) }

// SideOf classifies x against the hyperplane with tolerance Eps.
func (h Hyperplane) SideOf(x Vector) Side {
	v := h.Value(x)
	switch {
	case v > Eps:
		return Above
	case v < -Eps:
		return Below
	default:
		return On
	}
}

// Distance returns the Euclidean distance from x to the hyperplane,
// |Normal·x| / ‖Normal‖. A degenerate hyperplane is at distance 0 from
// everything.
func (h Hyperplane) Distance(x Vector) float64 {
	n := h.Normal.Norm()
	if n <= Eps {
		return 0
	}
	return math.Abs(h.Value(x)) / n
}

// Flip returns the hyperplane with the opposite orientation (h_{j,i}).
func (h Hyperplane) Flip() Hyperplane { return Hyperplane{Normal: h.Normal.Scale(-1)} }

// CrossingParam returns t in [0,1] such that a + t(b−a) lies on the
// hyperplane, and whether such a crossing exists with a and b strictly on
// opposite sides.
func (h Hyperplane) CrossingParam(a, b Vector) (float64, bool) {
	va, vb := h.Value(a), h.Value(b)
	if (va > Eps && vb > Eps) || (va < -Eps && vb < -Eps) {
		return 0, false
	}
	denom := va - vb
	if math.Abs(denom) <= Eps {
		return 0, false
	}
	t := va / denom
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return t, true
}

// Crossing returns the point where segment [a,b] crosses the hyperplane, and
// whether a strict crossing exists.
func (h Hyperplane) Crossing(a, b Vector) (Vector, bool) {
	t, ok := h.CrossingParam(a, b)
	if !ok {
		return nil, false
	}
	return a.AddScaled(t, b.Sub(a)), true
}
