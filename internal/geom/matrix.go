package geom

import "fmt"

// Matrix is a small dense row-major matrix used for the rank and linear
// solves the polytope machinery needs (vertex tests, degeneracy handling).
// Dimensions in this codebase never exceed a few dozen, so the plain
// Gaussian-elimination algorithms below are both adequate and dependable.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("geom: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row vectors (which are copied). All
// rows must share a length.
func MatrixFromRows(rows []Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("geom: row %d has %d entries, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns row i as a Vector view (not a copy).
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec returns m·x.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("geom: MulVec dimension %d vs %d columns", len(x), m.Cols))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(x)
	}
	return out
}

// Rank returns the numerical rank of m under the tolerance tol (entries with
// magnitude <= tol after elimination count as zero). Pass tol <= 0 for a
// default scaled from the matrix magnitude.
func (m *Matrix) Rank(tol float64) int {
	a := m.Clone()
	if tol <= 0 {
		maxAbs := 0.0
		for _, v := range a.Data {
			if av := absFloat(v); av > maxAbs {
				maxAbs = av
			}
		}
		tol = 1e-10 * (1 + maxAbs)
	}
	rank := 0
	for col := 0; col < a.Cols && rank < a.Rows; col++ {
		// Partial pivoting within the column.
		pivot, pivotVal := -1, tol
		for r := rank; r < a.Rows; r++ {
			if av := absFloat(a.At(r, col)); av > pivotVal {
				pivot, pivotVal = r, av
			}
		}
		if pivot < 0 {
			continue
		}
		a.swapRows(rank, pivot)
		pv := a.At(rank, col)
		for r := 0; r < a.Rows; r++ {
			if r == rank {
				continue
			}
			f := a.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < a.Cols; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(rank, c))
			}
		}
		rank++
	}
	return rank
}

// SolveSquare solves m·x = b for square m by Gaussian elimination with
// partial pivoting. It reports ok=false for (numerically) singular systems.
func (m *Matrix) SolveSquare(b Vector) (Vector, bool) {
	if m.Rows != m.Cols {
		panic("geom: SolveSquare needs a square matrix")
	}
	n := m.Rows
	if len(b) != n {
		panic("geom: SolveSquare dimension mismatch")
	}
	a := m.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		pivot, pivotVal := -1, 1e-12
		for r := col; r < n; r++ {
			if av := absFloat(a.At(r, col)); av > pivotVal {
				pivot, pivotVal = r, av
			}
		}
		if pivot < 0 {
			return nil, false
		}
		a.swapRows(col, pivot)
		x[col], x[pivot] = x[pivot], x[col]
		pv := a.At(col, col)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	for i := 0; i < n; i++ {
		x[i] /= a.At(i, i)
	}
	return x, true
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RankOfRows is a convenience wrapper: the rank of the matrix whose rows are
// the given vectors.
func RankOfRows(rows []Vector) int {
	return MatrixFromRows(rows).Rank(0)
}
