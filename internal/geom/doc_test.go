package geom_test

import (
	"fmt"

	"ist/internal/geom"
)

// The preference hyperplane h_{i,j} encodes "which point does a utility
// vector prefer": its positive side prefers p_i, its negative side p_j.
func ExampleNewHyperplane() {
	car1 := geom.Vector{0.9, 0.2} // cheap, weak
	car2 := geom.Vector{0.3, 0.8} // pricey, strong
	h := geom.NewHyperplane(car1, car2)

	priceLover := geom.Vector{0.8, 0.2}
	powerLover := geom.Vector{0.2, 0.8}
	fmt.Println(h.SideOf(priceLover)) // prefers car1
	fmt.Println(h.SideOf(powerLover)) // prefers car2
	// Output:
	// above
	// below
}

// Domination underpins the k-skyband preprocessing: a dominated tuple can
// never be anyone's favourite.
func ExampleVector_Dominates() {
	better := geom.Vector{0.8, 0.9}
	worse := geom.Vector{0.5, 0.4}
	fmt.Println(better.Dominates(worse))
	fmt.Println(worse.Dominates(better))
	// Output:
	// true
	// false
}
