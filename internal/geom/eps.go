package geom

import "math"

// The tolerance family. Eps (vector.go) is the canonical predicate
// tolerance; the two below cover the cases where 1e-9 is the wrong scale.
// Every package takes its tolerances from here — the epsconst analyzer
// (internal/analysis) rejects hardcoded tolerance literals anywhere else,
// so "equal within tolerance" cannot drift apart across package boundaries.
const (
	// TieEps separates genuinely distinct values from accumulated
	// floating-point noise in tie detection (sweep-line crossings, boredom
	// ranks, zero-score guards). It is three orders of magnitude below Eps:
	// a difference under TieEps is indistinguishable from rounding error of
	// a handful of (0,1]-scale operations.
	TieEps = 1e-12

	// FeasEps is the feasibility tolerance for LP residuals. Simplex phase-1
	// sums many pivoted rows, so its residual noise is well above Eps;
	// treating |residual| <= FeasEps as zero matches the solver's attainable
	// accuracy on the problem sizes used here.
	FeasEps = 1e-7
)

// Eq reports a == b within Eps. The scalar counterpart of Vector.Equal.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// Less reports a < b by more than Eps (strictly less, beyond tolerance).
func Less(a, b float64) bool { return a < b-Eps }

// LessEq reports a <= b within Eps (less, or equal within tolerance).
func LessEq(a, b float64) bool { return a <= b+Eps }

// Sign classifies x against zero with Eps: -1, 0 or +1. The scalar
// counterpart of Hyperplane.SideOf.
func Sign(x float64) int {
	switch {
	case x > Eps:
		return 1
	case x < -Eps:
		return -1
	default:
		return 0
	}
}
