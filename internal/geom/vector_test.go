package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); !almostEq(got, 32) {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dimensions")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestAddSubScale(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, -1}
	if got := v.Add(w); !got.Equal(Vector{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !got.Equal(Vector{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.AddScaled(2, w); !got.Equal(Vector{7, 0}) {
		t.Errorf("AddScaled = %v", got)
	}
	// originals untouched
	if !v.Equal(Vector{1, 2}) || !w.Equal(Vector{3, -1}) {
		t.Error("operations mutated their inputs")
	}
}

func TestNormNormalize(t *testing.T) {
	v := Vector{3, 4}
	if !almostEq(v.Norm(), 5) {
		t.Fatalf("Norm = %v", v.Norm())
	}
	u := v.Normalize()
	if !almostEq(u.Norm(), 1) {
		t.Fatalf("Normalize norm = %v", u.Norm())
	}
	z := Vector{0, 0}
	if !z.Normalize().Equal(z) {
		t.Error("Normalize of zero changed the vector")
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 1}, Vector{0.5, 0.5}, true},
		{Vector{1, 0.5}, Vector{0.5, 1}, false},
		{Vector{1, 1}, Vector{1, 1}, false},    // equal: no strict dim
		{Vector{1, 0.5}, Vector{1, 0.4}, true}, // equal in one, better in other
		{Vector{0.4, 0.4}, Vector{0.5, 0.5}, false},
	}
	for i, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("case %d: %v dominates %v = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{{0, 0}, {2, 4}})
	if !m.Equal(Vector{1, 2}) {
		t.Fatalf("Mean = %v", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty mean")
		}
	}()
	Mean(nil)
}

// Property: dot is symmetric and bilinear against scaling.
func TestQuickDotSymmetry(t *testing.T) {
	f := func(a, b [4]float64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		v, w := Vector(a[:]), Vector(b[:])
		for _, x := range append(v.Clone(), w...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		if math.Abs(s) > 1e6 {
			return true
		}
		lhs := v.Dot(w)
		rhs := w.Dot(v)
		if math.Abs(lhs-rhs) > 1e-6*(1+math.Abs(lhs)) {
			return false
		}
		return math.Abs(v.Scale(s).Dot(w)-s*lhs) <= 1e-6*(1+math.Abs(s*lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Dist.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		for _, arr := range [][3]float64{a, b, c} {
			for _, x := range arr {
				if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
					return true
				}
			}
		}
		va, vb, vc := Vector(a[:]), Vector(b[:]), Vector(c[:])
		return va.Dist(vc) <= va.Dist(vb)+vb.Dist(vc)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: domination is irreflexive and antisymmetric.
func TestQuickDominationAntisymmetric(t *testing.T) {
	f := func(a, b [3]float64) bool {
		va, vb := Vector(a[:]), Vector(b[:])
		if va.Dominates(va) {
			return false
		}
		return !(va.Dominates(vb) && vb.Dominates(va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
