package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHyperplaneSides(t *testing.T) {
	// h_{i,j} with p_i = (1,0), p_j = (0,1): normal (1,-1).
	h := NewHyperplane(Vector{1, 0}, Vector{0, 1})
	if got := h.SideOf(Vector{0.9, 0.1}); got != Above {
		t.Errorf("u favouring p_i: side = %v, want above", got)
	}
	if got := h.SideOf(Vector{0.1, 0.9}); got != Below {
		t.Errorf("u favouring p_j: side = %v, want below", got)
	}
	if got := h.SideOf(Vector{0.5, 0.5}); got != On {
		t.Errorf("indifferent u: side = %v, want on", got)
	}
}

func TestHyperplaneFlip(t *testing.T) {
	h := NewHyperplane(Vector{1, 0}, Vector{0, 1})
	f := h.Flip()
	u := Vector{0.9, 0.1}
	if h.SideOf(u) != Above || f.SideOf(u) != Below {
		t.Fatal("Flip did not reverse orientation")
	}
}

func TestDegenerate(t *testing.T) {
	h := NewHyperplane(Vector{0.5, 0.5}, Vector{0.5, 0.5})
	if !h.Degenerate() {
		t.Fatal("identical points must give a degenerate hyperplane")
	}
	if h.SideOf(Vector{1, 2}) != On {
		t.Fatal("every point must be On a degenerate hyperplane")
	}
	if h.Distance(Vector{5, 5}) != 0 {
		t.Fatal("degenerate hyperplane distance must be 0")
	}
}

func TestDistance(t *testing.T) {
	h := Hyperplane{Normal: Vector{1, -1}}
	// Point (1,0): |1| / sqrt(2)
	if got, want := h.Distance(Vector{1, 0}), 1/math.Sqrt2; !almostEq(got, want) {
		t.Fatalf("Distance = %v, want %v", got, want)
	}
}

func TestCrossing(t *testing.T) {
	h := Hyperplane{Normal: Vector{1, -1}}
	a, b := Vector{1, 0}, Vector{0, 1}
	x, ok := h.Crossing(a, b)
	if !ok {
		t.Fatal("expected a crossing")
	}
	if !x.Equal(Vector{0.5, 0.5}) {
		t.Fatalf("Crossing = %v, want (0.5, 0.5)", x)
	}
	// Same side: no crossing.
	if _, ok := h.Crossing(Vector{1, 0}, Vector{2, 0}); ok {
		t.Fatal("same-side segment must not cross")
	}
	// Parallel segment on the plane: no strict crossing.
	if _, ok := h.Crossing(Vector{1, 1}, Vector{2, 2}); ok {
		t.Fatal("segment inside the hyperplane must not report a crossing")
	}
}

// Property: a reported crossing point is On the hyperplane and inside the
// segment's bounding box.
func TestQuickCrossingOnPlane(t *testing.T) {
	f := func(a, b [3]float64, n [3]float64) bool {
		for _, arr := range [][3]float64{a, b, n} {
			for _, x := range arr {
				if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e3 {
					return true
				}
			}
		}
		h := Hyperplane{Normal: Vector(n[:])}
		if h.Normal.Norm() < 1e-3 {
			return true
		}
		va, vb := Vector(a[:]), Vector(b[:])
		x, ok := h.Crossing(va, vb)
		if !ok {
			return true
		}
		// Crossing must be near the plane relative to the segment scale.
		tol := 1e-6 * (1 + va.Norm() + vb.Norm()) * h.Normal.Norm()
		return math.Abs(h.Value(x)) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SideOf(u) for preference hyperplane h_{i,j} agrees with comparing
// utilities u·p_i vs u·p_j.
func TestQuickPreferenceSemantics(t *testing.T) {
	f := func(pi, pj, u [4]float64) bool {
		for _, arr := range [][4]float64{pi, pj, u} {
			for _, x := range arr {
				if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e3 {
					return true
				}
			}
		}
		h := NewHyperplane(Vector(pi[:]), Vector(pj[:]))
		uv := Vector(u[:])
		fi, fj := uv.Dot(Vector(pi[:])), uv.Dot(Vector(pj[:]))
		switch h.SideOf(uv) {
		case Above:
			return fi > fj-1e-6
		case Below:
			return fj > fi-1e-6
		default:
			return math.Abs(fi-fj) <= 1e-6*(1+math.Abs(fi))
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
