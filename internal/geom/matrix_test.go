package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixRankBasics(t *testing.T) {
	cases := []struct {
		rows []Vector
		want int
	}{
		{[]Vector{{1, 0}, {0, 1}}, 2},
		{[]Vector{{1, 0}, {2, 0}}, 1},
		{[]Vector{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}, 2},
		{[]Vector{{0, 0}, {0, 0}}, 0},
		{[]Vector{{1, 1, 1}}, 1},
		{[]Vector{{1, 1}, {1, -1}, {2, 0}}, 2}, // third is the sum
	}
	for i, c := range cases {
		if got := RankOfRows(c.rows); got != c.want {
			t.Errorf("case %d: rank = %d, want %d", i, got, c.want)
		}
	}
}

func TestMatrixRankEmpty(t *testing.T) {
	if got := RankOfRows(nil); got != 0 {
		t.Fatalf("rank of empty = %d", got)
	}
}

func TestSolveSquare(t *testing.T) {
	// 2x + y = 5; x - y = 1 -> x=2, y=1.
	m := MatrixFromRows([]Vector{{2, 1}, {1, -1}})
	x, ok := m.SolveSquare(Vector{5, 1})
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	if !x.Equal(Vector{2, 1}) {
		t.Fatalf("x = %v, want (2,1)", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m := MatrixFromRows([]Vector{{1, 1}, {2, 2}})
	if _, ok := m.SolveSquare(Vector{1, 2}); ok {
		t.Fatal("singular system reported solvable")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	m := MatrixFromRows([]Vector{{0, 1}, {1, 0}})
	x, ok := m.SolveSquare(Vector{3, 7})
	if !ok || !x.Equal(Vector{7, 3}) {
		t.Fatalf("x = %v ok=%v, want (7,3)", x, ok)
	}
}

func TestMulVec(t *testing.T) {
	m := MatrixFromRows([]Vector{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec(Vector{1, 1})
	if !got.Equal(Vector{3, 7, 11}) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMatrixPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative":   func() { NewMatrix(-1, 2) },
		"raggedRows": func() { MatrixFromRows([]Vector{{1, 2}, {1}}) },
		"mulDim":     func() { NewMatrix(2, 2).MulVec(Vector{1}) },
		"notSquare":  func() { NewMatrix(2, 3).SolveSquare(Vector{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: for random solvable systems, SolveSquare solves them (residual
// small), and Rank of a product construction behaves: rank(outer products
// of r independent vectors) == r.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, ok := m.SolveSquare(b)
		if !ok {
			return true // random singularities are possible, just rare
		}
		res := m.MulVec(x).Sub(b)
		return res.Norm() <= 1e-7*(1+b.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank is invariant under row scaling and row addition.
func TestQuickRankInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(4)
		cols := 2 + rng.Intn(4)
		vs := make([]Vector, rows)
		for i := range vs {
			vs[i] = NewVector(cols)
			for j := range vs[i] {
				vs[i][j] = float64(rng.Intn(7) - 3)
			}
		}
		r1 := RankOfRows(vs)
		// Scale a row by 3 and add row 0 to the last row.
		mod := make([]Vector, rows)
		for i := range vs {
			mod[i] = vs[i].Clone()
		}
		mod[0] = mod[0].Scale(3)
		mod[rows-1] = mod[rows-1].Add(vs[0])
		if math.Abs(float64(RankOfRows(mod)-r1)) > 0 {
			return false
		}
		// Appending a linear combination must not change the rank.
		comb := vs[0].Add(vs[rows-1].Scale(2))
		return RankOfRows(append(append([]Vector{}, vs...), comb)) == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
