// Package geom provides the d-dimensional vector and hyperplane primitives
// used throughout the IST reproduction.
//
// Points, utility vectors and hyperplane normals are all plain []float64
// wrapped as Vector. All geometric predicates share a single tolerance Eps so
// that "on the hyperplane", "strictly above" and "strictly below" partition
// space consistently across packages.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance for geometric predicates. A value v with |v| <= Eps is
// treated as zero (on a hyperplane, equal coordinates, ...).
const Eps = 1e-9

// Vector is a point or direction in R^d.
type Vector []float64

// NewVector returns a zero vector of dimension d.
func NewVector(d int) Vector { return make(Vector, d) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Dot returns the inner product v·w. It panics if dimensions differ, because
// mixing dimensionalities is always a programming error in this codebase.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: dot of mismatched dimensions %d and %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] += w[i]
	}
	return c
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] -= w[i]
	}
	return c
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	c := v.Clone()
	for i := range c {
		c[i] *= a
	}
	return c
}

// AddScaled returns v + a*w as a new vector.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] += a * w[i]
	}
	return c
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize returns v scaled to unit Euclidean norm. The zero vector is
// returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n <= Eps {
		return v.Clone()
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 { return v.Sub(w).Norm() }

// Sum returns the sum of the components of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Equal reports whether v and w agree in every coordinate within Eps.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-w[i]) > Eps {
			return false
		}
	}
	return true
}

// IsZero reports whether every coordinate of v is within Eps of zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if math.Abs(x) > Eps {
			return false
		}
	}
	return true
}

// Dominates reports whether v dominates w in the skyline sense: v is at least
// as large as w in every coordinate and strictly larger in at least one.
// Larger values are preferred in every dimension (Section 3 of the paper).
func (v Vector) Dominates(w Vector) bool {
	strict := false
	for i, x := range v {
		if x < w[i]-Eps {
			return false
		}
		if x > w[i]+Eps {
			strict = true
		}
	}
	return strict
}

// Mean returns the arithmetic mean of the given vectors. It panics on an
// empty input because a mean of nothing has no dimension.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("geom: mean of no vectors")
	}
	m := NewVector(len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			m[i] += x
		}
	}
	return m.Scale(1 / float64(len(vs)))
}

// String formats v with enough precision for debugging.
func (v Vector) String() string {
	s := "("
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.6g", x)
	}
	return s + ")"
}
