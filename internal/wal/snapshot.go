package wal

import (
	"fmt"
	"os"
	"strings"
)

// Snapshot atomically supersedes everything appended so far with state.
// The sequence is crash-safe at every step:
//
//  1. appends move to a fresh segment, so the snapshot's coverage boundary
//     is a whole number of sealed segments;
//  2. the state is written (CRC-framed) and fsynced to a .tmp file;
//  3. the .tmp is renamed to snap-<seq>.snap and the directory fsynced —
//     this rename is the durability point;
//  4. only then are the covered segments and the superseded snapshot
//     deleted (compaction).
//
// A crash before step 3 completes leaves the previous snapshot and every
// segment intact (the .tmp is discarded on the next Open); a crash during
// step 4 leaves stale files that the next Open deletes. Old segments are
// therefore never deleted before a durable snapshot rename covers them.
//
// Step 2 — the bulk disk write — runs with l.mu RELEASED: after step 1,
// concurrent appends land in the fresh segment, which this snapshot never
// covers, so stalling them for the full fsync of the state would buy
// nothing. (The lock-discipline analyzer, locksafe, flagged exactly this
// hold.) Concurrent Snapshot callers are serialized by l.snapMu — two
// writers racing on the same temporary path would interleave — but that
// queue never blocks Append.
func (l *Log) Snapshot(state []byte) error {
	if len(state) > MaxRecord {
		return fmt.Errorf("wal: snapshot of %d bytes exceeds MaxRecord", len(state))
	}
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Step 1: seal the current segment unless it is still empty (then it
	// simply stays the append target and the snapshot covers everything
	// before it).
	if l.segSize > 0 {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	upto := l.segSeq - 1
	fs := l.opt.FS
	l.mu.Unlock()

	// Step 2: write the framed state to a temporary, fsynced fully before
	// it can be renamed into visibility. Appends proceed meanwhile.
	tmp := l.path(fmt.Sprintf("snap-%020d.tmp", upto))
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	//lint:ignore locksafe snapMu serializes snapshot writers only; appends take l.mu, which is released here
	if _, err := f.Write(frame(state)); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	//lint:ignore locksafe snapMu serializes snapshot writers only; appends take l.mu, which is released here
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		_ = fs.Remove(tmp)
		return ErrClosed
	}
	if upto < l.snapSeq {
		// Defensive: a newer durable snapshot appeared while the lock was
		// down (cannot happen while snapMu serializes writers). Renaming
		// the stale temporary would regress coverage; discard it. upto ==
		// l.snapSeq is a legitimate same-coverage refresh and proceeds.
		_ = fs.Remove(tmp)
		return nil
	}

	// Step 3: the durability point.
	if err := fs.Rename(tmp, l.path(snapName(upto))); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: snapshot sync dir: %w", err)
	}
	l.snapSeq = upto
	l.opt.Metrics.incSnapshots()
	l.opt.Metrics.setSnapshotSeq(upto)

	// Step 4: compaction, best-effort — failures cost disk space, never
	// correctness, and the next Open retries.
	l.compactLocked()
	return nil
}

// compactLocked deletes segments covered by the durable snapshot and
// snapshots older than it. Callers hold l.mu.
func (l *Log) compactLocked() {
	names, err := l.opt.FS.ReadDir(l.dir)
	if err != nil {
		return
	}
	deleted := 0
	for _, name := range names {
		if seq, ok := parseName(name, "seg-", ".wal"); ok && seq <= l.snapSeq {
			if l.opt.FS.Remove(l.path(name)) == nil {
				deleted++
			}
		}
		if seq, ok := parseName(name, "snap-", ".snap"); ok && seq < l.snapSeq {
			_ = l.opt.FS.Remove(l.path(name))
		}
	}
	// Persist the deletions; if this fails they may resurrect on crash,
	// which recovery handles (covered segments are deleted again).
	_ = l.opt.FS.SyncDir(l.dir)
	if deleted > 0 {
		l.liveSegs -= deleted
		l.opt.Metrics.setSegments(l.liveSegs)
		l.opt.Metrics.incCompactions()
	}
}

// parseName extracts the 20-digit sequence from "<prefix><seq><suffix>"
// names, rejecting anything else.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != 20 {
		return 0, false
	}
	var seq uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}
