package wal_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"ist/internal/faultinject"
	"ist/internal/wal"
)

// TestSnapshotCompactsSegments: a snapshot supersedes the appended records
// and compaction leaves only the fresh append segment plus the snapshot.
func TestSnapshotCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{SegmentBytes: 30})
	appendAll(t, l, "rec-0", "rec-1", "rec-2", "rec-3", "rec-4") // spans 3 segments
	if l.Segments() != 3 {
		t.Fatalf("Segments = %d before snapshot, want 3", l.Segments())
	}
	if err := l.Snapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Errorf("Segments = %d after compaction, want 1", l.Segments())
	}
	if l.SnapshotSeq() != 3 {
		t.Errorf("SnapshotSeq = %d, want 3", l.SnapshotSeq())
	}
	appendAll(t, l, "rec-5")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Errorf("dir holds %v, want exactly one segment and one snapshot", names)
	}

	_, rec := mustOpen(t, dir, wal.Options{SegmentBytes: 30})
	if string(rec.Snapshot) != "state" {
		t.Errorf("Snapshot = %q, want %q", rec.Snapshot, "state")
	}
	wantRecords(t, rec, "rec-5")
}

// TestSnapshotCrashAtEveryOp is the wal-level crash-point sweep: a workload
// that rotates segments and snapshots mid-stream is crashed at every single
// filesystem operation, restarted, and recovered. The storage anytime
// invariant must hold at every site: the recovered logical sequence is a
// prefix of the committed one, at least as long as what was acknowledged
// (the log runs SyncAlways), and an acknowledged snapshot is never lost.
func TestSnapshotCrashAtEveryOp(t *testing.T) {
	const snapAfter = 6 // records covered by the snapshot
	const totalRecs = 8
	payload := func(i int) string { return fmt.Sprintf("rec-%d", i) }

	// run drives the workload over fs, tolerating failures once the
	// scheduled crash fires, and reports what was acknowledged.
	run := func(fs *faultinject.FS) (acked int, snapped bool) {
		l, _, err := wal.Open("d", wal.Options{FS: fs, SegmentBytes: 32})
		if err != nil {
			return 0, false
		}
		for i := 0; i < totalRecs; i++ {
			if i == snapAfter {
				if l.Snapshot([]byte("covers-6")) == nil {
					snapped = true
				}
			}
			if l.Append([]byte(payload(i))) == nil {
				acked++
			}
		}
		_ = l.Close()
		return acked, snapped
	}

	probe := faultinject.NewFS(faultinject.FSPlan{})
	run(probe)
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("workload too small to be interesting: %d ops", total)
	}

	for op := 1; op <= total; op++ {
		fs := faultinject.NewFS(faultinject.FSPlan{CrashAtOp: op})
		acked, snapped := run(fs)
		fs.CrashAndRestart()

		l, rec, err := wal.Open("d", wal.Options{FS: fs, SegmentBytes: 32})
		if err != nil {
			t.Fatalf("op %d: reopen after crash: %v", op, err)
		}
		// Rebuild the logical record sequence the recovered log represents.
		var got []string
		if rec.Snapshot != nil {
			if string(rec.Snapshot) != "covers-6" {
				t.Fatalf("op %d: snapshot payload %q", op, rec.Snapshot)
			}
			for i := 0; i < snapAfter; i++ {
				got = append(got, payload(i))
			}
		}
		for _, r := range rec.Records {
			got = append(got, string(r))
		}
		for i, g := range got {
			if g != payload(i) {
				t.Fatalf("op %d: recovered sequence diverges at %d: %q (full: %q)", op, i, g, got)
			}
		}
		if len(got) < acked {
			t.Fatalf("op %d: lost acknowledged records: recovered %d, acked %d", op, len(got), acked)
		}
		if snapped && rec.Snapshot == nil {
			t.Fatalf("op %d: acknowledged snapshot vanished", op)
		}
		// The recovered log must accept new records.
		if err := l.Append([]byte("post")); err != nil {
			t.Fatalf("op %d: append after recovery: %v", op, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("op %d: close after recovery: %v", op, err)
		}
	}
}

// TestSegmentsNeverDeletedBeforeDurableSnapshot pins the compaction safety
// rule directly: at no crash site may the recovered state have lost a
// record to compaction — i.e. a segment may disappear only once a durable
// snapshot covers it. (The invariant is implied by the sweep above; this
// test fails with a pointed message if the ordering ever regresses.)
func TestSegmentsNeverDeletedBeforeDurableSnapshot(t *testing.T) {
	probe := faultinject.NewFS(faultinject.FSPlan{})
	work := func(fs *faultinject.FS) (acked int) {
		l, _, err := wal.Open("d", wal.Options{FS: fs, SegmentBytes: 20})
		if err != nil {
			return 0
		}
		for i := 0; i < 4; i++ {
			if l.Append([]byte(fmt.Sprintf("rec-%d", i))) == nil {
				acked++
			}
		}
		_ = l.Snapshot([]byte("all-4"))
		_ = l.Close()
		return acked
	}
	work(probe)
	for op := 1; op <= probe.Ops(); op++ {
		fs := faultinject.NewFS(faultinject.FSPlan{CrashAtOp: op})
		acked := work(fs)
		fs.CrashAndRestart()
		_, rec, err := wal.Open("d", wal.Options{FS: fs, SegmentBytes: 20})
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if rec.Snapshot == nil && len(rec.Records) < acked {
			// No snapshot survived, so every acknowledged record must have:
			// compaction may only delete segments a durable snapshot covers.
			var got []string
			for _, r := range rec.Records {
				got = append(got, string(r))
			}
			t.Fatalf("op %d: %d acked records but only [%s] recovered without snapshot coverage",
				op, acked, strings.Join(got, ","))
		}
	}
}
