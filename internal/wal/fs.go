package wal

import (
	"os"
	"path/filepath"
	"sort"
)

// FS is the slice of the filesystem the log needs. It exists so the
// fault-injection layer (internal/faultinject) can substitute a
// crash-simulating filesystem: every durability claim the log makes is
// tested by crashing a simulated FS at every single operation and checking
// what survives. Production code uses OS.
//
// Durability contract the log relies on (and the simulated FS models):
// bytes written to a File are durable only after File.Sync returns; a
// created or renamed directory entry is durable only after SyncDir on its
// parent returns. Un-synced state may vanish on a crash, but only as a
// suffix: a file never loses synced bytes, and writes persist in order.
type FS interface {
	// OpenFile opens a file for writing with os.OpenFile semantics (the log
	// uses O_CREATE|O_WRONLY with O_APPEND for segments and O_TRUNC for
	// snapshot temporaries).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the names (not paths) of the directory's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to size bytes (recovery removes torn tails).
	Truncate(name string, size int64) error
	// MkdirAll creates a directory (and parents) if absent.
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making its entries (creates, renames,
	// removes) durable.
	SyncDir(dir string) error
}

// File is the writable handle the log appends through.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
