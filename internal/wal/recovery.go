package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

// Recovery is what Open salvaged from the directory. The log never aborts
// on damage: a torn tail is truncated, a corrupt record is skipped and
// counted, an unresyncable segment tail is quarantined to a side file —
// recovery always yields a usable log plus an honest damage report.
type Recovery struct {
	// Snapshot is the payload of the latest durable snapshot (nil if none).
	Snapshot []byte
	// SnapshotSeq is the segment sequence that snapshot covers (0 if none).
	SnapshotSeq uint64
	// Records are the records appended after the snapshot, in order.
	Records [][]byte
	// CorruptRecords counts complete-but-checksum-bad records skipped.
	CorruptRecords int
	// QuarantinedSegments counts segments whose unreadable or unresyncable
	// tails were moved to .quar side files.
	QuarantinedSegments int
	// TruncatedTail reports that the final segment ended in a torn write
	// (the signature of a mid-append crash) and was truncated to the last
	// complete record.
	TruncatedTail bool
	// DiscardedSnapshots counts snapshot files that failed their checksum
	// and were passed over for an older one.
	DiscardedSnapshots int
}

// Damaged reports whether recovery found anything other than a clean log
// or a routine torn tail — the cases worth a log line and a counter.
func (r *Recovery) Damaged() bool {
	return r.CorruptRecords > 0 || r.QuarantinedSegments > 0 || r.DiscardedSnapshots > 0
}

// recover scans the directory, selects the newest valid snapshot, replays
// the segments above it, repairs damage, and leaves the log positioned for
// appending. Called by Open with no lock held (the log is not yet shared).
func (l *Log) recover() (*Recovery, error) {
	names, err := l.opt.FS.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	rec := &Recovery{}
	var segs, snaps []uint64
	maxSeen := uint64(0) // highest segment seq ever observed, kept or not
	for _, name := range names {
		if seq, ok := parseName(name, "seg-", ".wal"); ok {
			segs = append(segs, seq)
			if seq > maxSeen {
				maxSeen = seq
			}
		} else if seq, ok := parseName(name, "snap-", ".snap"); ok {
			snaps = append(snaps, seq)
		} else if strings.HasSuffix(name, ".tmp") {
			// A snapshot that never reached its durable rename; a crash
			// artifact with no standing.
			_ = l.opt.FS.Remove(l.path(name))
		}
	}

	// Newest checksum-valid snapshot wins; a corrupt one is set aside and
	// the next older tried, so media damage degrades coverage instead of
	// aborting the boot.
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, ok := l.readSnapshot(snaps[i])
		if !ok {
			rec.DiscardedSnapshots++
			l.quarantineFile(snapName(snaps[i]))
			continue
		}
		rec.Snapshot = payload
		l.snapSeq = snaps[i]
		break
	}
	rec.SnapshotSeq = l.snapSeq

	// Replay segments above the snapshot; delete the ones at or below it
	// (finishing any compaction a crash interrupted), and superseded
	// snapshots likewise.
	var lastKept uint64
	lastSize := int64(-1)
	for _, seq := range segs {
		if seq <= l.snapSeq {
			_ = l.opt.FS.Remove(l.path(segName(seq)))
			continue
		}
		final := seq == maxSeen
		size, ok := l.replaySegment(seq, final, rec)
		if !ok {
			continue // fully unreadable, renamed away
		}
		l.liveSegs++
		lastKept, lastSize = seq, size
	}
	for _, seq := range snaps {
		if seq < l.snapSeq {
			_ = l.opt.FS.Remove(l.path(snapName(seq)))
		}
	}

	// Position appends: continue the last live segment, or start fresh
	// past every sequence number ever used.
	if lastSize >= 0 {
		return rec, l.openSegment(lastKept, lastSize)
	}
	next := maxSeen + 1
	if l.snapSeq >= next {
		next = l.snapSeq + 1
	}
	return rec, l.openSegment(next, 0)
}

// readSnapshot loads and checksum-verifies one snapshot file, returning
// its payload. A snapshot is exactly one record frame; anything else fails
// verification.
func (l *Log) readSnapshot(seq uint64) ([]byte, bool) {
	data, err := l.opt.FS.ReadFile(l.path(snapName(seq)))
	if err != nil || len(data) < headerSize {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > MaxRecord || int(headerSize+n) != len(data) {
		return nil, false
	}
	payload := data[headerSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, false
	}
	return payload, true
}

// replaySegment scans one segment into rec and repairs its damage. It
// returns the segment's usable size and false only when the file could not
// be read at all (it is then renamed to a .quar side file).
func (l *Log) replaySegment(seq uint64, final bool, rec *Recovery) (int64, bool) {
	name := segName(seq)
	data, err := l.opt.FS.ReadFile(l.path(name))
	if err != nil {
		l.quarantineFile(name)
		rec.QuarantinedSegments++
		return 0, false
	}
	records, good, corrupt, torn, damaged := scanRecords(data, final)
	rec.Records = append(rec.Records, records...)
	rec.CorruptRecords += corrupt
	switch {
	case damaged:
		// An unresyncable tail mid-log: preserve the bytes for forensics,
		// then cut the segment back to its good prefix so future replays
		// (and appends, if this is the final segment) run on clean frames.
		l.quarantineTail(name, data[good:])
		_ = l.opt.FS.Truncate(l.path(name), good)
		rec.QuarantinedSegments++
	case torn:
		// The expected signature of a crash mid-append: anything past the
		// last complete record was never acknowledged under SyncAlways.
		_ = l.opt.FS.Truncate(l.path(name), good)
		rec.TruncatedTail = true
	}
	return good, true
}

// quarantineTail saves damaged bytes to <name>.quar, best-effort.
func (l *Log) quarantineTail(name string, tail []byte) {
	f, err := l.opt.FS.OpenFile(l.path(name+".quar"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	_, _ = f.Write(tail)
	_ = f.Close()
}

// quarantineFile renames an unreadable file to <name>.quar, best-effort.
func (l *Log) quarantineFile(name string) {
	_ = l.opt.FS.Rename(l.path(name), l.path(name+".quar"))
}

// scanRecords walks one segment's bytes. It returns the decoded records,
// the length of the scannable prefix, the count of complete-but-corrupt
// records skipped inside it, and how the scan ended: torn (incomplete
// final frame — truncate silently) or damaged (a length field that cannot
// be trusted mid-log — quarantine the tail). In the final segment an
// untrustworthy length is classified as torn, because a crashed append is
// overwhelmingly the likelier cause there.
func scanRecords(data []byte, final bool) (records [][]byte, good int64, corrupt int, torn, damaged bool) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < headerSize {
			torn, damaged = final, !final
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n > MaxRecord || rest < headerSize+n {
			torn, damaged = final, !final
			break
		}
		payload := data[off+headerSize : off+headerSize+n]
		if crc32.Checksum(payload, castagnoli) == binary.LittleEndian.Uint32(data[off+4:off+8]) {
			records = append(records, payload)
		} else {
			corrupt++
		}
		off += headerSize + n
	}
	return records, int64(off), corrupt, torn, damaged
}
