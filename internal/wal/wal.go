// Package wal is a dependency-free write-ahead log: length-prefixed,
// CRC32C-checksummed records appended to size-rotated segment files, with a
// configurable fsync policy, atomic snapshot-via-rename plus segment
// compaction, and recovery that truncates a torn tail, skips-and-counts
// corrupt records, and quarantines damaged segments instead of aborting.
//
// The server's session store (internal/server.WALStore) rides on it, but
// the log is payload-agnostic: callers append opaque byte records and
// periodically hand it an opaque state snapshot that supersedes everything
// appended so far. The anytime invariant for storage — after any crash,
// recovered state is a consistent prefix of the committed record sequence,
// and with SyncAlways no acknowledged record is ever lost — is enforced by
// the crash-point harness in internal/faultinject, which crashes a
// simulated filesystem at every single write operation.
//
// On-disk layout (all files inside one directory):
//
//	seg-<seq 20 digits>.wal    record segments, replayed in seq order
//	snap-<seq>.snap            state snapshot covering segments <= seq
//	snap-<seq>.tmp             snapshot being written (discarded on open)
//	*.quar                     quarantined damaged segments (kept for forensics)
//
// Record frame: 4-byte little-endian payload length, 4-byte CRC32C
// (Castagnoli) of the payload, then the payload.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"ist/internal/clock"
	"ist/internal/obs"
)

// SyncPolicy says when appends reach the platter.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// durable. The zero value, because it is the only safe default.
	SyncAlways SyncPolicy = iota
	// SyncInterval batches fsyncs: an append syncs only when SyncEvery has
	// elapsed on the injected clock since the last sync. A crash loses at
	// most one interval of acknowledged records.
	SyncInterval
	// SyncNever leaves durability to the OS page cache.
	SyncNever
)

// String names the policy the way the -fsync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -fsync flag values "always", "interval" and
// "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options tune a Log. The zero value is usable: always-fsync, 1 MiB
// segments, real clock, real filesystem, no metrics.
type Options struct {
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the batching interval for SyncInterval (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 1 MiB).
	SegmentBytes int64
	// Clock drives interval batching and fsync-latency metrics (default
	// the real clock). Injected so tests control time, per the repo's
	// wallclock rule.
	Clock clock.Clock
	// FS is the filesystem (default the real one). The fault-injection
	// harness substitutes a crash-simulating FS.
	FS FS
	// Metrics, when set, records durability metrics (fsync latency,
	// segment/snapshot gauges, corruption and compaction counters).
	Metrics *Metrics
}

const (
	headerSize         = 8
	defaultSegmentSize = 1 << 20
	defaultSyncEvery   = 100 * time.Millisecond
	// MaxRecord bounds a single record; a length prefix beyond it is
	// treated as corruption, not an allocation request.
	MaxRecord = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is an append-only record log over segment files. Safe for concurrent
// use.
type Log struct {
	dir string
	opt Options

	// snapMu serializes Snapshot callers. It is held across the snapshot's
	// temporary-file write so two snapshots never interleave on the same
	// path, and it is always acquired BEFORE mu (never the other way), so
	// appends — which take only mu — proceed during the bulk state write.
	snapMu sync.Mutex

	mu       sync.Mutex
	seg      File   // current segment handle (append mode)
	segName  string // current segment file name (not path)
	segSeq   uint64
	segSize  int64
	liveSegs int
	snapSeq  uint64 // seq covered by the latest durable snapshot (0 = none)
	lastSync time.Time
	dirty    bool
	closed   bool

	// fsync accounting for AppendSpan: how many real fsyncs have completed
	// and how long the latest one took, so a traced append can reconstruct
	// the "wal-fsync" child span it caused without threading a span down
	// into syncLocked.
	syncCount   uint64
	lastSyncDur time.Duration
}

// Open opens (creating if needed) the log in dir, runs recovery, and
// returns the log positioned for appending plus everything recovery
// salvaged: the latest durable snapshot (if any), the records appended
// after it, and counts of what was truncated, skipped or quarantined.
func Open(dir string, opt Options) (*Log, *Recovery, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentSize
	}
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = defaultSyncEvery
	}
	if opt.Clock == nil {
		opt.Clock = clock.Real
	}
	if opt.FS == nil {
		opt.FS = OS
	}
	l := &Log{dir: dir, opt: opt}
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	l.lastSync = opt.Clock.Now()
	l.opt.Metrics.setSegments(l.liveSegs)
	l.opt.Metrics.setSnapshotSeq(l.snapSeq)
	l.opt.Metrics.addCorrupt(rec.CorruptRecords)
	l.opt.Metrics.addQuarantined(rec.QuarantinedSegments)
	return l, rec, nil
}

func (l *Log) path(name string) string { return filepath.Join(l.dir, name) }

func segName(seq uint64) string  { return fmt.Sprintf("seg-%020d.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%020d.snap", seq) }

// frame wraps a payload in the record frame (length, CRC32C, payload).
func frame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// openSegment opens segment seq for appending and makes its directory
// entry durable (a segment that vanishes on crash would take every record
// in it along).
func (l *Log) openSegment(seq uint64, size int64) error {
	name := segName(seq)
	f, err := l.opt.FS.OpenFile(l.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	if size == 0 {
		// Newly created: persist the entry before any record lands in it.
		if err := l.opt.FS.SyncDir(l.dir); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: sync dir: %w", err)
		}
		l.liveSegs++
		l.opt.Metrics.setSegments(l.liveSegs)
	}
	l.seg, l.segName, l.segSeq, l.segSize = f, name, seq, size
	return nil
}

// Append writes one record and applies the fsync policy. When Append
// returns nil under SyncAlways, the record is durable.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	buf := frame(payload)
	if l.segSize > 0 && l.segSize+int64(len(buf)) > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	//lint:ignore locksafe l.mu is the append serialization point: interleaved frames would corrupt the segment
	if _, err := l.seg.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += int64(len(buf))
	l.dirty = true
	l.opt.Metrics.incAppends()
	return l.maybeSyncLocked()
}

// rotateLocked seals the current segment (flushing it) and starts the next
// one. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return l.openSegment(l.segSeq+1, 0)
}

// maybeSyncLocked applies the fsync policy after an append.
func (l *Log) maybeSyncLocked() error {
	switch l.opt.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if clock.Since(l.opt.Clock, l.lastSync) >= l.opt.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

// syncLocked fsyncs the current segment (and times it). Callers hold l.mu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		l.lastSync = l.opt.Clock.Now()
		return nil
	}
	start := l.opt.Clock.Now()
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	dur := clock.Since(l.opt.Clock, start)
	l.opt.Metrics.observeFsync(dur.Seconds())
	l.lastSync = l.opt.Clock.Now()
	l.dirty = false
	l.syncCount++
	l.lastSyncDur = dur
	return nil
}

// AppendSpan is Append wrapped in tracing (DESIGN.md §13): the write is
// recorded as a "wal-append" child of parent, and if the append triggered a
// real fsync (policy-dependent) that fsync appears as a backdated
// "wal-fsync" child covering its measured duration. A nil parent is the
// plain Append fast path — no span is created and no clock is read beyond
// what Append itself does.
func (l *Log) AppendSpan(payload []byte, parent *obs.Span) error {
	if parent == nil {
		return l.Append(payload)
	}
	sp := parent.StartChild("wal-append")
	sp.SetAttr("bytes", strconv.Itoa(len(payload)))
	before, _ := l.fsyncStats()
	err := l.Append(payload)
	if after, dur := l.fsyncStats(); after > before {
		now := l.opt.Clock.Now()
		fs := sp.StartChild("wal-fsync", obs.StartAt(now.Add(-dur)))
		fs.EndAt(now)
	}
	sp.SetStatus(err)
	sp.End()
	return err
}

// fsyncStats snapshots the fsync counter and latest duration.
func (l *Log) fsyncStats() (uint64, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncCount, l.lastSyncDur
}

// SegmentSeq reports the sequence number of the segment currently being
// appended to — the "how far has the WAL advanced" figure /healthz exposes.
func (l *Log) SegmentSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segSeq
}

// Sync forces pending appends to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// SnapshotSeq reports the segment sequence covered by the latest durable
// snapshot (0 when none exists).
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq
}

// Segments reports how many live (non-quarantined, non-compacted) segment
// files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.liveSegs
}

// Close flushes and closes the log. Records appended under SyncNever are
// flushed best-effort — a graceful shutdown loses nothing.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.seg.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	return err
}
