package wal_test

import (
	"os"
	"testing"
	"time"

	"ist/internal/wal"
)

// gateFS wraps an FS and blocks writes to .tmp snapshot files until the
// test releases them, simulating a slow snapshot disk write.
type gateFS struct {
	wal.FS
	entered chan struct{} // closed-ish: one token per gated write entry
	release chan struct{}
}

func (g *gateFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f, err := g.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if len(name) > 4 && name[len(name)-4:] == ".tmp" {
		return &gateFile{File: f, fs: g}, nil
	}
	return f, nil
}

type gateFile struct {
	wal.File
	fs *gateFS
}

func (f *gateFile) Write(p []byte) (int, error) {
	f.fs.entered <- struct{}{}
	<-f.fs.release
	return f.File.Write(p)
}

// TestAppendProceedsDuringSnapshotWrite is the regression test for the
// locksafe finding that Snapshot held l.mu across the bulk state write:
// with the snapshot's temporary-file write stalled on "disk", an Append
// must still complete — it goes to the fresh segment the snapshot does not
// cover — instead of queueing behind the fsync.
func TestAppendProceedsDuringSnapshotWrite(t *testing.T) {
	dir := t.TempDir()
	g := &gateFS{FS: wal.OS, entered: make(chan struct{}, 1), release: make(chan struct{})}
	l, _, err := wal.Open(dir, wal.Options{FS: g})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}

	snapDone := make(chan error, 1)
	go func() { snapDone <- l.Snapshot([]byte("state")) }()

	// Wait until the snapshot is inside its stalled temporary-file write —
	// the window in which the old code still held l.mu.
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot never reached the state write")
	}

	appendDone := make(chan error, 1)
	go func() { appendDone <- l.Append([]byte("during")) }()
	select {
	case err := <-appendDone:
		if err != nil {
			t.Fatalf("Append during snapshot write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked behind the snapshot's state write")
	}

	close(g.release)
	if err := <-snapDone; err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// The record appended mid-snapshot survives recovery alongside the
	// snapshot: it lives in the fresh segment the snapshot does not cover.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if string(rec.Snapshot) != "state" {
		t.Errorf("recovered snapshot = %q, want %q", rec.Snapshot, "state")
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "during" {
		got := make([]string, len(rec.Records))
		for i, r := range rec.Records {
			got[i] = string(r)
		}
		t.Errorf("recovered records = %q, want [during]", got)
	}
}
