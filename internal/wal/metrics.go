package wal

import "ist/internal/obs"

// Standard durability metric names (DESIGN.md §10). Registered by
// NewMetrics so /metrics always exposes the full set, zeros included.
const (
	MetricFsyncSeconds   = "ist_wal_fsync_seconds"
	MetricAppends        = "ist_wal_appends_total"
	MetricSegments       = "ist_wal_segments"
	MetricSnapshotSeq    = "ist_wal_snapshot_seq"
	MetricSnapshots      = "ist_wal_snapshots_total"
	MetricCompactions    = "ist_wal_compactions_total"
	MetricCorruptRecords = "ist_wal_corrupt_records_total"
	MetricQuarantined    = "ist_wal_quarantined_segments_total"
)

// Metrics is the durability instrument cluster: istserve registers one on
// its shared registry and hands it to the store, so fsync latency,
// segment/snapshot state and corruption counts surface on /metrics next to
// the session metrics. All methods are nil-receiver safe — an
// unistrumented log pays one branch per event.
type Metrics struct {
	fsyncSeconds *obs.Histogram
	appends      *obs.Counter
	segments     *obs.Gauge
	snapshotSeq  *obs.Gauge
	snapshots    *obs.Counter
	compactions  *obs.Counter
	corrupt      *obs.Counter
	quarantined  *obs.Counter
}

// NewMetrics registers the WAL metrics on reg and returns the cluster.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		fsyncSeconds: reg.Histogram(MetricFsyncSeconds, "WAL fsync latency in seconds.", obs.FsyncBuckets),
		appends:      reg.Counter(MetricAppends, "Records appended to the WAL."),
		segments:     reg.Gauge(MetricSegments, "Live (non-compacted) WAL segment files."),
		snapshotSeq:  reg.Gauge(MetricSnapshotSeq, "Segment sequence covered by the latest durable snapshot."),
		snapshots:    reg.Counter(MetricSnapshots, "Durable snapshots taken."),
		compactions:  reg.Counter(MetricCompactions, "Segment compactions completed after a snapshot."),
		corrupt:      reg.Counter(MetricCorruptRecords, "Corrupt WAL records skipped during recovery."),
		quarantined:  reg.Counter(MetricQuarantined, "Damaged WAL segments quarantined during recovery."),
	}
}

func (m *Metrics) observeFsync(seconds float64) {
	if m != nil {
		m.fsyncSeconds.Observe(seconds)
	}
}

func (m *Metrics) incAppends() {
	if m != nil {
		m.appends.Inc()
	}
}

func (m *Metrics) setSegments(n int) {
	if m != nil {
		m.segments.Set(float64(n))
	}
}

func (m *Metrics) setSnapshotSeq(seq uint64) {
	if m != nil {
		m.snapshotSeq.Set(float64(seq))
	}
}

func (m *Metrics) incSnapshots() {
	if m != nil {
		m.snapshots.Inc()
	}
}

func (m *Metrics) incCompactions() {
	if m != nil {
		m.compactions.Inc()
	}
}

func (m *Metrics) addCorrupt(n int) {
	if m != nil && n > 0 {
		m.corrupt.Add(int64(n))
	}
}

func (m *Metrics) addQuarantined(n int) {
	if m != nil && n > 0 {
		m.quarantined.Add(int64(n))
	}
}
