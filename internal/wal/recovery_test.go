package wal_test

import (
	"os"
	"path/filepath"
	"testing"

	"ist/internal/wal"
)

const (
	seg1  = "seg-00000000000000000001.wal"
	seg2  = "seg-00000000000000000002.wal"
	snap1 = "snap-00000000000000000001.snap"
	snap2 = "snap-00000000000000000002.snap"
)

// corruptAt flips one byte of a file in place.
func corruptAt(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailTruncated: garbage after the last complete record of the
// final segment is the signature of a mid-append crash — silently cut,
// not damage.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{})
	appendAll(t, l, "aa", "bb") // two 10-byte frames
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, seg1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, wal.Options{})
	wantRecords(t, rec, "aa", "bb")
	if !rec.TruncatedTail {
		t.Error("torn tail not reported")
	}
	if rec.Damaged() {
		t.Errorf("a torn tail is routine, not damage: %+v", rec)
	}
	if fi, err := os.Stat(filepath.Join(dir, seg1)); err != nil || fi.Size() != 20 {
		t.Errorf("segment not truncated back to the last record: size %d", fi.Size())
	}
	// The log must be appendable right where the truncation left it.
	appendAll(t, l2, "cc")
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3 := mustOpen(t, dir, wal.Options{})
	wantRecords(t, rec3, "aa", "bb", "cc")
}

// TestCorruptMidRecordSkipped: a checksum-bad record in the middle of a
// segment (a bad sector) is skipped and counted; everything after it
// still replays.
func TestCorruptMidRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{})
	appendAll(t, l, "aaaa", "bbbb", "cccc") // three 12-byte frames
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	corruptAt(t, filepath.Join(dir, seg1), 12+8) // first payload byte of record 1

	l2, rec := mustOpen(t, dir, wal.Options{})
	defer l2.Close()
	wantRecords(t, rec, "aaaa", "cccc")
	if rec.CorruptRecords != 1 {
		t.Errorf("CorruptRecords = %d, want 1", rec.CorruptRecords)
	}
	if !rec.Damaged() {
		t.Error("mid-file corruption must count as damage")
	}
	if rec.TruncatedTail {
		t.Error("nothing was torn here")
	}
}

// TestUnresyncableTailQuarantined: an untrustworthy length field in a
// NON-final segment means the rest of that segment cannot be re-framed.
// The good prefix keeps replaying, the damaged tail moves to a .quar side
// file, and later segments are unaffected.
func TestUnresyncableTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{SegmentBytes: 30})
	appendAll(t, l, "rec-0", "rec-1", "rec-2", "rec-3", "rec-4") // 13-byte frames, 2+2+1 per segment
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Stamp an absurd length over segment 2's second record header.
	path := filepath.Join(dir, seg2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[13:17], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, wal.Options{SegmentBytes: 30})
	wantRecords(t, rec, "rec-0", "rec-1", "rec-2", "rec-4")
	if rec.QuarantinedSegments != 1 {
		t.Errorf("QuarantinedSegments = %d, want 1", rec.QuarantinedSegments)
	}
	quar, err := os.ReadFile(path + ".quar")
	if err != nil {
		t.Fatalf("damaged tail not preserved: %v", err)
	}
	if len(quar) != 13 {
		t.Errorf("quarantined %d bytes, want the 13-byte tail", len(quar))
	}

	// The repair is permanent: a second open replays the same records with
	// nothing left to quarantine.
	_, rec2 := mustOpen(t, dir, wal.Options{SegmentBytes: 30})
	wantRecords(t, rec2, "rec-0", "rec-1", "rec-2", "rec-4")
	if rec2.Damaged() {
		t.Errorf("damage reported again after repair: %+v", rec2)
	}
}

// TestCorruptSnapshotFallsBack: a checksum-bad snapshot is quarantined and
// the next older one used — media damage degrades coverage instead of
// aborting the boot.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{})
	appendAll(t, l, "r0")
	if err := l.Snapshot([]byte("one")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "r1")
	// Compaction will delete snap-1 when snap-2 lands; keep a copy so the
	// directory ends up holding both generations, as it would after a crash
	// that interrupted compaction.
	keep, err := os.ReadFile(filepath.Join(dir, snap1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snap1), keep, 0o644); err != nil {
		t.Fatal(err)
	}
	corruptAt(t, filepath.Join(dir, snap2), 9) // a payload byte of "two"

	_, rec := mustOpen(t, dir, wal.Options{})
	if string(rec.Snapshot) != "one" {
		t.Errorf("Snapshot = %q, want the older generation %q", rec.Snapshot, "one")
	}
	if rec.SnapshotSeq != 1 {
		t.Errorf("SnapshotSeq = %d, want 1", rec.SnapshotSeq)
	}
	if rec.DiscardedSnapshots != 1 {
		t.Errorf("DiscardedSnapshots = %d, want 1", rec.DiscardedSnapshots)
	}
	if _, err := os.Stat(filepath.Join(dir, snap2) + ".quar"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
}

// TestTmpSnapshotDiscarded: a .tmp left by a crash mid-snapshot has no
// standing and is removed on open.
func TestTmpSnapshotDiscarded(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap-00000000000000000005.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, dir, wal.Options{})
	defer l.Close()
	if rec.Snapshot != nil || rec.Damaged() {
		t.Errorf("a crash artifact .tmp must be silently discarded: %+v", rec)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf(".tmp still present after open: %v", err)
	}
}
