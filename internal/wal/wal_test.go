package wal_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/faultinject"
	"ist/internal/obs"
	"ist/internal/wal"
)

func mustOpen(t *testing.T, dir string, opt wal.Options) (*wal.Log, *wal.Recovery) {
	t.Helper()
	l, rec, err := wal.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *wal.Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
}

func wantRecords(t *testing.T, rec *wal.Recovery, want ...string) {
	t.Helper()
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d: %q", len(rec.Records), len(want), rec.Records)
	}
	for i, w := range want {
		if !bytes.Equal(rec.Records[i], []byte(w)) {
			t.Fatalf("record %d = %q, want %q", i, rec.Records[i], w)
		}
	}
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, wal.Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered state: %+v", rec)
	}
	appendAll(t, l, "a", "bb", "ccc")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec2 := mustOpen(t, dir, wal.Options{})
	defer l2.Close()
	wantRecords(t, rec2, "a", "bb", "ccc")
	if rec2.Damaged() || rec2.TruncatedTail {
		t.Fatalf("clean log reported damage: %+v", rec2)
	}
	// Appending after reopen extends the same history.
	appendAll(t, l2, "dddd")
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3 := mustOpen(t, dir, wal.Options{})
	wantRecords(t, rec3, "a", "bb", "ccc", "dddd")
}

func TestRotationSplitsSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{SegmentBytes: 32})
	for i := 0; i < 8; i++ {
		appendAll(t, l, "0123456789") // 18 framed bytes: 1 per segment, give or take
	}
	if l.Segments() < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, wal.Options{SegmentBytes: 32})
	if len(rec.Records) != 8 {
		t.Fatalf("recovered %d records across segments, want 8", len(rec.Records))
	}
}

// TestSyncPolicies uses the crash-simulating filesystem to observe what
// each policy actually persists across a power cut.
func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		fs := faultinject.NewFS(faultinject.FSPlan{})
		l, _ := mustOpen(t, "d", wal.Options{FS: fs, Sync: wal.SyncAlways})
		appendAll(t, l, "a", "b", "c")
		fs.CrashAndRestart() // no Close: power cut
		_, rec := mustOpen(t, "d", wal.Options{FS: fs})
		wantRecords(t, rec, "a", "b", "c")
	})
	t.Run("never", func(t *testing.T) {
		fs := faultinject.NewFS(faultinject.FSPlan{})
		l, _ := mustOpen(t, "d", wal.Options{FS: fs, Sync: wal.SyncNever})
		appendAll(t, l, "a", "b", "c")
		fs.CrashAndRestart()
		_, rec := mustOpen(t, "d", wal.Options{FS: fs})
		wantRecords(t, rec) // everything sat in the page cache
	})
	t.Run("never-graceful-close-flushes", func(t *testing.T) {
		fs := faultinject.NewFS(faultinject.FSPlan{})
		l, _ := mustOpen(t, "d", wal.Options{FS: fs, Sync: wal.SyncNever})
		appendAll(t, l, "a", "b")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		fs.CrashAndRestart()
		_, rec := mustOpen(t, "d", wal.Options{FS: fs})
		wantRecords(t, rec, "a", "b")
	})
	t.Run("interval", func(t *testing.T) {
		fs := faultinject.NewFS(faultinject.FSPlan{})
		clk := clock.NewFake(time.Unix(0, 0))
		l, _ := mustOpen(t, "d", wal.Options{FS: fs, Sync: wal.SyncInterval, SyncEvery: 100 * time.Millisecond, Clock: clk})
		appendAll(t, l, "a") // within the interval: buffered
		clk.Advance(150 * time.Millisecond)
		appendAll(t, l, "b") // interval elapsed: this append syncs a and b
		appendAll(t, l, "c") // buffered again
		fs.CrashAndRestart()
		_, rec := mustOpen(t, "d", wal.Options{FS: fs})
		wantRecords(t, rec, "a", "b")
	})
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), wal.Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close must be a clean no-op: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, want := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		got, err := wal.ParseSyncPolicy(want.String())
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := wal.ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

// TestMetricsExposed checks the durability metrics reach a registry's
// Prometheus exposition with the documented names.
func TestMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	m := wal.NewMetrics(reg)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{Metrics: m})
	appendAll(t, l, "a", "b")
	if err := l.Snapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		wal.MetricAppends + " 2",
		wal.MetricSegments + " 1",
		wal.MetricSnapshots + " 1",
		"# TYPE " + wal.MetricFsyncSeconds + " histogram",
		"# TYPE " + wal.MetricCorruptRecords + " counter",
	} {
		if !contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func contains(haystack, needle string) bool { return bytes.Contains([]byte(haystack), []byte(needle)) }

// TestDirEntriesSurviveOnlyAfterDirSync pins the reason openSegment syncs
// the directory: without it a freshly created segment file (and every
// record in it) vanishes on power loss even under fsync=always.
func TestDirEntriesSurviveOnlyAfterDirSync(t *testing.T) {
	fs := faultinject.NewFS(faultinject.FSPlan{})
	l, _ := mustOpen(t, "d", wal.Options{FS: fs, Sync: wal.SyncAlways})
	appendAll(t, l, "a")
	fs.CrashAndRestart()
	names, err := fs.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("segment entry did not survive the crash: %v", names)
	}
	_, rec := mustOpen(t, "d", wal.Options{FS: fs})
	wantRecords(t, rec, "a")
}

// TestOversizeRecordRejected: a record beyond MaxRecord must fail fast,
// not poison the log.
func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{})
	defer l.Close()
	if err := l.Append(make([]byte, wal.MaxRecord+1)); err == nil {
		t.Fatal("oversize append succeeded")
	}
	appendAll(t, l, "fine")
}

// TestQuarantineFilesAreOffside: quarantined side files must not be
// replayed as segments. Crafted by dropping a stray .quar into the dir.
func TestQuarantineFilesAreOffside(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, wal.Options{})
	appendAll(t, l, "a")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000000000000000009.wal.quar"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, wal.Options{})
	wantRecords(t, rec, "a")
	if rec.Damaged() {
		t.Fatalf("stray .quar counted as damage: %+v", rec)
	}
}
