package server

import (
	"math/rand"
	"net/http"
	"testing"
	"time"

	"ist"
	"ist/internal/faultinject"
)

// TestPanicIsolatedToOneSession is the headline fault-tolerance guarantee:
// a panic injected into one session's algorithm goroutine turns into a 500
// for that session (then 404 once it is torn down) while every other
// session — and the process — carries on to a correct result.
func TestPanicIsolatedToOneSession(t *testing.T) {
	band, k, _ := testBand(t)
	const victim = "s2"
	srv, err := New(band, k, Options{
		Seed: 1,
		TTL:  time.Minute,
		WrapAlgorithm: func(id string, alg ist.Algorithm) ist.Algorithm {
			if id == victim {
				return &faultinject.Algorithm{Inner: alg, Plan: faultinject.Plan{PanicAt: 3}}
			}
			return alg
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var states [3]StateResponse
	for i := range states {
		rec, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %d: %d %s", i, rec.Code, rec.Body.String())
		}
		states[i] = st
	}
	if states[1].ID != victim {
		t.Fatalf("expected deterministic id %q, got %q", victim, states[1].ID)
	}

	// Drive the poisoned session: the scheduled panic must surface as a 500
	// on an answer (the algorithm dies computing the next question).
	rng := rand.New(rand.NewSource(42))
	hidden := ist.RandomUtility(rng, 4)
	st := states[1]
	saw500 := false
	for steps := 0; steps < 50 && !saw500; steps++ {
		p := ist.Point(st.Question.Option1)
		q := ist.Point(st.Question.Option2)
		prefer := 2
		if hidden.Dot(p) >= hidden.Dot(q) {
			prefer = 1
		}
		rec, next := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
		switch rec.Code {
		case http.StatusOK:
			st = next
		case http.StatusInternalServerError:
			saw500 = true
		default:
			t.Fatalf("poisoned session: unexpected code %d %s", rec.Code, rec.Body.String())
		}
	}
	if !saw500 {
		t.Fatal("scheduled panic never surfaced as a 500")
	}
	// The failed session is torn down: subsequent requests see 404.
	rec, _ := do(t, srv, http.MethodGet, "/sessions/"+victim, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get after failure: code %d, want 404", rec.Code)
	}

	// The other sessions are untouched and complete correctly.
	for _, i := range []int{0, 2} {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		hidden := ist.RandomUtility(rng, 4)
		final, ok := drive(t, srv, states[i], hidden)
		if !ok {
			t.Fatalf("session %s did not survive its neighbour's panic", states[i].ID)
		}
		if !ist.IsTopK(band, hidden, k, ist.Point(final.Result)) {
			t.Fatalf("session %s returned a non-top-k point after neighbour panic", states[i].ID)
		}
	}
}

// TestPanicDuringCreate covers the nastier window: the algorithm panics in
// its setup phase, before the first question exists. The create request
// itself must report the failure (500), leaving no zombie session behind.
func TestPanicDuringCreate(t *testing.T) {
	band, k, _ := testBand(t)
	srv, err := New(band, k, Options{
		Seed: 1,
		TTL:  time.Minute,
		WrapAlgorithm: func(id string, alg ist.Algorithm) ist.Algorithm {
			return &faultinject.Algorithm{Inner: alg, Plan: faultinject.Plan{PanicAt: 1}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec, _ := do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("create with instant panic: code %d, want 500", rec.Code)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("failed create left %d zombie sessions", srv.Sessions())
	}
}
