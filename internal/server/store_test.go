package server

import (
	"os"
	"path/filepath"
	"testing"
)

func testStoreRoundtrip(t *testing.T, mk func(t *testing.T) SessionStore) {
	t.Helper()
	s := mk(t)
	defer s.Close()
	if err := s.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 8, Fingerprint: 0xabc}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(SessionRecord{ID: "s2", Algorithm: "hdpi", Seed: 9, Fingerprint: 0xabc}); err != nil {
		t.Fatal(err)
	}
	for _, ans := range []bool{true, false, true} {
		if err := s.Answer("s1", ans); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finish("s2"); err != nil {
		t.Fatal(err)
	}
	recs, lastID, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lastID != 2 {
		t.Fatalf("lastID = %d, want 2 (finished sessions still pin the id space)", lastID)
	}
	if len(recs) != 1 {
		t.Fatalf("loaded %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != "s1" || rec.Algorithm != "rh" || rec.Seed != 8 || rec.Fingerprint != 0xabc {
		t.Fatalf("bad record: %+v", rec)
	}
	want := []bool{true, false, true}
	if len(rec.Answers) != len(want) {
		t.Fatalf("answers %v, want %v", rec.Answers, want)
	}
	for i := range want {
		if rec.Answers[i] != want[i] {
			t.Fatalf("answers %v, want %v", rec.Answers, want)
		}
	}
}

func TestMemStoreRoundtrip(t *testing.T) {
	testStoreRoundtrip(t, func(t *testing.T) SessionStore { return NewMemStore() })
}

func TestJSONLStoreRoundtrip(t *testing.T) {
	testStoreRoundtrip(t, func(t *testing.T) SessionStore {
		s, err := OpenJSONLStore(filepath.Join(t.TempDir(), "s.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestJSONLStoreSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	a, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Answer("s1", true); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash, then append through a fresh handle.
	b, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Answer("s1", false); err != nil {
		t.Fatal(err)
	}
	recs, _, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Answers) != 2 || !recs[0].Answers[0] || recs[0].Answers[1] {
		t.Fatalf("folded record wrong after reopen: %+v", recs)
	}
}

func TestJSONLStoreToleratesTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Answer("s1", true); err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a torn trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"answer","id":"s1","ans`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, lastID, err := s.Load()
	if err != nil {
		t.Fatalf("torn final line must not fail Load: %v", err)
	}
	if lastID != 1 || len(recs) != 1 || len(recs[0].Answers) != 1 {
		t.Fatalf("torn line corrupted the fold: recs=%+v lastID=%d", recs, lastID)
	}
}
