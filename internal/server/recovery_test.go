package server

import (
	"math/rand"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ist"
)

// TestCrashRestartRecovery kills a server mid-session (simulated by
// abandoning it without any shutdown courtesy) with a JSONL store enabled,
// restarts on the same store file, and resumes the same session id to the
// same result. The restarted session must pick up exactly where the user
// left off: same pending question, same question count, no re-asked
// questions beyond the replayed transcript.
func TestCrashRestartRecovery(t *testing.T) {
	band, k, _ := testBand(t)
	rng := rand.New(rand.NewSource(77))
	hidden := ist.RandomUtility(rng, 4)
	path := filepath.Join(t.TempDir(), "sessions.jsonl")

	storeA, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(band, k, Options{Seed: 7, TTL: time.Hour, Store: storeA})
	if err != nil {
		t.Fatal(err)
	}
	rec, st := do(t, a, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	id := st.ID
	const answered = 5
	for i := 0; i < answered; i++ {
		if st.Done {
			t.Skip("session finished before the crash point; nothing to recover")
		}
		p := ist.Point(st.Question.Option1)
		q := ist.Point(st.Question.Option2)
		prefer := 2
		if hidden.Dot(p) >= hidden.Dot(q) {
			prefer = 1
		}
		rec, st = do(t, a, http.MethodPost, "/sessions/"+id+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	if st.Done {
		t.Skip("session finished before the crash point; nothing to recover")
	}
	pendingBeforeCrash := *st.Question
	// Crash: no a.Close(), no store.Close() — the process just stops.

	storeB, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(band, k, Options{Seed: 7, TTL: time.Hour, Store: storeB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Sessions() != 1 {
		t.Fatalf("rehydrated %d sessions, want 1", b.Sessions())
	}
	rec, got := do(t, b, http.MethodGet, "/sessions/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get after restart: %d %s", rec.Code, rec.Body.String())
	}
	if got.Questions != answered {
		t.Fatalf("restarted session re-asked questions: count %d, want %d", got.Questions, answered)
	}
	if got.Question == nil || !reflect.DeepEqual(*got.Question, pendingBeforeCrash) {
		t.Fatalf("restarted session shows a different pending question:\n  before: %+v\n  after:  %+v",
			pendingBeforeCrash, got.Question)
	}

	// Finish the recovered session and check it lands on the exact result a
	// crash-free run produces: the algorithm is seeded Seed+1 for session 1.
	final, ok := drive(t, b, got, hidden)
	if !ok {
		t.Fatal("recovered session did not finish")
	}
	direct := ist.Solve(ist.NewRH(7+1), band, k, ist.NewUser(hidden))
	if final.ResultID != direct.Index {
		t.Fatalf("recovered result %d != crash-free result %d", final.ResultID, direct.Index)
	}
	if final.Questions != direct.Questions {
		t.Fatalf("recovered run used %d questions, crash-free run %d — questions were re-asked",
			final.Questions, direct.Questions)
	}

	// Session ids stay monotonic across the restart: a new session must not
	// reuse an id a client could still be polling.
	rec, st2 := do(t, b, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated || st2.ID != "s2" {
		t.Fatalf("post-restart create: %d id=%q, want 201 id=s2", rec.Code, st2.ID)
	}
}

// TestRestartSkipsForeignDataset ensures a persisted session is not resumed
// against different data: the replay would silently diverge, so the record
// is dropped instead.
func TestRestartSkipsForeignDataset(t *testing.T) {
	band, k, _ := testBand(t)
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	storeA, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(band, k, Options{Seed: 7, TTL: time.Hour, Store: storeA})
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := do(t, a, http.MethodPost, "/sessions", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	// "Crash", then restart on a different dataset.
	rng := rand.New(rand.NewSource(9))
	other := ist.Preprocess(ist.NBALike(rng, 300).Points, k)
	storeB, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(other, k, Options{Seed: 7, TTL: time.Hour, Store: storeB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Sessions() != 0 {
		t.Fatalf("session resumed against a foreign dataset: %d live", b.Sessions())
	}
}

// TestGracefulShutdownKeepsSessionsReplayable: Server.Close (the graceful
// path) must not Finish persisted sessions — the next boot resumes them.
func TestGracefulShutdownKeepsSessionsReplayable(t *testing.T) {
	band, k, _ := testBand(t)
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	storeA, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(band, k, Options{Seed: 7, TTL: time.Hour, Store: storeA})
	if err != nil {
		t.Fatal(err)
	}
	_, st := do(t, a, http.MethodPost, "/sessions", nil)
	a.Close() // graceful: drains goroutines, keeps the store's records

	storeB, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(band, k, Options{Seed: 7, TTL: time.Hour, Store: storeB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec, _ := do(t, b, http.MethodGet, "/sessions/"+st.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("session lost across graceful restart: %d", rec.Code)
	}
}
