package server

// Tests for the span layer's server half (DESIGN.md §13): the
// /debug/ist/traces endpoint, traceparent propagation, the flight-recorder
// dump path, the healthz drain/WAL fields, the theory-bound gauges, and —
// most importantly — the contract that tracing never perturbs the dialogue:
// a traced server and an untraced one walk bit-identical transcripts.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"ist"
	"ist/internal/obs"
)

// doTraced is do() plus a traceparent header, for tests standing in for a
// tracing client.
func doTraced(t *testing.T, srv *Server, method, path string, body interface{}, traceparent string) (*httptest.ResponseRecorder, StateResponse) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var st StateResponse
	if rec.Body.Len() > 0 {
		_ = json.Unmarshal(rec.Body.Bytes(), &st)
	}
	return rec, st
}

// transcript drives a session to completion, collecting every state the
// server hands back (the create response included).
func transcript(t *testing.T, srv *Server, algorithm string, hidden ist.Point) []StateResponse {
	t.Helper()
	rec, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": algorithm})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	states := []StateResponse{st}
	for steps := 0; !st.Done; steps++ {
		if steps > 5000 || st.Question == nil {
			t.Fatalf("session stuck after %d steps", steps)
		}
		p := ist.Point(st.Question.Option1)
		q := ist.Point(st.Question.Option2)
		prefer := 2
		if hidden.Dot(p) >= hidden.Dot(q) {
			prefer = 1
		}
		rec, st = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer: %d %s", rec.Code, rec.Body.String())
		}
		states = append(states, st)
	}
	return states
}

// TestNilTracerTranscriptsDeepEqual is the acceptance bar for the nil-tracer
// path: with identical seeds, a Tracing server and an untraced one must
// produce byte-for-byte the same question sequence, results and
// certificates. Tracing may observe the dialogue; it must never steer it.
func TestNilTracerTranscriptsDeepEqual(t *testing.T) {
	band, k, hidden := testBand(t)
	for _, alg := range []string{"rh", "hdpi"} {
		plain, err := New(band, k, Options{Seed: 7, TTL: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(plain.Close)
		traced, err := New(band, k, Options{Seed: 7, TTL: time.Minute, Tracing: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(traced.Close)

		want := transcript(t, plain, alg, hidden)
		got := transcript(t, traced, alg, hidden)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: traced transcript diverged from untraced (%d vs %d states)", alg, len(got), len(want))
		}
	}
}

func TestDebugTracesDisabled(t *testing.T) {
	srv, _, _ := newTestServer(t) // Tracing off by default
	rec := doRaw(t, srv, http.MethodGet, "/debug/ist/traces", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("traces endpoint without tracing: %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "tracing disabled") {
		t.Errorf("404 body %q does not explain tracing is off", rec.Body.String())
	}
}

func TestDebugTracesEndpointAndPropagation(t *testing.T) {
	band, k, hidden := testBand(t)
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	// Stand in for a tracing client: mint a trace id and send it on create
	// and on every answer, as client.Session does.
	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	traceparent := "00-" + clientTrace + "-00f067aa0ba902b7-01"
	// hdpi-accurate goes through the exact convex-hull path, so the trace
	// carries lp-solve phase spans (rh would only show halfspace cuts).
	rec, st := doTraced(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "hdpi-accurate"}, traceparent)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	for steps := 0; !st.Done; steps++ {
		if steps > 5000 || st.Question == nil {
			t.Fatalf("session stuck after %d steps", steps)
		}
		prefer := 2
		if hidden.Dot(ist.Point(st.Question.Option1)) >= hidden.Dot(ist.Point(st.Question.Option2)) {
			prefer = 1
		}
		rec, st = doTraced(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer",
			map[string]int{"prefer": prefer, "seq": st.Seq}, traceparent)
		if rec.Code != http.StatusOK {
			t.Fatalf("answer: %d %s", rec.Code, rec.Body.String())
		}
	}

	// The listing must show exactly the client's trace id: the server
	// continued the propagated trace instead of minting its own.
	rec = doRaw(t, srv, http.MethodGet, "/debug/ist/traces", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace listing: %d %s", rec.Code, rec.Body.String())
	}
	var list TraceListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if !list.Tracing || len(list.Traces) != 1 {
		t.Fatalf("listing = tracing:%v traces:%d, want tracing:true traces:1", list.Tracing, len(list.Traces))
	}
	if got := list.Traces[0].Trace.String(); got != clientTrace {
		t.Fatalf("server trace id %s, want the client's %s", got, clientTrace)
	}

	// The span tree must nest lp-solve under a question span.
	rec = doRaw(t, srv, http.MethodGet, "/debug/ist/traces?trace="+clientTrace, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace tree: %d %s", rec.Code, rec.Body.String())
	}
	var tr TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trace != clientTrace || tr.Spans == 0 {
		t.Fatalf("tree trace=%s spans=%d", tr.Trace, tr.Spans)
	}
	var sawQuestionWithSolve, sawAnswer bool
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, n := range ns {
			if n.Name == "question" {
				for _, c := range n.Children {
					if c.Name == "lp-solve" {
						sawQuestionWithSolve = true
					}
				}
			}
			if n.Name == "answer" {
				sawAnswer = true
			}
			walk(n.Children)
		}
	}
	walk(tr.Tree)
	if !sawQuestionWithSolve {
		t.Error("no question span with an lp-solve child in the trace tree")
	}
	if !sawAnswer {
		t.Error("no server answer span in the trace tree")
	}

	// The same trace renders as a self-contained waterfall.
	rec = doRaw(t, srv, http.MethodGet, "/debug/ist/traces?trace="+clientTrace+"&format=html", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("waterfall: %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "<!DOCTYPE html>") || !strings.Contains(body, clientTrace) {
		t.Error("waterfall HTML is missing the doctype or the trace id")
	}

	// Malformed and unknown ids fail loudly.
	if rec := doRaw(t, srv, http.MethodGet, "/debug/ist/traces?trace=zzz", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad trace id: %d, want 400", rec.Code)
	}
	if rec := doRaw(t, srv, http.MethodGet, "/debug/ist/traces?trace="+strings.Repeat("ab", 16), ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace id: %d, want 404", rec.Code)
	}
}

func TestHealthzDrainingAndWALSeq(t *testing.T) {
	band, k, _ := testBand(t)
	store, err := OpenWALStore(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = store.Close() })
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	health := func() HealthResponse {
		t.Helper()
		rec := doRaw(t, srv, http.MethodGet, "/healthz", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz: %d", rec.Code)
		}
		var h HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := health()
	if h.Draining {
		t.Error("fresh server reports draining")
	}
	if h.WALSeq == nil {
		t.Fatal("WAL-backed server omits walSeq from /healthz")
	}
	if *h.WALSeq != store.WALSeq() {
		t.Errorf("healthz walSeq %d, store reports %d", *h.WALSeq, store.WALSeq())
	}

	if !srv.BeginDrain() {
		t.Fatal("BeginDrain returned false on first call")
	}
	if h = health(); !h.Draining {
		t.Error("healthz does not report drain mode after BeginDrain")
	}
	if h.Status != "ok" {
		t.Errorf("draining flipped liveness to %q; a draining process must stay alive", h.Status)
	}
}

func TestHealthzNoWALSeqWithoutStore(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := doRaw(t, srv, http.MethodGet, "/healthz", "")
	if strings.Contains(rec.Body.String(), "walSeq") {
		t.Errorf("store-less healthz leaks a walSeq field: %s", rec.Body.String())
	}
}

// TestFlightDumpOnConflict checks the black-box path: a seq conflict must
// leave <TraceDir>/<id>.flight.json behind with the spans that preceded it.
func TestFlightDumpOnConflict(t *testing.T) {
	band, k, _ := testBand(t)
	dir := t.TempDir()
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, Tracing: true, TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	rec, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	rec, _ = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": 1, "seq": st.Seq + 7})
	if rec.Code != http.StatusConflict {
		t.Fatalf("future seq: %d, want 409", rec.Code)
	}

	payload, err := os.ReadFile(filepath.Join(dir, st.ID+".flight.json"))
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	var dump flightDump
	if err := json.Unmarshal(payload, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Session != st.ID || dump.Reason != "seq-conflict" {
		t.Errorf("dump = session:%s reason:%s, want %s / seq-conflict", dump.Session, dump.Reason, st.ID)
	}
	if len(dump.Spans) == 0 {
		t.Error("flight dump carries no spans")
	}
	var sawConflict bool
	for _, sp := range dump.Spans {
		if sp.Name == "conflict" && sp.Status == "error" {
			sawConflict = true
		}
	}
	if !sawConflict {
		t.Error("flight dump is missing the errored conflict span")
	}
	if v := srv.reg.Counter(obs.MetricFlightDumps, "").Value(); v != 1 {
		t.Errorf("ist_flight_dumps_total = %v, want 1", v)
	}
}

// TestVsUpperGaugeTwoDPI pins the Thm 4.5 guarantee end to end: a 2D-PI
// session over a 2-d skyband must certify within the paper's upper bound,
// so the exported ratio gauge never exceeds 1.0.
func TestVsUpperGaugeTwoDPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := ist.IslandLike(rng, 400)
	k := 10
	band := ist.Preprocess(ds.Points, k)
	hidden := ist.RandomUtility(rng, 2)
	// MaxQuestions makes the session budgeted, so it carries an anytime
	// certificate; 2D-PI must certify well inside the Thm 4.5 bound.
	srv, err := New(band, k, Options{Seed: 5, TTL: time.Minute, MaxQuestions: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	states := transcript(t, srv, "2dpi", hidden)
	final := states[len(states)-1]
	if final.Certificate == nil || !final.Certificate.Certified {
		t.Fatal("2dpi session did not certify")
	}

	_, upper := ist.TheoryBounds(len(band), k)
	if upper <= 0 {
		t.Fatalf("degenerate upper bound %v for n=%d k=%d", upper, len(band), k)
	}
	rec := doRaw(t, srv, http.MethodGet, "/metrics", "")
	var ratio float64
	var found bool
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, `ist_questions_vs_upper_bound{algorithm="2dpi"}`) {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("unparsable gauge line %q: %v", line, err)
			}
			ratio, found = v, true
		}
	}
	if !found {
		t.Fatalf("ist_questions_vs_upper_bound{algorithm=%q} missing from /metrics:\n%s", "2dpi", rec.Body.String())
	}
	if ratio <= 0 || ratio > 1.0 {
		t.Errorf("vs_upper ratio %v violates the Thm 4.5 guarantee (questions=%d, upper=%v)",
			ratio, final.Questions, upper)
	}
	if want := float64(final.Questions) / upper; ratio != want {
		t.Errorf("gauge %v != questions/upper = %v", ratio, want)
	}
}
