package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ist"
)

func newTestServer(t *testing.T) (*Server, []ist.Point, ist.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := ist.CarLike(rng, 300)
	k := 10
	band := ist.Preprocess(ds.Points, k)
	hidden := ist.RandomUtility(rng, 4)
	return New(band, k, 1, time.Minute), band, hidden
}

func do(t *testing.T, srv *Server, method, path string, body interface{}) (*httptest.ResponseRecorder, StateResponse) {
	if t != nil {
		t.Helper()
	}
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var st StateResponse
	if rec.Code < 300 && rec.Body.Len() > 0 {
		_ = json.Unmarshal(rec.Body.Bytes(), &st)
	}
	return rec, st
}

func TestFullSessionOverHTTP(t *testing.T) {
	srv, band, hidden := newTestServer(t)
	rec, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	if st.ID == "" {
		t.Fatal("missing session id")
	}
	steps := 0
	for !st.Done {
		if st.Question == nil {
			t.Fatal("undone session without a question")
		}
		p := ist.Point(st.Question.Option1)
		q := ist.Point(st.Question.Option2)
		prefer := 2
		if hidden.Dot(p) >= hidden.Dot(q) {
			prefer = 1
		}
		rec, st = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer: %d %s", rec.Code, rec.Body.String())
		}
		steps++
		if steps > 5000 {
			t.Fatal("session never finished")
		}
	}
	if st.Result == nil {
		t.Fatal("done without result")
	}
	if !ist.IsTopK(band, hidden, 10, ist.Point(st.Result)) {
		t.Fatal("HTTP session returned non-top-k point")
	}
	if st.Questions != steps {
		t.Fatalf("questions %d != answered %d", st.Questions, steps)
	}
}

func TestCreateUnknownAlgorithm(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec, _ := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "nope"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d", rec.Code)
	}
}

func TestAnswerValidation(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	rec, _ := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": 3})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("prefer=3: code %d", rec.Code)
	}
	rec, _ = do(t, srv, http.MethodPost, "/sessions/nope/answer", map[string]int{"prefer": 1})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: code %d", rec.Code)
	}
}

func TestGetAndDelete(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	rec, got := do(t, srv, http.MethodGet, "/sessions/"+st.ID, nil)
	if rec.Code != http.StatusOK || got.ID != st.ID {
		t.Fatalf("get: %d %+v", rec.Code, got)
	}
	rec, _ = do(t, srv, http.MethodDelete, "/sessions/"+st.ID, nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions remaining: %d", srv.Sessions())
	}
	rec, _ = do(t, srv, http.MethodGet, "/sessions/"+st.ID, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", rec.Code)
	}
}

func TestSessionExpiry(t *testing.T) {
	srv, _, _ := newTestServer(t)
	srv.ttl = time.Second
	fake := time.Now()
	srv.now = func() time.Time { return fake }
	_, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	if srv.Sessions() != 1 {
		t.Fatal("session not created")
	}
	fake = fake.Add(2 * time.Second)
	// Any request triggers expiry.
	do(t, srv, http.MethodGet, "/sessions/whatever", nil)
	if srv.Sessions() != 0 {
		t.Fatalf("expired session still alive: %d", srv.Sessions())
	}
}

func TestNotFoundRoutes(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/"},
		{http.MethodPut, "/sessions"},
		{http.MethodPost, "/sessions/x/y/z"},
	} {
		rec, _ := do(t, srv, tc.method, tc.path, nil)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s %s: code %d", tc.method, tc.path, rec.Code)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv, band, _ := newTestServer(t)
	const users = 8
	done := make(chan bool, users)
	for u := 0; u < users; u++ {
		go func(u int) {
			rng := rand.New(rand.NewSource(int64(100 + u)))
			hidden := ist.RandomUtility(rng, 4)
			// Pass a nil *testing.T: its methods are not safe for use from
			// extra goroutines.
			_, st := do(nil, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
			for steps := 0; !st.Done && steps < 5000; steps++ {
				p := ist.Point(st.Question.Option1)
				q := ist.Point(st.Question.Option2)
				prefer := 2
				if hidden.Dot(p) >= hidden.Dot(q) {
					prefer = 1
				}
				_, st = do(nil, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer})
			}
			done <- st.Done && ist.IsTopK(band, hidden, 10, ist.Point(st.Result))
		}(u)
	}
	for u := 0; u < users; u++ {
		if !<-done {
			t.Fatal("a concurrent session failed")
		}
	}
}
