package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ist"
	"ist/internal/clock"
)

func testBand(t *testing.T) ([]ist.Point, int, ist.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := ist.CarLike(rng, 300)
	k := 10
	band := ist.Preprocess(ds.Points, k)
	hidden := ist.RandomUtility(rng, 4)
	return band, k, hidden
}

func newTestServer(t *testing.T) (*Server, []ist.Point, ist.Point) {
	t.Helper()
	band, k, hidden := testBand(t)
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, band, hidden
}

func do(t *testing.T, srv *Server, method, path string, body interface{}) (*httptest.ResponseRecorder, StateResponse) {
	if t != nil {
		t.Helper()
	}
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var st StateResponse
	if rec.Body.Len() > 0 {
		// Conflict responses (409) carry the authoritative state too; plain
		// error texts simply fail to parse and leave the zero value.
		_ = json.Unmarshal(rec.Body.Bytes(), &st)
	}
	return rec, st
}

// doRaw sends a raw body without JSON-encoding it (for malformed payloads).
func doRaw(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// drive answers a session's questions according to hidden until done,
// returning the final state. Pass a nil *testing.T from extra goroutines.
func drive(t *testing.T, srv *Server, st StateResponse, hidden ist.Point) (StateResponse, bool) {
	if t != nil {
		t.Helper()
	}
	for steps := 0; !st.Done; steps++ {
		if steps > 5000 || st.Question == nil {
			return st, false
		}
		p := ist.Point(st.Question.Option1)
		q := ist.Point(st.Question.Option2)
		prefer := 2
		if hidden.Dot(p) >= hidden.Dot(q) {
			prefer = 1
		}
		rec, next := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
		if rec.Code != http.StatusOK {
			return st, false
		}
		st = next
	}
	return st, true
}

func TestFullSessionOverHTTP(t *testing.T) {
	srv, band, hidden := newTestServer(t)
	rec, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	if st.ID == "" {
		t.Fatal("missing session id")
	}
	steps := 0
	for !st.Done {
		if st.Question == nil {
			t.Fatal("undone session without a question")
		}
		p := ist.Point(st.Question.Option1)
		q := ist.Point(st.Question.Option2)
		prefer := 2
		if hidden.Dot(p) >= hidden.Dot(q) {
			prefer = 1
		}
		rec, st = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer: %d %s", rec.Code, rec.Body.String())
		}
		steps++
		if steps > 5000 {
			t.Fatal("session never finished")
		}
	}
	if st.Result == nil {
		t.Fatal("done without result")
	}
	if !ist.IsTopK(band, hidden, 10, ist.Point(st.Result)) {
		t.Fatal("HTTP session returned non-top-k point")
	}
	if st.Questions != steps {
		t.Fatalf("questions %d != answered %d", st.Questions, steps)
	}
}

func TestCreateUnknownAlgorithm(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec, _ := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "nope"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d", rec.Code)
	}
}

func TestCreateMalformedJSON(t *testing.T) {
	srv, _, _ := newTestServer(t)
	// A malformed body must be rejected, not silently fall back to defaults.
	rec := doRaw(t, srv, http.MethodPost, "/sessions", `{"algorithm":`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: code %d, want 400", rec.Code)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("malformed create leaked a session: %d live", srv.Sessions())
	}
	// An empty body still means defaults.
	rec = doRaw(t, srv, http.MethodPost, "/sessions", "")
	if rec.Code != http.StatusCreated {
		t.Fatalf("empty body: code %d, want 201", rec.Code)
	}
}

func TestAnswerValidation(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	rec, _ := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": 3})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("prefer=3: code %d", rec.Code)
	}
	rec, _ = do(t, srv, http.MethodPost, "/sessions/nope/answer", map[string]int{"prefer": 1})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: code %d", rec.Code)
	}
}

func TestGetAndDelete(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	rec, got := do(t, srv, http.MethodGet, "/sessions/"+st.ID, nil)
	if rec.Code != http.StatusOK || got.ID != st.ID {
		t.Fatalf("get: %d %+v", rec.Code, got)
	}
	rec, _ = do(t, srv, http.MethodDelete, "/sessions/"+st.ID, nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions remaining: %d", srv.Sessions())
	}
	rec, _ = do(t, srv, http.MethodGet, "/sessions/"+st.ID, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", rec.Code)
	}
}

func TestSessionExpiry(t *testing.T) {
	srv, _, _ := newTestServer(t)
	srv.opt.TTL = time.Second
	fake := time.Now()
	srv.now = func() time.Time { return fake }
	_, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	if srv.Sessions() != 1 {
		t.Fatal("session not created")
	}
	fake = fake.Add(2 * time.Second)
	srv.expire() // what the background reaper runs on its ticker
	if srv.Sessions() != 0 {
		t.Fatalf("expired session still alive: %d", srv.Sessions())
	}
}

func TestBackgroundReaper(t *testing.T) {
	band, k, _ := testBand(t)
	srv, err := New(band, k, Options{Seed: 1, TTL: 50 * time.Millisecond, ReapInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	if srv.Sessions() != 1 {
		t.Fatal("session not created")
	}
	// No further requests: only the background reaper can collect it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never collected the idle session: %d live", srv.Sessions())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMaxSessions(t *testing.T) {
	band, k, _ := testBand(t)
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, st1 := do(t, srv, http.MethodPost, "/sessions", nil)
	_, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	rec, _ := do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("create beyond cap: code %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// Freeing a slot makes creation work again.
	do(t, srv, http.MethodDelete, "/sessions/"+st1.ID, nil)
	rec, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create after delete: code %d, want 201", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	rec := doRaw(t, srv, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: code %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sessions != 1 || h.GoVersion == "" || h.Version == "" {
		t.Fatalf("healthz payload: %+v", h)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("negative uptime: %v", h.UptimeSeconds)
	}
}

func TestNotFoundRoutes(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/"},
		{http.MethodPut, "/sessions"},
		{http.MethodPost, "/sessions/x/y/z"},
		{http.MethodPost, "/healthz"},
	} {
		rec, _ := do(t, srv, tc.method, tc.path, nil)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s %s: code %d", tc.method, tc.path, rec.Code)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv, band, _ := newTestServer(t)
	const users = 8
	done := make(chan bool, users)
	for u := 0; u < users; u++ {
		go func(u int) {
			rng := rand.New(rand.NewSource(int64(100 + u)))
			hidden := ist.RandomUtility(rng, 4)
			// Pass a nil *testing.T: its methods are not safe for use from
			// extra goroutines.
			_, st := do(nil, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
			st, ok := drive(nil, srv, st, hidden)
			done <- ok && ist.IsTopK(band, hidden, 10, ist.Point(st.Result))
		}(u)
	}
	for u := 0; u < users; u++ {
		if !<-done {
			t.Fatal("a concurrent session failed")
		}
	}
}

// TestSessionDeadlineAnswersBestEffort drives a session past its per-session
// deadline on a fake clock: the next exchange must complete with HTTP 200 —
// an anytime answer is a success, not an error — and carry a certificate
// admitting "certified": false with the deadline stop reason.
func TestSessionDeadlineAnswersBestEffort(t *testing.T) {
	band, k, _ := testBand(t)
	fake := clock.NewFake(time.Unix(5000, 0))
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, SessionDeadline: time.Second, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec, st := do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	if st.Done {
		t.Fatal("session finished before its first question")
	}

	fake.Advance(2 * time.Second) // past the deadline
	rec, st = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": 1, "seq": st.Seq})
	if rec.Code != http.StatusOK {
		t.Fatalf("answer past the deadline: %d, want 200", rec.Code)
	}
	if !st.Done {
		t.Fatal("deadline-expired session still asking questions")
	}
	if st.Result == nil {
		t.Fatal("no best-effort result")
	}
	if st.Certificate == nil {
		t.Fatal("no certificate on the deadline-stopped session")
	}
	if st.Certificate.Certified {
		t.Fatal("deadline-stopped session claims a certified result")
	}
	if st.Certificate.Reason != ist.StopDeadline {
		t.Fatalf("certificate reason %q, want %q", st.Certificate.Reason, ist.StopDeadline)
	}
	// The wire shape: "certified" must be present and false.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	var certRaw map[string]json.RawMessage
	if err := json.Unmarshal(raw["certificate"], &certRaw); err != nil {
		t.Fatal(err)
	}
	if string(certRaw["certified"]) != "false" {
		t.Fatalf(`certificate JSON "certified" = %s, want false`, certRaw["certified"])
	}
}

// TestSessionQuestionBudgetOverHTTP is the MaxQuestions analogue: two
// answers exhaust the budget, the session finishes 200 with an uncertified
// question-budget certificate.
func TestSessionQuestionBudgetOverHTTP(t *testing.T) {
	band, k, _ := testBand(t)
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, MaxQuestions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec, st := do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	for i := 0; i < 2 && !st.Done; i++ {
		rec, st = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": 1, "seq": st.Seq})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer %d: %d", i+1, rec.Code)
		}
	}
	if !st.Done {
		t.Fatal("session still open past a 2-question budget")
	}
	if st.Certificate == nil || st.Certificate.Certified {
		t.Fatalf("certificate = %+v, want uncertified", st.Certificate)
	}
	if st.Certificate.Reason != ist.StopQuestions {
		t.Fatalf("certificate reason %q, want %q", st.Certificate.Reason, ist.StopQuestions)
	}
	// Unbudgeted servers must not suddenly report certificates.
	srv2, _, _ := newTestServer(t)
	_, st2 := do(t, srv2, http.MethodPost, "/sessions", nil)
	for !st2.Done {
		_, st2 = do(t, srv2, http.MethodPost, "/sessions/"+st2.ID+"/answer", map[string]int{"prefer": 1, "seq": st2.Seq})
	}
	if st2.Certificate != nil {
		t.Fatalf("unbudgeted session reported a certificate: %+v", st2.Certificate)
	}
}
