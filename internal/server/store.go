package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// SessionRecord is everything needed to deterministically rebuild an
// in-flight session: the identity of its algorithm (name + seed), the
// fingerprint of the dataset it was recorded against (replaying on other
// data would silently diverge), and the ordered answer log. Questions are
// not stored — the seeded algorithm re-derives them during replay.
type SessionRecord struct {
	ID          string `json:"id"`
	Algorithm   string `json:"algorithm"`
	Seed        int64  `json:"seed"`
	Fingerprint uint64 `json:"fingerprint"`
	Answers     []bool `json:"answers,omitempty"`
}

// SessionStore persists session state incrementally so a restarted server
// can rehydrate in-flight sessions by transcript replay. Implementations
// must be safe for concurrent use.
type SessionStore interface {
	// Create persists a new session's identity (with an empty answer log).
	Create(rec SessionRecord) error
	// Answer appends one answer to the session's log.
	Answer(id string, preferFirst bool) error
	// Finish forgets a session — completed, deleted, expired, or failed —
	// so it will not be rehydrated on restart.
	Finish(id string) error
	// Load returns the record of every unfinished session plus the highest
	// numeric session id ever created (so a restarted server never reuses
	// an id a client may still be polling).
	Load() ([]SessionRecord, int64, error)
	// Close releases any backing resources. Close does NOT finish live
	// sessions: a graceful shutdown keeps them replayable.
	Close() error
}

// sessionIDNum extracts the numeric part of an "s<n>" session id (0 if the
// id has some other shape).
func sessionIDNum(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "s%d", &n); err != nil {
		return 0
	}
	return n
}

// MemStore is an in-memory SessionStore: no crash durability, but it gives
// tests and single-process deployments the same code path as the JSONL
// store.
type MemStore struct {
	mu     sync.Mutex
	recs   map[string]*SessionRecord
	lastID int64
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{recs: map[string]*SessionRecord{}} }

// Create implements SessionStore.
func (m *MemStore) Create(rec SessionRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := rec
	cp.Answers = append([]bool(nil), rec.Answers...)
	m.recs[rec.ID] = &cp
	if n := sessionIDNum(rec.ID); n > m.lastID {
		m.lastID = n
	}
	return nil
}

// Answer implements SessionStore.
func (m *MemStore) Answer(id string, preferFirst bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return fmt.Errorf("server: store: answer for unknown session %q", id)
	}
	rec.Answers = append(rec.Answers, preferFirst)
	return nil
}

// Finish implements SessionStore.
func (m *MemStore) Finish(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.recs, id)
	return nil
}

// Load implements SessionStore.
func (m *MemStore) Load() ([]SessionRecord, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SessionRecord, 0, len(m.recs))
	for _, rec := range m.recs {
		cp := *rec
		cp.Answers = append([]bool(nil), rec.Answers...)
		out = append(out, cp)
	}
	return out, m.lastID, nil
}

// Close implements SessionStore.
func (m *MemStore) Close() error { return nil }

// storeEvent is one line of the JSONL store: an append-only event log that
// is folded back into per-session records on Load. Appending one small line
// per answer (instead of rewriting a snapshot) keeps the write path O(1)
// and makes a torn write affect at most the final line.
type storeEvent struct {
	Op     string         `json:"op"` // "create" | "answer" | "finish"
	ID     string         `json:"id"`
	Rec    *SessionRecord `json:"rec,omitempty"`
	Answer *bool          `json:"answer,omitempty"`
}

// JSONLStore is an append-only newline-delimited-JSON SessionStore. Events
// are written unbuffered so a crash loses at most the event being written;
// Load tolerates a torn final line (the signature of a mid-write crash) by
// ignoring it.
type JSONLStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJSONLStore opens (creating if needed) an append-only JSONL store.
func OpenJSONLStore(path string) (*JSONLStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	return &JSONLStore{f: f, path: path}, nil
}

func (s *JSONLStore) append(ev storeEvent) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	return nil
}

// Create implements SessionStore.
func (s *JSONLStore) Create(rec SessionRecord) error {
	cp := rec
	return s.append(storeEvent{Op: "create", ID: rec.ID, Rec: &cp})
}

// Answer implements SessionStore.
func (s *JSONLStore) Answer(id string, preferFirst bool) error {
	return s.append(storeEvent{Op: "answer", ID: id, Answer: &preferFirst})
}

// Finish implements SessionStore.
func (s *JSONLStore) Finish(id string) error {
	return s.append(storeEvent{Op: "finish", ID: id})
}

// Load implements SessionStore. It reads the whole event log and folds it
// into the latest state of every unfinished session.
func (s *JSONLStore) Load() ([]SessionRecord, int64, error) {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("server: store: %w", err)
	}
	defer f.Close()

	recs := map[string]*SessionRecord{}
	var order []string
	var lastID int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev storeEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// A torn final line from a crash mid-write; anything after it
			// was never acknowledged, so stop folding here.
			break
		}
		switch ev.Op {
		case "create":
			if ev.Rec == nil {
				continue
			}
			cp := *ev.Rec
			cp.Answers = append([]bool(nil), ev.Rec.Answers...)
			if _, seen := recs[ev.ID]; !seen {
				order = append(order, ev.ID)
			}
			recs[ev.ID] = &cp
			if n := sessionIDNum(ev.ID); n > lastID {
				lastID = n
			}
		case "answer":
			if rec, ok := recs[ev.ID]; ok && ev.Answer != nil {
				rec.Answers = append(rec.Answers, *ev.Answer)
			}
		case "finish":
			delete(recs, ev.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("server: store: %w", err)
	}
	out := make([]SessionRecord, 0, len(recs))
	for _, id := range order {
		if rec, ok := recs[id]; ok {
			out = append(out, *rec)
		}
	}
	return out, lastID, nil
}

// Close implements SessionStore.
func (s *JSONLStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
