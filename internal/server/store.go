package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ist/internal/clock"
	"ist/internal/obs"
	"ist/internal/wal"
)

// SessionRecord is everything needed to deterministically rebuild an
// in-flight session: the identity of its algorithm (name + seed), the
// fingerprint of the dataset it was recorded against (replaying on other
// data would silently diverge), and the ordered answer log. Questions are
// not stored — the seeded algorithm re-derives them during replay.
type SessionRecord struct {
	ID          string `json:"id"`
	Algorithm   string `json:"algorithm"`
	Seed        int64  `json:"seed"`
	Fingerprint uint64 `json:"fingerprint"`
	Answers     []bool `json:"answers,omitempty"`
}

// SessionStore persists session state incrementally so a restarted server
// can rehydrate in-flight sessions by transcript replay. Implementations
// must be safe for concurrent use.
type SessionStore interface {
	// Create persists a new session's identity (with an empty answer log).
	Create(rec SessionRecord) error
	// Answer appends one answer to the session's log.
	Answer(id string, preferFirst bool) error
	// Finish forgets a session — completed, deleted, expired, or failed —
	// so it will not be rehydrated on restart.
	Finish(id string) error
	// Load returns the record of every unfinished session plus the highest
	// numeric session id ever created (so a restarted server never reuses
	// an id a client may still be polling).
	Load() ([]SessionRecord, int64, error)
	// Close releases any backing resources. Close does NOT finish live
	// sessions: a graceful shutdown keeps them replayable.
	Close() error
}

// SpanSessionStore is the optional tracing capability of a SessionStore:
// AnswerSpan behaves exactly like Answer but records the persistence (and
// any fsync it triggers) as children of parent. The server type-asserts for
// it; stores without it are simply persisted untraced. WALStore implements
// it.
type SpanSessionStore interface {
	SessionStore
	AnswerSpan(id string, preferFirst bool, parent *obs.Span) error
}

// sessionIDNum extracts the numeric part of an "s<n>" session id (0 if the
// id has some other shape).
func sessionIDNum(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "s%d", &n); err != nil {
		return 0
	}
	return n
}

// MemStore is an in-memory SessionStore: no crash durability, but it gives
// tests and single-process deployments the same code path as the durable
// stores.
type MemStore struct {
	mu   sync.Mutex
	fold eventFold
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{fold: newEventFold()} }

// Create implements SessionStore.
func (m *MemStore) Create(rec SessionRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := rec
	m.fold.apply(storeEvent{Op: "create", ID: rec.ID, Rec: &cp})
	return nil
}

// Answer implements SessionStore.
func (m *MemStore) Answer(id string, preferFirst bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.fold.recs[id]; !ok {
		return fmt.Errorf("server: store: answer for unknown session %q", id)
	}
	m.fold.apply(storeEvent{Op: "answer", ID: id, Answer: &preferFirst})
	return nil
}

// Finish implements SessionStore.
func (m *MemStore) Finish(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fold.apply(storeEvent{Op: "finish", ID: id})
	return nil
}

// Load implements SessionStore.
func (m *MemStore) Load() ([]SessionRecord, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fold.records(), m.fold.lastID, nil
}

// Close implements SessionStore.
func (m *MemStore) Close() error { return nil }

// storeEvent is one event of the append-only session log (one JSONL line,
// or one WAL record): folded back into per-session records on Load.
// Appending one small event per answer (instead of rewriting a snapshot)
// keeps the write path O(1) and bounds what a torn write can damage.
type storeEvent struct {
	Op     string         `json:"op"` // "create" | "answer" | "finish"
	ID     string         `json:"id"`
	Rec    *SessionRecord `json:"rec,omitempty"`
	Answer *bool          `json:"answer,omitempty"`
}

// eventFold replays store events into the latest per-session state. It is
// the one folding rule every store shares, so the in-memory view, the
// JSONL loader and the WAL snapshotter cannot drift apart.
type eventFold struct {
	recs   map[string]*SessionRecord
	order  []string
	lastID int64
}

func newEventFold() eventFold {
	return eventFold{recs: map[string]*SessionRecord{}}
}

// apply folds one event. Unknown ops and answers for unknown sessions are
// ignored: a recovered log may have gaps, and folding must never abort.
func (f *eventFold) apply(ev storeEvent) {
	switch ev.Op {
	case "create":
		if ev.Rec == nil {
			return
		}
		cp := *ev.Rec
		cp.Answers = append([]bool(nil), ev.Rec.Answers...)
		if _, seen := f.recs[ev.ID]; !seen {
			f.order = append(f.order, ev.ID)
		}
		f.recs[ev.ID] = &cp
		if n := sessionIDNum(ev.ID); n > f.lastID {
			f.lastID = n
		}
	case "answer":
		if rec, ok := f.recs[ev.ID]; ok && ev.Answer != nil {
			rec.Answers = append(rec.Answers, *ev.Answer)
		}
	case "finish":
		delete(f.recs, ev.ID)
	}
}

// records returns the unfinished sessions in creation order, deep-copied.
func (f *eventFold) records() []SessionRecord {
	out := make([]SessionRecord, 0, len(f.recs))
	for _, id := range f.order {
		if rec, ok := f.recs[id]; ok {
			cp := *rec
			cp.Answers = append([]bool(nil), rec.Answers...)
			out = append(out, cp)
		}
	}
	return out
}

// JSONLStore is an append-only newline-delimited-JSON SessionStore, kept
// as the simple single-file option and as the migration source for
// WALStore. Durability follows a wal.SyncPolicy (default: fsync every
// append — an acknowledged answer survives a power cut); Load tolerates a
// torn final line and skips-and-counts corrupt mid-file lines instead of
// failing rehydration.
type JSONLStore struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	policy   wal.SyncPolicy
	every    time.Duration
	clk      clock.Clock
	lastSync time.Time
	dirty    bool
	corrupt  int // lines skipped by the most recent Load
}

// OpenJSONLStore opens (creating if needed) an append-only JSONL store
// with the always-fsync policy.
func OpenJSONLStore(path string) (*JSONLStore, error) {
	return OpenJSONLStoreSync(path, wal.SyncAlways, 0, nil)
}

// OpenJSONLStoreSync opens the store with an explicit fsync policy. every
// and clk matter only for wal.SyncInterval (zero values mean 100ms on the
// real clock). The parent directory is fsynced after opening so a freshly
// created log file survives a power cut — a store whose file vanishes
// "persisted" nothing.
func OpenJSONLStoreSync(path string, policy wal.SyncPolicy, every time.Duration, clk clock.Clock) (*JSONLStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	if err := wal.OS.SyncDir(filepath.Dir(path)); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("server: store: sync dir: %w", err)
	}
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	if clk == nil {
		clk = clock.Real
	}
	return &JSONLStore{f: f, path: path, policy: policy, every: every, clk: clk, lastSync: clk.Now()}, nil
}

func (s *JSONLStore) append(ev storeEvent) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore locksafe s.mu is the append serialization point: interleaved writes would corrupt the JSONL stream
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	s.dirty = true
	switch s.policy {
	case wal.SyncAlways:
		return s.syncLocked()
	case wal.SyncInterval:
		if clock.Since(s.clk, s.lastSync) >= s.every {
			return s.syncLocked()
		}
	}
	return nil
}

// syncLocked flushes the file. Callers hold s.mu.
func (s *JSONLStore) syncLocked() error {
	if !s.dirty {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("server: store: fsync: %w", err)
	}
	s.lastSync = s.clk.Now()
	s.dirty = false
	return nil
}

// Create implements SessionStore.
func (s *JSONLStore) Create(rec SessionRecord) error {
	cp := rec
	return s.append(storeEvent{Op: "create", ID: rec.ID, Rec: &cp})
}

// Answer implements SessionStore.
func (s *JSONLStore) Answer(id string, preferFirst bool) error {
	return s.append(storeEvent{Op: "answer", ID: id, Answer: &preferFirst})
}

// Finish implements SessionStore.
func (s *JSONLStore) Finish(id string) error {
	return s.append(storeEvent{Op: "finish", ID: id})
}

// Load implements SessionStore. It reads the whole event log and folds it
// into the latest state of every unfinished session. A torn final line
// (the signature of a mid-write crash) is ignored; a corrupt line earlier
// in the file is skipped and counted — one bad sector must not discard
// every session recorded after it.
func (s *JSONLStore) Load() ([]SessionRecord, int64, error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("server: store: %w", err)
	}
	// A file not ending in '\n' has a torn final line; everything before
	// the last newline consists of complete lines that were once
	// acknowledged, so damage there is corruption, not tearing.
	torn := len(data) > 0 && data[len(data)-1] != '\n'
	lines := bytes.Split(data, []byte("\n"))
	if n := len(lines); n > 0 && (torn || len(lines[n-1]) == 0) {
		lines = lines[:n-1]
	}
	fold := newEventFold()
	corrupt := 0
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		var ev storeEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			corrupt++
			continue
		}
		fold.apply(ev)
	}
	if corrupt > 0 {
		log.Printf("server: store: skipped %d corrupt line(s) in %s; continuing with %d session(s)",
			corrupt, s.path, len(fold.recs))
	}
	s.mu.Lock()
	s.corrupt = corrupt
	s.mu.Unlock()
	return fold.records(), fold.lastID, nil
}

// CorruptLines reports how many corrupt lines the most recent Load skipped.
func (s *JSONLStore) CorruptLines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Close implements SessionStore, flushing pending appends first.
func (s *JSONLStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.syncLocked()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
