package server

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/faultinject"
	"ist/internal/wal"
)

// This file holds the exhaustive crash-point matrix for the WAL session
// store: a scripted workload (creates, answers, finishes — enough to force
// segment rotation, auto-snapshots and compaction) is crashed at EVERY
// filesystem write site, for every fsync policy, then reopened. At each
// site the recovered state must equal the fold of a consistent prefix of
// the submitted events, and under fsync=always the prefix must cover every
// acknowledged event. Set CRASH_REPORT to a path to get the full matrix as
// a JSON artifact (CI uploads it from the crash-smoke job).

type scriptOp struct {
	op  string // "create" | "answer" | "finish"
	id  string
	ans bool
}

// crashScript is the deterministic workload. Every op changes the folded
// state, so each prefix folds to a distinct state and the matched prefix
// length is unambiguous.
var crashScript = []scriptOp{
	{op: "create", id: "s1"},
	{op: "answer", id: "s1", ans: true},
	{op: "answer", id: "s1", ans: false},
	{op: "create", id: "s2"},
	{op: "answer", id: "s2", ans: true},
	{op: "answer", id: "s1", ans: true},
	{op: "finish", id: "s2"},
	{op: "create", id: "s3"},
	{op: "answer", id: "s3", ans: false},
	{op: "answer", id: "s3", ans: true},
	{op: "finish", id: "s1"},
	{op: "answer", id: "s3", ans: true},
	{op: "create", id: "s4"},
	{op: "answer", id: "s4", ans: false},
	{op: "answer", id: "s3", ans: false},
	{op: "finish", id: "s3"},
}

// scriptRecord is the session identity the script creates.
func scriptRecord(id string) SessionRecord {
	return SessionRecord{ID: id, Algorithm: "rh", Seed: 7, Fingerprint: 0xbeef}
}

// applyToStore submits one script op to the store under test.
func applyToStore(st SessionStore, op scriptOp) error {
	switch op.op {
	case "create":
		return st.Create(scriptRecord(op.id))
	case "answer":
		return st.Answer(op.id, op.ans)
	default:
		return st.Finish(op.id)
	}
}

// applyToFold folds one script op with the reference folding rule.
func applyToFold(f *eventFold, op scriptOp) {
	switch op.op {
	case "create":
		rec := scriptRecord(op.id)
		f.apply(storeEvent{Op: "create", ID: op.id, Rec: &rec})
	case "answer":
		ans := op.ans
		f.apply(storeEvent{Op: "answer", ID: op.id, Answer: &ans})
	default:
		f.apply(storeEvent{Op: "finish", ID: op.id})
	}
}

// matchPrefix returns the length of the script prefix whose fold equals the
// recovered state, or -1 if no prefix matches.
func matchPrefix(recs []SessionRecord, lastID int64) int {
	fold := newEventFold()
	match := -1
	if reflect.DeepEqual(fold.records(), recs) && fold.lastID == lastID {
		match = 0
	}
	for j, op := range crashScript {
		applyToFold(&fold, op)
		if reflect.DeepEqual(fold.records(), recs) && fold.lastID == lastID {
			match = j + 1
		}
	}
	return match
}

// walStoreSweep builds the sweep for one fsync policy. Tiny segments and a
// small snapshot interval force rotation, snapshotting and compaction to
// all happen inside the swept workload. The frozen fake clock makes the
// interval policy deterministic (it never syncs on its own — the maximal
// data-at-risk configuration).
func walStoreSweep(policy wal.SyncPolicy) faultinject.CrashPointSweep {
	opts := func(fs *faultinject.FS) WALOptions {
		return WALOptions{
			Fsync:         policy,
			FsyncEvery:    time.Second,
			SnapshotEvery: 4,
			SegmentBytes:  160,
			Clock:         clock.NewFake(time.Unix(0, 0)),
			FS:            fs,
		}
	}
	return faultinject.CrashPointSweep{
		Name: policy.String(),
		Workload: func(fs *faultinject.FS) (acked int) {
			st, err := OpenWALStore("store", opts(fs))
			if err != nil {
				return 0
			}
			for _, op := range crashScript {
				if applyToStore(st, op) == nil {
					acked++
				}
			}
			_ = st.Close()
			return acked
		},
		Check: func(fs *faultinject.FS, acked int) error {
			st, err := OpenWALStore("store", opts(fs))
			if err != nil {
				return fmt.Errorf("reopen after crash: %w", err)
			}
			defer func() { _ = st.Close() }()
			recs, lastID, err := st.Load()
			if err != nil {
				return fmt.Errorf("load after crash: %w", err)
			}
			j := matchPrefix(recs, lastID)
			if j < 0 {
				return fmt.Errorf("recovered state is not a prefix fold: lastID=%d recs=%+v", lastID, recs)
			}
			if policy == wal.SyncAlways && j < acked {
				return fmt.Errorf("fsync=always lost acknowledged events: prefix %d < acked %d", j, acked)
			}
			return nil
		},
	}
}

func TestCrashPointMatrix(t *testing.T) {
	var report struct {
		Matrices []faultinject.CrashMatrix `json:"matrices"`
	}
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		m := walStoreSweep(policy).Run()
		report.Matrices = append(report.Matrices, m)
		if m.TotalOps < len(crashScript) {
			t.Errorf("%s: workload performed only %d fs ops for %d events — the sweep is not exercising the store",
				policy, m.TotalOps, len(crashScript))
		}
		t.Logf("%s: %d crash sites swept, %d failures", policy, m.TotalOps, m.Failures)
		if m.Failures > 0 {
			shown := 0
			for _, site := range m.Sites {
				if site.Err != "" && shown < 5 {
					t.Errorf("%s: crash at op %d (acked %d): %s", policy, site.Op, site.Acked, site.Err)
					shown++
				}
			}
			if m.Failures > shown {
				t.Errorf("%s: ...and %d more failing sites", policy, m.Failures-shown)
			}
		}
	}
	if path := os.Getenv("CRASH_REPORT"); path != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write crash report: %v", err)
		}
		t.Logf("crash report written to %s", path)
	}
}
