package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/wal"
)

func TestWALStoreRoundtrip(t *testing.T) {
	testStoreRoundtrip(t, func(t *testing.T) SessionStore {
		s, err := OpenWALStore(t.TempDir(), WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestWALStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenWALStore(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Answer("s1", true); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash, then append through a fresh handle.
	b, err := OpenWALStore(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if err := b.Answer("s1", false); err != nil {
		t.Fatal(err)
	}
	recs, _, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Answers) != 2 || !recs[0].Answers[0] || recs[0].Answers[1] {
		t.Fatalf("folded record wrong after reopen: %+v", recs)
	}
}

func TestWALStoreAnswerUnknownSession(t *testing.T) {
	s, err := OpenWALStore(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if err := s.Answer("nope", true); err == nil {
		t.Fatal("answer for a session never created must fail")
	}
}

// TestWALStoreSnapshotCompaction: frequent snapshots with tiny segments
// keep the directory bounded, and a reopen rebuilds the identical state
// from snapshot + tail.
func TestWALStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWALStore(dir, WALOptions{SnapshotEvery: 4, SegmentBytes: 160})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Answer("s1", i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 21 events, snapshot every 4: without compaction the 160-byte segments
	// would pile up past a dozen files.
	if len(entries) > 5 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("compaction left %d files: %v", len(entries), names)
	}

	r, err := OpenWALStore(dir, WALOptions{SnapshotEvery: 4, SegmentBytes: 160})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if r.Recovery().Snapshot == nil {
		t.Error("reopen found no snapshot after 21 events with SnapshotEvery=4")
	}
	recs, lastID, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lastID != 1 || len(recs) != 1 || len(recs[0].Answers) != 20 {
		t.Fatalf("state after reopen: lastID=%d recs=%+v", lastID, recs)
	}
	for i, ans := range recs[0].Answers {
		if ans != (i%3 == 0) {
			t.Fatalf("answer %d flipped after snapshot round-trip", i)
		}
	}
}

// TestWALStoreMigratesLegacyJSONL: pointing a fresh WAL store at an
// existing JSONL file imports its sessions once and moves the file aside.
func TestWALStoreMigratesLegacyJSONL(t *testing.T) {
	tmp := t.TempDir()
	legacyPath := filepath.Join(tmp, "sessions.jsonl")
	legacy, err := OpenJSONLStore(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 8, Fingerprint: 0xabc}); err != nil {
		t.Fatal(err)
	}
	for _, ans := range []bool{true, false, true} {
		if err := legacy.Answer("s1", ans); err != nil {
			t.Fatal(err)
		}
	}
	if err := legacy.Create(SessionRecord{ID: "s2", Algorithm: "hdpi", Seed: 9, Fingerprint: 0xabc}); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Finish("s2"); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(tmp, "store")
	s, err := OpenWALStore(dir, WALOptions{MigrateJSONL: legacyPath})
	if err != nil {
		t.Fatal(err)
	}
	if s.Migrated() != 1 {
		t.Errorf("Migrated() = %d, want 1 (s2 was finished)", s.Migrated())
	}
	recs, lastID, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lastID != 2 || len(recs) != 1 || recs[0].ID != "s1" || len(recs[0].Answers) != 3 {
		t.Fatalf("migrated state wrong: lastID=%d recs=%+v", lastID, recs)
	}
	if _, err := os.Stat(legacyPath); !os.IsNotExist(err) {
		t.Errorf("legacy file still present after migration: %v", err)
	}
	if _, err := os.Stat(legacyPath + ".migrated"); err != nil {
		t.Errorf("legacy file not preserved as .migrated: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A second boot migrates nothing and sees the same state.
	s2, err := OpenWALStore(dir, WALOptions{MigrateJSONL: legacyPath})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if s2.Migrated() != 0 {
		t.Errorf("second boot re-migrated %d sessions", s2.Migrated())
	}
	recs2, lastID2, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lastID2 != 2 || len(recs2) != 1 || len(recs2[0].Answers) != 3 {
		t.Fatalf("state after second boot: lastID=%d recs=%+v", lastID2, recs2)
	}
}

// TestJSONLStoreSkipsCorruptMidLine: one bad sector mid-file must not
// discard the sessions recorded after it.
func TestJSONLStoreSkipsCorruptMidLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Answer("s1", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(SessionRecord{ID: "s2", Algorithm: "hdpi", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle line (the answer), leaving its newline in place.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitN(data, []byte("\n"), 3)
	if len(lines) != 3 {
		t.Fatalf("expected 3 chunks, got %d", len(lines))
	}
	for i := range lines[1] {
		lines[1][i] = 'X'
	}
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	recs, lastID, err := r.Load()
	if err != nil {
		t.Fatalf("mid-file corruption must not fail Load: %v", err)
	}
	if r.CorruptLines() != 1 {
		t.Errorf("CorruptLines() = %d, want 1", r.CorruptLines())
	}
	if lastID != 2 || len(recs) != 2 {
		t.Fatalf("sessions after the bad line lost: lastID=%d recs=%+v", lastID, recs)
	}
	if recs[0].ID != "s1" || len(recs[0].Answers) != 0 || recs[1].ID != "s2" {
		t.Fatalf("fold wrong after skipping corruption: %+v", recs)
	}
}

// TestJSONLStoreIntervalPolicy: the interval policy batches fsyncs on the
// injected clock and Close flushes the remainder — here just pinned to not
// error and to keep the data readable.
func TestJSONLStoreIntervalPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	clk := clock.NewFake(time.Unix(0, 0))
	s, err := OpenJSONLStoreSync(path, wal.SyncInterval, 50*time.Millisecond, clk)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create(SessionRecord{ID: "s1", Algorithm: "rh", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(60 * time.Millisecond)
	if err := s.Answer("s1", true); err != nil { // crosses the interval: syncs
		t.Fatal(err)
	}
	if err := s.Answer("s1", false); err != nil { // buffered until Close
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	recs, _, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Answers) != 2 {
		t.Fatalf("interval-policy store lost data on graceful close: %+v", recs)
	}
}
