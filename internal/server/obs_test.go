package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ist"
	"ist/internal/obs"
)

func scrape(t *testing.T, srv *Server) (string, string) {
	t.Helper()
	rec := doRaw(t, srv, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: code %d", rec.Code)
	}
	return rec.Body.String(), rec.Header().Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _, hidden := newTestServer(t)

	// Before any session: every standard metric is exposed at zero.
	body, ctype := scrape(t, srv)
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ctype)
	}
	for _, name := range []string{
		obs.MetricQuestions, obs.MetricLPSolves, obs.MetricCuts,
		obs.MetricQuestionLatency, obs.MetricQuestionsCertify,
		obs.MetricSessionsTotal, obs.MetricSessionsLive,
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("metric %s missing from exposition:\n%s", name, body)
		}
	}
	if !strings.Contains(body, obs.MetricQuestions+" 0\n") {
		t.Fatalf("fresh server should expose zero questions:\n%s", body)
	}

	_, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
	st, ok := drive(t, srv, st, hidden)
	if !ok {
		t.Fatal("session did not finish")
	}

	body, _ = scrape(t, srv)
	if strings.Contains(body, obs.MetricQuestions+" 0\n") {
		t.Fatalf("questions counter did not move:\n%s", body)
	}
	wantLines := []string{
		obs.MetricSessionsTotal + " 1",
		obs.MetricSessionsLive + " 1", // finished but not yet deleted/expired
		obs.MetricQuestionsCertify + "_count 1",
	}
	for _, line := range wantLines {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing %q in exposition:\n%s", line, body)
		}
	}
	// Every answered question was timed into the latency histogram.
	if !strings.Contains(body, obs.MetricQuestionLatency+"_count "+itoa(st.Questions)+"\n") {
		t.Errorf("latency histogram count != %d questions:\n%s", st.Questions, body)
	}
	// RH cuts its polytope once per answer.
	if !strings.Contains(body, obs.MetricCuts+" "+itoa(st.Questions)+"\n") {
		t.Errorf("cut counter != %d answers:\n%s", st.Questions, body)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestMetricsEndpointMethod(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := doRaw(t, srv, http.MethodPost, "/metrics", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("POST /metrics: code %d, want 404", rec.Code)
	}
}

func TestPprofEndpoints(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		rec := doRaw(t, srv, http.MethodGet, path, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: code %d", path, rec.Code)
		}
	}
	rec := doRaw(t, srv, http.MethodGet, "/debug/pprof/goroutine?debug=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("goroutine profile: code %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("goroutine profile has no content")
	}
}

func TestHealthzSessionsTotal(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, a := do(t, srv, http.MethodPost, "/sessions", nil)
	_, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	doRaw(t, srv, http.MethodDelete, "/sessions/"+a.ID, "")

	rec := doRaw(t, srv, http.MethodGet, "/healthz", "")
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 1 {
		t.Fatalf("live sessions = %d, want 1", h.Sessions)
	}
	if h.SessionsTotal != 2 {
		t.Fatalf("total sessions = %d, want 2 (deletion must not erase history)", h.SessionsTotal)
	}
}

func TestTraceDirWritesJSONL(t *testing.T) {
	band, k, hidden := testBand(t)
	dir := t.TempDir()
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	_, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
	st, ok := drive(t, srv, st, hidden)
	if !ok {
		t.Fatal("session did not finish")
	}

	f, err := os.Open(filepath.Join(dir, st.ID+".jsonl"))
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	defer f.Close()
	var events, answers int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			Seq  int64   `json:"seq"`
			T    float64 `json:"tSeconds"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		events++
		if rec.Seq != int64(events) {
			t.Fatalf("line %d has seq %d", events, rec.Seq)
		}
		if rec.Kind == string(obs.KindAnswerReceived) {
			answers++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if answers != st.Questions {
		t.Fatalf("trace has %d answer events, session answered %d", answers, st.Questions)
	}
}

// TestTraceDirSurvivesDelete asserts aborting a session closes its trace
// cleanly (the file stays, the stream just ends).
func TestTraceDirSurvivesDelete(t *testing.T) {
	band, k, _ := testBand(t)
	dir := t.TempDir()
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	doRaw(t, srv, http.MethodDelete, "/sessions/"+st.ID, "")
	if _, err := os.Stat(filepath.Join(dir, st.ID+".jsonl")); err != nil {
		t.Fatalf("trace file gone after delete: %v", err)
	}
}

// TestObserveFacade pins the public wiring: Observe attaches to every
// instrumented algorithm and reports false for baselines that cannot trace.
func TestObserveFacade(t *testing.T) {
	c := obs.NewCounting()
	if !ist.Observe(ist.NewRH(1), c) {
		t.Fatal("Observe(RH) = false")
	}
	if !ist.Observe(ist.NewHDPI(1), c) {
		t.Fatal("Observe(HDPI) = false")
	}
	if !ist.Observe(ist.NewTwoDPI(), c) {
		t.Fatal("Observe(TwoDPI) = false")
	}
	if ist.Observe(ist.NewUtilityApprox(0.1), c) {
		t.Fatal("Observe(baseline) = true; baselines are uninstrumented")
	}
}
