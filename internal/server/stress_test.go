package server

import (
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"ist"
)

// TestConcurrentStressWithReaper hammers the server from many goroutines —
// creating, answering, deleting, and abandoning sessions — while the
// background reaper runs on a tight interval and a session cap forces 429s.
// Run under -race this is the concurrency contract of the whole layer: no
// data race, no deadlock, and every session that completes is correct.
func TestConcurrentStressWithReaper(t *testing.T) {
	band, k, _ := testBand(t)
	store := NewMemStore() // exercise the store's own locking too
	srv, err := New(band, k, Options{
		Seed:         3,
		TTL:          150 * time.Millisecond,
		ReapInterval: 10 * time.Millisecond,
		MaxSessions:  32,
		Store:        store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers = 12
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + wkr)))
			for s := 0; s < perWorker; s++ {
				hidden := ist.RandomUtility(rng, 4)
				rec, st := do(nil, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
				if rec.Code == http.StatusTooManyRequests {
					continue // cap reached; a valid outcome under load
				}
				if rec.Code != http.StatusCreated {
					errs <- "create: " + rec.Body.String()
					continue
				}
				switch s % 3 {
				case 0: // drive to completion and verify the answer
					for steps := 0; !st.Done && steps < 5000; steps++ {
						p := ist.Point(st.Question.Option1)
						q := ist.Point(st.Question.Option2)
						prefer := 2
						if hidden.Dot(p) >= hidden.Dot(q) {
							prefer = 1
						}
						rec, st = do(nil, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
						if rec.Code == http.StatusNotFound {
							break // reaped mid-drive under an aggressive TTL; acceptable
						}
						if rec.Code != http.StatusOK {
							errs <- "answer: " + rec.Body.String()
							break
						}
					}
					if st.Done && !ist.IsTopK(band, hidden, k, ist.Point(st.Result)) {
						errs <- "completed session returned non-top-k point"
					}
				case 1: // answer a few, then delete mid-flight
					for steps := 0; !st.Done && steps < 3; steps++ {
						p := ist.Point(st.Question.Option1)
						q := ist.Point(st.Question.Option2)
						prefer := 2
						if hidden.Dot(p) >= hidden.Dot(q) {
							prefer = 1
						}
						rec, st = do(nil, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
						if rec.Code != http.StatusOK {
							break
						}
					}
					do(nil, srv, http.MethodDelete, "/sessions/"+st.ID, nil)
				case 2: // abandon: the reaper must collect it
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// Every abandoned session must eventually be reaped.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper left %d sessions alive", srv.Sessions())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCloseRacesInFlightRequests shuts the server down while requests are
// still arriving; nothing may deadlock or race, and late creates are turned
// away cleanly.
func TestCloseRacesInFlightRequests(t *testing.T) {
	band, k, _ := testBand(t)
	srv, err := New(band, k, Options{Seed: 5, TTL: time.Minute, ReapInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, st := do(nil, srv, http.MethodPost, "/sessions", nil)
				if st.ID != "" {
					do(nil, srv, http.MethodGet, "/sessions/"+st.ID, nil)
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	srv.Close()
	wg.Wait()
	// After Close every remaining create is refused, not deadlocked.
	rec, _ := do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create after close: code %d, want 503", rec.Code)
	}
}
