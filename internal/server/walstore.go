package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"ist/internal/clock"
	"ist/internal/obs"
	"ist/internal/wal"
)

// WALOptions configure a WALStore. The zero value is production-safe:
// fsync on every append, 1 MiB segments, a snapshot every 256 events.
type WALOptions struct {
	// Fsync is the append durability policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// FsyncEvery is the batching interval for wal.SyncInterval.
	FsyncEvery time.Duration
	// SnapshotEvery folds the event log into a snapshot (and compacts old
	// segments) every this many appended events (default 256; negative
	// disables snapshotting).
	SnapshotEvery int
	// SegmentBytes is the segment rotation threshold.
	SegmentBytes int64
	// Clock drives fsync batching and latency metrics (default real).
	Clock clock.Clock
	// FS substitutes the filesystem — the crash-point harness injects a
	// crash-simulating one (default the real filesystem).
	FS wal.FS
	// Metrics, when set, surfaces the log's durability metrics.
	Metrics *wal.Metrics
	// MigrateJSONL names a legacy JSONL store file. When the WAL directory
	// is empty and this file exists, its sessions are folded into the
	// store's first snapshot and the file is renamed to <name>.migrated —
	// a one-shot, re-entrant migration (a crash mid-migration re-runs it;
	// a second boot finds no file and skips it).
	MigrateJSONL string
}

// walSnapshot is the folded state a snapshot persists.
type walSnapshot struct {
	Recs   []SessionRecord `json:"recs"`
	LastID int64           `json:"lastId"`
}

// WALStore is the crash-safe SessionStore: events go to a checksummed,
// segment-rotated write-ahead log (internal/wal) and are periodically
// folded into an atomic snapshot. Unlike JSONLStore it also keeps the
// folded state in memory, so Load is O(live sessions) and snapshots never
// re-read the log.
type WALStore struct {
	mu            sync.Mutex
	log           *wal.Log
	fold          eventFold
	appends       int // since the last snapshot
	snapshotEvery int
	recovery      wal.Recovery
	migrated      int // sessions imported from a legacy JSONL store
}

// OpenWALStore opens (creating if needed) the WAL session store in dir,
// recovering whatever a previous process — cleanly shut down or not —
// left behind. Recovery never aborts on damage: torn tails are truncated,
// corrupt records skipped and counted, damaged segments quarantined; the
// damage report is logged and kept on the store for inspection.
func OpenWALStore(dir string, o WALOptions) (*WALStore, error) {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 256
	}
	l, rec, err := wal.Open(dir, wal.Options{
		Sync:         o.Fsync,
		SyncEvery:    o.FsyncEvery,
		SegmentBytes: o.SegmentBytes,
		Clock:        o.Clock,
		FS:           o.FS,
		Metrics:      o.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("server: walstore: %w", err)
	}
	s := &WALStore{log: l, fold: newEventFold(), snapshotEvery: o.SnapshotEvery, recovery: *rec}
	if rec.Snapshot != nil {
		var snap walSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			_ = l.Close()
			return nil, fmt.Errorf("server: walstore: undecodable snapshot (checksum valid — incompatible format?): %w", err)
		}
		for i := range snap.Recs {
			cp := snap.Recs[i]
			s.fold.apply(storeEvent{Op: "create", ID: cp.ID, Rec: &cp})
		}
		if snap.LastID > s.fold.lastID {
			s.fold.lastID = snap.LastID
		}
	}
	undecodable := 0
	for _, payload := range rec.Records {
		var ev storeEvent
		if err := json.Unmarshal(payload, &ev); err != nil {
			undecodable++ // checksum-valid but unparseable: count, keep going
			continue
		}
		s.fold.apply(ev)
	}
	s.recovery.CorruptRecords += undecodable
	if s.recovery.Damaged() || undecodable > 0 {
		log.Printf("server: walstore: recovered %s with damage: %d corrupt record(s) skipped, %d segment(s) quarantined, %d snapshot(s) discarded",
			dir, s.recovery.CorruptRecords, s.recovery.QuarantinedSegments, s.recovery.DiscardedSnapshots)
	}
	if rec.Snapshot == nil && len(rec.Records) == 0 && o.MigrateJSONL != "" {
		if err := s.migrate(o.MigrateJSONL); err != nil {
			_ = l.Close()
			return nil, err
		}
	}
	return s, nil
}

// migrate folds a legacy JSONL store into this store's first snapshot,
// then renames the file out of the way. Called only on an empty WAL.
func (s *WALStore) migrate(path string) error {
	if _, err := os.Stat(path); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("server: walstore: migrate: %w", err)
	}
	legacy, err := OpenJSONLStore(path)
	if err != nil {
		return fmt.Errorf("server: walstore: migrate: %w", err)
	}
	recs, lastID, err := legacy.Load()
	if cerr := legacy.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("server: walstore: migrate: %w", err)
	}
	for i := range recs {
		cp := recs[i]
		s.fold.apply(storeEvent{Op: "create", ID: cp.ID, Rec: &cp})
	}
	if lastID > s.fold.lastID {
		s.fold.lastID = lastID
	}
	// The snapshot is the durability point of the migration: only after it
	// lands does the legacy file move aside. A crash in between re-runs
	// the migration idempotently on the next boot.
	if err := s.snapshotLocked(); err != nil {
		return fmt.Errorf("server: walstore: migrate: %w", err)
	}
	if err := os.Rename(path, path+".migrated"); err != nil {
		return fmt.Errorf("server: walstore: migrate: %w", err)
	}
	s.migrated = len(recs)
	if skipped := legacy.CorruptLines(); skipped > 0 {
		log.Printf("server: walstore: migration skipped %d corrupt line(s) in %s", skipped, path)
	}
	log.Printf("server: walstore: migrated %d session(s) from %s (renamed to %s.migrated)", len(recs), path, path)
	return nil
}

// append persists one event and folds it into the in-memory state —
// memory is updated only after the log acknowledges, so a snapshot can
// never get ahead of the committed event sequence.
func (s *WALStore) append(ev storeEvent) error {
	return s.appendSpan(ev, nil)
}

// appendSpan is append under an optional parent span: the log write (and
// any fsync it causes) shows up as wal-append/wal-fsync children.
func (s *WALStore) appendSpan(ev storeEvent, parent *obs.Span) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("server: walstore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.log.AppendSpan(payload, parent); err != nil {
		return fmt.Errorf("server: walstore: %w", err)
	}
	s.fold.apply(ev)
	s.appends++
	if s.snapshotEvery > 0 && s.appends >= s.snapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			// The event itself is durable; a failed snapshot only delays
			// compaction, so the store stays up and retries next time.
			log.Printf("server: walstore: snapshot: %v", err)
		}
	}
	return nil
}

// snapshotLocked writes the folded state as a durable snapshot (and lets
// the log compact). Callers hold s.mu (or have exclusive access).
func (s *WALStore) snapshotLocked() error {
	payload, err := json.Marshal(walSnapshot{Recs: s.fold.records(), LastID: s.fold.lastID})
	if err != nil {
		return err
	}
	if err := s.log.Snapshot(payload); err != nil {
		return err
	}
	s.appends = 0
	return nil
}

// Snapshot forces a snapshot-and-compact cycle now (tests and operational
// tooling; the store normally snapshots itself every SnapshotEvery events).
func (s *WALStore) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// Recovery returns the damage report from Open.
func (s *WALStore) Recovery() wal.Recovery { return s.recovery }

// Migrated reports how many sessions Open imported from a legacy JSONL
// store (0 when no migration ran).
func (s *WALStore) Migrated() int { return s.migrated }

// Create implements SessionStore.
func (s *WALStore) Create(rec SessionRecord) error {
	cp := rec
	return s.append(storeEvent{Op: "create", ID: rec.ID, Rec: &cp})
}

// Answer implements SessionStore.
func (s *WALStore) Answer(id string, preferFirst bool) error {
	return s.AnswerSpan(id, preferFirst, nil)
}

// AnswerSpan implements SpanStore: Answer with the persistence traced
// under parent.
func (s *WALStore) AnswerSpan(id string, preferFirst bool, parent *obs.Span) error {
	s.mu.Lock()
	_, ok := s.fold.recs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: walstore: answer for unknown session %q", id)
	}
	return s.appendSpan(storeEvent{Op: "answer", ID: id, Answer: &preferFirst}, parent)
}

// WALSeq reports the sequence number of the WAL segment currently being
// appended to, for /healthz.
func (s *WALStore) WALSeq() uint64 {
	return s.log.SegmentSeq()
}

// Finish implements SessionStore.
func (s *WALStore) Finish(id string) error {
	return s.append(storeEvent{Op: "finish", ID: id})
}

// Load implements SessionStore.
func (s *WALStore) Load() ([]SessionRecord, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fold.records(), s.fold.lastID, nil
}

// Close implements SessionStore, flushing pending appends first.
func (s *WALStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}
