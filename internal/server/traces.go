package server

// The /debug/ist/traces endpoint (DESIGN.md §13): the in-process span
// repository rendered for humans and scripts without any external
// collector.
//
//	GET /debug/ist/traces                     -> JSON trace listing
//	GET /debug/ist/traces?trace=<32hex>       -> JSON span tree of one trace
//	GET /debug/ist/traces?trace=<32hex>&format=html -> waterfall HTML
//
// This file also holds the flight-recorder dump path: on a seq conflict, an
// admission shed, a session failure (rescued panic) or budget exhaustion,
// the session's recent spans are written to <TraceDir>/<id>.flight.json so
// the moments before the anomaly survive the bounded in-memory stores.

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ist/internal/obs"
)

// TraceListResponse is the JSON shape of the bare trace listing.
type TraceListResponse struct {
	Tracing bool               `json:"tracing"`
	Traces  []obs.TraceSummary `json:"traces"`
}

// TraceResponse is the JSON shape of one trace's span tree.
type TraceResponse struct {
	Trace   string          `json:"trace"`
	Spans   int             `json:"spans"`
	Dropped int             `json:"dropped,omitempty"`
	Tree    []*obs.SpanNode `json:"tree"`
}

func (srv *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if srv.spans == nil {
		http.Error(w, "tracing disabled (start the server with tracing enabled)", http.StatusNotFound)
		return
	}
	q := r.URL.Query().Get("trace")
	if q == "" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TraceListResponse{Tracing: true, Traces: srv.spans.Traces()})
		return
	}
	var id obs.TraceID
	if err := id.UnmarshalText([]byte(q)); err != nil || id.IsZero() {
		http.Error(w, "trace must be 32 hex digits", http.StatusBadRequest)
		return
	}
	spans, dropped := srv.spans.Trace(id)
	if spans == nil {
		http.Error(w, "no such trace (evicted or never seen)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = obs.WriteWaterfall(w, id, spans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(TraceResponse{
		Trace:   id.String(),
		Spans:   len(spans),
		Dropped: dropped,
		Tree:    obs.BuildTree(spans),
	})
}

// flightDump is the on-disk shape of a flight-recorder dump.
type flightDump struct {
	Session string         `json:"session"`
	Reason  string         `json:"reason"`
	At      time.Time      `json:"at"`
	Spans   []obs.SpanData `json:"spans"`
}

// dumpFlight writes the session's flight-recorder ring to the trace dir.
// A later dump for the same session overwrites an earlier one — the file is
// a black box, not an archive. No-op without tracing, without a trace dir,
// or for an unknown session; callers must not hold st.mu (file IO).
func (srv *Server) dumpFlight(id string, st *sessionState, reason string) {
	if st == nil || st.flight == nil || srv.opt.TraceDir == "" {
		return
	}
	dump := flightDump{Session: id, Reason: reason, At: srv.now(), Spans: st.flight.Snapshot()}
	payload, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(srv.opt.TraceDir, id+".flight.json")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		return
	}
	srv.flightDumps.Inc()
}
