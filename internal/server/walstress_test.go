package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"ist"
	"ist/internal/clock"
	"ist/internal/faultinject"
	"ist/internal/wal"
)

// TestWALStoreCrashRestartStress is the end-to-end durability stress: N
// sessions answer concurrently over HTTP while the fault-injecting
// filesystem kills the WAL store at a random operation mid-flight. The
// server stays available (persist errors are logged, not served), so the
// interesting part is the restart: a new store over the restarted
// filesystem rehydrates whatever was durably acknowledged, every recovered
// session is driven to completion by the same simulated user, and the final
// answer is certified against that user's hidden utility vector. Run under
// -race, this also hammers the store's locking from many goroutines.
func TestWALStoreCrashRestartStress(t *testing.T) {
	band, k, _ := testBand(t)
	const sessions = 4
	for _, seed := range []int64{11, 12, 13} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			crashAt := 1 + rng.Intn(250)
			fs := faultinject.NewFS(faultinject.FSPlan{CrashAtOp: crashAt})
			walOpts := WALOptions{
				Fsync:         wal.SyncAlways,
				SnapshotEvery: 8,
				SegmentBytes:  512,
				Clock:         clock.NewFake(time.Unix(0, 0)),
				FS:            fs,
			}
			st, err := OpenWALStore("store", walOpts)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(band, k, Options{Seed: seed, TTL: time.Minute, Store: st})
			if err != nil {
				t.Fatal(err)
			}

			hidden := make([]ist.Point, sessions)
			ids := make([]string, sessions)
			finals := make([]StateResponse, sessions)
			dones := make([]bool, sessions)
			var wg sync.WaitGroup
			for i := 0; i < sessions; i++ {
				hidden[i] = ist.RandomUtility(rng, 4)
				rec, s0 := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": "rh"})
				if rec.Code != http.StatusCreated {
					t.Fatalf("create session %d: %d %s", i, rec.Code, rec.Body.String())
				}
				ids[i] = s0.ID
				wg.Add(1)
				go func(i int, s0 StateResponse) {
					defer wg.Done()
					finals[i], dones[i] = drive(nil, srv, s0, hidden[i])
				}(i, s0)
			}
			wg.Wait()
			// The server rides out the dead filesystem; sessions finish in
			// memory and their answers must already be correct.
			for i := range finals {
				if dones[i] && !ist.IsTopK(band, hidden[i], k, ist.Point(finals[i].Result)) {
					t.Errorf("pre-crash session %s returned a non-top-%d tuple", ids[i], k)
				}
			}
			srv.Close()
			if !fs.Crashed() {
				t.Logf("workload finished before op %d; restart exercises a clean log", fs.Ops())
			}

			// Power comes back: reopen the store on what the disk kept and
			// rehydrate by transcript replay.
			fs.CrashAndRestart()
			st2, err := OpenWALStore("store", walOpts)
			if err != nil {
				t.Fatalf("reopen store after crash: %v", err)
			}
			srv2, err := New(band, k, Options{Seed: seed, TTL: time.Minute, Store: st2})
			if err != nil {
				t.Fatalf("restart server after crash: %v", err)
			}
			defer srv2.Close()

			recovered := 0
			for i, id := range ids {
				rec, got := do(t, srv2, http.MethodGet, "/sessions/"+id, nil)
				if rec.Code == http.StatusNotFound {
					// Durably finished before the crash, or its create never
					// reached the disk — either way there is nothing to resume.
					continue
				}
				if rec.Code != http.StatusOK {
					t.Errorf("session %s: GET after restart: %d %s", id, rec.Code, rec.Body.String())
					continue
				}
				recovered++
				final, ok := drive(t, srv2, got, hidden[i])
				if !ok {
					t.Errorf("session %s did not finish after recovery: %+v", id, final)
					continue
				}
				if !ist.IsTopK(band, hidden[i], k, ist.Point(final.Result)) {
					t.Errorf("session %s: recovered answer %v is not in the user's top-%d", id, final.Result, k)
				}
			}
			t.Logf("crash at op %d: %d/%d sessions rehydrated and certified", crashAt, recovered, sessions)
		})
	}
}
