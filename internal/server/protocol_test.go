package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ist"
	"ist/client"
)

// This file is the regression suite for the exactly-once answer protocol
// (DESIGN.md §12): before the seq handshake, a retried POST /answer was
// applied twice, silently injecting a second halfspace cut and corrupting
// the session. Every test here drives the real handler over the real wire
// shapes.

// answerBody builds an answer POST quoting seq.
func answerBody(prefer, seq int) map[string]int {
	return map[string]int{"prefer": prefer, "seq": seq}
}

// TestDuplicateAnswerIdempotent is THE pre-fix corruption regression: the
// same answer POST delivered twice (lost response, proxy retransmit,
// impatient client) must advance the session exactly once, and the replay
// must return the byte-identical response the original carried.
func TestDuplicateAnswerIdempotent(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec, st := do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	if st.Seq != 0 {
		t.Fatalf("fresh session seq = %d, want 0", st.Seq)
	}

	first, next := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, 0))
	if first.Code != http.StatusOK {
		t.Fatalf("answer: %d %s", first.Code, first.Body.String())
	}
	if next.Seq != 1 {
		t.Fatalf("post-answer seq = %d, want 1", next.Seq)
	}

	// The duplicate: identical bytes, as a proxy would retransmit them.
	dup, dupSt := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, 0))
	if dup.Code != http.StatusOK {
		t.Fatalf("duplicate answer: %d %s (want 200 idempotent replay)", dup.Code, dup.Body.String())
	}
	if dup.Body.String() != first.Body.String() {
		t.Fatalf("replayed response differs from the original:\n  first: %s\n  dup:   %s",
			first.Body.String(), dup.Body.String())
	}
	if dupSt.Questions != 1 {
		t.Fatalf("duplicate advanced the session: questions = %d, want 1", dupSt.Questions)
	}
	// And the authoritative state really did not move.
	_, got := do(t, srv, http.MethodGet, "/sessions/"+st.ID, nil)
	if got.Questions != 1 || got.Seq != 1 {
		t.Fatalf("after duplicate: questions=%d seq=%d, want 1/1", got.Questions, got.Seq)
	}
	if srv.answerReplays.Value() != 1 {
		t.Fatalf("ist_answer_replays_total = %d, want 1", srv.answerReplays.Value())
	}
}

// TestStaleAndFutureSeqConflict: any seq that is neither the pending
// question's nor the just-applied one is refused with 409 carrying the
// authoritative state, so a confused client can always resync.
func TestStaleAndFutureSeqConflict(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	for i := 0; i < 2; i++ {
		rec, next := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, st.Seq))
		if rec.Code != http.StatusOK {
			t.Fatalf("answer %d: %d", i, rec.Code)
		}
		st = next
	}
	// st.Seq == 2 now. Stale (0) and future (7) must both conflict.
	for _, seq := range []int{0, 7} {
		rec, got := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(2, seq))
		if rec.Code != http.StatusConflict {
			t.Fatalf("seq %d: code %d, want 409", seq, rec.Code)
		}
		if got.Seq != 2 || got.Questions != 2 {
			t.Fatalf("seq %d: 409 body carries seq=%d questions=%d, want the authoritative 2/2", seq, got.Seq, got.Questions)
		}
	}
	if got := srv.seqConflicts.Value(); got != 2 {
		t.Fatalf("ist_seq_conflicts_total = %d, want 2", got)
	}
	// The conflicts must not have advanced anything.
	_, cur := do(t, srv, http.MethodGet, "/sessions/"+st.ID, nil)
	if cur.Questions != 2 {
		t.Fatalf("conflicting answers advanced the session to %d questions", cur.Questions)
	}
}

// TestMissingSeqRejected: an answer without a seq cannot be retried safely,
// so the server refuses it outright rather than guessing.
func TestMissingSeqRejected(t *testing.T) {
	srv, _, _ := newTestServer(t)
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	rec, _ := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": 1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing seq: code %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "seq") {
		t.Fatalf("missing-seq error does not mention seq: %q", rec.Body.String())
	}
	rec, _ = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, -3))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative seq: code %d, want 400", rec.Code)
	}
}

// TestFinalAnswerReplay: retrying the answer that finished the session must
// replay the done-state (result, certificate) rather than 409 — that retry
// is exactly the lost-response case the protocol exists for.
func TestFinalAnswerReplay(t *testing.T) {
	srv, _, hidden := newTestServer(t)
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)
	final, ok := drive(t, srv, st, hidden)
	if !ok {
		t.Fatal("session did not finish")
	}
	rec, got := do(t, srv, http.MethodPost, "/sessions/"+final.ID+"/answer", answerBody(1, final.Seq-1))
	if rec.Code != http.StatusOK {
		t.Fatalf("final-answer replay: %d %s", rec.Code, rec.Body.String())
	}
	if !got.Done || !reflect.DeepEqual(got.Result, final.Result) {
		t.Fatalf("replayed final state differs: %+v vs %+v", got, final)
	}
	// But answering a finished session with the "next" seq conflicts.
	rec, _ = do(t, srv, http.MethodPost, "/sessions/"+final.ID+"/answer", answerBody(1, final.Seq))
	if rec.Code != http.StatusConflict {
		t.Fatalf("answer after done: %d, want 409", rec.Code)
	}
}

// flakyStore wraps a SessionStore, failing Answer writes on demand.
type flakyStore struct {
	SessionStore
	mu   sync.Mutex
	fail bool
}

func (f *flakyStore) Answer(id string, preferFirst bool) error {
	f.mu.Lock()
	failing := f.fail
	f.mu.Unlock()
	if failing {
		return errors.New("disk on fire")
	}
	return f.SessionStore.Answer(id, preferFirst)
}

func (f *flakyStore) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

// TestStoreErrorRefusesAnswer: a failed persist must refuse the request
// (503 + Retry-After) WITHOUT applying the answer in memory — the old
// log-and-continue path let memory diverge from the WAL, so a crash after
// it replayed a different session than the user saw.
func TestStoreErrorRefusesAnswer(t *testing.T) {
	band, k, _ := testBand(t)
	fs := &flakyStore{SessionStore: NewMemStore()}
	srv, err := New(band, k, Options{Seed: 1, TTL: time.Minute, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)

	fs.setFail(true)
	rec, _ := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, 0))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("answer with failing store: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if srv.storeErrors.Value() != 1 {
		t.Fatalf("ist_store_errors_total = %d, want 1", srv.storeErrors.Value())
	}
	// Not applied: same seq, same question count.
	_, cur := do(t, srv, http.MethodGet, "/sessions/"+st.ID, nil)
	if cur.Seq != 0 || cur.Questions != 0 {
		t.Fatalf("refused answer was applied anyway: seq=%d questions=%d", cur.Seq, cur.Questions)
	}

	// The client retries the SAME seq once the store heals; it applies once.
	fs.setFail(false)
	rec, next := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, 0))
	if rec.Code != http.StatusOK || next.Seq != 1 {
		t.Fatalf("retry after heal: code %d seq %d, want 200/1", rec.Code, next.Seq)
	}
	// And the store saw exactly one answer.
	recs, _, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ID == st.ID && len(r.Answers) != 1 {
			t.Fatalf("store recorded %d answers, want 1", len(r.Answers))
		}
	}
}

// TestSeqSurvivesRestart: after a crash + rehydration, a retried answer
// from before the crash is still recognized as a replay — the seq counter
// is derived from the persisted answer log, not process memory.
func TestSeqSurvivesRestart(t *testing.T) {
	band, k, _ := testBand(t)
	store := NewMemStore()
	a, err := New(band, k, Options{Seed: 1, TTL: time.Minute, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	_, st := do(t, a, http.MethodPost, "/sessions", nil)
	rec, post := do(t, a, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, 0))
	if rec.Code != http.StatusOK {
		t.Fatalf("answer: %d", rec.Code)
	}
	a.Close()

	b, err := New(band, k, Options{Seed: 1, TTL: time.Minute, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// The restarted server must agree: seq 1 pending, and the pre-crash
	// answer (seq 0) replays idempotently with the identical question.
	rec, got := do(t, b, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, 0))
	if rec.Code != http.StatusOK {
		t.Fatalf("replay after restart: %d %s", rec.Code, rec.Body.String())
	}
	if got.Seq != 1 || got.Questions != 1 {
		t.Fatalf("replay after restart: seq=%d questions=%d, want 1/1", got.Seq, got.Questions)
	}
	if !reflect.DeepEqual(got.Question, post.Question) {
		t.Fatalf("replayed question differs after restart:\n  %+v\n  %+v", got.Question, post.Question)
	}
}

// TestReadyzAndDrain: /readyz is 200 while serving, 503 once draining; a
// draining server refuses new sessions but keeps answering in-flight ones.
func TestReadyzAndDrain(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec, _ := do(t, srv, http.MethodGet, "/readyz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz while serving: %d", rec.Code)
	}
	_, st := do(t, srv, http.MethodPost, "/sessions", nil)

	if !srv.BeginDrain() {
		t.Fatal("BeginDrain reported already draining")
	}
	if srv.BeginDrain() {
		t.Fatal("second BeginDrain reported a fresh drain")
	}
	rec, _ = do(t, srv, http.MethodGet, "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", rec.Code)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil || ready.Status != "draining" {
		t.Fatalf("readyz body = %s (err %v), want draining", rec.Body.String(), err)
	}
	rec, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining create refusal without Retry-After")
	}
	// The in-flight dialogue still progresses.
	rec, _ = do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", answerBody(1, 0))
	if rec.Code != http.StatusOK {
		t.Fatalf("answer while draining: %d, want 200", rec.Code)
	}
	// Liveness is unaffected: the process must not be killed for draining.
	rec, _ = do(t, srv, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", rec.Code)
	}
}

// blockingAlg parks Run until released, holding its admission slot — the
// deterministic stand-in for a slow request.
type blockingAlg struct {
	ist.Algorithm
	started chan struct{}
	release chan struct{}
}

func (a *blockingAlg) Run(points []ist.Point, k int, o ist.Oracle) int {
	close(a.started)
	<-a.release
	return a.Algorithm.Run(points, k, o)
}

// TestAdmissionGateSheds: with MaxInflight=1 and no queue, a second create
// is shed with 503 + Retry-After while the first holds the slot, and the
// shed is counted. Once the slot frees, admission resumes.
func TestAdmissionGateSheds(t *testing.T) {
	band, k, _ := testBand(t)
	started := make(chan struct{})
	release := make(chan struct{})
	wrapped := false
	srv, err := New(band, k, Options{
		Seed: 1, TTL: time.Minute, MaxInflight: 1,
		WrapAlgorithm: func(id string, alg ist.Algorithm) ist.Algorithm {
			if wrapped {
				return alg
			}
			wrapped = true
			return &blockingAlg{Algorithm: alg, started: started, release: release}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan int, 1)
	go func() {
		rec, _ := do(nil, srv, http.MethodPost, "/sessions", nil)
		done <- rec.Code
	}()
	<-started // the first create now holds the only admission slot

	rec, _ := do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit create: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response without Retry-After")
	}
	if got := srv.shed.With("create").Value(); got != 1 {
		t.Fatalf(`ist_shed_total{path="create"} = %d, want 1`, got)
	}

	close(release)
	if code := <-done; code != http.StatusCreated {
		t.Fatalf("blocked create finished with %d, want 201", code)
	}
	rec, _ = do(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create after slot freed: %d, want 201", rec.Code)
	}
}

// TestAdmissionQueueAdmits: a queued request is admitted (not shed) when
// the slot frees within the admission timeout.
func TestAdmissionQueueAdmits(t *testing.T) {
	band, k, _ := testBand(t)
	started := make(chan struct{})
	release := make(chan struct{})
	wrapped := false
	srv, err := New(band, k, Options{
		Seed: 1, TTL: time.Minute, MaxInflight: 1, AdmissionTimeout: 5 * time.Second,
		WrapAlgorithm: func(id string, alg ist.Algorithm) ist.Algorithm {
			if wrapped {
				return alg
			}
			wrapped = true
			return &blockingAlg{Algorithm: alg, started: started, release: release}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first := make(chan int, 1)
	go func() {
		rec, _ := do(nil, srv, http.MethodPost, "/sessions", nil)
		first <- rec.Code
	}()
	<-started
	second := make(chan int, 1)
	go func() {
		rec, _ := do(nil, srv, http.MethodPost, "/sessions", nil)
		second <- rec.Code
	}()
	// Give the second request a moment to join the queue, then free the
	// slot; it must be admitted rather than shed.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if code := <-first; code != http.StatusCreated {
		t.Fatalf("first create: %d", code)
	}
	if code := <-second; code != http.StatusCreated {
		t.Fatalf("queued create: %d, want 201 (admitted when slot freed)", code)
	}
	if got := srv.shed.With("create").Value(); got != 0 {
		t.Fatalf("queued request was shed: ist_shed_total = %d", got)
	}
}

// TestClientStateMirrorsWire pins the client package's State struct to the
// server's wire shape: a fully-populated StateResponse must round-trip
// through client.State without losing a field.
func TestClientStateMirrorsWire(t *testing.T) {
	cert := &ist.Certificate{Certified: true, Reason: "stop", Questions: 4, Candidates: 2}
	resp := StateResponse{
		ID: "s9", Seq: 4, Questions: 4, Done: true,
		Result: []float64{0.1, 0.2}, ResultID: 7, Certificate: cert,
	}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var got client.State
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != resp.ID || got.Seq != resp.Seq || got.Questions != resp.Questions ||
		got.Done != resp.Done || got.ResultID != resp.ResultID ||
		!reflect.DeepEqual(got.Result, resp.Result) ||
		!reflect.DeepEqual(got.Certificate, resp.Certificate) {
		t.Fatalf("client.State lost wire fields: %+v vs %+v", got, resp)
	}
	// And the question-carrying shape.
	resp = StateResponse{ID: "s1", Seq: 2, Questions: 2,
		Question: &Question{Option1: []float64{1}, Option2: []float64{2}}}
	b, _ = json.Marshal(resp)
	got = client.State{}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Question == nil || !reflect.DeepEqual(got.Question.Option1, resp.Question.Option1) ||
		!reflect.DeepEqual(got.Question.Option2, resp.Question.Option2) {
		t.Fatalf("client.State lost the question: %+v", got)
	}
}
