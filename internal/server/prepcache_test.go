package server

import (
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"ist"
	"ist/internal/obs"
)

// transcript is the user-visible record of one interactive session: every
// question surfaced, the final result, and the question count.
type sessionTranscript struct {
	Questions [][2][]float64
	Result    []float64
	Count     int
}

// driveRecording answers a session according to hidden, capturing the full
// transcript.
func driveRecording(t *testing.T, srv *Server, st StateResponse, hidden ist.Point) sessionTranscript {
	t.Helper()
	var tr sessionTranscript
	for steps := 0; !st.Done; steps++ {
		if steps > 5000 {
			t.Fatal("session never finished")
		}
		if st.Question == nil {
			t.Fatal("undone session without a question")
		}
		tr.Questions = append(tr.Questions, [2][]float64{st.Question.Option1, st.Question.Option2})
		p := ist.Point(st.Question.Option1)
		q := ist.Point(st.Question.Option2)
		prefer := 2
		if hidden.Dot(p) >= hidden.Dot(q) {
			prefer = 1
		}
		rec, next := do(t, srv, http.MethodPost, "/sessions/"+st.ID+"/answer", map[string]int{"prefer": prefer, "seq": st.Seq})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer: %d %s", rec.Code, rec.Body.String())
		}
		st = next
	}
	tr.Result = st.Result
	tr.Count = st.Questions
	return tr
}

func createSession(t *testing.T, srv *Server, alg string) StateResponse {
	t.Helper()
	rec, st := do(t, srv, http.MethodPost, "/sessions", map[string]string{"algorithm": alg})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	return st
}

// TestPrepCacheTranscriptsIdentical runs the same seeded sessions against a
// cache-free server and a server sharing a preprocessing cache (with a
// parallel worker pool for good measure), and requires bit-identical
// transcripts in every combination: cache-free vs cold-populate (session 1)
// and cache-free vs cache-hit (session 2). This is the server-level
// determinism contract of DESIGN.md §14.3 — caching and parallelism are
// invisible in every user-visible byte.
func TestPrepCacheTranscriptsIdentical(t *testing.T) {
	band, k, hidden := testBand(t)

	plain, err := New(band, k, Options{Seed: 7, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plain.Close)

	cached, err := New(band, k, Options{
		Seed:        7,
		TTL:         time.Minute,
		Parallelism: 4,
		PrepCache:   ist.NewPreprocessCache(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cached.Close)

	for _, alg := range []string{"hdpi-accurate", "rh"} {
		for round := 1; round <= 2; round++ {
			// Sessions are seeded Seed+i, so the i-th session on each server
			// shares a seed; their transcripts must match exactly.
			want := driveRecording(t, plain, createSession(t, plain, alg), hidden)
			got := driveRecording(t, cached, createSession(t, cached, alg), hidden)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s round %d: cached transcript diverged from cache-free (%d vs %d questions)",
					alg, round, got.Count, want.Count)
			}
		}
	}

	st := cached.opt.PrepCache.Stats()
	if st.Misses == 0 {
		t.Fatal("cache never computed anything")
	}
	if st.Hits == 0 {
		t.Fatal("second sessions never hit the cache")
	}
	if st.Bytes <= 0 {
		t.Fatalf("cache reports %d resident bytes", st.Bytes)
	}
}

// TestPrepCacheMetrics asserts the /metrics exposition carries the cache
// series and that hits increment once a second identical session is created.
func TestPrepCacheMetrics(t *testing.T) {
	band, k, hidden := testBand(t)
	srv, err := New(band, k, Options{
		Seed:      1,
		TTL:       time.Minute,
		PrepCache: ist.NewPreprocessCache(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	body, _ := scrape(t, srv)
	for _, name := range []string{obs.MetricPrepCacheHits, obs.MetricPrepCacheMisses, obs.MetricPrepCacheBytes} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("metric %s missing from exposition:\n%s", name, body)
		}
	}
	if !strings.Contains(body, obs.MetricPrepCacheHits+" 0\n") {
		t.Fatalf("fresh server should expose zero cache hits:\n%s", body)
	}

	if _, ok := drive(t, srv, createSession(t, srv, "hdpi-accurate"), hidden); !ok {
		t.Fatal("first session did not finish")
	}
	body, _ = scrape(t, srv)
	if strings.Contains(body, obs.MetricPrepCacheMisses+" 0\n") {
		t.Fatalf("first session should have missed the cache:\n%s", body)
	}

	if _, ok := drive(t, srv, createSession(t, srv, "hdpi-accurate"), hidden); !ok {
		t.Fatal("second session did not finish")
	}
	body, _ = scrape(t, srv)
	if strings.Contains(body, obs.MetricPrepCacheHits+" 0\n") {
		t.Fatalf("second session should have hit the cache:\n%s", body)
	}
}
