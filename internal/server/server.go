// Package server implements the HTTP session service behind cmd/istserve:
// interactive IST sessions (ist.Session) keyed by id, with JSON
// question/answer exchanges. It demonstrates how a product embeds the
// library — the algorithm state lives server-side, humans answer one
// question per round-trip.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"ist"
)

// Server is the http.Handler managing interactive sessions.
type Server struct {
	points []ist.Point
	k      int
	ttl    time.Duration

	mu       sync.Mutex
	sessions map[string]*sessionState
	nextID   int64
	seed     int64
	// now is replaceable for expiry tests.
	now func() time.Time
}

type sessionState struct {
	mu sync.Mutex // serializes question/answer exchanges per session
	s  *ist.Session
	// lastUsed is guarded by Server.mu (not st.mu): it is only touched by
	// lookup/create/expire, which already hold it.
	lastUsed time.Time
	curP     ist.Point
	curQ     ist.Point
	done     bool
	result   ist.Point
	resultID int
}

// New builds a server over a preprocessed point set.
func New(points []ist.Point, k int, seed int64, ttl time.Duration) *Server {
	return &Server{
		points:   points,
		k:        k,
		ttl:      ttl,
		sessions: map[string]*sessionState{},
		seed:     seed,
		now:      time.Now,
	}
}

// Question is the JSON shape of one pairwise question.
type Question struct {
	Option1 []float64 `json:"option1"`
	Option2 []float64 `json:"option2"`
}

// StateResponse is the JSON shape of a session's state.
type StateResponse struct {
	ID        string    `json:"id"`
	Questions int       `json:"questions"`
	Done      bool      `json:"done"`
	Question  *Question `json:"question,omitempty"`
	Result    []float64 `json:"result,omitempty"`
	ResultID  int       `json:"resultId,omitempty"`
}

type createRequest struct {
	Algorithm string `json:"algorithm"`
}

type answerRequest struct {
	Prefer int `json:"prefer"`
}

// ServeHTTP implements http.Handler.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.expire()
	path := strings.TrimPrefix(r.URL.Path, "/")
	parts := strings.Split(path, "/")
	switch {
	case r.Method == http.MethodPost && path == "sessions":
		srv.handleCreate(w, r)
	case len(parts) == 2 && parts[0] == "sessions" && r.Method == http.MethodGet:
		srv.handleGet(w, parts[1])
	case len(parts) == 2 && parts[0] == "sessions" && r.Method == http.MethodDelete:
		srv.handleDelete(w, parts[1])
	case len(parts) == 3 && parts[0] == "sessions" && parts[2] == "answer" && r.Method == http.MethodPost:
		srv.handleAnswer(w, r, parts[1])
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (srv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if r.Body != nil {
		_ = json.NewDecoder(r.Body).Decode(&req) // empty body = defaults
	}
	var alg ist.Algorithm
	srv.mu.Lock()
	srv.nextID++
	id := fmt.Sprintf("s%d", srv.nextID)
	seed := srv.seed + srv.nextID
	srv.mu.Unlock()
	switch req.Algorithm {
	case "", "rh":
		alg = ist.NewRH(seed)
	case "hdpi":
		alg = ist.NewHDPI(seed)
	case "hdpi-accurate":
		alg = ist.NewHDPIAccurate(seed)
	case "robust":
		alg = ist.NewRobustHDPI(seed)
	default:
		http.Error(w, fmt.Sprintf("unknown algorithm %q", req.Algorithm), http.StatusBadRequest)
		return
	}

	st := &sessionState{s: ist.NewSession(alg, srv.points, srv.k), lastUsed: srv.now()}
	st.mu.Lock()
	srv.advance(st)
	st.mu.Unlock()
	srv.mu.Lock()
	srv.sessions[id] = st
	srv.mu.Unlock()
	srv.writeState(w, id, st, http.StatusCreated)
}

func (srv *Server) handleGet(w http.ResponseWriter, id string) {
	st, ok := srv.lookup(id)
	if !ok {
		http.Error(w, "no such session", http.StatusNotFound)
		return
	}
	srv.writeState(w, id, st, http.StatusOK)
}

func (srv *Server) handleDelete(w http.ResponseWriter, id string) {
	srv.mu.Lock()
	st, ok := srv.sessions[id]
	if ok {
		delete(srv.sessions, id)
	}
	srv.mu.Unlock()
	if !ok {
		http.Error(w, "no such session", http.StatusNotFound)
		return
	}
	st.s.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (srv *Server) handleAnswer(w http.ResponseWriter, r *http.Request, id string) {
	st, ok := srv.lookup(id)
	if !ok {
		http.Error(w, "no such session", http.StatusNotFound)
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad answer body", http.StatusBadRequest)
		return
	}
	if req.Prefer != 1 && req.Prefer != 2 {
		http.Error(w, "prefer must be 1 or 2", http.StatusBadRequest)
		return
	}
	st.mu.Lock()
	if st.done {
		st.mu.Unlock()
		http.Error(w, "session already finished", http.StatusConflict)
		return
	}
	if err := st.s.Answer(req.Prefer == 1); err != nil {
		st.mu.Unlock()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	srv.advance(st)
	st.mu.Unlock()
	srv.writeState(w, id, st, http.StatusOK)
}

// advance pulls the next question (or the result) into the state. The
// lastUsed stamp is maintained by lookup/create under srv.mu (its guardian),
// not here.
func (srv *Server) advance(st *sessionState) {
	p, q, done := st.s.Next()
	if done {
		st.done = true
		if pt, idx, err := st.s.Result(); err == nil {
			st.result, st.resultID = pt, idx
		}
		return
	}
	st.curP, st.curQ = p, q
}

func (srv *Server) lookup(id string) (*sessionState, bool) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	st, ok := srv.sessions[id]
	if ok {
		st.lastUsed = srv.now()
	}
	return st, ok
}

// expire closes idle sessions past the TTL.
func (srv *Server) expire() {
	if srv.ttl <= 0 {
		return
	}
	cutoff := srv.now().Add(-srv.ttl)
	srv.mu.Lock()
	var stale []*sessionState
	for id, st := range srv.sessions {
		if st.lastUsed.Before(cutoff) {
			stale = append(stale, st)
			delete(srv.sessions, id)
		}
	}
	srv.mu.Unlock()
	for _, st := range stale {
		st.s.Close()
	}
}

// Sessions returns the live session count (for tests and monitoring).
func (srv *Server) Sessions() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

func (srv *Server) writeState(w http.ResponseWriter, id string, st *sessionState, code int) {
	st.mu.Lock()
	resp := StateResponse{ID: id, Questions: st.s.Questions(), Done: st.done}
	if st.done {
		resp.Result = st.result
		resp.ResultID = st.resultID
	} else {
		resp.Question = &Question{Option1: st.curP, Option2: st.curQ}
	}
	st.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}
