// Package server implements the HTTP session service behind cmd/istserve:
// interactive IST sessions (ist.Session) keyed by id, with JSON
// question/answer exchanges. The algorithm state lives server-side; humans
// answer one question per round-trip.
//
// The layer is built to survive a production interaction loop: a panic in
// one session's algorithm goroutine is isolated (that session returns 500
// and is torn down; every other session and the process continue), sessions
// are optionally persisted to a SessionStore and rehydrated after a restart
// by deterministic transcript replay, idle sessions are collected by a
// background reaper, and session creation is capped (429 + Retry-After)
// so a client flood cannot exhaust memory.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ist"
	"ist/internal/clock"
	"ist/internal/obs"
)

// Options configures a Server beyond its dataset.
type Options struct {
	// Seed is the base random seed; session i runs with Seed+i, which is
	// what makes a persisted session replayable after a restart.
	Seed int64
	// TTL expires sessions idle longer than this (0 disables expiry).
	TTL time.Duration
	// ReapInterval is how often the background reaper scans for idle
	// sessions (0 disables the reaper; expiry then only happens on an
	// explicit call, as in tests with fake clocks).
	ReapInterval time.Duration
	// MaxSessions caps concurrently live sessions; creation beyond it
	// returns 429 with a Retry-After header (0 = unlimited).
	MaxSessions int
	// Store persists sessions for crash recovery (nil = memory only, no
	// rehydration).
	Store SessionStore
	// WrapAlgorithm, if set, wraps every session's algorithm at creation
	// and rehydration — the fault-injection hook used by the hardening
	// tests (see internal/faultinject).
	WrapAlgorithm func(id string, alg ist.Algorithm) ist.Algorithm
	// MaxQuestions caps how many questions any one session may ask; an
	// exhausted session finishes with a best-effort answer and an
	// uncertified certificate instead of asking forever (0 = unlimited).
	MaxQuestions int
	// SessionDeadline bounds each session's lifetime from creation; past it
	// the session finishes best-effort like MaxQuestions does (0 = none).
	SessionDeadline time.Duration
	// Clock is the time source for lastUsed stamps and session deadlines
	// (nil = the wall clock). Tests inject a fake to drive expiry and
	// deadlines deterministically.
	Clock clock.Clock
	// TraceDir, when set, writes one JSONL trace file per session
	// (<TraceDir>/<id>.jsonl) carrying the session's structured event
	// stream. Rehydration truncates and rewrites the file — transcript
	// replay regenerates the same events.
	TraceDir string
	// Metrics is the registry /metrics exposes (nil = the server builds its
	// own). Sharing one registry across servers aggregates their counters.
	Metrics *obs.Registry
	// MaxInflight bounds how many create/answer requests may run
	// concurrently; excess requests queue up to AdmissionTimeout and are
	// then shed with 503 + Retry-After (0 = unbounded). Read-only endpoints
	// (GET state, healthz, metrics) are never gated.
	MaxInflight int
	// AdmissionTimeout is how long an over-limit create/answer request may
	// wait for an admission slot before being shed (0 = shed immediately).
	AdmissionTimeout time.Duration
	// Tracing enables the span layer (DESIGN.md §13): a session-root →
	// question → phase span tree per session, W3C traceparent continuation
	// from clients, /debug/ist/traces, and per-session flight recorders.
	// Off, the tracer is nil end to end and every run is bit-identical to a
	// pre-span server (proven by TestNilTracerTranscriptIdentical).
	Tracing bool
	// TraceMaxBytes caps each session's JSONL trace file; past it a single
	// "_truncated" marker is written and the rest of the stream is dropped
	// (0 = the 4 MiB default, negative = unlimited).
	TraceMaxBytes int64
	// Parallelism is the preprocessing worker-pool degree applied to every
	// session's algorithm (DESIGN.md §14). 0 or 1 keeps the serial legacy
	// path; any value yields bit-identical transcripts and traces, so it is
	// safe to tune freely. Callers wanting "all cores" resolve GOMAXPROCS
	// before setting (istserve's -parallelism flag does).
	Parallelism int
	// PrepCache, when non-nil, is shared by every session's algorithm to
	// memoize dataset-level preprocessing (exact convex points, 2-d sweep
	// partitions) — the dominant per-session setup cost under high session
	// counts. Cache effectiveness is exposed on /metrics as
	// ist_preprocess_cache_{hits,misses,bytes}.
	PrepCache *ist.PreprocessCache
}

// DefaultTraceMaxBytes is the per-session trace-file cap applied when
// Options.TraceMaxBytes is zero.
const DefaultTraceMaxBytes = 4 << 20

// Server is the http.Handler managing interactive sessions.
type Server struct {
	points []ist.Point
	k      int
	opt    Options
	fp     uint64
	start  time.Time
	clk    clock.Clock

	// Observability plumbing: reg backs /metrics, bridge folds every
	// session's trace events into it, and the histograms/counters below are
	// the server-level (not event-level) series.
	reg                *obs.Registry
	bridge             *obs.Metrics
	questionLatency    *obs.Histogram
	questionsToCertify *obs.Histogram
	sessionsTotal      *obs.Counter
	sessionsLive       *obs.Gauge
	storeErrors        *obs.Counter
	answerReplays      *obs.Counter
	seqConflicts       *obs.Counter
	shed               *obs.CounterVec
	traceBytes         *obs.Counter
	flightDumps        *obs.Counter
	vsLower            *obs.GaugeVec
	vsUpper            *obs.GaugeVec
	prepHits           *obs.Counter
	prepMisses         *obs.Counter
	prepBytes          *obs.Gauge

	// spans is the bounded in-memory span repository behind
	// /debug/ist/traces (nil when Options.Tracing is off).
	spans *obs.SpanStore

	// gate bounds concurrent admission to the state-changing handlers
	// (nil = unbounded); draining flips /readyz to 503 and refuses new
	// sessions while in-flight dialogues finish.
	gate     *gate
	draining atomic.Bool

	mu       sync.Mutex
	sessions map[string]*sessionState
	nextID   int64
	closed   bool
	// now is replaceable for expiry tests.
	now func() time.Time

	reapStop chan struct{}
	reapDone chan struct{}
}

type sessionState struct {
	mu sync.Mutex // serializes question/answer exchanges per session
	s  *ist.Session
	// seq is the sequence number of the pending question — equal to the
	// number of answers applied so far. An answer must quote it; a quote of
	// seq-1 is an idempotent replay of the answer already applied (the
	// current state IS that answer's response, because the dialogue is
	// strictly sequential), anything else is a conflict. This is what makes
	// a blind network retry of POST /answer safe.
	seq int
	// lastUsed is guarded by Server.mu (not st.mu): it is only touched by
	// lookup/create/expire, which already hold it.
	lastUsed time.Time
	curP     ist.Point
	curQ     ist.Point
	done     bool
	failed   error
	result   ist.Point
	resultID int
	cert     *ist.Certificate
	// questionAt stamps when the pending question was surfaced; the answer
	// handler turns it into the question-latency observation.
	questionAt time.Time
	// trace is the session's JSONL trace stream (nil without TraceDir).
	trace *obs.JSONL
	// algName is the API name the session was created with ("rh", "2dpi",
	// ...), labeling the questions-vs-bound gauges.
	algName string
	// Span plumbing (all nil when Options.Tracing is off): the session's
	// tracer, its flight-recorder ring, the session-root span, and the
	// Observer bridging algorithm events into question/phase spans.
	tracer  *obs.Tracer
	flight  *obs.FlightRecorder
	root    *obs.Span
	spanObs *obs.SpanObserver
}

// startSpan opens a server span for this session: continuing remote (the
// client's traceparent) when valid, else nesting under the open question
// span, else under the session root. Nil when tracing is off — every use is
// nil-safe.
func (st *sessionState) startSpan(name string, remote obs.SpanContext, attrs ...obs.Attr) *obs.Span {
	if st.tracer == nil {
		return nil
	}
	opts := []obs.SpanOption{obs.WithAttrs(attrs...)}
	switch {
	case remote.Valid():
		opts = append(opts, obs.Remote(remote))
	default:
		parent := st.spanObs.QuestionSpan()
		if parent == nil {
			parent = st.root
		}
		opts = append(opts, obs.ChildOf(parent))
	}
	return st.tracer.Start(name, opts...)
}

// New builds a server over a preprocessed point set. If opt.Store is set,
// unfinished persisted sessions are rehydrated by replaying their answer
// logs through identically seeded algorithms before the server accepts any
// traffic; a record whose dataset fingerprint does not match the current
// points is skipped (resuming it would silently diverge).
func New(points []ist.Point, k int, opt Options) (*Server, error) {
	srv := &Server{
		points:   points,
		k:        k,
		opt:      opt,
		fp:       ist.Fingerprint(points, k),
		sessions: map[string]*sessionState{},
		now:      clock.Real.Now,
		clk:      clock.Real,
	}
	if opt.Clock != nil {
		srv.now = opt.Clock.Now
		srv.clk = opt.Clock
	}
	srv.start = srv.now()
	srv.reg = opt.Metrics
	if srv.reg == nil {
		srv.reg = obs.NewRegistry()
	}
	srv.bridge = obs.NewMetrics(srv.reg)
	srv.questionLatency = srv.reg.Histogram(obs.MetricQuestionLatency,
		"Seconds between surfacing a question and receiving its answer.", obs.DefBuckets)
	srv.questionsToCertify = srv.reg.Histogram(obs.MetricQuestionsCertify,
		"Questions a session needed before finishing.", obs.QuestionCountBuckets)
	srv.sessionsTotal = srv.reg.Counter(obs.MetricSessionsTotal,
		"Sessions created (including rehydrated) since process start.")
	srv.sessionsLive = srv.reg.Gauge(obs.MetricSessionsLive,
		"Sessions currently live.")
	srv.storeErrors = srv.reg.Counter(obs.MetricStoreErrors,
		"Session-store writes that failed (the request was refused, not silently dropped).")
	srv.answerReplays = srv.reg.Counter(obs.MetricAnswerReplays,
		"Duplicate answer POSTs absorbed idempotently (seq already applied).")
	srv.seqConflicts = srv.reg.Counter(obs.MetricSeqConflicts,
		"Answer POSTs rejected with 409 for quoting a stale or future seq.")
	srv.shed = srv.reg.CounterVec(obs.MetricShed,
		"Requests shed by the admission gate, by path.", "path")
	srv.traceBytes = srv.reg.Counter(obs.MetricTraceBytes,
		"Bytes written to per-session JSONL trace files.")
	srv.flightDumps = srv.reg.Counter(obs.MetricFlightDumps,
		"Flight-recorder dumps written to the trace dir (conflicts, sheds, failures, exhausted budgets).")
	srv.vsLower = srv.reg.GaugeVec(obs.MetricQuestionsVsLower,
		"Last certified session's questions divided by the theoretical lower bound log2(n/k).", "algorithm")
	srv.vsUpper = srv.reg.GaugeVec(obs.MetricQuestionsVsUpper,
		"Last certified session's questions divided by the 2D-PI upper bound log2(ceil(2n/(k+1))); <=1.0 keeps the Thm 4.5 guarantee.", "algorithm")
	srv.prepHits = srv.reg.Counter(obs.MetricPrepCacheHits,
		"Shared preprocessing-cache lookups answered from a memoized entry.")
	srv.prepMisses = srv.reg.Counter(obs.MetricPrepCacheMisses,
		"Shared preprocessing-cache lookups that had to compute (or skipped an in-flight entry).")
	srv.prepBytes = srv.reg.Gauge(obs.MetricPrepCacheBytes,
		"Approximate resident bytes of memoized preprocessing values.")
	if opt.Tracing {
		srv.spans = obs.NewSpanStore(0, 0)
	}
	srv.gate = newGate(opt.MaxInflight, opt.AdmissionTimeout)
	if opt.Store != nil {
		if err := srv.rehydrate(); err != nil {
			return nil, err
		}
	}
	if opt.TTL > 0 && opt.ReapInterval > 0 {
		srv.reapStop = make(chan struct{})
		srv.reapDone = make(chan struct{})
		go srv.reapLoop()
	}
	return srv, nil
}

// sessionOptions builds each session's anytime options from the server
// configuration plus the session's observer (the shared metrics bridge and,
// with TraceDir set, a JSONL trace file named after the session id). The
// deadline is anchored at session creation (or rehydration) time.
func (srv *Server) sessionOptions(id string, st *sessionState) []ist.SessionOption {
	var opts []ist.SessionOption
	if srv.opt.MaxQuestions > 0 {
		opts = append(opts, ist.WithMaxQuestions(srv.opt.MaxQuestions))
	}
	if srv.opt.SessionDeadline > 0 {
		opts = append(opts, ist.WithDeadline(srv.now().Add(srv.opt.SessionDeadline)))
		if srv.opt.Clock != nil {
			opts = append(opts, ist.WithClock(srv.opt.Clock))
		}
	}
	observers := []obs.Observer{srv.bridge}
	if srv.opt.TraceDir != "" {
		f, err := os.Create(filepath.Join(srv.opt.TraceDir, id+".jsonl"))
		if err != nil {
			log.Printf("server: trace file for %s: %v", id, err)
		} else {
			maxBytes := srv.opt.TraceMaxBytes
			if maxBytes == 0 {
				maxBytes = DefaultTraceMaxBytes
			} else if maxBytes < 0 {
				maxBytes = 0 // negative = explicitly unlimited
			}
			st.trace = obs.NewJSONLLimited(f, srv.clk, maxBytes, srv.traceBytes)
			observers = append(observers, st.trace)
		}
	}
	if st.spanObs != nil {
		observers = append(observers, st.spanObs)
	}
	opts = append(opts, ist.WithObserver(obs.Combine(observers...)))
	return opts
}

// setupTracing builds a session's span plumbing: a tracer whose ids derive
// deterministically from the session seed, sinking into the shared span
// store plus the session's own flight recorder, a session-root span that
// joins the client's propagated trace when one arrived, and the observer
// bridging algorithm events into question/phase spans. A no-op (leaving
// every field nil) when Options.Tracing is off — the nil path consumes no
// randomness and must stay bit-identical to an untraced server.
func (srv *Server) setupTracing(id string, st *sessionState, seed int64, remote obs.SpanContext) {
	if !srv.opt.Tracing {
		return
	}
	st.flight = obs.NewFlightRecorder(0)
	rng := rand.New(rand.NewSource(seed ^ 0x7370616e)) // "span": ids are private to the tracer
	st.tracer = obs.NewTracer(srv.clk, obs.MultiSink(srv.spans, st.flight), rng)
	st.root = st.tracer.Start("session", obs.Remote(remote), obs.WithAttrs(
		obs.Attr{Key: "session", Value: id},
		obs.Attr{Key: "algorithm", Value: st.algName},
	))
	st.spanObs = obs.NewSpanObserver(st.tracer, st.root)
}

// algorithmByName maps the API's algorithm names to seeded constructors.
func algorithmByName(name string, seed int64) (ist.Algorithm, error) {
	switch name {
	case "", "rh":
		return ist.NewRH(seed), nil
	case "hdpi":
		return ist.NewHDPI(seed), nil
	case "hdpi-accurate":
		return ist.NewHDPIAccurate(seed), nil
	case "robust":
		return ist.NewRobustHDPI(seed), nil
	case "2dpi":
		// Deterministic (no rng) and bounded by Thm 4.5; only valid on
		// 2-dimensional datasets — elsewhere the session fails at creation
		// with the algorithm's own dimensionality panic isolated to it.
		return ist.NewTwoDPI(), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

// applyPerfOptions grants a freshly constructed algorithm the server-wide
// performance capabilities (worker-pool degree, shared preprocessing cache)
// before any observability wrapper hides the concrete type. Both are
// transcript-neutral (DESIGN.md §14): rehydrated sessions replay identically
// whether or not the original run had them.
func (srv *Server) applyPerfOptions(alg any) {
	if srv.opt.Parallelism > 1 {
		ist.SetParallelism(alg, srv.opt.Parallelism)
	}
	if srv.opt.PrepCache != nil {
		ist.UsePreprocessCache(alg, srv.opt.PrepCache, srv.points, srv.k)
	}
}

// rehydrate rebuilds every unfinished persisted session by transcript
// replay. Called from New before the server serves traffic, so it needs no
// locking discipline beyond the store's own.
func (srv *Server) rehydrate() error {
	recs, lastID, err := srv.opt.Store.Load()
	if err != nil {
		return fmt.Errorf("server: rehydrate: %w", err)
	}
	srv.nextID = lastID
	for _, rec := range recs {
		if rec.Fingerprint != srv.fp {
			log.Printf("server: session %s recorded against a different dataset (fingerprint %x != %x); dropping",
				rec.ID, rec.Fingerprint, srv.fp)
			_ = srv.opt.Store.Finish(rec.ID)
			continue
		}
		alg, err := algorithmByName(rec.Algorithm, rec.Seed)
		if err != nil {
			log.Printf("server: session %s: %v; dropping", rec.ID, err)
			_ = srv.opt.Store.Finish(rec.ID)
			continue
		}
		srv.applyPerfOptions(alg)
		if srv.opt.WrapAlgorithm != nil {
			alg = srv.opt.WrapAlgorithm(rec.ID, alg)
		}
		st := &sessionState{lastUsed: srv.now(), seq: len(rec.Answers), algName: rec.Algorithm}
		// A rehydrated session roots a fresh trace: the client's original
		// trace id died with the previous process, and replay spans would
		// only pollute it anyway.
		srv.setupTracing(rec.ID, st, rec.Seed, obs.SpanContext{})
		s, err := ist.ResumeSessionContext(context.Background(), alg, srv.points, srv.k, rec.Answers, srv.sessionOptions(rec.ID, st)...)
		if err != nil {
			log.Printf("server: session %s failed to replay: %v; dropping", rec.ID, err)
			srv.closeTrace(st)
			_ = srv.opt.Store.Finish(rec.ID)
			continue
		}
		st.s = s
		srv.sessionsTotal.Inc()
		srv.advance(rec.ID, st)
		if st.failed != nil {
			s.Close()
			srv.closeTrace(st)
			_ = srv.opt.Store.Finish(rec.ID)
			continue
		}
		srv.sessions[rec.ID] = st
	}
	return nil
}

// closeTrace closes a session's JSONL trace stream and ends its span tree
// (open question span first, then the root). Callers may hold st.mu or not
// — JSONL has its own lock, Close is idempotent, and End is idempotent too.
func (srv *Server) closeTrace(st *sessionState) {
	st.spanObs.Finish()
	st.root.End()
	if st.trace != nil {
		if err := st.trace.Close(); err != nil {
			log.Printf("server: close trace: %v", err)
		}
	}
}

// reapLoop runs expiry in the background so idle sessions are collected
// even when no request ever arrives again — the expire-on-request scheme it
// replaces leaked every session of a traffic lull.
func (srv *Server) reapLoop() {
	defer close(srv.reapDone)
	t := time.NewTicker(srv.opt.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			srv.expire()
		case <-srv.reapStop:
			return
		}
	}
}

// Close stops the reaper, releases every live session's goroutine, and
// closes the store. It does not Finish persisted sessions: a graceful
// shutdown keeps them replayable by the next process.
func (srv *Server) Close() {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return
	}
	srv.closed = true
	live := make([]*sessionState, 0, len(srv.sessions))
	for _, st := range srv.sessions {
		live = append(live, st)
	}
	srv.sessions = map[string]*sessionState{}
	srv.mu.Unlock()
	if srv.reapStop != nil {
		close(srv.reapStop)
		<-srv.reapDone
	}
	for _, st := range live {
		st.mu.Lock()
		if st.s != nil {
			st.s.Close()
		}
		st.mu.Unlock()
		srv.closeTrace(st)
	}
	if srv.opt.Store != nil {
		_ = srv.opt.Store.Close()
	}
}

// Question is the JSON shape of one pairwise question.
type Question struct {
	Option1 []float64 `json:"option1"`
	Option2 []float64 `json:"option2"`
}

// StateResponse is the JSON shape of a session's state. Certificate appears
// only for finished budgeted sessions; its "certified" field distinguishes a
// guaranteed top-k result from the best-effort answer of a session that ran
// out of budget — both are HTTP 200, because an anytime answer is a success.
type StateResponse struct {
	ID string `json:"id"`
	// Seq is the sequence number of the pending question; an answer must
	// quote it back. Once the session is done it equals the total number of
	// answers applied. See DESIGN.md §12 for the exactly-once contract.
	Seq         int              `json:"seq"`
	Questions   int              `json:"questions"`
	Done        bool             `json:"done"`
	Question    *Question        `json:"question,omitempty"`
	Result      []float64        `json:"result,omitempty"`
	ResultID    int              `json:"resultId,omitempty"`
	Certificate *ist.Certificate `json:"certificate,omitempty"`
}

// HealthResponse is the JSON shape of GET /healthz. Sessions is the live
// count; SessionsTotal counts every session this process created (including
// rehydrated ones), so the two diverge as sessions finish or expire. Uptime
// is measured on the server's injected clock.
type HealthResponse struct {
	Status        string  `json:"status"`
	Sessions      int     `json:"sessions"`
	SessionsTotal int64   `json:"sessionsTotal"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	GoVersion     string  `json:"goVersion"`
	Version       string  `json:"version"`
	// Draining reports drain mode. Liveness stays "ok" while draining — a
	// draining process must not be killed — but operators reading /healthz
	// deserve to see the drain instead of inferring it from /readyz.
	Draining bool `json:"draining"`
	// WALSeq is the sequence number of the WAL segment currently being
	// appended to, present when the session store exposes one.
	WALSeq *uint64 `json:"walSeq,omitempty"`
}

// walSeqStore is the optional capability a SessionStore implements to
// surface its write-ahead-log position on /healthz.
type walSeqStore interface {
	WALSeq() uint64
}

type createRequest struct {
	Algorithm string `json:"algorithm"`
}

type answerRequest struct {
	Prefer int `json:"prefer"`
	// Seq must quote the seq of the question being answered (from the state
	// response that surfaced it). It is required: without it a retried POST
	// is indistinguishable from a fresh answer, and a duplicate delivery
	// would inject a second halfspace cut and silently corrupt the session.
	Seq *int `json:"seq"`
}

// ServeHTTP implements http.Handler.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	parts := strings.Split(path, "/")
	switch {
	case r.Method == http.MethodGet && path == "healthz":
		srv.handleHealthz(w)
	case r.Method == http.MethodGet && path == "readyz":
		srv.handleReadyz(w)
	case r.Method == http.MethodGet && path == "metrics":
		srv.handleMetrics(w, r)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/debug/ist/traces"):
		srv.handleTraces(w, r)
	case strings.HasPrefix(r.URL.Path, "/debug/pprof"):
		srv.handlePprof(w, r)
	case r.Method == http.MethodPost && path == "sessions":
		srv.handleCreate(w, r)
	case len(parts) == 2 && parts[0] == "sessions" && r.Method == http.MethodGet:
		srv.handleGet(w, parts[1])
	case len(parts) == 2 && parts[0] == "sessions" && r.Method == http.MethodDelete:
		srv.handleDelete(w, parts[1])
	case len(parts) == 3 && parts[0] == "sessions" && parts[2] == "answer" && r.Method == http.MethodPost:
		srv.handleAnswer(w, r, parts[1])
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// Version is an explicit build version, meant to be injected at link time:
//
//	go build -ldflags "-X ist/internal/server.Version=v1.2.3" ./cmd/istserve
//
// When empty, BuildVersion falls back to the module version recorded by the
// Go toolchain.
var Version string

// BuildVersion reports the injected Version when set, otherwise the main
// module's version as baked in by the Go toolchain ("devel" for a plain
// source build).
func BuildVersion() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

func (srv *Server) handleHealthz(w http.ResponseWriter) {
	resp := HealthResponse{
		Status:        "ok",
		Sessions:      srv.Sessions(),
		SessionsTotal: srv.sessionsTotal.Value(),
		UptimeSeconds: srv.now().Sub(srv.start).Seconds(),
		GoVersion:     runtime.Version(),
		Version:       BuildVersion(),
		Draining:      srv.draining.Load(),
	}
	if ws, ok := srv.opt.Store.(walSeqStore); ok {
		seq := ws.WALSeq()
		resp.WALSeq = &seq
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// ReadyResponse is the JSON shape of GET /readyz. Liveness (/healthz) and
// readiness are deliberately split: a rehydrating or draining process is
// alive (do not kill it) but must not receive new traffic (take it out of
// rotation).
type ReadyResponse struct {
	Status   string `json:"status"` // "ready" | "draining"
	Sessions int    `json:"sessions"`
}

// handleReadyz reports readiness: 200 while the server accepts new work,
// 503 once BeginDrain has been called. The pre-rehydration "starting" phase
// is covered by the boot handler istserve serves before this Server exists.
func (srv *Server) handleReadyz(w http.ResponseWriter) {
	resp := ReadyResponse{Status: "ready", Sessions: srv.Sessions()}
	code := http.StatusOK
	if srv.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// BeginDrain marks the server as draining: /readyz flips to 503 so load
// balancers stop routing here, and new session creation is refused, while
// in-flight dialogues keep answering until the process exits. It reports
// whether this call initiated the drain (false if already draining).
func (srv *Server) BeginDrain() bool {
	return srv.draining.CompareAndSwap(false, true)
}

// handleMetrics renders the registry in the Prometheus text exposition
// format — or, when the scraper negotiates application/openmetrics-text,
// the exemplar-extended OpenMetrics shape linking latency buckets to span
// ids. The live-session gauge is refreshed lazily at scrape time — it is
// derived state, not an event counter.
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	srv.sessionsLive.Set(float64(srv.Sessions()))
	if c := srv.opt.PrepCache; c != nil {
		// Cache counters live in prep.Cache; sync the registry copies to the
		// authoritative snapshot at scrape time (delta-add keeps counters
		// monotone without double counting).
		s := c.Stats()
		srv.prepHits.Add(s.Hits - srv.prepHits.Value())
		srv.prepMisses.Add(s.Misses - srv.prepMisses.Value())
		srv.prepBytes.Set(float64(s.Bytes))
	}
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		srv.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	srv.reg.WritePrometheus(w)
}

// handlePprof routes /debug/pprof/* to the standard pprof handlers; the
// named-profile paths (heap, goroutine, ...) are handled by Index.
func (srv *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	switch strings.TrimPrefix(r.URL.Path, "/debug/pprof/") {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}

func (srv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if srv.draining.Load() {
		w.Header().Set("Retry-After", srv.retryAfter())
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	if !srv.gate.acquire(r.Context()) {
		srv.shed.With("create").Inc()
		w.Header().Set("Retry-After", srv.retryAfter())
		http.Error(w, "server overloaded", http.StatusServiceUnavailable)
		return
	}
	defer srv.gate.release()
	var req createRequest
	if r.Body != nil {
		// An empty body means defaults, but a malformed one is a client
		// bug; silently falling back to the default algorithm would mask it.
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			http.Error(w, "malformed JSON body", http.StatusBadRequest)
			return
		}
	}
	name := req.Algorithm
	if name == "" {
		name = "rh"
	}
	if _, err := algorithmByName(name, 0); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	if srv.opt.MaxSessions > 0 && len(srv.sessions) >= srv.opt.MaxSessions {
		srv.mu.Unlock()
		w.Header().Set("Retry-After", srv.retryAfter())
		http.Error(w, "session limit reached", http.StatusTooManyRequests)
		return
	}
	srv.nextID++
	id := fmt.Sprintf("s%d", srv.nextID)
	seed := srv.opt.Seed + srv.nextID
	st := &sessionState{lastUsed: srv.now(), algName: name}
	// Reserve the slot (and the id) under st.mu before the algorithm's
	// setup runs: concurrent requests for this id block until it is ready,
	// and concurrent creates see the capacity they are competing for.
	st.mu.Lock()
	srv.sessions[id] = st
	srv.mu.Unlock()

	// The client owns the trace: a valid traceparent makes its trace id the
	// session's trace id, so every span this session ever emits — on either
	// side of the wire — shares it.
	remote, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	srv.setupTracing(id, st, seed, remote)
	// The create span brackets the server-side request work; the algorithm
	// events it triggers assemble under the first "question" span, which the
	// SpanObserver opens at the first LP solve (see internal/obs/spanobs.go).
	createSp := st.root.StartChild("create")

	alg, _ := algorithmByName(name, seed)
	srv.applyPerfOptions(alg)
	if srv.opt.WrapAlgorithm != nil {
		alg = srv.opt.WrapAlgorithm(id, alg)
	}
	srv.sessionsTotal.Inc()
	st.s = ist.NewSessionContext(context.Background(), alg, srv.points, srv.k, srv.sessionOptions(id, st)...)
	if srv.opt.Store != nil {
		if err := srv.opt.Store.Create(SessionRecord{ID: id, Algorithm: name, Seed: seed, Fingerprint: srv.fp}); err != nil {
			log.Printf("server: persist create %s: %v", id, err)
		}
	}
	srv.advance(id, st)
	createSp.SetStatus(st.failed)
	createSp.End()
	failed := st.failed
	st.mu.Unlock()
	if failed != nil {
		srv.teardown(id, st)
		http.Error(w, "session failed: "+failed.Error(), http.StatusInternalServerError)
		return
	}
	srv.writeState(w, id, st, http.StatusCreated)
}

func (srv *Server) handleGet(w http.ResponseWriter, id string) {
	st, ok := srv.lookup(id)
	if !ok {
		http.Error(w, "no such session", http.StatusNotFound)
		return
	}
	st.mu.Lock()
	failed := st.failed
	st.mu.Unlock()
	if failed != nil {
		srv.teardown(id, st)
		http.Error(w, "session failed: "+failed.Error(), http.StatusInternalServerError)
		return
	}
	srv.writeState(w, id, st, http.StatusOK)
}

func (srv *Server) handleDelete(w http.ResponseWriter, id string) {
	srv.mu.Lock()
	st, ok := srv.sessions[id]
	if ok {
		delete(srv.sessions, id)
	}
	srv.mu.Unlock()
	if !ok {
		http.Error(w, "no such session", http.StatusNotFound)
		return
	}
	st.mu.Lock()
	if st.s != nil {
		st.s.Close()
	}
	st.mu.Unlock()
	srv.closeTrace(st)
	if srv.opt.Store != nil {
		_ = srv.opt.Store.Finish(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleAnswer applies one answer exactly once. The seq handshake makes any
// network retry safe: the client quotes the seq of the question it is
// answering; a quote of the previous seq means the answer was already
// applied and the current state (which, in a strictly sequential dialogue,
// IS the response that retry lost) is replayed; any other mismatch is a 409
// carrying the current state so the client can resync. Persistence happens
// BEFORE the in-memory cut: a store that cannot record the answer refuses
// the request (503), never silently diverging from the WAL — refusal is
// safe precisely because the client retries with the same seq.
func (srv *Server) handleAnswer(w http.ResponseWriter, r *http.Request, id string) {
	if !srv.gate.acquire(r.Context()) {
		srv.shed.With("answer").Inc()
		srv.dumpFlight(id, srv.peek(id), "shed")
		w.Header().Set("Retry-After", srv.retryAfter())
		http.Error(w, "server overloaded", http.StatusServiceUnavailable)
		return
	}
	defer srv.gate.release()
	st, ok := srv.lookup(id)
	if !ok {
		http.Error(w, "no such session", http.StatusNotFound)
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad answer body", http.StatusBadRequest)
		return
	}
	if req.Prefer != 1 && req.Prefer != 2 {
		http.Error(w, "prefer must be 1 or 2", http.StatusBadRequest)
		return
	}
	if req.Seq == nil || *req.Seq < 0 {
		http.Error(w, "missing seq: quote the \"seq\" of the question being answered", http.StatusBadRequest)
		return
	}
	// Each retry of one logical answer carries a fresh client attempt span
	// in its traceparent, so a duplicated POST shows up as two sibling
	// server spans — the applied original and the absorbed replay — under
	// the same question in the same trace.
	remote, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	st.mu.Lock()
	if st.failed != nil {
		failed := st.failed
		st.mu.Unlock()
		srv.teardown(id, st)
		http.Error(w, "session failed: "+failed.Error(), http.StatusInternalServerError)
		return
	}
	switch seq := *req.Seq; {
	case seq == st.seq-1:
		// Idempotent replay: this answer was already applied, its response
		// was lost in flight. The session has not moved since (nothing can
		// advance it but the next seq), so the current state is bit-for-bit
		// the response the original request would have carried.
		srv.answerReplays.Inc()
		sp := st.startSpan("idempotent-replay", remote, obs.Attr{Key: "seq", Value: strconv.Itoa(seq)})
		sp.End()
		st.mu.Unlock()
		srv.writeState(w, id, st, http.StatusOK)
		return
	case seq != st.seq || st.done:
		// Stale or future seq (or an answer to a finished session): refuse,
		// but hand back the authoritative state so the client can resync.
		srv.seqConflicts.Inc()
		sp := st.startSpan("conflict", remote,
			obs.Attr{Key: "quoted", Value: strconv.Itoa(seq)},
			obs.Attr{Key: "expected", Value: strconv.Itoa(st.seq)})
		sp.SetStatus(errSeqConflict)
		sp.End()
		st.mu.Unlock()
		srv.dumpFlight(id, st, "seq-conflict")
		srv.writeState(w, id, st, http.StatusConflict)
		return
	}
	ansSp := st.startSpan("answer", remote,
		obs.Attr{Key: "seq", Value: strconv.Itoa(*req.Seq)},
		obs.Attr{Key: "prefer", Value: strconv.Itoa(req.Prefer)})
	defer ansSp.End()
	if srv.opt.Store != nil {
		persistSp := ansSp.StartChild("store-persist")
		var err error
		if ss, ok := srv.opt.Store.(SpanSessionStore); ok {
			err = ss.AnswerSpan(id, req.Prefer == 1, persistSp)
		} else {
			err = srv.opt.Store.Answer(id, req.Prefer == 1)
		}
		persistSp.SetStatus(err)
		persistSp.End()
		if err != nil {
			srv.storeErrors.Inc()
			ansSp.SetStatus(err)
			st.mu.Unlock()
			log.Printf("server: persist answer %s: %v (refusing request)", id, err)
			w.Header().Set("Retry-After", srv.retryAfter())
			http.Error(w, "store unavailable; answer not applied", http.StatusServiceUnavailable)
			return
		}
	}
	applySp := ansSp.StartChild("apply")
	if err := st.s.Answer(req.Prefer == 1); err != nil {
		applySp.SetStatus(err)
		applySp.End()
		if algErr := st.s.Err(); algErr != nil {
			st.failed = algErr
			st.mu.Unlock()
			srv.teardown(id, st)
			http.Error(w, "session failed: "+algErr.Error(), http.StatusInternalServerError)
			return
		}
		st.mu.Unlock()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	st.seq++
	if !st.questionAt.IsZero() {
		secs := srv.now().Sub(st.questionAt).Seconds()
		if ctx := ansSp.Context(); ctx.Valid() {
			// Exemplar: the latency bucket points back at this answer span.
			srv.questionLatency.ObserveExemplar(secs, ctx.Trace.String(), ctx.Span.String())
		} else {
			srv.questionLatency.Observe(secs)
		}
	}
	srv.advance(id, st)
	applySp.SetStatus(st.failed)
	applySp.End()
	failed := st.failed
	exhausted := st.done && st.cert != nil && !st.cert.Certified
	st.mu.Unlock()
	if failed != nil {
		srv.teardown(id, st)
		http.Error(w, "session failed: "+failed.Error(), http.StatusInternalServerError)
		return
	}
	if exhausted {
		srv.dumpFlight(id, st, "budget-exhausted")
	}
	srv.writeState(w, id, st, http.StatusOK)
}

// errSeqConflict labels conflict spans; the detailed seqs ride as attrs.
var errSeqConflict = errors.New("stale or future seq")

// peek returns a session without stamping lastUsed — for observability
// paths (flight dumps on shed) that must not keep an idle session alive.
func (srv *Server) peek(id string) *sessionState {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.sessions[id]
}

// advance pulls the next question (or the result) into the state, detecting
// a failed algorithm goroutine. Callers hold st.mu. The lastUsed stamp is
// maintained by lookup/create under srv.mu (its guardian), not here.
func (srv *Server) advance(id string, st *sessionState) {
	p, q, done := st.s.Next()
	if err := st.s.Err(); err != nil {
		st.failed = err
		return
	}
	if done {
		st.done = true
		if pt, idx, err := st.s.Result(); err == nil {
			st.result, st.resultID = pt, idx
		}
		if cert, ok := st.s.Certificate(); ok {
			st.cert = &cert
		}
		srv.questionsToCertify.Observe(float64(st.s.Questions()))
		// Distance to theory (DESIGN.md §13): this session's question count
		// against the paper's 2-d bounds for the instance it ran on.
		// vs_upper <= 1.0 is a guarantee for 2D-PI (Thm 4.5); for the other
		// algorithms the labeled gauge is a comparative benchmark.
		if lower, upper := ist.TheoryBounds(len(srv.points), srv.k); upper > 0 {
			qs := float64(st.s.Questions())
			alg := st.algName
			if alg == "" {
				alg = "rh"
			}
			srv.vsUpper.With(alg).Set(qs / upper)
			if lower > 0 {
				srv.vsLower.With(alg).Set(qs / lower)
			}
		}
		srv.closeTrace(st)
		// Completed sessions need no replay on restart; drop the record.
		if srv.opt.Store != nil {
			_ = srv.opt.Store.Finish(id)
		}
		return
	}
	st.curP, st.curQ = p, q
	st.questionAt = srv.now()
}

// teardown removes a failed session, releases its goroutine, and forgets
// its persisted record. Callers must NOT hold st.mu.
func (srv *Server) teardown(id string, st *sessionState) {
	srv.mu.Lock()
	delete(srv.sessions, id)
	srv.mu.Unlock()
	st.mu.Lock()
	if st.s != nil {
		st.s.Close()
	}
	failed := st.failed
	st.mu.Unlock()
	if failed != nil {
		// A torn-down failed session is almost always a rescued panic: dump
		// the flight recorder so the last spans before death are on disk.
		srv.dumpFlight(id, st, "session-failure")
	}
	srv.closeTrace(st)
	if srv.opt.Store != nil {
		_ = srv.opt.Store.Finish(id)
	}
}

// retryAfter suggests how long a rejected client should wait: a fraction of
// the TTL (idle sessions free slots at that horizon), floored at 1s.
func (srv *Server) retryAfter() string {
	secs := int(srv.opt.TTL.Seconds() / 4)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (srv *Server) lookup(id string) (*sessionState, bool) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	st, ok := srv.sessions[id]
	if ok {
		st.lastUsed = srv.now()
	}
	return st, ok
}

// expire closes idle sessions past the TTL. The background reaper calls it
// on a ticker; tests with fake clocks call it directly.
func (srv *Server) expire() {
	if srv.opt.TTL <= 0 {
		return
	}
	cutoff := srv.now().Add(-srv.opt.TTL)
	type expired struct {
		id string
		st *sessionState
	}
	srv.mu.Lock()
	var stale []expired
	for id, st := range srv.sessions {
		if st.lastUsed.Before(cutoff) {
			stale = append(stale, expired{id, st})
			delete(srv.sessions, id)
		}
	}
	srv.mu.Unlock()
	for _, e := range stale {
		e.st.mu.Lock()
		if e.st.s != nil {
			e.st.s.Close()
		}
		e.st.mu.Unlock()
		srv.closeTrace(e.st)
		if srv.opt.Store != nil {
			_ = srv.opt.Store.Finish(e.id)
		}
	}
}

// Sessions returns the live session count (for tests and monitoring).
func (srv *Server) Sessions() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

func (srv *Server) writeState(w http.ResponseWriter, id string, st *sessionState, code int) {
	st.mu.Lock()
	resp := StateResponse{ID: id, Seq: st.seq, Questions: st.s.Questions(), Done: st.done}
	if st.done {
		resp.Result = st.result
		resp.ResultID = st.resultID
		resp.Certificate = st.cert
	} else {
		resp.Question = &Question{Option1: st.curP, Option2: st.curQ}
	}
	st.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}
