package server

import (
	"context"
	"time"
)

// gate is a bounded-concurrency admission controller for the state-changing
// handlers (create/answer). A request either takes a slot immediately,
// queues for up to the configured timeout, or is shed — so a flood of
// clients degrades into fast 503 + Retry-After responses instead of an
// unbounded pile of goroutines all contending for session locks.
//
// The slow path uses a real timer rather than the injected clock: shedding
// bounds *this process's* resource usage, so it must track real elapsed
// time even under a fake clock (and timers are sanctioned by the wallclock
// analyzer — they schedule work, they do not observe the clock).
type gate struct {
	sem     chan struct{}
	timeout time.Duration
}

// newGate builds a gate admitting n concurrent requests (nil if n <= 0,
// meaning unbounded — every method on a nil gate is a no-op).
func newGate(n int, timeout time.Duration) *gate {
	if n <= 0 {
		return nil
	}
	return &gate{sem: make(chan struct{}, n), timeout: timeout}
}

// acquire reserves a slot, queueing up to the gate's timeout and giving up
// early when the client abandons the request. It reports false when the
// request must be shed.
func (g *gate) acquire(ctx context.Context) bool {
	if g == nil {
		return true
	}
	select {
	case g.sem <- struct{}{}:
		return true
	default:
	}
	if g.timeout <= 0 {
		return false
	}
	t := time.NewTimer(g.timeout)
	defer t.Stop()
	select {
	case g.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// release returns a slot taken by acquire.
func (g *gate) release() {
	if g != nil {
		<-g.sem
	}
}
