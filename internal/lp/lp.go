// Package lp implements a dense two-phase simplex linear-programming solver.
//
// The IST reproduction needs LP in several places: output-sensitive convex
// point detection (Section 5.2.1 "accurate" mode), R-domination pruning in
// the UH-Random/UH-Simplex baselines, implication testing in Active-Ranking,
// and exact hyperplane/region intersection tests. All of these are small
// problems (at most a few variables and a few hundred constraints), so a
// dense tableau with Bland-rule anti-cycling is both simple and adequate.
package lp

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"ist/internal/clock"
	"ist/internal/geom"
	"ist/internal/obs"
)

// Relation is the comparison operator of a constraint.
type Relation int

const (
	// LE is a·x <= b.
	LE Relation = iota
	// GE is a·x >= b.
	GE
	// EQ is a·x == b.
	EQ
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Constraint is a single linear constraint Coef·x Rel RHS.
type Constraint struct {
	Coef []float64
	Rel  Relation
	RHS  float64
}

// Problem is a linear program: maximize Objective·x subject to Constraints,
// with x_i >= 0 unless Free[i] is set (Free may be nil, meaning all
// variables are nonnegative).
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
	Free        []bool
}

// Result holds the outcome of Solve.
type Result struct {
	Status Status
	// X is the optimal assignment (length NumVars) when Status == Optimal.
	X []float64
	// Value is Objective·X when Status == Optimal.
	Value float64
}

const (
	eps = geom.Eps
	// feasEps is the looser tolerance for phase-1 residuals and pivot
	// eligibility, where accumulated pivoting noise exceeds eps.
	feasEps = geom.FeasEps
	// maxIter bounds simplex iterations; beyond blandAfter iterations the
	// pivot rule switches to Bland's rule, which cannot cycle.
	maxIter    = 20000
	blandAfter = 2000
)

// solveHook, when set, observes and may mutate every Solve result before it
// is returned. It exists solely so the fault-injection chaos tests
// (internal/faultinject) can corrupt a scheduled solve and exercise the
// degradation ladder; production code must never install one.
var solveHook atomic.Pointer[func(*Result)]

// SetSolveHook installs (or, with nil, removes) the test-only solve hook.
func SetSolveHook(h func(*Result)) {
	if h == nil {
		solveHook.Store(nil)
		return
	}
	solveHook.Store(&h)
}

// solveClock times traced solves. It is injectable (SetClock) so tests
// control durations and the library never reads the wall clock directly;
// the default is the real clock, read only when a trace observer is
// attached — the untraced fast path performs no clock reads at all.
var solveClock atomic.Pointer[clock.Clock]

// SetClock injects the clock used to time traced solves (nil restores the
// real clock).
func SetClock(c clock.Clock) {
	if c == nil {
		solveClock.Store(nil)
		return
	}
	solveClock.Store(&c)
}

func clk() clock.Clock {
	if p := solveClock.Load(); p != nil {
		return *p
	}
	return clock.Real
}

// Solve optimizes the problem with a two-phase dense simplex method.
func Solve(p Problem) Result {
	return SolveTraced(p, nil)
}

// SolveTraced is Solve with an lp-solve trace event per call: final status,
// simplex pivot iterations, and duration measured on the injected package
// clock. A nil observer is the plain Solve fast path (no clock reads, no
// allocation). The chaos-test solve hook applies before the event is
// emitted, so a corrupted result is reported as what the caller saw.
func SolveTraced(p Problem, o obs.Observer) Result {
	var start time.Time
	if o != nil {
		start = clk().Now()
	}
	res, iters := solve(p)
	if h := solveHook.Load(); h != nil {
		(*h)(&res)
	}
	if o != nil {
		obs.LPSolve(o, res.Status.String(), iters, clk().Now().Sub(start))
	}
	return res
}

func solve(p Problem) (Result, int) {
	if len(p.Objective) != p.NumVars {
		panic(fmt.Sprintf("lp: objective has %d coefficients for %d variables", len(p.Objective), p.NumVars))
	}
	for i, c := range p.Constraints {
		if len(c.Coef) != p.NumVars {
			panic(fmt.Sprintf("lp: constraint %d has %d coefficients for %d variables", i, len(c.Coef), p.NumVars))
		}
	}

	// All working memory below comes from a pooled scratch (scratch.go):
	// buffers are re-zeroed to fresh-make state, so the arithmetic — and the
	// pivot sequence — is identical to an allocating build.
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)

	// Split free variables x = x+ - x-. Column layout: for each original
	// variable i, column col[i] holds x_i (or x_i^+); free variables get an
	// extra negative-part column appended after the originals.
	nOrig := p.NumVars
	negCol := ints(&s.negCol, nOrig) // -1 if not free
	nStd := nOrig
	for i := 0; i < nOrig; i++ {
		negCol[i] = -1
		if p.Free != nil && p.Free[i] {
			negCol[i] = nStd
			nStd++
		}
	}

	m := len(p.Constraints)
	// The arena holds the m expanded constraint rows plus (row m) the
	// expanded objective, each nStd wide and zeroed like a fresh make.
	arena := floats(&s.rowArena, (m+1)*nStd)
	expandInto := func(dst, coef []float64) {
		copy(dst, coef)
		for i, nc := range negCol {
			if nc >= 0 {
				dst[nc] = -coef[i]
			}
		}
	}

	// Count slack/artificial columns.
	nSlack := 0
	nArt := 0
	rhs := floats(&s.rhs, m)
	rel := rels(&s.rel, m)
	for i, c := range p.Constraints {
		a := arena[i*nStd : (i+1)*nStd]
		expandInto(a, c.Coef)
		r := c.RHS
		rl := c.Rel
		if r < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			r = -r
			switch rl {
			case LE:
				rl = GE
			case GE:
				rl = LE
			}
		}
		rhs[i], rel[i] = r, rl
		switch rl {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	total := nStd + nSlack + nArt
	width := total + 1
	// tableau: m rows + 1 objective row (phase 1), columns total+1 (RHS last).
	tabBuf := floats(&s.tabBuf, (m+1)*width)
	t := rowPtrs(&s.tab, m+1)
	for i := range t {
		t[i] = tabBuf[i*width : (i+1)*width]
	}
	basis := ints(&s.basis, m)
	artCols := bools(&s.artCols, total)

	slackAt := nStd
	artAt := nStd + nSlack
	for i := 0; i < m; i++ {
		copy(t[i], arena[i*nStd:(i+1)*nStd])
		t[i][total] = rhs[i]
		switch rel[i] {
		case LE:
			t[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			t[i][slackAt] = -1
			slackAt++
			t[i][artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		case EQ:
			t[i][artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		}
	}

	// Phase 1: minimize sum of artificials == maximize -(sum of artificials).
	iters := 0
	if nArt > 0 {
		obj := t[m]
		for j := 0; j <= total; j++ {
			obj[j] = 0
		}
		for j := nStd + nSlack; j < total; j++ {
			obj[j] = -1 // maximize -sum(art)
		}
		// Price out basic artificials.
		for i, b := range basis {
			if artCols[b] {
				addRow(obj, t[i], 1)
			}
		}
		ok, n := simplexIterate(t, basis, total, m)
		iters += n
		if !ok {
			// Phase 1 of a bounded-below objective cannot be unbounded, but be
			// defensive anyway.
			return Result{Status: Infeasible}, iters
		}
		// With this tableau convention the objective row's RHS equals the
		// negated objective value, so phase-1 optimum = -t[m][total].
		if t[m][total] > feasEps {
			return Result{Status: Infeasible}, iters
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if !artCols[basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < nStd+nSlack; j++ {
				if math.Abs(t[i][j]) > feasEps {
					pivot(t, basis, i, j, total, m)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: the artificial stays basic at value ~0.
				// Zero it so it can never re-enter with a nonzero value.
				t[i][total] = 0
			}
		}
	}

	// Phase 2: the real objective.
	obj := t[m]
	for j := 0; j <= total; j++ {
		obj[j] = 0
	}
	cExp := arena[m*nStd : (m+1)*nStd]
	expandInto(cExp, p.Objective)
	for j := 0; j < nStd; j++ {
		obj[j] = cExp[j]
	}
	// Forbid artificials from re-entering.
	for j := nStd + nSlack; j < total; j++ {
		obj[j] = math.Inf(-1)
	}
	// Price out basic variables.
	for i, b := range basis {
		if math.Abs(obj[b]) > 0 && !math.IsInf(obj[b], -1) {
			addRow(obj, t[i], -obj[b])
		} else if artCols[b] {
			// Basic artificial at zero: leave objective row consistent by
			// treating its cost as zero.
			obj[b] = 0
		}
	}
	// Any remaining -Inf entries in non-basic artificial columns are fine:
	// they will never be chosen as entering columns. Replace Inf sums safely.
	for j := nStd + nSlack; j < total; j++ {
		if math.IsInf(obj[j], -1) {
			obj[j] = -1e18
		}
	}

	ok, n := simplexIterate(t, basis, total, m)
	iters += n
	if !ok {
		return Result{Status: Unbounded}, iters
	}

	// Extract solution.
	xStd := floats(&s.xStd, nStd)
	for i, b := range basis {
		if b < nStd {
			xStd[b] = t[i][total]
		}
	}
	x := make([]float64, nOrig)
	for i := 0; i < nOrig; i++ {
		x[i] = xStd[i]
		if negCol[i] >= 0 {
			x[i] -= xStd[negCol[i]]
		}
	}
	val := 0.0
	for i, c := range p.Objective {
		val += c * x[i]
	}
	return Result{Status: Optimal, X: x, Value: val}, iters
}

// addRow does dst += f * src over the full tableau width.
func addRow(dst, src []float64, f float64) {
	for j := range dst {
		dst[j] += f * src[j]
	}
}

// pivot performs a pivot on (row, col).
func pivot(t [][]float64, basis []int, row, col, total, m int) {
	pv := t[row][col]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		t[row][j] *= inv
	}
	t[row][col] = 1 // exact
	for i := 0; i <= m; i++ {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			t[i][j] -= f * t[row][j]
		}
		t[i][col] = 0 // exact
	}
	basis[row] = col
}

// simplexIterate runs primal simplex on the tableau until optimal or
// unbounded, also reporting how many pivot iterations it ran. Returns
// ok=false on unboundedness.
func simplexIterate(t [][]float64, basis []int, total, m int) (bool, int) {
	obj := t[m]
	for iter := 0; iter < maxIter; iter++ {
		bland := iter >= blandAfter
		// Entering column: positive reduced cost (we maximize).
		col := -1
		best := eps
		for j := 0; j < total; j++ {
			if obj[j] > best {
				if bland {
					col = j
					break
				}
				best = obj[j]
				col = j
			}
		}
		if col < 0 {
			return true, iter // optimal
		}
		// Ratio test.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][col]
			if a > eps {
				r := t[i][total] / a
				if r < bestRatio-eps || (math.Abs(r-bestRatio) <= eps && (row < 0 || basis[i] < basis[row])) {
					bestRatio = r
					row = i
				}
			}
		}
		if row < 0 {
			return false, iter // unbounded
		}
		pivot(t, basis, row, col, total, m)
	}
	// Iteration limit: treat the current (feasible) point as optimal enough.
	return true, maxIter
}
