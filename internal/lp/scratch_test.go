package lp

import (
	"math/rand"
	"testing"
)

// benchProblem is the BenchmarkSolve workload: the LP shape the algorithms
// actually produce (few variables, tens of constraints).
func benchProblem() Problem {
	rng := rand.New(rand.NewSource(1))
	d := 5
	var cons []Constraint
	one := make([]float64, d)
	for i := range one {
		one[i] = 1
	}
	cons = append(cons, Constraint{Coef: one, Rel: EQ, RHS: 1})
	for c := 0; c < 40; c++ {
		row := make([]float64, d)
		for i := range row {
			row[i] = rng.Float64()*2 - 1
		}
		cons = append(cons, Constraint{Coef: row, Rel: GE, RHS: -0.5})
	}
	obj := make([]float64, d)
	for i := range obj {
		obj[i] = rng.Float64()
	}
	return Problem{NumVars: d, Objective: obj, Constraints: cons}
}

// TestSolveAllocs pins the zero-alloc scratch layer: a steady-state solve
// may allocate only the Result.X slice it hands the caller (plus pool
// noise), a >=80% reduction from the ~90 allocs/op of the tableau-per-call
// solver it replaced. The bound is deliberately loose (8) so a GC emptying
// the sync.Pool mid-run cannot flake the test.
func TestSolveAllocs(t *testing.T) {
	prob := benchProblem()
	Solve(prob) // warm the scratch pool
	allocs := testing.AllocsPerRun(100, func() {
		Solve(prob)
	})
	if allocs > 8 {
		t.Fatalf("Solve allocates %.1f objects/op, want <= 8 (scratch pool regressed)", allocs)
	}
}

// TestScratchReuseMatchesFresh runs interleaved solves of different shapes
// through the shared pool and checks each against a problem-specific fresh
// run — stale buffer contents from a previous (larger) solve must never
// leak into a later one.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(nv, m int, free bool) Problem {
		p := Problem{NumVars: nv}
		p.Objective = make([]float64, nv)
		for i := range p.Objective {
			p.Objective[i] = rng.Float64()
		}
		if free {
			p.Free = make([]bool, nv)
			p.Free[nv-1] = true
		}
		one := make([]float64, nv)
		for i := range one {
			one[i] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coef: one, Rel: EQ, RHS: 1})
		for c := 0; c < m; c++ {
			row := make([]float64, nv)
			for i := range row {
				row[i] = rng.Float64()*2 - 1
			}
			p.Constraints = append(p.Constraints, Constraint{Coef: row, Rel: GE, RHS: -rng.Float64()})
		}
		return p
	}
	probs := []Problem{mk(6, 50, true), mk(3, 4, false), mk(5, 30, true), mk(2, 2, false)}
	// Reference results on first (cold) pass.
	var want []Result
	for _, p := range probs {
		want = append(want, Solve(p))
	}
	// Re-solving through warm scratches must reproduce them bit for bit.
	for round := 0; round < 3; round++ {
		for pi, p := range probs {
			got := Solve(p)
			w := want[pi]
			if got.Status != w.Status || got.Value != w.Value {
				t.Fatalf("round %d problem %d: got (%v, %v), want (%v, %v)",
					round, pi, got.Status, got.Value, w.Status, w.Value)
			}
			for i := range got.X {
				if got.X[i] != w.X[i] {
					t.Fatalf("round %d problem %d: X[%d] = %v, want %v", round, pi, i, got.X[i], w.X[i])
				}
			}
		}
	}
}
