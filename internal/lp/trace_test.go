package lp

import (
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/obs"
)

// TestSolveTraced pins the lp-solve trace event: one event per solve with
// the final status, a positive pivot count, and a duration measured on the
// injected package clock (two reads of a stepping fake = one step).
func TestSolveTraced(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	fake.SetStep(5 * time.Millisecond)
	SetClock(fake)
	defer SetClock(nil)

	var events []obs.Event
	o := obs.Func(func(e obs.Event) { events = append(events, e) })
	res := SolveTraced(Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 0}, Rel: LE, RHS: 2},
			{Coef: []float64{0, 1}, Rel: LE, RHS: 3},
		},
	}, o)
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if len(events) != 1 {
		t.Fatalf("emitted %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != obs.KindLPSolve {
		t.Fatalf("kind = %q", e.Kind)
	}
	if e.Status != "optimal" {
		t.Fatalf("event status = %q, want optimal", e.Status)
	}
	if e.Count <= 0 {
		t.Fatalf("iterations = %d, want > 0", e.Count)
	}
	if e.Duration != 5*time.Millisecond {
		t.Fatalf("duration = %v, want one 5ms clock step", e.Duration)
	}
}

// TestSolveTracedInfeasible asserts the event reports the status the caller
// saw, including failures.
func TestSolveTracedInfeasible(t *testing.T) {
	var events []obs.Event
	o := obs.Func(func(e obs.Event) { events = append(events, e) })
	res := SolveTraced(Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: LE, RHS: -1},
		},
	}, o)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	if len(events) != 1 || events[0].Status != "infeasible" {
		t.Fatalf("events = %+v", events)
	}
}

// TestSolveUntracedIsSolve asserts the nil-observer path matches Solve
// exactly (it IS Solve).
func TestSolveUntracedIsSolve(t *testing.T) {
	p := Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coef: []float64{1, 3}, Rel: LE, RHS: 6},
		},
	}
	a, b := Solve(p), SolveTraced(p, nil)
	if a.Status != b.Status || a.Value != b.Value {
		t.Fatalf("Solve and SolveTraced(nil) diverge: %+v vs %+v", a, b)
	}
}
