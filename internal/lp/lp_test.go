package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMax(t *testing.T) {
	// max x + y s.t. x <= 2, y <= 3, x,y >= 0 -> 5 at (2,3).
	res := Solve(Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 0}, Rel: LE, RHS: 2},
			{Coef: []float64{0, 1}, Rel: LE, RHS: 3},
		},
	})
	if res.Status != Optimal || !approx(res.Value, 5, 1e-7) {
		t.Fatalf("got %v value %v, want optimal 5", res.Status, res.Value)
	}
	if !approx(res.X[0], 2, 1e-7) || !approx(res.X[1], 3, 1e-7) {
		t.Fatalf("X = %v, want (2,3)", res.X)
	}
}

func TestClassicLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2,6).
	res := Solve(Problem{
		NumVars:   2,
		Objective: []float64{3, 5},
		Constraints: []Constraint{
			{Coef: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coef: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coef: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	})
	if res.Status != Optimal || !approx(res.Value, 36, 1e-7) {
		t.Fatalf("got %v value %v, want optimal 36", res.Status, res.Value)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// max x s.t. x + y = 1, x >= 0.25, y >= 0 -> x = 1.
	res := Solve(Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 1},
			{Coef: []float64{1, 0}, Rel: GE, RHS: 0.25},
		},
	})
	if res.Status != Optimal || !approx(res.Value, 1, 1e-7) {
		t.Fatalf("got %v value %v, want optimal 1", res.Status, res.Value)
	}
}

func TestInfeasible(t *testing.T) {
	res := Solve(Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: LE, RHS: 1},
			{Coef: []float64{1}, Rel: GE, RHS: 2},
		},
	})
	if res.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	res := Solve(Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, RHS: 0},
		},
	})
	if res.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", res.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// max -x s.t. x >= -5 (x free) -> value 5 at x = -5.
	res := Solve(Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, RHS: -5},
		},
		Free: []bool{true},
	})
	if res.Status != Optimal || !approx(res.Value, 5, 1e-7) {
		t.Fatalf("got %v value %v X=%v, want optimal 5", res.Status, res.Value, res.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// max x+y s.t. -x - y >= -4, x,y >= 0 -> 4.
	res := Solve(Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{-1, -1}, Rel: GE, RHS: -4},
		},
	})
	if res.Status != Optimal || !approx(res.Value, 4, 1e-7) {
		t.Fatalf("got %v value %v, want optimal 4", res.Status, res.Value)
	}
}

func TestDegenerateRedundantConstraints(t *testing.T) {
	// Duplicate and redundant constraints must not break the solver.
	res := Solve(Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, RHS: 1},
			{Coef: []float64{1, 1}, Rel: LE, RHS: 1},
			{Coef: []float64{2, 2}, Rel: LE, RHS: 2},
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 1},
		},
	})
	if res.Status != Optimal || !approx(res.Value, 2, 1e-7) {
		t.Fatalf("got %v value %v, want optimal 2 at (0,1)", res.Status, res.Value)
	}
}

func TestMaxOverSimplex(t *testing.T) {
	// max u1 over simplex in 3d with u1 <= u2 (i.e. u2 - u1 >= 0): 0.5.
	v, u, ok := MaxOverSimplex([]float64{1, 0, 0}, [][]float64{{-1, 1, 0}})
	if !ok || !approx(v, 0.5, 1e-7) {
		t.Fatalf("got %v ok=%v, want 0.5", v, ok)
	}
	if sum := u[0] + u[1] + u[2]; !approx(sum, 1, 1e-7) {
		t.Fatalf("optimizer not on simplex: %v", u)
	}
}

func TestMinOverSimplex(t *testing.T) {
	v, _, ok := MinOverSimplex([]float64{1, 2}, nil)
	if !ok || !approx(v, 1, 1e-7) {
		t.Fatalf("got %v ok=%v, want min 1", v, ok)
	}
}

func TestFeasibleOverSimplex(t *testing.T) {
	if _, ok := FeasibleOverSimplex(nil, 3); !ok {
		t.Fatal("plain simplex must be feasible")
	}
	// u1 - u2 >= 0 and u2 - u1 >= 0 forces u1 = u2: still feasible.
	if u, ok := FeasibleOverSimplex([][]float64{{1, -1}, {-1, 1}}, 2); !ok || !approx(u[0], u[1], 1e-7) {
		t.Fatalf("u1=u2 region: got %v ok=%v", u, ok)
	}
	// Contradictory strict-ish cuts: u1 - u2 >= 0 and u2 - u1 >= 0.5 is empty
	// (needs an inhomogeneous trick): use u1 >= 0.7 and u2 >= 0.7 instead via
	// InteriorPoint slack check below. Here: (1,-1)·u >= 0 together with
	// (-3,1)·u >= 0 means u1 >= u2 and u2 >= 3u1 -> u1 = u2 = 0, off-simplex.
	if _, ok := FeasibleOverSimplex([][]float64{{1, -1}, {-3, 1}}, 2); ok {
		t.Fatal("empty region reported feasible")
	}
}

func TestInteriorPointOverSimplex(t *testing.T) {
	u, slack, ok := InteriorPointOverSimplex(nil, 3)
	if !ok || slack < 0.3 {
		t.Fatalf("interior of plain 3-simplex: u=%v slack=%v ok=%v", u, slack, ok)
	}
	for _, x := range u {
		if !approx(x, 1.0/3, 1e-6) {
			t.Fatalf("interior point %v, want uniform", u)
		}
	}
	// A thin region still yields a point with tiny slack.
	u, slack, ok = InteriorPointOverSimplex([][]float64{{1, -1}, {-1, 1}}, 2)
	if !ok {
		t.Fatal("u1=u2 region must be feasible")
	}
	if !approx(u[0], 0.5, 1e-6) || slack > 1e-6 {
		t.Fatalf("thin region: u=%v slack=%v", u, slack)
	}
}

// Property test: for random LPs over the simplex, the LP optimum of c·u must
// match brute-force sampling within tolerance (LP >= sampled max).
func TestQuickSimplexUpperBoundsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(4)
		c := make([]float64, d)
		for i := range c {
			c[i] = r.Float64()*2 - 1
		}
		var hs [][]float64
		for k := 0; k < r.Intn(3); k++ {
			w := make([]float64, d)
			for i := range w {
				w[i] = r.Float64()*2 - 1
			}
			hs = append(hs, w)
		}
		opt, _, ok := MaxOverSimplex(c, hs)
		if !ok {
			return true // region may genuinely be empty
		}
		// Sample random simplex points inside the region; none may beat opt.
		for s := 0; s < 200; s++ {
			u := randSimplex(rng, d)
			inside := true
			for _, w := range hs {
				dot := 0.0
				for i := range w {
					dot += w[i] * u[i]
				}
				if dot < 0 {
					inside = false
					break
				}
			}
			if !inside {
				continue
			}
			val := 0.0
			for i := range c {
				val += c[i] * u[i]
			}
			if val > opt+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randSimplex(r *rand.Rand, d int) []float64 {
	u := make([]float64, d)
	sum := 0.0
	for i := range u {
		u[i] = -math.Log(r.Float64() + 1e-12)
		sum += u[i]
	}
	for i := range u {
		u[i] /= sum
	}
	return u
}

// BenchmarkSolve measures the simplex solver on the LP shapes the
// algorithms actually produce: few variables, tens of constraints.
func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 5
	var cons []Constraint
	one := make([]float64, d)
	for i := range one {
		one[i] = 1
	}
	cons = append(cons, Constraint{Coef: one, Rel: EQ, RHS: 1})
	for c := 0; c < 40; c++ {
		row := make([]float64, d)
		for i := range row {
			row[i] = rng.Float64()*2 - 1
		}
		cons = append(cons, Constraint{Coef: row, Rel: GE, RHS: -0.5})
	}
	obj := make([]float64, d)
	for i := range obj {
		obj[i] = rng.Float64()
	}
	prob := Problem{NumVars: d, Objective: obj, Constraints: cons}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(prob)
	}
}

func TestBealeCyclingExample(t *testing.T) {
	// Beale's classic degenerate LP that cycles under naive Dantzig
	// pivoting; the Bland fallback must terminate at the optimum 0.05.
	// max 0.75x1 - 150x2 + 0.02x3 - 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
	//      0.50x1 - 90x2 - 0.02x3 + 3x4 <= 0
	//      x3 <= 1, x >= 0
	res := Solve(Problem{
		NumVars:   4,
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coef: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coef: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coef: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	})
	if res.Status != Optimal || !approx(res.Value, 0.05, 1e-7) {
		t.Fatalf("Beale LP: %v value %v, want optimal 0.05", res.Status, res.Value)
	}
}

func TestZeroObjective(t *testing.T) {
	res := Solve(Problem{
		NumVars:   2,
		Objective: []float64{0, 0},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 1},
		},
	})
	if res.Status != Optimal || !approx(res.Value, 0, 1e-9) {
		t.Fatalf("zero objective: %v %v", res.Status, res.Value)
	}
}

func TestManyRedundantEqualities(t *testing.T) {
	// Repeated equalities exercise the artificial-variable cleanup.
	var cons []Constraint
	for i := 0; i < 8; i++ {
		cons = append(cons, Constraint{Coef: []float64{1, 1, 1}, Rel: EQ, RHS: 1})
	}
	res := Solve(Problem{NumVars: 3, Objective: []float64{1, 2, 3}, Constraints: cons})
	if res.Status != Optimal || !approx(res.Value, 3, 1e-7) {
		t.Fatalf("redundant equalities: %v %v, want optimal 3", res.Status, res.Value)
	}
}
