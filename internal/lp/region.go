package lp

// Helpers for linear programs over the utility space: the standard simplex
// {u : Σu[i] = 1, u >= 0} further cut by homogeneous halfspaces w·u >= 0
// learned from user feedback.

// MaxOverSimplex maximizes c·u over the simplex intersected with the given
// halfspaces (each halfspace is w·u >= 0). It returns the optimal value, an
// optimizer, and whether the region is feasible.
func MaxOverSimplex(c []float64, halfspaces [][]float64) (float64, []float64, bool) {
	d := len(c)
	cons := make([]Constraint, 0, len(halfspaces)+1)
	one := make([]float64, d)
	for i := range one {
		one[i] = 1
	}
	cons = append(cons, Constraint{Coef: one, Rel: EQ, RHS: 1})
	for _, w := range halfspaces {
		cons = append(cons, Constraint{Coef: w, Rel: GE, RHS: 0})
	}
	res := Solve(Problem{NumVars: d, Objective: c, Constraints: cons})
	if res.Status != Optimal {
		return 0, nil, false
	}
	return res.Value, res.X, true
}

// MinOverSimplex minimizes c·u over the simplex intersected with the given
// halfspaces.
func MinOverSimplex(c []float64, halfspaces [][]float64) (float64, []float64, bool) {
	neg := make([]float64, len(c))
	for i, x := range c {
		neg[i] = -x
	}
	v, u, ok := MaxOverSimplex(neg, halfspaces)
	return -v, u, ok
}

// FeasibleOverSimplex reports whether the simplex cut by the halfspaces is
// nonempty and returns a witness utility vector when it is.
func FeasibleOverSimplex(halfspaces [][]float64, dim int) ([]float64, bool) {
	zero := make([]float64, dim)
	_, u, ok := MaxOverSimplex(zero, halfspaces)
	return u, ok
}

// InteriorPointOverSimplex finds a point of the region maximizing the minimum
// slack: max t s.t. u in simplex, w·u >= t for all halfspaces, u[i] >= t.
// It returns the point and the achieved slack (negative slack means the
// region has no interior; zero-or-less slack with ok=false means infeasible).
func InteriorPointOverSimplex(halfspaces [][]float64, dim int) ([]float64, float64, bool) {
	// Variables: u (dim, nonneg), t (free).
	n := dim + 1
	obj := make([]float64, n)
	obj[dim] = 1
	cons := make([]Constraint, 0, len(halfspaces)+dim+1)
	one := make([]float64, n)
	for i := 0; i < dim; i++ {
		one[i] = 1
	}
	cons = append(cons, Constraint{Coef: one, Rel: EQ, RHS: 1})
	for _, w := range halfspaces {
		row := make([]float64, n)
		copy(row, w)
		row[dim] = -1
		cons = append(cons, Constraint{Coef: row, Rel: GE, RHS: 0})
	}
	for i := 0; i < dim; i++ {
		row := make([]float64, n)
		row[i] = 1
		row[dim] = -1
		cons = append(cons, Constraint{Coef: row, Rel: GE, RHS: 0})
	}
	free := make([]bool, n)
	free[dim] = true
	res := Solve(Problem{NumVars: n, Objective: obj, Constraints: cons, Free: free})
	if res.Status != Optimal {
		return nil, 0, false
	}
	return res.X[:dim], res.X[dim], true
}
