package lp

import "sync"

// scratch holds every intermediate buffer one solve needs: the expanded
// constraint rows, the dense tableau, the basis bookkeeping and the solution
// staging area. Solves check buffers out of a sync.Pool and return them on
// exit, so steady-state solving allocates only the Result.X slice handed to
// the caller (PR 10's zero-alloc simplex layer; see BenchmarkSolve and
// TestSolveAllocs). Reused memory is explicitly re-zeroed to the state a
// fresh make would give, so the pivot sequence — and therefore every Result
// and traced iteration count — is bit-identical to the allocating solver
// this replaced.
type scratch struct {
	negCol   []int
	basis    []int
	rhs      []float64
	rel      []Relation
	rowArena []float64 // m expanded constraint rows + the expanded objective
	tabBuf   []float64 // flat (m+1) x (total+1) tableau backing
	tab      [][]float64
	artCols  []bool
	xStd     []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// floats returns a zeroed []float64 of length n, reusing *buf's backing
// array when it is big enough and storing the result back through buf so the
// capacity survives for the next solve.
func floats(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// ints is floats for []int.
func ints(buf *[]int, n int) []int {
	s := *buf
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// bools is floats for []bool.
func bools(buf *[]bool, n int) []bool {
	s := *buf
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// rels is floats for []Relation.
func rels(buf *[]Relation, n int) []Relation {
	s := *buf
	if cap(s) < n {
		s = make([]Relation, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// rowPtrs returns a row-pointer slice of length n (contents are overwritten
// by the caller, so no zeroing is needed).
func rowPtrs(buf *[][]float64, n int) [][]float64 {
	s := *buf
	if cap(s) < n {
		s = make([][]float64, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}
