// Package faultinject schedules deliberate faults so the fault-tolerance of
// the session layer can be exercised deterministically: an Oracle wrapper
// that delays, panics, or flips the answer on the Nth question, an Algorithm
// wrapper that poisons one session's goroutine with it, an LP-corruption
// installer that breaks the Nth solve, and an HTTP middleware that drops,
// delays, or panics on the Nth request. Production code paths never
// construct these; tests (and manual hardening experiments) do.
package faultinject

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"ist/internal/core"
	"ist/internal/geom"
	"ist/internal/lp"
	"ist/internal/oracle"
)

// Plan schedules faults by 1-based event index (oracle questions for
// Oracle/Algorithm, requests for Middleware, lp.Solve calls for
// InstallLPFaults). A zero index disables that fault; independent faults may
// be combined in one plan.
type Plan struct {
	// PanicAt panics on the Nth event.
	PanicAt int
	// DelayAt sleeps for Delay before the Nth event.
	DelayAt int
	Delay   time.Duration
	// FlipAt inverts the Nth answer (a user mistake, or a corrupted
	// transport). Ignored by Middleware.
	FlipAt int
	// DropAt makes the Middleware reject the Nth request with 503 without
	// reaching the wrapped handler. Ignored by Oracle/Algorithm.
	DropAt int
	// LPCorruptAt makes the Nth lp.Solve performed while InstallLPFaults'
	// hook is installed report Infeasible with no solution. Ignored by
	// Oracle/Algorithm/Middleware.
	LPCorruptAt int
}

// Oracle wraps an oracle and injects the plan's faults into its question
// stream. It is not safe for concurrent use, matching the Oracle contract.
type Oracle struct {
	Inner oracle.Oracle
	Plan  Plan
	n     int
}

// Prefer implements oracle.Oracle.
func (o *Oracle) Prefer(p, q geom.Vector) bool {
	o.n++
	if o.Plan.DelayAt == o.n && o.Plan.Delay > 0 {
		time.Sleep(o.Plan.Delay)
	}
	if o.Plan.PanicAt == o.n {
		panic(fmt.Sprintf("faultinject: scheduled panic at question %d", o.n))
	}
	ans := o.Inner.Prefer(p, q)
	if o.Plan.FlipAt == o.n {
		ans = !ans
	}
	return ans
}

// Questions implements oracle.Oracle.
func (o *Oracle) Questions() int { return o.Inner.Questions() }

// Algorithm wraps an algorithm so that every oracle it is run against is
// poisoned with the plan. Wrapping the algorithm (rather than the oracle) is
// what lets a server inject a fault into one specific session: the fault
// rides inside that session's algorithm goroutine.
type Algorithm struct {
	Inner core.Algorithm
	Plan  Plan
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return a.Inner.Name() + "+faults" }

// Run implements core.Algorithm.
func (a *Algorithm) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	return a.Inner.Run(points, k, &Oracle{Inner: o, Plan: a.Plan})
}

// RunBudgeted implements core.Budgeted, so a budgeted session keeps its
// anytime guarantees even with a poisoned oracle underneath.
func (a *Algorithm) RunBudgeted(points []geom.Vector, k int, o oracle.Oracle, b core.Budget) (int, core.Certificate) {
	return core.RunBudgeted(a.Inner, points, k, &Oracle{Inner: o, Plan: a.Plan}, b)
}

// InstallLPFaults installs the plan's LP-corruption fault into lp.Solve: the
// LPCorruptAt-th solve counted from installation returns Infeasible with no
// solution, modelling the numerically poisoned LP the degradation ladder
// must absorb. The returned func uninstalls the hook and must be called
// (defer it). Installation is process-global, so callers must not run
// concurrently with other LP users; the chaos tests serialize around it.
func InstallLPFaults(plan Plan) (uninstall func()) {
	if plan.LPCorruptAt <= 0 {
		return func() {}
	}
	var n atomic.Int64
	lp.SetSolveHook(func(r *lp.Result) {
		if int(n.Add(1)) == plan.LPCorruptAt {
			*r = lp.Result{Status: lp.Infeasible}
		}
	})
	return func() { lp.SetSolveHook(nil) }
}

// Middleware injects the plan's faults into an HTTP handler: the DropAt-th
// request is rejected with 503 Service Unavailable (carrying a Retry-After
// hint, like every other backpressure response of the server), the DelayAt-th
// stalls for Delay, and the PanicAt-th panics inside the handler (net/http
// recovers per-connection, so this exercises a dropped response, not a
// crash). Safe for concurrent use.
type Middleware struct {
	Next http.Handler
	Plan Plan
	n    atomic.Int64
}

// ServeHTTP implements http.Handler.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(m.n.Add(1))
	if m.Plan.DelayAt == n && m.Plan.Delay > 0 {
		time.Sleep(m.Plan.Delay)
	}
	switch {
	case m.Plan.DropAt == n:
		// A faultinjected drop models transient overload; tell well-behaved
		// clients when to come back, exactly like the 429 path does.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "faultinject: request dropped", http.StatusServiceUnavailable)
	case m.Plan.PanicAt == n:
		panic(fmt.Sprintf("faultinject: scheduled panic at request %d", n))
	default:
		m.Next.ServeHTTP(w, r)
	}
}
