package faultinject

import (
	"errors"
	"os"
	"strings"
	"testing"

	"ist/internal/wal"
)

// write is a test helper: open-or-create name, append p, optionally sync.
func write(t *testing.T, fs *FS, name string, p []byte, sync bool) {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(p); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUnsyncedBytesLostOnCrash: a crash keeps a file's synced prefix and
// drops everything after it — losses are suffix-ordered, never holes.
func TestUnsyncedBytesLostOnCrash(t *testing.T) {
	fs := NewFS(FSPlan{})
	write(t, fs, "d/f", []byte("hello"), true)
	write(t, fs, "d/f", []byte("world"), false)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.CrashAndRestart()
	data, err := fs.ReadFile("d/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("after crash file holds %q, want the synced prefix %q", data, "hello")
	}
}

// TestUnsyncedDirEntryLostOnCrash: syncing the file is not enough — until
// its directory is synced, the entry itself does not survive.
func TestUnsyncedDirEntryLostOnCrash(t *testing.T) {
	fs := NewFS(FSPlan{})
	write(t, fs, "d/f", []byte("hello"), true) // file synced, directory not
	fs.CrashAndRestart()
	if _, err := fs.ReadFile("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("un-dir-synced entry survived the crash: %v", err)
	}
}

// TestRenameDurableOnlyAfterDirSync: the rename-into-place idiom is atomic
// but not durable until the directory is synced.
func TestRenameDurableOnlyAfterDirSync(t *testing.T) {
	fs := NewFS(FSPlan{})
	write(t, fs, "d/a", []byte("x"), true)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}

	if err := fs.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	fs.CrashAndRestart()
	if _, err := fs.ReadFile("d/a"); err != nil {
		t.Fatalf("un-synced rename destroyed the source: %v", err)
	}
	if _, err := fs.ReadFile("d/b"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("un-synced rename survived the crash: %v", err)
	}

	if err := fs.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.CrashAndRestart()
	if _, err := fs.ReadFile("d/b"); err != nil {
		t.Fatalf("dir-synced rename lost: %v", err)
	}
	if _, err := fs.ReadFile("d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dir-synced rename left the source behind: %v", err)
	}
}

// TestRemoveDurableOnlyAfterDirSync: a removed file resurrects on crash
// unless the directory was synced.
func TestRemoveDurableOnlyAfterDirSync(t *testing.T) {
	fs := NewFS(FSPlan{})
	write(t, fs, "d/f", []byte("x"), true)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	fs.CrashAndRestart()
	if _, err := fs.ReadFile("d/f"); err != nil {
		t.Fatalf("un-synced remove stuck: %v", err)
	}
	if err := fs.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.CrashAndRestart()
	if _, err := fs.ReadFile("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dir-synced remove undone by crash: %v", err)
	}
}

// TestShortWriteFault: the scheduled write persists half its bytes and
// fails — a torn write without a crash.
func TestShortWriteFault(t *testing.T) {
	fs := NewFS(FSPlan{ShortWriteAt: 2}) // op 1 = create, op 2 = write
	f, err := fs.OpenFile("d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err == nil || n != 5 {
		t.Fatalf("Write = %d, %v; want 5 bytes and an injected error", n, err)
	}
	if fs.Crashed() {
		t.Fatal("a short write is not a crash")
	}
	data, err := fs.ReadFile("d/f")
	if err != nil || string(data) != "01234" {
		t.Fatalf("file holds %q, %v; want the short prefix", data, err)
	}
}

// TestWriteErrFault: the scheduled write fails without writing anything.
func TestWriteErrFault(t *testing.T) {
	fs := NewFS(FSPlan{WriteErrAt: 2})
	f, err := fs.OpenFile("d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err == nil || n != 0 {
		t.Fatalf("Write = %d, %v; want 0 bytes and an injected error", n, err)
	}
	// The filesystem is still alive; the next write succeeds.
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after injected error: %v", err)
	}
}

// TestCrashAfterBytes: the boundary-straddling write lands its prefix up to
// the byte budget, then the filesystem is dead.
func TestCrashAfterBytes(t *testing.T) {
	fs := NewFS(FSPlan{CrashAfterBytes: 7})
	f, err := fs.OpenFile("d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("01234")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("56789"))
	if !errors.Is(err, ErrCrashed) || n != 2 {
		t.Fatalf("Write = %d, %v; want the 2-byte prefix and ErrCrashed", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after byte budget hit")
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync on dead fs = %v", err)
	}
}

// TestCrashAtOpKillsEverything: from the scheduled op on, every operation
// fails until CrashAndRestart, and the crashing write lands half its bytes.
func TestCrashAtOpKillsEverything(t *testing.T) {
	fs := NewFS(FSPlan{CrashAtOp: 3})
	f, err := fs.OpenFile("d/f", os.O_CREATE|os.O_WRONLY, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aa")); err != nil { // op 2
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb")) // op 3: the crash site
	if !errors.Is(err, ErrCrashed) || n != 2 {
		t.Fatalf("crash-site write = %d, %v; want 2 bytes and ErrCrashed", n, err)
	}
	if _, err := fs.OpenFile("d/g", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open on dead fs = %v", err)
	}
	if _, err := fs.ReadFile("d/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on dead fs = %v", err)
	}
	fs.CrashAndRestart()
	if fs.Crashed() || fs.Ops() != 0 {
		t.Fatal("restart did not reset the filesystem")
	}
}

// TestFSImplementsWALFS pins the interface contract at compile time.
var _ wal.FS = (*FS)(nil)

// TestCrashPointSweepConvertsPanics: a panicking recovery is an invariant
// violation recorded per site, never an unwound test binary.
func TestCrashPointSweepConvertsPanics(t *testing.T) {
	sweep := CrashPointSweep{
		Name: "panicky",
		Workload: func(fs *FS) int {
			f, err := fs.OpenFile("d/f", os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				return 0
			}
			if _, err := f.Write([]byte("x")); err != nil {
				return 0
			}
			if f.Sync() != nil {
				return 0
			}
			return 1
		},
		Check: func(fs *FS, acked int) error { panic("recovery exploded") },
	}
	m := sweep.Run()
	if m.TotalOps != 3 { // create, write, sync
		t.Fatalf("TotalOps = %d, want 3", m.TotalOps)
	}
	if m.Failures != m.TotalOps || len(m.Sites) != m.TotalOps {
		t.Fatalf("Failures = %d, Sites = %d, want %d each", m.Failures, len(m.Sites), m.TotalOps)
	}
	for _, site := range m.Sites {
		if !strings.Contains(site.Err, "recovery panicked") {
			t.Fatalf("site %d error %q does not record the panic", site.Op, site.Err)
		}
	}
}
