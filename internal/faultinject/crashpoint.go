package faultinject

import "fmt"

// This file is the crash-point harness: an exhaustive sweep that simulates
// a crash at every single filesystem write site of a workload, restarts,
// and lets the caller assert the anytime invariant for storage — recovered
// state is a consistent prefix of the committed operations, and under an
// always-fsync policy no acknowledged operation is ever lost.

// CrashSite is the outcome of one simulated crash.
type CrashSite struct {
	// Op is the 1-based filesystem operation the crash fired at.
	Op int `json:"op"`
	// Acked is how many workload operations were acknowledged before the
	// crash killed the filesystem.
	Acked int `json:"acked"`
	// Err carries the invariant violation, empty on success.
	Err string `json:"err,omitempty"`
}

// CrashMatrix is the report of one sweep (one workload × one configuration),
// JSON-shaped so CI can upload it as an artifact.
type CrashMatrix struct {
	// Name labels the configuration (e.g. the fsync policy).
	Name string `json:"name"`
	// TotalOps is how many filesystem operations the fault-free workload
	// performs — the number of distinct crash sites swept.
	TotalOps int `json:"totalOps"`
	// Sites holds one entry per simulated crash.
	Sites []CrashSite `json:"sites"`
	// Failures counts sites whose recovery check failed.
	Failures int `json:"failures"`
}

// CrashPointSweep exhaustively crash-tests a storage workload.
type CrashPointSweep struct {
	// Name labels the resulting matrix.
	Name string
	// Workload drives the system under test over fs until it completes or
	// the simulated crash starts failing its operations, and returns how
	// many of its operations were acknowledged (returned nil) before that.
	// It must tolerate errors mid-run — a crashed filesystem fails every
	// call — and must not panic.
	Workload func(fs *FS) (acked int)
	// Check reopens the system on the restarted (post-crash) filesystem
	// and verifies the storage invariant, given how many operations the
	// dying process had acknowledged. It returns nil when the recovered
	// state is acceptable.
	Check func(fs *FS, acked int) error
}

// Run executes the sweep: a fault-free counting pass first (to learn how
// many crash sites exist), then one full workload-crash-restart-check
// cycle per filesystem operation. A panic in recovery is itself an
// invariant violation, so Run converts it into a failing site rather than
// letting it unwind the caller.
func (s CrashPointSweep) Run() CrashMatrix {
	probe := NewFS(FSPlan{})
	s.Workload(probe)
	m := CrashMatrix{Name: s.Name, TotalOps: probe.Ops()}
	for op := 1; op <= m.TotalOps; op++ {
		site := CrashSite{Op: op}
		fs := NewFS(FSPlan{CrashAtOp: op})
		site.Acked = s.Workload(fs)
		fs.CrashAndRestart()
		if err := s.runCheck(fs, site.Acked); err != nil {
			site.Err = err.Error()
			m.Failures++
		}
		m.Sites = append(m.Sites, site)
	}
	return m
}

// runCheck runs Check with panics converted to errors: recovery must never
// panic, whatever the crash left behind.
func (s CrashPointSweep) runCheck(fs *FS, acked int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovery panicked: %v", r)
		}
	}()
	return s.Check(fs, acked)
}
