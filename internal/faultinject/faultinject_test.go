package faultinject

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ist/internal/geom"
	"ist/internal/oracle"
)

func TestOraclePanicsOnSchedule(t *testing.T) {
	u := oracle.NewUser(geom.Vector{0.5, 0.5})
	o := &Oracle{Inner: u, Plan: Plan{PanicAt: 3}}
	p := geom.Vector{0.9, 0.1}
	q := geom.Vector{0.1, 0.9}
	for i := 1; i <= 2; i++ {
		o.Prefer(p, q) // questions 1 and 2 pass through
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("question 3 did not panic")
		}
		if !strings.Contains(r.(string), "question 3") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	o.Prefer(p, q)
}

func TestOracleDelaysOnSchedule(t *testing.T) {
	u := oracle.NewUser(geom.Vector{0.5, 0.5})
	o := &Oracle{Inner: u, Plan: Plan{DelayAt: 1, Delay: 50 * time.Millisecond}}
	start := time.Now()
	o.Prefer(geom.Vector{0.9, 0.1}, geom.Vector{0.1, 0.9})
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("question 1 not delayed: took %v", elapsed)
	}
}

func TestOraclePassesAnswersThrough(t *testing.T) {
	u := oracle.NewUser(geom.Vector{1, 0})
	o := &Oracle{Inner: u, Plan: Plan{}}
	if !o.Prefer(geom.Vector{0.9, 0.1}, geom.Vector{0.1, 0.9}) {
		t.Fatal("answer flipped by the passthrough wrapper")
	}
	if o.Questions() != u.Questions() {
		t.Fatal("question count not delegated")
	}
}

func TestOracleFlipsOnSchedule(t *testing.T) {
	u := oracle.NewUser(geom.Vector{1, 0}) // truthfully always prefers p
	o := &Oracle{Inner: u, Plan: Plan{FlipAt: 2}}
	p := geom.Vector{0.9, 0.1}
	q := geom.Vector{0.1, 0.9}
	got := []bool{o.Prefer(p, q), o.Prefer(p, q), o.Prefer(p, q)}
	want := []bool{true, false, true} // only question 2 inverted
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("question %d: answer %v, want %v", i+1, got[i], want[i])
		}
	}
}

// TestMajorityRecoversFlip asserts the mistake-mitigation story end to end:
// a 3-vote MajorityOracle over a faultinjected user absorbs a single flipped
// answer — the majority still reports the truthful preference.
func TestMajorityRecoversFlip(t *testing.T) {
	p := geom.Vector{0.9, 0.1}
	q := geom.Vector{0.1, 0.9}
	// The flip may land on any of the three votes; the majority must
	// recover it wherever it lands.
	for flipAt := 1; flipAt <= 3; flipAt++ {
		u := oracle.NewUser(geom.Vector{1, 0}) // truth: prefer p
		m := oracle.NewMajorityOracle(&Oracle{Inner: u, Plan: Plan{FlipAt: flipAt}}, 3)
		if !m.Prefer(p, q) {
			t.Fatalf("flip at vote %d: majority reported the flipped answer", flipAt)
		}
	}
	// Control: without majority voting the same flip corrupts the answer.
	u := oracle.NewUser(geom.Vector{1, 0})
	o := &Oracle{Inner: u, Plan: Plan{FlipAt: 1}}
	if o.Prefer(p, q) {
		t.Fatal("control: flip at question 1 did not invert the bare answer")
	}
}

func TestMiddlewareDropAndPassthrough(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	m := &Middleware{Next: next, Plan: Plan{DropAt: 2}}
	codes := []int{}
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		codes = append(codes, rec.Code)
	}
	want := []int{http.StatusTeapot, http.StatusServiceUnavailable, http.StatusTeapot}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("request %d: code %d, want %d", i+1, codes[i], want[i])
		}
	}
}

// TestMiddlewareDropCarriesRetryAfter asserts the dropped request looks like
// every other backpressure response of the server: 503 plus a Retry-After
// hint, so well-behaved clients back off instead of hammering.
func TestMiddlewareDropCarriesRetryAfter(t *testing.T) {
	m := &Middleware{
		Next: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		Plan: Plan{DropAt: 1},
	}
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dropped request: code %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Fatal("dropped request carries no Retry-After header")
	}
}

func TestMiddlewarePanicsOnSchedule(t *testing.T) {
	m := &Middleware{
		Next: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		Plan: Plan{PanicAt: 1},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("request 1 did not panic")
		}
	}()
	m.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}
