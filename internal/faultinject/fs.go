package faultinject

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ist/internal/wal"
)

// ErrCrashed is returned by every operation on an FS after its scheduled
// crash fires: the simulated process is dead and nothing it does reaches
// the disk anymore.
var ErrCrashed = errors.New("faultinject: filesystem crashed")

// errInjected marks a scheduled short write or write error.
var errInjected = errors.New("faultinject: injected write fault")

// FSPlan schedules filesystem faults by 1-based mutating-operation index
// (writes, syncs, creates, renames, removes, truncates, directory syncs).
// A zero field disables that fault.
type FSPlan struct {
	// WriteErrAt makes the write that lands on the Nth operation fail
	// without writing anything (no effect if op N is not a write).
	WriteErrAt int
	// ShortWriteAt makes the write that lands on the Nth operation persist
	// only half its bytes before failing — a torn write without a crash
	// (an ENOSPC, a bad sector).
	ShortWriteAt int
	// CrashAtOp crashes the filesystem at the Nth mutating operation. The
	// operation applies partially (a write lands half its bytes; a rename,
	// remove or sync does not take effect), then every subsequent
	// operation fails with ErrCrashed until CrashAndRestart.
	CrashAtOp int
	// CrashAfterBytes crashes the filesystem once cumulative bytes written
	// exceed this count; the boundary-straddling write lands its prefix.
	CrashAfterBytes int64
}

// FS is an in-memory wal.FS that models what a power cut actually
// preserves: bytes written to a file are durable only after the file is
// synced, and a created/renamed/removed directory entry is durable only
// after its directory is synced. A crash (scheduled by the plan, or forced
// with CrashAndRestart) drops everything non-durable — the strictest
// reading of POSIX, so code that survives this FS survives real disks.
// Losses are suffix-ordered per file: synced bytes are never lost and
// writes persist in order, matching a journaling filesystem's data plane.
//
// Safe for concurrent use; deterministic given a fixed operation order.
type FS struct {
	mu      sync.Mutex
	plan    FSPlan
	ops     int
	written int64
	crashed bool
	// current is the live view (what the running process sees); durable is
	// what survives a crash. Entries map name -> file; files are shared
	// between the views and carry their own synced watermark.
	current map[string]*memFile
	durable map[string]*memFile
	dirs    map[string]bool
}

type memFile struct {
	data   []byte
	synced int
}

// NewFS returns an empty crash-simulating filesystem.
func NewFS(plan FSPlan) *FS {
	return &FS{
		plan:    plan,
		current: map[string]*memFile{},
		durable: map[string]*memFile{},
		dirs:    map[string]bool{},
	}
}

// SetPlan replaces the fault plan (typically after a restart).
func (f *FS) SetPlan(plan FSPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
}

// Ops reports how many mutating operations have run — the counting pass of
// a crash-point sweep runs the workload fault-free and reads this to learn
// how many crash sites exist.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the scheduled crash has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashAndRestart simulates the power cut completing and the machine
// booting: all non-durable state is dropped (unsynced bytes, entries never
// made durable by a directory sync) and the filesystem is healthy again
// with a clean op counter and an empty plan.
func (f *FS) CrashAndRestart() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applyCrashLocked()
	f.crashed = false
	f.ops = 0
	f.written = 0
	f.plan = FSPlan{}
}

// applyCrashLocked reverts the live view to durable state.
func (f *FS) applyCrashLocked() {
	for _, file := range f.durable {
		file.data = file.data[:file.synced]
	}
	f.current = map[string]*memFile{}
	for name, file := range f.durable {
		f.current[name] = file
	}
}

// op gates one mutating operation: it counts it, fires a scheduled crash,
// and reports whether the operation may proceed (partially, if crashing).
// partial is non-nil only when this exact op is the crash site.
func (f *FS) op() (proceed bool, crashNow bool) {
	if f.crashed {
		return false, false
	}
	f.ops++
	if f.plan.CrashAtOp > 0 && f.ops == f.plan.CrashAtOp {
		f.crashed = true
		return true, true
	}
	return true, false
}

// --- wal.FS implementation ---

// faultFile is a handle on a memFile; writes route through the FS so
// faults and op accounting stay centralized.
type faultFile struct {
	fs   *FS
	name string
	file *memFile
}

// OpenFile implements wal.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	file, ok := f.current[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case !ok:
		// Creating an entry mutates the directory.
		proceed, crash := f.op()
		if !proceed {
			return nil, ErrCrashed
		}
		file = &memFile{}
		f.current[name] = file
		if crash {
			return nil, ErrCrashed
		}
	case flag&os.O_TRUNC != 0:
		proceed, crash := f.op()
		if !proceed {
			return nil, ErrCrashed
		}
		file.data = file.data[:0]
		if file.synced > 0 {
			file.synced = 0
		}
		if crash {
			return nil, ErrCrashed
		}
	}
	return &faultFile{fs: f, name: name, file: file}, nil
}

// Write implements wal.File. All writes behave as appends, which is the
// only pattern the WAL uses.
func (h *faultFile) Write(p []byte) (int, error) {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	proceed, crash := f.op()
	if !proceed {
		return 0, ErrCrashed
	}
	n := len(p)
	var failWith error
	switch {
	case crash:
		n, failWith = len(p)/2, ErrCrashed
	case f.plan.WriteErrAt > 0 && f.ops == f.plan.WriteErrAt:
		n, failWith = 0, fmt.Errorf("%w: write error at op %d", errInjected, f.ops)
	case f.plan.ShortWriteAt > 0 && f.ops == f.plan.ShortWriteAt:
		n, failWith = len(p)/2, fmt.Errorf("%w: short write at op %d", errInjected, f.ops)
	case f.plan.CrashAfterBytes > 0 && f.written+int64(len(p)) > f.plan.CrashAfterBytes:
		n = int(f.plan.CrashAfterBytes - f.written)
		if n < 0 {
			n = 0
		}
		f.crashed = true
		failWith = ErrCrashed
	}
	h.file.data = append(h.file.data, p[:n]...)
	f.written += int64(n)
	if failWith != nil {
		return n, failWith
	}
	return n, nil
}

// Sync implements wal.File: the file's bytes become durable.
func (h *faultFile) Sync() error {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	proceed, crash := f.op()
	if !proceed || crash {
		return ErrCrashed
	}
	h.file.synced = len(h.file.data)
	return nil
}

// Close implements wal.File. Closing is not a durability event.
func (h *faultFile) Close() error {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// ReadFile implements wal.FS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	file, ok := f.current[name]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), file.data...), nil
}

// ReadDir implements wal.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	clean := filepath.Clean(dir)
	var names []string
	for name := range f.current {
		if filepath.Dir(name) == clean {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements wal.FS.
func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	proceed, crash := f.op()
	if !proceed || crash {
		return ErrCrashed
	}
	file, ok := f.current[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(f.current, oldname)
	f.current[newname] = file
	return nil
}

// Remove implements wal.FS.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	proceed, crash := f.op()
	if !proceed || crash {
		return ErrCrashed
	}
	if _, ok := f.current[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(f.current, name)
	return nil
}

// Truncate implements wal.FS.
func (f *FS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	proceed, crash := f.op()
	if !proceed || crash {
		return ErrCrashed
	}
	file, ok := f.current[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if int(size) < len(file.data) {
		file.data = file.data[:size]
		if file.synced > int(size) {
			file.synced = int(size)
		}
	}
	return nil
}

// MkdirAll implements wal.FS. Directories themselves are modeled as always
// durable — the store creates its directory once at deploy time; entry
// durability is what the crash model exercises.
func (f *FS) MkdirAll(dir string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.dirs[filepath.Clean(dir)] = true
	return nil
}

// SyncDir implements wal.FS: the directory's entry set becomes durable.
// Creates, renames and removes inside it survive a crash only after this.
func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	proceed, crash := f.op()
	if !proceed || crash {
		return ErrCrashed
	}
	clean := filepath.Clean(dir)
	for name := range f.durable {
		if filepath.Dir(name) == clean {
			if _, ok := f.current[name]; !ok {
				delete(f.durable, name)
			}
		}
	}
	for name, file := range f.current {
		if filepath.Dir(name) == clean {
			f.durable[name] = file
		}
	}
	return nil
}
