package faultinject

// The chaos suite is the proof of the anytime contract: every fault plan ×
// every algorithm must yield a valid point, an honest certificate, and zero
// escaped panics. "Honest" is checked against the simulated user's hidden
// utility vector — a certificate claiming Certified under a clean (unflipped)
// oracle must name a point that really is in the hidden top-k.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/core"
	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/skyband"
)

// chaosBand builds a deterministic k-skyband workload in d dimensions.
func chaosBand(seed int64, n, d, k int) []geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.AntiCorrelated(rng, n, d)
	return skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
}

// chaosPlans is every fault plan the anytime invariant is exercised under.
var chaosPlans = []struct {
	name string
	plan Plan
}{
	{"clean", Plan{}},
	{"panic", Plan{PanicAt: 2}},
	{"delay", Plan{DelayAt: 1, Delay: time.Millisecond}},
	{"flip", Plan{FlipAt: 1}},
	{"lp-corrupt", Plan{LPCorruptAt: 1}},
}

// chaosAlgorithms is every budget-aware single-answer algorithm.
var chaosAlgorithms = []struct {
	name string
	d    int
	make func(seed int64) core.Algorithm
}{
	{"2dpi", 2, func(int64) core.Algorithm { return core.TwoDPI{} }},
	{"rh", 4, func(s int64) core.Algorithm { return core.NewRHDefault(s) }},
	{"hdpi-sampling", 4, func(s int64) core.Algorithm {
		return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(s))})
	}},
	{"hdpi-accurate", 3, func(s int64) core.Algorithm {
		return core.NewHDPI(core.HDPIOptions{Mode: core.ConvexExact, Rng: rand.New(rand.NewSource(s))})
	}},
	{"robust", 3, func(s int64) core.Algorithm {
		return core.NewRobustHDPI(core.RobustHDPIOptions{Rng: rand.New(rand.NewSource(s))})
	}},
}

// TestChaosAnytimeInvariant runs every algorithm under every fault plan with
// a question budget and asserts the anytime contract: a valid point always
// comes back, no panic escapes, the certificate names a reason, and a
// Certified verdict under an unflipped oracle is verified against the hidden
// utility vector.
func TestChaosAnytimeInvariant(t *testing.T) {
	const k = 5
	for _, ac := range chaosAlgorithms {
		for _, pc := range chaosPlans {
			t.Run(ac.name+"/"+pc.name, func(t *testing.T) {
				band := chaosBand(3, 150, ac.d, k)
				hidden := oracle.RandomUtility(rand.New(rand.NewSource(17)), ac.d)
				u := oracle.NewUser(hidden)

				uninstall := InstallLPFaults(pc.plan)
				defer uninstall()

				wrapped := &Algorithm{Inner: ac.make(11), Plan: pc.plan}
				idx, cert := wrapped.RunBudgeted(band, k, u, core.Budget{MaxQuestions: 64})

				if idx < 0 || idx >= len(band) {
					t.Fatalf("invalid point index %d (band size %d)", idx, len(band))
				}
				if cert.Reason == "" {
					t.Fatal("certificate has no stop reason")
				}
				if cert.Questions != u.Questions() {
					t.Fatalf("certificate claims %d questions, oracle answered %d", cert.Questions, u.Questions())
				}
				if cert.Certified && pc.plan.FlipAt == 0 {
					if !oracle.IsTopK(band, hidden, k, band[idx]) {
						t.Fatalf("certificate claims top-%d but point %d is not (reason %s)", k, idx, cert.Reason)
					}
				}
				if cert.Reason == core.StopPanic && cert.Certified {
					t.Fatal("panic-recovered result claims certification")
				}
			})
		}
	}
}

// TestChaosAnytimeInvariantMulti is the same contract for the multi-answer
// variants: valid distinct indices, an honest certificate, no panics.
func TestChaosAnytimeInvariantMulti(t *testing.T) {
	const k, want = 5, 2
	multis := []struct {
		name string
		d    int
		make func(seed int64) core.MultiAlgorithm
	}{
		{"rh-multi", 3, func(s int64) core.MultiAlgorithm {
			return core.NewRHMulti(core.RHOptions{Rng: rand.New(rand.NewSource(s)), UseBall: true})
		}},
		{"hdpi-multi", 3, func(s int64) core.MultiAlgorithm {
			return core.NewHDPIMulti(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(s))})
		}},
	}
	for _, mc := range multis {
		for _, pc := range chaosPlans {
			t.Run(mc.name+"/"+pc.name, func(t *testing.T) {
				band := chaosBand(5, 150, mc.d, k)
				hidden := oracle.RandomUtility(rand.New(rand.NewSource(23)), mc.d)
				u := oracle.NewUser(hidden)

				uninstall := InstallLPFaults(pc.plan)
				defer uninstall()

				o := &Oracle{Inner: u, Plan: pc.plan}
				idx, cert := core.RunMultiBudgeted(mc.make(13), band, k, want, o, core.Budget{MaxQuestions: 64})

				if len(idx) == 0 {
					t.Fatal("no points returned")
				}
				seen := map[int]bool{}
				for _, i := range idx {
					if i < 0 || i >= len(band) {
						t.Fatalf("invalid point index %d (band size %d)", i, len(band))
					}
					if seen[i] {
						t.Fatalf("duplicate point index %d", i)
					}
					seen[i] = true
				}
				if cert.Reason == "" {
					t.Fatal("certificate has no stop reason")
				}
				if cert.Certified && pc.plan.FlipAt == 0 {
					for _, i := range idx {
						if !oracle.IsTopK(band, hidden, k, band[i]) {
							t.Fatalf("certificate claims top-%d but point %d is not", k, i)
						}
					}
				}
			})
		}
	}
}

// TestChaosExhaustedBudgetIsHonest starves a clean run of questions and
// checks the certificate admits it: not certified, reason question-budget,
// and more than k candidates still alive (two answers cannot pin the
// answer down on this workload).
func TestChaosExhaustedBudgetIsHonest(t *testing.T) {
	const k = 3
	band := chaosBand(9, 400, 4, k)
	hidden := oracle.RandomUtility(rand.New(rand.NewSource(31)), 4)
	u := oracle.NewUser(hidden)

	alg := core.NewRHDefault(21)
	idx, cert := core.RunBudgeted(alg, band, k, u, core.Budget{MaxQuestions: 2})

	if idx < 0 || idx >= len(band) {
		t.Fatalf("invalid point index %d", idx)
	}
	if cert.Certified {
		t.Fatal("2-question run claims a certified result")
	}
	if cert.Reason != core.StopQuestions {
		t.Fatalf("reason %q, want %q", cert.Reason, core.StopQuestions)
	}
	if cert.Questions > 2 {
		t.Fatalf("run asked %d questions past a budget of 2", cert.Questions)
	}
	if cert.Candidates <= k {
		t.Fatalf("certificate claims only %d candidates after 2 questions (want > %d)", cert.Candidates, k)
	}
}

// TestChaosInactiveBudgetIsBitIdentical proves the zero-overhead claim: an
// inactive budget must reproduce the plain run exactly — same result, same
// question count, and the same question sequence verbatim (budget checks
// consume no randomness).
func TestChaosInactiveBudgetIsBitIdentical(t *testing.T) {
	const k = 4
	for _, ac := range chaosAlgorithms {
		t.Run(ac.name, func(t *testing.T) {
			band := chaosBand(7, 200, ac.d, k)
			hidden := oracle.RandomUtility(rand.New(rand.NewSource(41)), ac.d)

			plainRec := oracle.NewRecordingOracle(oracle.NewUser(hidden))
			plainIdx := ac.make(19).Run(band, k, plainRec)

			budRec := oracle.NewRecordingOracle(oracle.NewUser(hidden))
			budIdx, cert := core.RunBudgeted(ac.make(19), band, k, budRec, core.Budget{})

			if plainIdx != budIdx {
				t.Fatalf("result diverged: plain %d, inactive-budget %d", plainIdx, budIdx)
			}
			// RobustHDPI's own confidence loop may stop at its internal
			// question cap without certifying — honest either way; the
			// others must certify their converged clean run.
			if ac.name != "robust" && (!cert.Certified || cert.Reason != core.StopConverged) {
				t.Fatalf("inactive-budget clean run not certified converged: %+v", cert)
			}
			if !reflect.DeepEqual(plainRec.Transcript(), budRec.Transcript()) {
				t.Fatalf("question sequence diverged: plain asked %d, inactive-budget asked %d",
					len(plainRec.Transcript().Exchanges), len(budRec.Transcript().Exchanges))
			}
		})
	}
}

// TestChaosDeadlineWalksDegradationLadder drives RH against a fake clock
// whose every read advances time, so the run crosses the half- and
// three-quarter-horizon ladder stages before the deadline lands: the
// certificate must report the deadline stop and the bounding downgrade.
func TestChaosDeadlineWalksDegradationLadder(t *testing.T) {
	const k = 1
	band := chaosBand(13, 800, 5, k)
	hidden := oracle.RandomUtility(rand.New(rand.NewSource(47)), 5)
	u := oracle.NewUser(hidden)

	fake := clock.NewFake(time.Unix(1000, 0))
	fake.SetStep(10 * time.Millisecond)
	deadline := time.Unix(1000, 0).Add(time.Second)

	alg := core.NewRHDefault(29)
	idx, cert := core.RunBudgeted(alg, band, k, u, core.Budget{Deadline: deadline, Clock: fake})

	if idx < 0 || idx >= len(band) {
		t.Fatalf("invalid point index %d", idx)
	}
	if cert.Certified {
		t.Fatal("deadline-starved run claims a certified result")
	}
	if cert.Reason != core.StopDeadline {
		t.Fatalf("reason %q, want %q", cert.Reason, core.StopDeadline)
	}
	if len(cert.Degradations) == 0 {
		t.Fatal("no degradation-ladder steps recorded before the deadline")
	}
}

// TestChaosLPCorruptionDegradesAccurateMode checks the other ladder: a
// corrupted convex-point LP under a budget makes accurate mode fall back to
// sampling (with a note in the certificate) instead of mislabeling points.
func TestChaosLPCorruptionDegradesAccurateMode(t *testing.T) {
	const k = 3
	band := chaosBand(15, 150, 3, k)
	hidden := oracle.RandomUtility(rand.New(rand.NewSource(53)), 3)
	u := oracle.NewUser(hidden)

	uninstall := InstallLPFaults(Plan{LPCorruptAt: 1})
	defer uninstall()

	alg := core.NewHDPI(core.HDPIOptions{Mode: core.ConvexExact, Rng: rand.New(rand.NewSource(37))})
	idx, cert := core.RunBudgeted(alg, band, k, u, core.Budget{MaxQuestions: 128})

	if idx < 0 || idx >= len(band) {
		t.Fatalf("invalid point index %d", idx)
	}
	found := false
	for _, d := range cert.Degradations {
		if len(d) >= len("convex accurate→sampling") && d[:len("convex accurate→sampling")] == "convex accurate→sampling" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no accurate→sampling degradation recorded; degradations: %v", cert.Degradations)
	}
}
