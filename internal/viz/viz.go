// Package viz renders experiment series as ASCII charts, so that
// `istbench -plot` can show a figure's *shape* (the thing this reproduction
// is about) directly in the terminal next to the numeric table.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ist/internal/geom"
)

// Series is one plotted line.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a simple multi-series ASCII chart over a shared x axis.
type Chart struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series
	// Width and Height of the plotting area in characters (defaults 60×16).
	Width, Height int
	// LogY plots log10 of the values (useful for execution times spanning
	// orders of magnitude).
	LogY bool
}

// markers distinguish series in the plot area.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '~', '^'}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	if len(c.X) == 0 || len(c.Series) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return
	}

	transform := func(v float64) (float64, bool) {
		if !c.LogY {
			return v, true
		}
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}

	// Value range.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			tv, ok := transform(v)
			if !ok {
				continue
			}
			if tv < minV {
				minV = tv
			}
			if tv > maxV {
				maxV = tv
			}
		}
	}
	if math.IsInf(minV, 1) {
		fmt.Fprintf(w, "%s: (no plottable data)\n", c.Title)
		return
	}
	if maxV-minV < geom.TieEps {
		maxV = minV + 1
	}
	minX, maxX := c.X[0], c.X[0]
	for _, x := range c.X {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	if maxX-minX < geom.TieEps {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for xi, v := range s.Values {
			if xi >= len(c.X) {
				break
			}
			tv, ok := transform(v)
			if !ok {
				continue
			}
			col := int((c.X[xi] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((tv-minV)/(maxV-minV)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}

	fmt.Fprintf(w, "%s\n", c.Title)
	yTop, yBot := maxV, minV
	suffix := ""
	if c.LogY {
		suffix = " (log10)"
	}
	for r, line := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.3g ", yTop)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.3g ", yBot)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%10s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s %-.4g%s%.4g  (%s)%s\n", "", minX,
		strings.Repeat(" ", max(1, width-12)), maxX, c.XLabel, suffix)
	for si, s := range c.Series {
		fmt.Fprintf(w, "%10s %c %s\n", "", markers[si%len(markers)], s.Name)
	}
}

// String renders to a string.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

// Bars renders a horizontal bar chart for single-valued series (used for
// the user-study figures where the x axis is the algorithm).
func Bars(w io.Writer, title string, names []string, values []float64, width int) {
	if width <= 0 {
		width = 40
	}
	fmt.Fprintln(w, title)
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for i, n := range names {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		bar := int(v / maxV * float64(width))
		fmt.Fprintf(w, "  %-*s %s %.3g\n", nameW, n, strings.Repeat("#", bar), v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
