package viz

import (
	"strings"
	"testing"
)

func TestChartRenders(t *testing.T) {
	c := &Chart{
		Title:  "questions vs k",
		XLabel: "k",
		X:      []float64{1, 20, 40, 60},
		Series: []Series{
			{Name: "HD-PI", Values: []float64{8, 7, 6, 5}},
			{Name: "RH", Values: []float64{30, 9, 8, 6}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "questions vs k") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "HD-PI") || !strings.Contains(out, "RH") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing series markers")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartMarkersPlacedMonotonically(t *testing.T) {
	// A strictly decreasing series must place later markers on lower rows.
	c := &Chart{
		Title: "t", XLabel: "x",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{{Name: "s", Values: []float64{10, 7, 4, 1}}},
		Width:  40, Height: 10,
	}
	out := c.String()
	lines := strings.Split(out, "\n")
	var rows []int
	var cols []int
	for r, line := range lines {
		if !strings.Contains(line, "|") {
			continue // only the plot area, not the legend
		}
		for col := strings.IndexByte(line, '*'); col >= 0; {
			rows = append(rows, r)
			cols = append(cols, col)
			next := strings.IndexByte(line[col+1:], '*')
			if next < 0 {
				break
			}
			col += 1 + next
		}
	}
	if len(rows) != 4 {
		t.Fatalf("found %d markers, want 4", len(rows))
	}
	// Sort by column (x order) and check rows increase (screen-down = lower value).
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			t.Fatalf("marker columns not increasing: %v", cols)
		}
		if rows[i] <= rows[i-1] {
			t.Fatalf("marker rows not descending on screen: %v", rows)
		}
	}
}

func TestChartLogY(t *testing.T) {
	c := &Chart{
		Title: "time", XLabel: "k", LogY: true,
		X:      []float64{1, 2},
		Series: []Series{{Name: "a", Values: []float64{0.001, 10}}},
	}
	out := c.String()
	if !strings.Contains(out, "log10") {
		t.Fatal("log marker missing")
	}
	// Zero/negative values are skipped without panicking.
	c2 := &Chart{Title: "t", XLabel: "x", LogY: true, X: []float64{1}, Series: []Series{{Name: "z", Values: []float64{0}}}}
	if !strings.Contains(c2.String(), "no plottable data") {
		t.Fatal("all-zero log chart must degrade gracefully")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty", XLabel: "x"}
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart must say so")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{Title: "c", XLabel: "x", X: []float64{1, 2}, Series: []Series{{Name: "s", Values: []float64{5, 5}}}}
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatal("constant series must still plot")
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	Bars(&b, "questions", []string{"HD-PI", "Active-Ranking"}, []float64{4.1, 45.4}, 40)
	out := b.String()
	if !strings.Contains(out, "questions") || !strings.Contains(out, "HD-PI") {
		t.Fatal("bars missing labels")
	}
	// Active-Ranking's bar must be much longer than HD-PI's.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	hd := strings.Count(lines[1], "#")
	ar := strings.Count(lines[2], "#")
	if ar <= hd*5 {
		t.Fatalf("bar proportions wrong: hd=%d ar=%d", hd, ar)
	}
}

func TestBarsZeroValues(t *testing.T) {
	var b strings.Builder
	Bars(&b, "t", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(b.String(), "a") {
		t.Fatal("zero bars must render labels")
	}
}
