package baseline

import (
	"math/rand"
	"testing"

	"ist/internal/dataset"
	"ist/internal/oracle"
	"ist/internal/skyband"
)

func TestSortingUHCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		d := 2 + rng.Intn(3)
		n := 40 + rng.Intn(60)
		k := 1 + rng.Intn(6)
		ds := dataset.AntiCorrelated(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		eps := epsFor(band, u, k)
		for _, alg := range []*SortingUH{
			{Eps: eps, Rng: rand.New(rand.NewSource(int64(trial)))},
			{Simplex: true, Eps: eps, Rng: rand.New(rand.NewSource(int64(trial)))},
			{Adapt: true, Rng: rand.New(rand.NewSource(int64(trial)))},
		} {
			user := oracle.NewUser(u)
			got := alg.Run(band, k, user)
			if !oracle.IsTopK(band, u, k, band[got]) {
				t.Fatalf("trial %d: %s returned non-top-%d", trial, alg.Name(), k)
			}
			if alg.DisplayRounds() > 0 && user.Questions() == 0 {
				t.Fatalf("%s reported display rounds without pairwise questions", alg.Name())
			}
		}
	}
}

func TestSortingFewerDisplayRoundsThanUHQuestions(t *testing.T) {
	// [40]'s selling point: fewer display interactions than UH has pairwise
	// questions — but (the paper's counterpoint) the underlying pairwise
	// effort is NOT smaller.
	rng := rand.New(rand.NewSource(2))
	ds := dataset.AntiCorrelated(rng, 200, 3)
	k := 5
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	trials := 8
	var sortRounds, sortPairwise, uhQuestions int
	for trial := 0; trial < trials; trial++ {
		u := oracle.RandomUtility(rng, 3)
		eps := epsFor(band, u, k)

		su := oracle.NewUser(u)
		sorting := &SortingUH{Eps: eps, DisplaySize: 4, Rng: rand.New(rand.NewSource(int64(trial)))}
		sorting.Run(band, k, su)
		sortRounds += sorting.DisplayRounds()
		sortPairwise += su.Questions()

		uu := oracle.NewUser(u)
		(&UH{Eps: eps, Rng: rand.New(rand.NewSource(int64(trial)))}).Run(band, k, uu)
		uhQuestions += uu.Questions()
	}
	if sortRounds >= uhQuestions {
		t.Fatalf("sorting display rounds %d >= UH questions %d; sorting should need fewer rounds",
			sortRounds, uhQuestions)
	}
	if sortPairwise < sortRounds {
		t.Fatalf("pairwise effort %d below display rounds %d — impossible", sortPairwise, sortRounds)
	}
}

func TestSortingDisplaySizeTwoDegeneratesToUH(t *testing.T) {
	// With s=2 a sorting round is exactly one pairwise question.
	rng := rand.New(rand.NewSource(3))
	ds := dataset.AntiCorrelated(rng, 100, 3)
	k := 3
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	u := oracle.RandomUtility(rng, 3)
	user := oracle.NewUser(u)
	alg := &SortingUH{Eps: epsFor(band, u, k), DisplaySize: 2, Rng: rand.New(rand.NewSource(1))}
	got := alg.Run(band, k, user)
	if !oracle.IsTopK(band, u, k, band[got]) {
		t.Fatal("s=2 run incorrect")
	}
	if user.Questions() != alg.DisplayRounds() {
		t.Fatalf("s=2: questions %d != display rounds %d", user.Questions(), alg.DisplayRounds())
	}
}

func TestSortingNames(t *testing.T) {
	cases := map[string]*SortingUH{
		"Sorting-Random":        {},
		"Sorting-Simplex":       {Simplex: true},
		"Sorting-Random-Adapt":  {Adapt: true},
		"Sorting-Simplex-Adapt": {Simplex: true, Adapt: true},
	}
	for want, alg := range cases {
		if alg.Name() != want {
			t.Errorf("Name = %q, want %q", alg.Name(), want)
		}
	}
}
