package baseline

import (
	"math/rand"

	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/parallel"
	"ist/internal/polytope"
)

// UH implements the UH-Random and UH-Simplex algorithms of [36] ("Strongly
// Truthful Interactive Regret Minimization"), adapted to IST as described in
// Section 6 of the paper: they stop when either the top-1 point is
// determined or the maximum regret of a candidate over the remaining
// utility range R falls below the threshold ε = 1 − f(p_k)/f(p₁) (set by
// the experiment harness from the hidden utility, which guarantees the
// returned point is among the top-k).
//
// Both maintain the utility range R and prune candidate points that are
// R-dominated. They differ in hyperplane selection: UH-Random tests
// intersection with random utility samples of R and asks the first
// intersecting random pair; UH-Simplex tests intersection exactly (the
// original uses the simplex method; with an explicit vertex representation
// the vertex scan is the same predicate) and asks the pair whose hyperplane
// passes closest to R's centre.
type UH struct {
	// Simplex selects UH-Simplex behaviour; false is UH-Random.
	Simplex bool
	// Adapt enables the paper's -Adapt variant: prune a point once k points
	// R-dominate it, stop once at most k candidates remain.
	Adapt bool
	// Eps is the regret threshold ε (ignored by Adapt variants).
	Eps float64
	// Rng drives the random pair selection; required.
	Rng *rand.Rand
	// SamplesPerTest is the number of utility samples UH-Random uses per
	// intersection test (default 12).
	SamplesPerTest int
	// Parallelism fans the R-domination prune over a worker pool. Each
	// candidate's dominator count reads only the fixed snapshot (cur,
	// verts), so any worker count keeps the kept set — and therefore every
	// question and answer — identical to the serial scan. 0 or 1 is serial.
	Parallelism int
}

// SetParallelism implements core.Parallelizable.
func (a *UH) SetParallelism(workers int) { a.Parallelism = workers }

// Name implements core.Algorithm.
func (a *UH) Name() string {
	n := "UH-Random"
	if a.Simplex {
		n = "UH-Simplex"
	}
	if a.Adapt {
		n += "-Adapt"
	}
	return n
}

// Run implements core.Algorithm.
func (a *UH) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	if a.Rng == nil {
		a.Rng = rand.New(rand.NewSource(1))
	}
	samples := a.SamplesPerTest
	if samples <= 0 {
		samples = 12
	}
	n := len(points)
	d := len(points[0])
	R := polytope.NewSimplex(d)

	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}

	prune := func() {
		limit := 1
		if a.Adapt {
			limit = k
		}
		verts := R.Vertices()
		cur := append([]int(nil), alive...)
		kept := alive[:0]
		// Per-candidate keep decisions are independent scans over the cur
		// snapshot; ForEachOrdered computes them in parallel and commits
		// the appends in index order, so kept matches the serial filter.
		parallel.ForEachOrdered(a.Parallelism, len(cur), func(ci int) bool {
			i := cur[ci]
			dominators := 0
			for _, j := range cur {
				if i == j {
					continue
				}
				if rDominates(points[j], points[i], verts) {
					dominators++
					if dominators >= limit {
						break
					}
				}
			}
			return dominators < limit
		}, func(ci int, keep bool) {
			if keep {
				kept = append(kept, cur[ci])
			}
		})
		alive = kept
	}
	prune()

	for round := 0; round < 4*n+64; round++ {
		if a.Adapt {
			if len(alive) <= k {
				if len(alive) > 0 {
					return alive[0]
				}
				return argmaxCenter(points, R)
			}
		} else {
			if len(alive) == 1 {
				return alive[0]
			}
			// ε-stopping: a candidate whose worst-case regret over R is
			// within ε may be returned (its true regret is then <= ε, so it
			// is among the top-k by the harness's choice of ε).
			if best, reg := bestWorstRegret(points, alive, R); reg <= a.Eps+geom.Eps {
				return best
			}
		}

		// Hyperplane selection among alive pairs.
		pi, pj, ok := a.selectPair(points, alive, R, samples)
		if !ok {
			// No alive-pair hyperplane intersects R: the relative order of
			// the candidates is fixed over R, so the centre's best alive
			// candidate is the exact top-1 (pruned points cannot be top-k).
			return argmaxAliveCenter(points, alive, R)
		}
		h := geom.NewHyperplane(points[pi], points[pj])
		if !o.Prefer(points[pi], points[pj]) {
			h = h.Flip()
		}
		R.Cut(h)
		if R.IsEmpty() {
			// Possible only with an erring user.
			break
		}
		prune()
	}
	if len(alive) > 0 {
		return alive[0]
	}
	return argmaxAt(points, uniform(d))
}

// selectPair picks the next question pair.
func (a *UH) selectPair(points []geom.Vector, alive []int, R *polytope.Polytope, samples int) (int, int, bool) {
	if len(alive) < 2 {
		return 0, 0, false
	}
	if !a.Simplex {
		// UH-Random: random pairs, intersection tested with utility samples;
		// fall back to the exact scan to detect exhaustion.
		us := make([]geom.Vector, samples)
		for s := range us {
			us[s] = R.Sample(a.Rng)
		}
		for attempt := 0; attempt < 4*len(alive); attempt++ {
			i := alive[a.Rng.Intn(len(alive))]
			j := alive[a.Rng.Intn(len(alive))]
			if i == j {
				continue
			}
			h := geom.NewHyperplane(points[i], points[j])
			if h.Degenerate() {
				continue
			}
			pos, neg := false, false
			for _, u := range us {
				switch h.SideOf(u) {
				case geom.Above:
					pos = true
				case geom.Below:
					neg = true
				}
			}
			if pos && neg {
				return i, j, true
			}
		}
	}
	// UH-Simplex (and UH-Random exhaustion fallback): exact intersection
	// test, pick the hyperplane closest to R's centre.
	center := R.Center()
	bi, bj, bestDist := -1, -1, 0.0
	for x := 0; x < len(alive); x++ {
		for y := x + 1; y < len(alive); y++ {
			i, j := alive[x], alive[y]
			h := geom.NewHyperplane(points[i], points[j])
			if h.Degenerate() {
				continue
			}
			if c := R.BallSide(h); c == polytope.ClassAbove || c == polytope.ClassBelow {
				continue
			}
			if R.Classify(h) != polytope.ClassIntersect {
				continue
			}
			if dist := h.Distance(center); bi < 0 || dist < bestDist {
				bi, bj, bestDist = i, j, dist
			}
		}
	}
	if bi < 0 {
		return 0, 0, false
	}
	return bi, bj, true
}

// rDominates reports whether p is at least as good as q at every vertex of
// R and strictly better at one — i.e. p R-dominates q.
func rDominates(p, q geom.Vector, verts []geom.Vector) bool {
	strict := false
	for _, v := range verts {
		diff := v.Dot(p) - v.Dot(q)
		if diff < -geom.Eps {
			return false
		}
		if diff > geom.Eps {
			strict = true
		}
	}
	return strict
}

// bestWorstRegret returns the candidate minimizing its worst-case regret
// ratio over R's vertices, and that regret.
func bestWorstRegret(points []geom.Vector, alive []int, R *polytope.Polytope) (int, float64) {
	verts := R.Vertices()
	best, bestReg := alive[0], 2.0
	for _, i := range alive {
		worst := 0.0
		for _, v := range verts {
			top := 0.0
			for _, j := range alive {
				if u := v.Dot(points[j]); u > top {
					top = u
				}
			}
			if top <= 0 {
				continue
			}
			if reg := 1 - v.Dot(points[i])/top; reg > worst {
				worst = reg
			}
		}
		if worst < bestReg {
			best, bestReg = i, worst
		}
	}
	return best, bestReg
}

func argmaxCenter(points []geom.Vector, R *polytope.Polytope) int {
	if R.IsEmpty() {
		return argmaxAt(points, uniform(len(points[0])))
	}
	return argmaxAt(points, R.Center())
}

// argmaxAliveCenter returns the alive candidate with the highest utility at
// R's centre (falling back over all points when nothing is alive).
func argmaxAliveCenter(points []geom.Vector, alive []int, R *polytope.Polytope) int {
	if len(alive) == 0 {
		return argmaxCenter(points, R)
	}
	u := uniform(len(points[0]))
	if !R.IsEmpty() {
		u = R.Center()
	}
	best, bestVal := alive[0], u.Dot(points[alive[0]])
	for _, i := range alive[1:] {
		if v := u.Dot(points[i]); v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

func argmaxAt(points []geom.Vector, u geom.Vector) int {
	best, bestVal := 0, u.Dot(points[0])
	for i := 1; i < len(points); i++ {
		if v := u.Dot(points[i]); v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

func uniform(d int) geom.Vector {
	u := geom.NewVector(d)
	for i := range u {
		u[i] = 1 / float64(d)
	}
	return u
}
