package baseline

import (
	"math/rand"

	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// ActiveRanking is the pairwise-comparison ranking algorithm of [14]
// (Jamieson & Nowak, "Active Ranking Using Pairwise Comparisons"). It
// derives the full ranking of all points by inserting them one by one (in
// random order) into a sorted list with binary insertion; before asking the
// user a comparison it checks whether the answer is already implied by the
// feasible utility region accumulated from previous answers, and only
// ambiguous comparisons reach the user. Under the general-position
// assumption the expected number of asked questions is O(d·log n); the
// worst case is O(n²) — and because it insists on the FULL ranking it asks
// far more questions than the IST algorithms (Figures 9 and 16).
//
// As adapted in Section 6, one of the top-k points of the derived ranking
// is returned (we return the top-1).
type ActiveRanking struct {
	// Rng drives the random insertion order; required.
	Rng *rand.Rand
}

// Name implements core.Algorithm.
func (a *ActiveRanking) Name() string { return "Active-Ranking" }

// Run implements core.Algorithm.
func (a *ActiveRanking) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	_ = k // the full ranking subsumes any k; we return the derived top-1
	return a.Ranking(points, o)[0]
}

// Ranking derives the full ranking (best first) by active binary insertion,
// asking the oracle only the comparisons not implied by earlier answers.
func (a *ActiveRanking) Ranking(points []geom.Vector, o oracle.Oracle) []int {
	if a.Rng == nil {
		a.Rng = rand.New(rand.NewSource(1))
	}
	n := len(points)
	d := len(points[0])
	R := polytope.NewSimplex(d)
	perm := a.Rng.Perm(n)

	// prefers reports whether p_i ranks above p_j, asking the user only when
	// the feasible region leaves the comparison ambiguous.
	prefers := func(i, j int) bool {
		h := geom.NewHyperplane(points[i], points[j])
		if h.Degenerate() {
			return i < j // identical points: fix an arbitrary stable order
		}
		switch R.Classify(h) {
		case polytope.ClassAbove:
			return true
		case polytope.ClassBelow:
			return false
		case polytope.ClassOn, polytope.ClassEmpty:
			return i < j
		}
		ans := o.Prefer(points[i], points[j])
		if ans {
			R.Cut(h)
		} else {
			R.Cut(h.Flip())
		}
		return ans
	}

	ranked := make([]int, 0, n)
	for _, p := range perm {
		lo, hi := 0, len(ranked)
		for lo < hi {
			mid := (lo + hi) / 2
			if prefers(p, ranked[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		ranked = append(ranked, 0)
		copy(ranked[lo+1:], ranked[lo:])
		ranked[lo] = p
	}
	return ranked
}

// RankingMatches verifies (for tests) that a derived ranking is consistent
// with a utility vector: non-increasing utilities down the list.
func RankingMatches(points []geom.Vector, ranking []int, u geom.Vector) bool {
	for i := 1; i < len(ranking); i++ {
		if u.Dot(points[ranking[i-1]]) < u.Dot(points[ranking[i]])-geom.Eps {
			return false
		}
	}
	return true
}
