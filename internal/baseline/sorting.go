package baseline

import (
	"math/rand"

	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// SortingUH implements Sorting-Random and Sorting-Simplex from [40]
// (Zheng & Chen, "Sorting-Based Interactive Regret Minimization"), the
// successor of UH-Random/UH-Simplex that the paper discusses in Section 2:
// instead of a pairwise question, each interaction round displays
// DisplaySize tuples and asks the user to order them, from which
// DisplaySize−1 adjacent-pair halfspace cuts follow (the remaining pairs
// are implied by transitivity).
//
// As the paper argues, "giving an order among tuples is equivalent to
// picking the favorite tuple several times": the user's ordering is
// obtained here through the pairwise Oracle with binary-insertion sort, so
// Questions() exposes the true pairwise effort while DisplayRounds counts
// the display interactions that [40] reports.
type SortingUH struct {
	// Simplex selects Sorting-Simplex (centre-closest hyperplane seeding);
	// false is Sorting-Random.
	Simplex bool
	// DisplaySize is the number of tuples shown per round (default 4).
	DisplaySize int
	// Adapt uses the top-k deletion/stopping adaptation like UH-*-Adapt.
	Adapt bool
	// Eps is the regret threshold for the non-adapted stopping.
	Eps float64
	// Rng drives the random selection; required.
	Rng *rand.Rand

	displayRounds int
}

// Name implements core.Algorithm.
func (a *SortingUH) Name() string {
	n := "Sorting-Random"
	if a.Simplex {
		n = "Sorting-Simplex"
	}
	if a.Adapt {
		n += "-Adapt"
	}
	return n
}

// DisplayRounds returns the number of sorting interactions of the last Run.
func (a *SortingUH) DisplayRounds() int { return a.displayRounds }

// Run implements core.Algorithm.
func (a *SortingUH) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	if a.Rng == nil {
		a.Rng = rand.New(rand.NewSource(1))
	}
	s := a.DisplaySize
	if s < 2 {
		s = 4
	}
	a.displayRounds = 0
	n := len(points)
	d := len(points[0])
	R := polytope.NewSimplex(d)

	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	prune := func() {
		limit := 1
		if a.Adapt {
			limit = k
		}
		verts := R.Vertices()
		cur := append([]int(nil), alive...)
		kept := alive[:0]
		for _, i := range cur {
			dominators := 0
			for _, j := range cur {
				if i == j {
					continue
				}
				if rDominates(points[j], points[i], verts) {
					dominators++
					if dominators >= limit {
						break
					}
				}
			}
			if dominators < limit {
				kept = append(kept, i)
			}
		}
		alive = kept
	}
	prune()

	stale := 0
	var forced []int
	for round := 0; round < 4*n+64; round++ {
		if a.Adapt {
			if len(alive) <= k {
				if len(alive) > 0 {
					return alive[0]
				}
				return argmaxCenter(points, R)
			}
		} else {
			if len(alive) == 1 {
				return alive[0]
			}
			if best, reg := bestWorstRegret(points, alive, R); reg <= a.Eps+geom.Eps {
				return best
			}
		}

		display := a.selectDisplay(points, alive, R, s)
		if forced != nil {
			display = append(forced, displayExtras(display, forced, s)...)
			forced = nil
		}
		if len(display) < 2 {
			return argmaxAliveCenter(points, alive, R)
		}
		a.displayRounds++
		ordered := sortByOracle(points, display, o)
		// Adjacent pairs of the user's order become halfspace cuts.
		progressed := false
		for i := 0; i+1 < len(ordered); i++ {
			h := geom.NewHyperplane(points[ordered[i]], points[ordered[i+1]])
			if h.Degenerate() {
				continue
			}
			if R.Classify(h) == polytope.ClassIntersect {
				progressed = true
			}
			R.Cut(h)
			if R.IsEmpty() {
				return argmaxAt(points, uniform(d))
			}
		}
		prune()
		if progressed {
			stale = 0
		} else {
			stale++
		}
		if (a.Simplex || stale >= 4) && len(alive) > 1 {
			// Several uninformative displays in a row (or an exhausted
			// simplex scan): check exactly whether any alive-pair hyperplane
			// still intersects R. If none does, the candidates' order is
			// fixed over R and the centre's best alive candidate is exact;
			// otherwise seed the next display from that pair.
			bi, bj := intersectingPair(points, alive, R)
			if bi < 0 {
				return argmaxAliveCenter(points, alive, R)
			}
			forced = []int{bi, bj}
			stale = 0
		}
	}
	return argmaxAliveCenter(points, alive, R)
}

// displayExtras pads a forced display seed with distinct points from the
// regular selection up to size s.
func displayExtras(selected, seed []int, s int) []int {
	var out []int
	for _, c := range selected {
		if len(seed)+len(out) >= s {
			break
		}
		if !contains(seed, c) && !contains(out, c) {
			out = append(out, c)
		}
	}
	return out
}

// intersectingPair scans alive pairs for one whose hyperplane still
// intersects R, returning (-1, -1) when none does.
func intersectingPair(points []geom.Vector, alive []int, R *polytope.Polytope) (int, int) {
	for x := 0; x < len(alive); x++ {
		for y := x + 1; y < len(alive); y++ {
			h := geom.NewHyperplane(points[alive[x]], points[alive[y]])
			if h.Degenerate() {
				continue
			}
			if c := R.BallSide(h); c == polytope.ClassAbove || c == polytope.ClassBelow {
				continue
			}
			if R.Classify(h) == polytope.ClassIntersect {
				return alive[x], alive[y]
			}
		}
	}
	return -1, -1
}

// selectDisplay picks the tuples to show this round.
func (a *SortingUH) selectDisplay(points []geom.Vector, alive []int, R *polytope.Polytope, s int) []int {
	if len(alive) <= s {
		out := make([]int, len(alive))
		copy(out, alive)
		return out
	}
	if !a.Simplex {
		// Sorting-Random: s distinct random candidates.
		perm := a.Rng.Perm(len(alive))
		out := make([]int, 0, s)
		for _, pi := range perm[:s] {
			out = append(out, alive[pi])
		}
		return out
	}
	// Sorting-Simplex: seed with the pair whose hyperplane is closest to
	// R's centre, then greedily add the points whose hyperplane against the
	// seed is closest (most informative cluster).
	center := R.Center()
	bi, bj, bestDist := -1, -1, 0.0
	for x := 0; x < len(alive); x++ {
		for y := x + 1; y < len(alive); y++ {
			h := geom.NewHyperplane(points[alive[x]], points[alive[y]])
			if h.Degenerate() {
				continue
			}
			if c := R.BallSide(h); c == polytope.ClassAbove || c == polytope.ClassBelow {
				continue
			}
			if R.Classify(h) != polytope.ClassIntersect {
				continue
			}
			if dist := h.Distance(center); bi < 0 || dist < bestDist {
				bi, bj, bestDist = alive[x], alive[y], dist
			}
		}
	}
	if bi < 0 {
		return nil
	}
	out := []int{bi, bj}
	for len(out) < s {
		add, addDist := -1, 0.0
		for _, c := range alive {
			if contains(out, c) {
				continue
			}
			h := geom.NewHyperplane(points[bi], points[c])
			if h.Degenerate() {
				continue
			}
			if dist := h.Distance(center); add < 0 || dist < addDist {
				add, addDist = c, dist
			}
		}
		if add < 0 {
			break
		}
		out = append(out, add)
	}
	return out
}

// sortByOracle orders the displayed points best-first according to the
// user, via binary-insertion with pairwise questions — the "equivalent to
// picking the favorite several times" effort the paper describes.
func sortByOracle(points []geom.Vector, display []int, o oracle.Oracle) []int {
	ordered := make([]int, 0, len(display))
	for _, p := range display {
		lo, hi := 0, len(ordered)
		for lo < hi {
			mid := (lo + hi) / 2
			if o.Prefer(points[p], points[ordered[mid]]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		ordered = append(ordered, 0)
		copy(ordered[lo+1:], ordered[lo:])
		ordered[lo] = p
	}
	return ordered
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
