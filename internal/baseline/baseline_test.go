package baseline

import (
	"math/rand"
	"testing"

	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/skyband"
)

var paperPoints = []geom.Vector{
	{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0},
}

// epsFor computes the paper's adapted threshold ε = 1 − f(p_k)/f(p₁).
func epsFor(points []geom.Vector, u geom.Vector, k int) float64 {
	f1 := u.Dot(points[oracle.TopK(points, u, 1)[0]])
	fk := oracle.KthUtility(points, u, k)
	if f1 <= 0 {
		return 0
	}
	return 1 - fk/f1
}

func TestMedianFindsTop1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(100)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		u := oracle.RandomUtility(rng, 2)
		for _, alg := range []interface {
			Name() string
			Run([]geom.Vector, int, oracle.Oracle) int
		}{Median{}, Hull{}} {
			user := oracle.NewUser(u)
			got := alg.Run(pts, 1, user)
			if !oracle.IsTopK(pts, u, 1, pts[got]) {
				t.Fatalf("trial %d: %s returned non-top-1", trial, alg.Name())
			}
		}
	}
}

func TestMedianPaperExample(t *testing.T) {
	u := geom.Vector{0.4, 0.6}
	user := oracle.NewUser(u)
	got := Median{}.Run(paperPoints, 1, user)
	if got != 2 { // p3 is the top-1 at u=(0.4,0.6)
		t.Fatalf("Median returned p%d, want p3", got+1)
	}
}

func TestAdapt2DCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(80)
		k := 1 + rng.Intn(8)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		band := skyband.Filter(pts, skyband.KSkyband(pts, k))
		u := oracle.RandomUtility(rng, 2)
		for _, alg := range []interface {
			Name() string
			Run([]geom.Vector, int, oracle.Oracle) int
		}{MedianAdapt{}, HullAdapt{}} {
			user := oracle.NewUser(u)
			got := alg.Run(band, k, user)
			if !oracle.IsTopK(band, u, k, band[got]) {
				t.Fatalf("trial %d: %s returned non-top-%d", trial, alg.Name(), k)
			}
		}
	}
}

func TestUHVariantsCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(3)
		n := 30 + rng.Intn(70)
		k := 1 + rng.Intn(6)
		ds := dataset.AntiCorrelated(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		eps := epsFor(band, u, k)
		for _, alg := range []*UH{
			{Simplex: false, Eps: eps, Rng: rand.New(rand.NewSource(int64(trial)))},
			{Simplex: true, Eps: eps, Rng: rand.New(rand.NewSource(int64(trial)))},
			{Simplex: false, Adapt: true, Rng: rand.New(rand.NewSource(int64(trial)))},
			{Simplex: true, Adapt: true, Rng: rand.New(rand.NewSource(int64(trial)))},
		} {
			user := oracle.NewUser(u)
			got := alg.Run(band, k, user)
			if !oracle.IsTopK(band, u, k, band[got]) {
				t.Fatalf("trial %d: %s returned non-top-%d after %d questions",
					trial, alg.Name(), k, user.Questions())
			}
		}
	}
}

func TestUHNames(t *testing.T) {
	cases := map[string]*UH{
		"UH-Random":        {},
		"UH-Simplex":       {Simplex: true},
		"UH-Random-Adapt":  {Adapt: true},
		"UH-Simplex-Adapt": {Simplex: true, Adapt: true},
	}
	for want, alg := range cases {
		if alg.Name() != want {
			t.Errorf("Name = %q, want %q", alg.Name(), want)
		}
	}
}

func TestUtilityApproxCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ok, total := 0, 0
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(3)
		n := 30 + rng.Intn(70)
		k := 2 + rng.Intn(6)
		ds := dataset.AntiCorrelated(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		eps := epsFor(band, u, k)
		alg := &UtilityApprox{Eps: eps}
		user := oracle.NewUser(u)
		got := alg.Run(band, k, user)
		total++
		if oracle.IsTopK(band, u, k, band[got]) {
			ok++
		}
	}
	// UtilityApprox's fake-point questions only bound ratios against
	// dimension 1; the centre estimate is approximate, so allow a small
	// failure rate (the paper's own adaptation has the same property).
	if float64(ok)/float64(total) < 0.8 {
		t.Fatalf("UtilityApprox accuracy %d/%d too low", ok, total)
	}
}

func TestUtilityApproxUsesFakePointsOnly(t *testing.T) {
	// Every question must present axis-aligned fake points, not dataset
	// points.
	rng := rand.New(rand.NewSource(5))
	ds := dataset.AntiCorrelated(rng, 50, 3)
	u := oracle.RandomUtility(rng, 3)
	rec := &recordingOracle{inner: oracle.NewUser(u)}
	(&UtilityApprox{Eps: 0.05}).Run(ds.Points, 3, rec)
	if len(rec.asked) == 0 {
		t.Skip("no questions needed")
	}
	for _, q := range rec.asked {
		for _, p := range [2]geom.Vector{q[0], q[1]} {
			nonzero := 0
			for _, x := range p {
				if x != 0 {
					nonzero++
				}
			}
			if nonzero > 1 {
				t.Fatalf("non-axis-aligned question point %v", p)
			}
		}
	}
}

type recordingOracle struct {
	inner oracle.Oracle
	asked [][2]geom.Vector
}

func (r *recordingOracle) Prefer(p, q geom.Vector) bool {
	r.asked = append(r.asked, [2]geom.Vector{p.Clone(), q.Clone()})
	return r.inner.Prefer(p, q)
}
func (r *recordingOracle) Questions() int { return r.inner.Questions() }

func TestPreferenceLearningCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ok, total := 0, 0
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(2)
		n := 30 + rng.Intn(50)
		k := 3 + rng.Intn(5)
		ds := dataset.AntiCorrelated(rng, n, d)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		alg := &PreferenceLearning{Rng: rand.New(rand.NewSource(int64(trial)))}
		user := oracle.NewUser(u)
		got := alg.Run(band, k, user)
		total++
		if oracle.IsTopK(band, u, k, band[got]) {
			ok++
		}
		if user.Questions() == 0 && len(band) > 2 {
			t.Fatalf("trial %d: PL asked no questions", trial)
		}
	}
	if float64(ok)/float64(total) < 0.85 {
		t.Fatalf("Preference-Learning accuracy %d/%d too low", ok, total)
	}
}

func TestPreferenceLearningValidateStopsEarlier(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := dataset.AntiCorrelated(rng, 120, 4)
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, 10))
	qPlain, qValidate := 0, 0
	trials := 5
	for trial := 0; trial < trials; trial++ {
		u := oracle.RandomUtility(rng, 4)
		up, uv := oracle.NewUser(u), oracle.NewUser(u)
		(&PreferenceLearning{Rng: rand.New(rand.NewSource(int64(trial)))}).Run(band, 10, up)
		(&PreferenceLearning{Validate: true, Rng: rand.New(rand.NewSource(int64(trial)))}).Run(band, 10, uv)
		qPlain += up.Questions()
		qValidate += uv.Questions()
	}
	if qValidate >= qPlain {
		t.Fatalf("validated PL asked %d questions vs %d plain; expected fewer", qValidate, qPlain)
	}
}

func TestActiveRankingFullRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(3)
		n := 10 + rng.Intn(30)
		ds := dataset.Independent(rng, n, d)
		u := oracle.RandomUtility(rng, d)
		alg := &ActiveRanking{Rng: rand.New(rand.NewSource(int64(trial)))}
		user := oracle.NewUser(u)
		ranking := alg.Ranking(ds.Points, user)
		if len(ranking) != n {
			t.Fatalf("trial %d: ranking has %d entries, want %d", trial, len(ranking), n)
		}
		if !RankingMatches(ds.Points, ranking, u) {
			t.Fatalf("trial %d: derived ranking inconsistent with the utility", trial)
		}
		// The implication machinery must save questions vs naive sorting
		// (n·log n comparisons); allow generous slack.
		if user.Questions() > n*(n-1)/2 {
			t.Fatalf("trial %d: %d questions for n=%d", trial, user.Questions(), n)
		}
	}
}

func TestActiveRankingRunReturnsTop1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := dataset.Independent(rng, 40, 3)
	u := oracle.RandomUtility(rng, 3)
	alg := &ActiveRanking{Rng: rand.New(rand.NewSource(1))}
	got := alg.Run(ds.Points, 5, oracle.NewUser(u))
	if !oracle.IsTopK(ds.Points, u, 1, ds.Points[got]) {
		t.Fatal("Active-Ranking Run must return the top-1")
	}
}

func TestActiveRankingDuplicates(t *testing.T) {
	pts := []geom.Vector{{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.1}, {0.1, 0.9}}
	u := geom.Vector{0.5, 0.5}
	alg := &ActiveRanking{Rng: rand.New(rand.NewSource(1))}
	ranking := alg.Ranking(pts, oracle.NewUser(u))
	if len(ranking) != 4 {
		t.Fatalf("ranking %v", ranking)
	}
	if !RankingMatches(pts, ranking, u) {
		t.Fatal("duplicate handling broke the ranking")
	}
}

// The paper's central comparison: IST-aware algorithms must ask fewer
// questions than full-ranking Active-Ranking on the same input.
func TestActiveRankingAsksMoreThanUH(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := dataset.AntiCorrelated(rng, 100, 3)
	k := 10
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
	arQ, uhQ := 0, 0
	for trial := 0; trial < 5; trial++ {
		u := oracle.RandomUtility(rng, 3)
		ua, ub := oracle.NewUser(u), oracle.NewUser(u)
		(&ActiveRanking{Rng: rand.New(rand.NewSource(int64(trial)))}).Run(band, k, ua)
		(&UH{Adapt: true, Rng: rand.New(rand.NewSource(int64(trial)))}).Run(band, k, ub)
		arQ += ua.Questions()
		uhQ += ub.Questions()
	}
	if arQ <= uhQ {
		t.Fatalf("Active-Ranking %d questions vs UH-Adapt %d; expected more", arQ, uhQ)
	}
}

func TestUHEpsilonZeroGuaranteesTopK(t *testing.T) {
	// The Section 6.4 re-adaptation: ε = 0 means UH stops only when the
	// answer is certain, guaranteeing a top-k (in fact top-1-regret-free)
	// point without peeking at the hidden utility.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		d := 2 + rng.Intn(2)
		ds := dataset.AntiCorrelated(rng, 60, d)
		k := 1 + rng.Intn(5)
		band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, k))
		u := oracle.RandomUtility(rng, d)
		alg := &UH{Eps: 0, Rng: rand.New(rand.NewSource(int64(trial)))}
		got := alg.Run(band, k, oracle.NewUser(u))
		if !oracle.IsTopK(band, u, 1, band[got]) {
			t.Fatalf("trial %d: eps=0 UH returned non-top-1", trial)
		}
	}
}

func TestMedianAdaptFewCandidates(t *testing.T) {
	// When k >= the candidate count, the adapted algorithms stop with zero
	// questions (everything is trivially top-k).
	pts := []geom.Vector{{0.9, 0.1}, {0.1, 0.9}, {0.6, 0.6}}
	u := oracle.RandomUtility(rand.New(rand.NewSource(1)), 2)
	for _, alg := range []interface {
		Name() string
		Run([]geom.Vector, int, oracle.Oracle) int
	}{MedianAdapt{}, HullAdapt{}} {
		user := oracle.NewUser(u)
		got := alg.Run(pts, 3, user)
		if user.Questions() != 0 {
			t.Fatalf("%s asked %d questions with k=n", alg.Name(), user.Questions())
		}
		if got < 0 || got > 2 {
			t.Fatalf("%s returned %d", alg.Name(), got)
		}
	}
}

func TestPreferenceLearningDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := dataset.AntiCorrelated(rng, 80, 3)
	band := skyband.Filter(ds.Points, skyband.KSkyband(ds.Points, 5))
	u := oracle.RandomUtility(rng, 3)
	run := func() (int, int) {
		alg := &PreferenceLearning{Rng: rand.New(rand.NewSource(99))}
		user := oracle.NewUser(u)
		return alg.Run(band, 5, user), user.Questions()
	}
	i1, q1 := run()
	i2, q2 := run()
	if i1 != i2 || q1 != q2 {
		t.Fatalf("PL not deterministic: (%d,%d) vs (%d,%d)", i1, q1, i2, q2)
	}
}

func TestActiveRankingImpliedComparisonsSaveQuestions(t *testing.T) {
	// The implication machinery is the point of Active-Ranking: the asked
	// questions must be well under the n·log n comparisons a plain sort
	// performs.
	rng := rand.New(rand.NewSource(13))
	ds := dataset.Independent(rng, 120, 3)
	u := oracle.RandomUtility(rng, 3)
	alg := &ActiveRanking{Rng: rand.New(rand.NewSource(2))}
	user := oracle.NewUser(u)
	alg.Ranking(ds.Points, user)
	nLogN := 120 * 7 // n * ceil(log2(n))
	if user.Questions() >= nLogN {
		t.Fatalf("asked %d questions, plain sort would use ~%d — implications saved nothing",
			user.Questions(), nLogN)
	}
}
