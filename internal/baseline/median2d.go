// Package baseline implements the competitor algorithms the paper adapts
// and evaluates against (Section 6, "Algorithms"): Median and Hull [36]
// (2-d), UH-Random and UH-Simplex [36], UtilityApprox [22],
// Preference-Learning [27] and Active-Ranking [14], plus the paper's
// -Adapt variants with the relaxed top-k deletion and stopping conditions.
package baseline

import (
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/sweep"
)

// Median is the 2-d top-1 algorithm of [36]: binary search over the upper
// envelope's breakpoints, halving the number of candidate top-1 points per
// question. It ignores k (always pinpoints the exact top-1), which is why
// the paper's Figure 8 shows it asking ~3x more questions than 2D-PI for
// large k.
type Median struct{}

// Name implements core.Algorithm.
func (Median) Name() string { return "Median" }

// Run implements core.Algorithm.
func (Median) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	order, _ := sweep.UpperEnvelope(points)
	lo, hi := 0, len(order)-1 // candidate envelope segments
	for lo < hi {
		mid := (lo + hi) / 2
		// The breakpoint after segment mid separates order[mid] (left
		// winner) from order[mid+1] (right winner).
		if o.Prefer(points[order[mid]], points[order[mid+1]]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return order[lo]
}

// Hull is the second 2-d top-1 algorithm of [36]. Our adaptation selects the
// question at the breakpoint geometrically closest to the midpoint of the
// remaining utility interval (bisection in utility space rather than in
// candidate count).
type Hull struct{}

// Name implements core.Algorithm.
func (Hull) Name() string { return "Hull" }

// Run implements core.Algorithm.
func (Hull) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	order, breaks := sweep.UpperEnvelope(points)
	lo, hi := 0, len(order)-1
	xlo, xhi := 0.0, 1.0
	for lo < hi {
		// Breakpoint indices available: lo..hi-1; pick the one closest to
		// the interval midpoint.
		mid := (xlo + xhi) / 2
		best, bestDist := lo, absf(breaks[lo]-mid)
		for b := lo + 1; b < hi; b++ {
			if d := absf(breaks[b] - mid); d < bestDist {
				best, bestDist = b, d
			}
		}
		if o.Prefer(points[order[best]], points[order[best+1]]) {
			hi, xhi = best, breaks[best]
		} else {
			lo, xlo = best+1, breaks[best]
		}
	}
	return order[lo]
}

// MedianAdapt is Median with the paper's adaptation (Section 6): a point is
// deleted once it cannot be among the top-k for any remaining utility
// vector, and the algorithm stops as soon as at most k candidates remain
// (all of which are then exactly the top-k).
type MedianAdapt struct{}

// Name implements core.Algorithm.
func (MedianAdapt) Name() string { return "Median-Adapt" }

// Run implements core.Algorithm.
func (MedianAdapt) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	return runAdapt2D(points, k, o, false)
}

// HullAdapt is Hull with the same adaptation.
type HullAdapt struct{}

// Name implements core.Algorithm.
func (HullAdapt) Name() string { return "Hull-Adapt" }

// Run implements core.Algorithm.
func (HullAdapt) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	return runAdapt2D(points, k, o, true)
}

// runAdapt2D shares the Median-Adapt/Hull-Adapt loop; useHull switches the
// breakpoint-selection strategy.
func runAdapt2D(points []geom.Vector, k int, o oracle.Oracle, useHull bool) int {
	order, breaks := sweep.UpperEnvelope(points)
	lo, hi := 0, len(order)-1
	xlo, xhi := 0.0, 1.0
	alive := make([]bool, len(points))
	for i := range alive {
		alive[i] = true
	}
	countAlive := len(points)

	deleteImpossible := func() {
		// A point is deleted once >= k points beat it across the whole
		// remaining interval [xlo, xhi]; lines make "beats throughout" a
		// two-endpoint test.
		for i := range points {
			if !alive[i] {
				continue
			}
			li := sweep.LineOf(points[i])
			beaters := 0
			for j := range points {
				if i == j {
					continue
				}
				lj := sweep.LineOf(points[j])
				if lj.At(xlo) > li.At(xlo)+geom.Eps && lj.At(xhi) > li.At(xhi)+geom.Eps {
					beaters++
					if beaters >= k {
						break
					}
				}
			}
			if beaters >= k {
				alive[i] = false
				countAlive--
			}
		}
	}
	deleteImpossible()

	for countAlive > k && lo < hi {
		var b int
		if useHull {
			mid := (xlo + xhi) / 2
			best, bestDist := lo, absf(breaks[lo]-mid)
			for bb := lo + 1; bb < hi; bb++ {
				if d := absf(breaks[bb] - mid); d < bestDist {
					best, bestDist = bb, d
				}
			}
			b = best
		} else {
			b = (lo + hi) / 2
		}
		if o.Prefer(points[order[b]], points[order[b+1]]) {
			hi, xhi = b, breaks[b]
		} else {
			lo, xlo = b+1, breaks[b]
		}
		deleteImpossible()
	}
	// Either <= k candidates remain (all are top-k) or the interval is down
	// to a single envelope segment; return a guaranteed top-k point.
	if countAlive <= k {
		for i, a := range alive {
			if a {
				return i
			}
		}
	}
	return order[lo] // exact top-1 of the pinned segment
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
