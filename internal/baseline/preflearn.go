package baseline

import (
	"math/rand"

	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// PreferenceLearning is the adaptive pairwise-comparison algorithm of [27]
// (Qian et al., "Learning User Preferences by Adaptive Pairwise
// Comparison"). It learns the utility vector itself rather than targeting
// an answer tuple, so it keeps asking until the estimate converges — which
// is exactly why the paper reports it asking many redundant questions.
//
// The estimate u_e is the centre of the feasible region implied by all
// answers; each round asks the question (among sampled candidate pairs)
// whose hyperplane passes closest to u_e (most informative for refining
// the estimate). Two stopping rules are implemented:
//
//   - convergence (the paper's main adaptation): the feasible region's
//     radius around u_e falls below Eps (paper sets 1e-6), or no candidate
//     hyperplane intersects the region anymore;
//   - prediction validation (the Section 6.4 user-study re-adaptation):
//     stop once u_e correctly predicts at least 75% of the last
//     ValidateWindow answers.
//
// Finally one of the top-k points w.r.t. u_e is returned.
type PreferenceLearning struct {
	// Eps is the convergence threshold on the learnt utility vector
	// (default 1e-6, per the paper's experiment setting).
	Eps float64
	// Validate enables the 75%-prediction stopping rule of Section 6.4.
	Validate bool
	// ValidateWindow is how many recent answers are validated (default 8).
	ValidateWindow int
	// CandidatePairs is how many random pairs are scored per round
	// (default 64).
	CandidatePairs int
	// MaxRounds caps the interaction (default 30·n, effectively unbounded).
	MaxRounds int
	// Rng drives pair sampling; required.
	Rng *rand.Rand
}

type plAnswer struct {
	h        geom.Hyperplane
	positive bool
}

// Name implements core.Algorithm.
func (a *PreferenceLearning) Name() string { return "Preference-Learning" }

// Run implements core.Algorithm.
func (a *PreferenceLearning) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	if a.Rng == nil {
		a.Rng = rand.New(rand.NewSource(1))
	}
	eps := a.Eps
	if eps == 0 {
		// The paper's experiment setting for [27]: estimation radius 1e-6.
		// An algorithm parameter fixed by the source paper, not a shared
		// geometric tolerance, so it does not come from geom.
		//lint:ignore epsconst paper-specified estimation radius, not a geom tolerance
		eps = 1e-6
	}
	window := a.ValidateWindow
	if window <= 0 {
		window = 8
	}
	candidates := a.CandidatePairs
	if candidates <= 0 {
		candidates = 64
	}
	n := len(points)
	d := len(points[0])
	maxRounds := a.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 30 * n
	}
	R := polytope.NewSimplex(d)
	var history []plAnswer

	for round := 0; round < maxRounds; round++ {
		if R.IsEmpty() {
			break
		}
		ue := R.Center()

		// Convergence: the region has shrunk to a point (radius < eps).
		radius := 0.0
		for _, v := range R.Vertices() {
			if dist := v.Dist(ue); dist > radius {
				radius = dist
			}
		}
		if radius < eps {
			break
		}
		// Prediction validation (user-study re-adaptation).
		if a.Validate && len(history) >= window {
			correct := 0
			for _, ans := range history[len(history)-window:] {
				if (ans.h.SideOf(ue) != geom.Below) == ans.positive {
					correct++
				}
			}
			if float64(correct) >= 0.75*float64(window) {
				break
			}
		}

		// Most informative question: the sampled pair hyperplane closest to
		// the current estimate (and actually crossing the region).
		var best geom.Hyperplane
		bi, bj, bestDist := -1, -1, 0.0
		for c := 0; c < candidates; c++ {
			i, j := a.Rng.Intn(n), a.Rng.Intn(n)
			if i == j {
				continue
			}
			h := geom.NewHyperplane(points[i], points[j])
			if h.Degenerate() {
				continue
			}
			if R.Classify(h) != polytope.ClassIntersect {
				continue
			}
			if dist := h.Distance(ue); bi < 0 || dist < bestDist {
				best, bi, bj, bestDist = h, i, j, dist
			}
		}
		if bi < 0 {
			break // no informative pair found: estimate is as good as it gets
		}
		positive := o.Prefer(points[bi], points[bj])
		h := best
		if !positive {
			h = h.Flip()
		}
		R.Cut(h)
		history = append(history, plAnswer{h: best, positive: positive})
	}

	ue := uniform(d)
	if !R.IsEmpty() {
		ue = R.Center()
	}
	// "Arbitrarily return one of the top-k points w.r.t. the learnt utility
	// vector" — return the top-1.
	return argmaxAt(points, ue)
}
