package baseline

import (
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
)

// UtilityApprox is the interactive regret-minimization algorithm of [22]
// (Nanongkai et al., "Interactive Regret Minimization"). Unlike every other
// algorithm here it displays FAKE points — artificial tuples constructed on
// the coordinate axes — which makes it independent of the dataset during
// interaction (and therefore very fast), at the cost of showing users
// tuples that do not exist (the criticism that motivated [36] and this
// paper).
//
// Each question compares the fake point x·e₁ against y·e_i, which
// binary-searches the ratio a_i = u_i/(u₁+u_i): the user prefers the first
// iff u₁·x > u_i·y, i.e. a_i < x/(x+y). The answers are accumulated as
// linear halfspace cuts of the utility simplex, and the algorithm stops
// when the best point's worst-case regret over the remaining region falls
// below ε = 1 − f(p_k)/f(p₁) (the paper's adaptation, which guarantees a
// top-k answer).
type UtilityApprox struct {
	// Eps is the regret threshold ε set by the harness.
	Eps float64
	// MaxRounds caps the interaction (default 30·d questions).
	MaxRounds int
}

// Name implements core.Algorithm.
func (a *UtilityApprox) Name() string { return "UtilityApprox" }

// Run implements core.Algorithm.
func (a *UtilityApprox) Run(points []geom.Vector, k int, o oracle.Oracle) int {
	d := len(points[0])
	if d < 2 {
		return argmaxAt(points, uniform(d))
	}
	maxRounds := a.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 30 * d
	}
	// Ratio intervals per dimension i>=1: a_i = u_i/(u_1+u_i) in [lo, hi].
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 1; i < d; i++ {
		lo[i], hi[i] = 0, 1
	}
	R := polytope.NewSimplex(d)

	fake := func(dim int, val float64) geom.Vector {
		p := geom.NewVector(d)
		p[dim] = val
		return p
	}

	for round := 0; round < maxRounds; round++ {
		// Stop as soon as the centre's best point has worst-case regret <= ε.
		if R.IsEmpty() {
			break
		}
		idx := argmaxAt(points, R.Center())
		if worstRegretOf(points, idx, R) <= a.Eps+geom.Eps {
			return idx
		}
		// Probe the widest remaining ratio interval.
		dim, width := 1, hi[1]-lo[1]
		for i := 2; i < d; i++ {
			if w := hi[i] - lo[i]; w > width {
				dim, width = i, w
			}
		}
		if width < geom.TieEps {
			break // utility pinned to numerical precision
		}
		mid := (lo[dim] + hi[dim]) / 2
		// Fake points: x on dim 1 (axis e_1), y on dim `dim`, with
		// x/(x+y) = mid; choose x = mid, y = 1-mid (both in (0,1]).
		x, y := mid, 1-mid
		if x <= 0 {
			x = geom.Eps
		}
		if y <= 0 {
			y = geom.Eps
		}
		// a_dim < mid  <=>  u_1·x > u_dim·y  <=>  user prefers the first.
		if o.Prefer(fake(0, x), fake(dim, y)) {
			hi[dim] = mid
			// u_1·x >= u_dim·y: halfspace (x, ..., -y at dim, ...)·u >= 0.
			n := geom.NewVector(d)
			n[0], n[dim] = x, -y
			R.Cut(geom.Hyperplane{Normal: n})
		} else {
			lo[dim] = mid
			n := geom.NewVector(d)
			n[0], n[dim] = -x, y
			R.Cut(geom.Hyperplane{Normal: n})
		}
	}
	if R.IsEmpty() {
		return argmaxAt(points, uniform(d))
	}
	return argmaxAt(points, R.Center())
}

// worstRegretOf returns the worst-case regret ratio of points[idx] over the
// region R (exact: the sublevel sets of the regret ratio are convex, so the
// maximum over a polytope is attained at a vertex).
func worstRegretOf(points []geom.Vector, idx int, R *polytope.Polytope) float64 {
	worst := 0.0
	for _, v := range R.Vertices() {
		top := 0.0
		for _, p := range points {
			if u := v.Dot(p); u > top {
				top = u
			}
		}
		if top <= 0 {
			continue
		}
		if reg := 1 - v.Dot(points[idx])/top; reg > worst {
			worst = reg
		}
	}
	return worst
}
