package dataset

import (
	"math"
	"math/rand"
	"testing"

	"ist/internal/skyband"
)

func inUnitRange(t *testing.T, d *Dataset) {
	t.Helper()
	for i, p := range d.Points {
		for j, x := range p {
			if x <= 0 || x > 1 {
				t.Fatalf("%s point %d dim %d = %v outside (0,1]", d.Name, i, j, x)
			}
		}
	}
}

func TestGeneratorsBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []*Dataset{
		Independent(rng, 500, 4),
		Correlated(rng, 500, 4),
		AntiCorrelated(rng, 500, 4),
		IslandLike(rng, 500),
		WeatherLike(rng, 500),
		CarLike(rng, 500),
		NBALike(rng, 500),
	} {
		if d.Size() != 500 {
			t.Fatalf("%s: size %d", d.Name, d.Size())
		}
		inUnitRange(t, d)
	}
	if IslandLike(rng, 10).Dim() != 2 {
		t.Fatal("island must be 2-d")
	}
	if NBALike(rng, 10).Dim() != 6 {
		t.Fatal("nba must be 6-d")
	}
	if WeatherLike(rng, 10).Dim() != 4 || CarLike(rng, 10).Dim() != 4 {
		t.Fatal("weather/car must be 4-d")
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	return cov / math.Sqrt(vx*vy)
}

func dimPair(d *Dataset, i, j int) ([]float64, []float64) {
	xs := make([]float64, d.Size())
	ys := make([]float64, d.Size())
	for k, p := range d.Points {
		xs[k] = p[i]
		ys[k] = p[j]
	}
	return xs, ys
}

func TestCorrelationStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	anti := AntiCorrelated(rng, 5000, 2)
	xs, ys := dimPair(anti, 0, 1)
	if r := pearson(xs, ys); r > -0.2 {
		t.Fatalf("anti-correlated pearson = %v, want strongly negative", r)
	}
	corr := Correlated(rng, 5000, 2)
	xs, ys = dimPair(corr, 0, 1)
	if r := pearson(xs, ys); r < 0.5 {
		t.Fatalf("correlated pearson = %v, want strongly positive", r)
	}
	ind := Independent(rng, 5000, 2)
	xs, ys = dimPair(ind, 0, 1)
	if r := math.Abs(pearson(xs, ys)); r > 0.1 {
		t.Fatalf("independent pearson = %v, want near zero", r)
	}
}

func TestSkylineSizesOrdering(t *testing.T) {
	// Anti-correlated data must have a much bigger skyline than correlated.
	rng := rand.New(rand.NewSource(3))
	anti := len(skyband.Skyline(AntiCorrelated(rng, 3000, 3).Points))
	corr := len(skyband.Skyline(Correlated(rng, 3000, 3).Points))
	if anti <= corr*2 {
		t.Fatalf("skyline sizes anti=%d corr=%d: expected anti >> corr", anti, corr)
	}
}

func TestLowerBoundDatasetStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := LowerBound(rng, 100, 2, 5)
	if d.Size() != 100 {
		t.Fatalf("size = %d", d.Size())
	}
	// Exactly n/k distinct points, each duplicated k times.
	distinct := map[string]int{}
	for _, p := range d.Points {
		distinct[p.String()]++
	}
	if len(distinct) != 20 {
		t.Fatalf("distinct groups = %d, want 20", len(distinct))
	}
	for s, c := range distinct {
		if c != 5 {
			t.Fatalf("group %s has %d copies, want 5", s, c)
		}
	}
	// No group dominates another (they sit on a convex arc).
	for i, p := range d.Points {
		for j, q := range d.Points {
			if i != j && p.Dominates(q) {
				t.Fatalf("point %d dominates %d", i, j)
			}
		}
	}
}

func TestByName(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"anti", "corr", "indep", "island", "weather", "car", "nba"} {
		d, err := ByName(name, rng, 50, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Size() != 50 {
			t.Fatalf("%s: size %d", name, d.Size())
		}
	}
	if _, err := ByName("nope", rng, 10, 2); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := AntiCorrelated(rand.New(rand.NewSource(9)), 100, 4)
	b := AntiCorrelated(rand.New(rand.NewSource(9)), 100, 4)
	for i := range a.Points {
		if !a.Points[i].Equal(b.Points[i]) {
			t.Fatal("same seed must reproduce the same dataset")
		}
	}
}
