// Package dataset generates the evaluation datasets of Section 6.
//
// The synthetic families (anti-correlated, correlated, independent) follow
// the classic generators of Börzsönyi et al. ("The Skyline Operator"), the
// source the paper itself cites. The four real datasets (Island, Weather,
// Car, NBA) are not distributed with the paper, so this package provides
// synthetic stand-ins that match their documented dimensionality, size and
// correlation structure; see DESIGN.md §3 for the substitution rationale.
// Every generated dimension is normalized to (0, 1] with larger-is-better
// orientation, exactly as the paper assumes (Section 3).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ist/internal/geom"
)

// Dataset is a named collection of points in (0,1]^d.
type Dataset struct {
	Name   string
	Points []geom.Vector
}

// Dim returns the dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// Size returns the number of points.
func (d *Dataset) Size() int { return len(d.Points) }

// attrFloor is the tiny positive attribute value standing in for 0 so that
// every dimension stays inside the paper's open-below (0,1] domain. It is a
// domain floor shared by the generators and the normalizer (io.go), not a
// comparison tolerance, which is why it lives here and not in geom.
//
//lint:ignore epsconst (0,1] domain floor, not a comparison tolerance
const attrFloor = 1e-6

// clamp01 forces x into (0, 1]; values at or below zero become attrFloor so
// every dimension stays in the paper's (0,1] domain.
func clamp01(x float64) float64 {
	if x <= 0 {
		return attrFloor
	}
	if x > 1 {
		return 1
	}
	return x
}

// Independent returns n uniform points in (0,1]^d.
func Independent(rng *rand.Rand, n, d int) *Dataset {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := geom.NewVector(d)
		for j := range p {
			p[j] = clamp01(rng.Float64())
		}
		pts[i] = p
	}
	return &Dataset{Name: fmt.Sprintf("independent-%dd", d), Points: pts}
}

// Correlated returns n points whose coordinates are positively correlated:
// good values in one dimension imply good values in the others (small
// skylines).
func Correlated(rng *rand.Rand, n, d int) *Dataset {
	pts := make([]geom.Vector, n)
	for i := range pts {
		base := rng.NormFloat64()*0.15 + 0.5
		p := geom.NewVector(d)
		for j := range p {
			p[j] = clamp01(base + rng.NormFloat64()*0.05)
		}
		pts[i] = p
	}
	return &Dataset{Name: fmt.Sprintf("correlated-%dd", d), Points: pts}
}

// AntiCorrelated returns n points whose coordinates are negatively
// correlated: points good in one dimension are bad in the others, placing
// mass near the hyperplane Σx = const and producing large skylines. This is
// the paper's default synthetic workload.
func AntiCorrelated(rng *rand.Rand, n, d int) *Dataset {
	pts := make([]geom.Vector, n)
	for i := range pts {
		// Classic construction: pick the plane Σx = d*v around v~N(0.5,σ),
		// then redistribute mass between dimension pairs to induce negative
		// correlation, with small per-dimension jitter.
		v := rng.NormFloat64()*0.08 + 0.5
		p := geom.NewVector(d)
		for j := range p {
			p[j] = v
		}
		for pass := 0; pass < d; pass++ {
			a, b := rng.Intn(d), rng.Intn(d)
			if a == b {
				continue
			}
			shift := (rng.Float64() - 0.5) * v
			p[a] += shift
			p[b] -= shift
		}
		for j := range p {
			p[j] = clamp01(p[j] + rng.NormFloat64()*0.01)
		}
		pts[i] = p
	}
	return &Dataset{Name: fmt.Sprintf("anticorrelated-%dd", d), Points: pts}
}

// IslandLike returns an n-point stand-in for the Island dataset: 2-d
// geographic coordinates clustered around a handful of population centres
// (paper: 63,383 2-dimensional locations).
func IslandLike(rng *rand.Rand, n int) *Dataset {
	type cluster struct{ cx, cy, sx, sy float64 }
	clusters := []cluster{
		{0.2, 0.75, 0.08, 0.06},
		{0.55, 0.5, 0.12, 0.1},
		{0.8, 0.25, 0.06, 0.08},
		{0.35, 0.3, 0.1, 0.07},
		{0.7, 0.8, 0.05, 0.05},
	}
	pts := make([]geom.Vector, n)
	for i := range pts {
		c := clusters[rng.Intn(len(clusters))]
		pts[i] = geom.Vector{
			clamp01(c.cx + rng.NormFloat64()*c.sx),
			clamp01(c.cy + rng.NormFloat64()*c.sy),
		}
	}
	return &Dataset{Name: "island", Points: pts}
}

// WeatherLike returns an n-point stand-in for the Weather dataset: 4
// meteorological attributes with weak cross-correlations (paper: 178,080
// tuples, 4 attributes).
func WeatherLike(rng *rand.Rand, n int) *Dataset {
	pts := make([]geom.Vector, n)
	for i := range pts {
		// latent climate factor couples the attributes weakly
		f := rng.NormFloat64()
		temp := clamp01(0.5 + 0.18*f + rng.NormFloat64()*0.12)
		humidity := clamp01(0.55 - 0.10*f + rng.NormFloat64()*0.15)
		wind := clamp01(0.35 + rng.NormFloat64()*0.18)
		sunshine := clamp01(0.5 + 0.12*f + rng.NormFloat64()*0.2)
		pts[i] = geom.Vector{temp, humidity, wind, sunshine}
	}
	return &Dataset{Name: "weather", Points: pts}
}

// CarLike returns an n-point stand-in for the used-car dataset: price, year
// of purchase, horse power, used kilometers — all normalized so larger is
// better (cheaper price and fewer kilometers map to larger values). The real
// dataset has 68,010 cars (paper Section 6); price/power are heavy-tailed,
// and price correlates positively with power and negatively with age/usage.
func CarLike(rng *rand.Rand, n int) *Dataset {
	pts := make([]geom.Vector, n)
	for i := range pts {
		quality := rng.NormFloat64() // latent "how premium is the car"
		// raw price: lognormal, premium cars cost more
		price := math.Exp(0.45*quality + rng.NormFloat64()*0.35)
		// normalized "cheapness" in (0,1]
		cheap := clamp01(1.2 / (1 + price))
		year := clamp01(0.5 + 0.15*quality + rng.NormFloat64()*0.2)
		power := clamp01(0.35 + 0.2*quality + math.Abs(rng.NormFloat64())*0.15)
		kmUsed := math.Abs(rng.NormFloat64())*0.3 + (1-year)*0.4
		fresh := clamp01(1 - kmUsed)
		pts[i] = geom.Vector{cheap, year, power, fresh}
	}
	return &Dataset{Name: "car", Points: pts}
}

// NBALike returns an n-point stand-in for the NBA players dataset: 6
// per-player performance attributes (paper: 16,916 players, 6 attributes).
// Stats are skewed (few stars) and positively correlated through a latent
// skill factor, with role trade-offs (scorers vs rebounders vs passers).
func NBALike(rng *rand.Rand, n int) *Dataset {
	pts := make([]geom.Vector, n)
	for i := range pts {
		skill := math.Abs(rng.NormFloat64()) * 0.35 // heavy-tailed talent
		role := rng.Float64()                       // 0: big man, 1: guard
		points := clamp01(0.15 + skill*(0.6+0.4*role) + rng.NormFloat64()*0.08)
		rebounds := clamp01(0.15 + skill*(1.1-role) + rng.NormFloat64()*0.08)
		assists := clamp01(0.1 + skill*role*1.2 + rng.NormFloat64()*0.08)
		steals := clamp01(0.12 + skill*(0.3+0.5*role) + rng.NormFloat64()*0.1)
		blocks := clamp01(0.1 + skill*(1.0-role)*0.8 + rng.NormFloat64()*0.1)
		minutes := clamp01(0.2 + skill*0.9 + rng.NormFloat64()*0.12)
		pts[i] = geom.Vector{points, rebounds, assists, steals, blocks, minutes}
	}
	return &Dataset{Name: "nba", Points: pts}
}

// LowerBound returns the adversarial dataset of Theorem 3.2: n points in
// groups of k exact duplicates, with groups mutually non-dominating. Any
// algorithm needs Ω(log₂(n/k)) questions on it.
func LowerBound(rng *rand.Rand, n, d, k int) *Dataset {
	groups := (n + k - 1) / k
	pts := make([]geom.Vector, 0, n)
	for g := 0; g < groups; g++ {
		// Place group centres on a strictly convex curve so that every group
		// is the unique top-k winner for some utility vector: use the unit
		// sphere arc restricted to the positive orthant.
		p := geom.NewVector(d)
		theta := (float64(g) + 0.5) / float64(groups) * math.Pi / 2
		p[0] = math.Cos(theta)
		p[1] = math.Sin(theta)
		for j := 2; j < d; j++ {
			p[j] = 0.5
		}
		for j := range p {
			p[j] = clamp01(p[j])
		}
		for c := 0; c < k && len(pts) < n; c++ {
			pts = append(pts, p.Clone())
		}
	}
	_ = rng
	return &Dataset{Name: fmt.Sprintf("lowerbound-n%d-k%d", n, k), Points: pts}
}

// ByName builds one of the named datasets used in the experiments.
func ByName(name string, rng *rand.Rand, n, d int) (*Dataset, error) {
	switch name {
	case "anti", "anticorrelated":
		return AntiCorrelated(rng, n, d), nil
	case "corr", "correlated":
		return Correlated(rng, n, d), nil
	case "indep", "independent":
		return Independent(rng, n, d), nil
	case "island":
		return IslandLike(rng, n), nil
	case "weather":
		return WeatherLike(rng, n), nil
	case "car":
		return CarLike(rng, n), nil
	case "nba":
		return NBALike(rng, n), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}
