package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"ist/internal/geom"
)

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := AntiCorrelated(rng, 50, 3)
	var buf strings.Builder
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()), "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != d.Size() || back.Dim() != d.Dim() {
		t.Fatalf("round trip shape %dx%d, want %dx%d", back.Size(), back.Dim(), d.Size(), d.Dim())
	}
	for i := range d.Points {
		for j := range d.Points[i] {
			if diff := back.Points[i][j] - d.Points[i][j]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("point %d dim %d: %v vs %v", i, j, back.Points[i][j], d.Points[i][j])
			}
		}
	}
}

func TestReadCSVHeaderAndComments(t *testing.T) {
	in := `# used car export
price,power
1.5,2.5

2.0,3.0
`
	d, err := ReadCSV(strings.NewReader(in), "cars")
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 || d.Dim() != 2 {
		t.Fatalf("shape %dx%d", d.Size(), d.Dim())
	}
	if d.Points[1][1] != 3.0 {
		t.Fatalf("parsed %v", d.Points)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), "x"); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\nfoo,bar\n"), "x"); err == nil {
		t.Fatal("non-numeric data row must error")
	}
}

func TestNormalize(t *testing.T) {
	d := &Dataset{Name: "cars", Points: []geom.Vector{
		{10000, 150, 90000},
		{30000, 250, 10000},
		{20000, 200, 50000},
	}}
	// price: smaller better; power: larger better; km: smaller better.
	norm, err := d.Normalize([]Orientation{SmallerBetter, LargerBetter, SmallerBetter})
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest car (10000) has best price score 1; most powerful (250) has
	// power 1; fewest km (10000) has condition 1.
	if norm.Points[0][0] != 1 {
		t.Fatalf("cheapest price score = %v", norm.Points[0][0])
	}
	if norm.Points[1][1] != 1 || norm.Points[1][2] != 1 {
		t.Fatalf("best power/km scores = %v", norm.Points[1])
	}
	// Worst values map to a tiny positive number, never 0.
	for _, p := range norm.Points {
		for _, x := range p {
			if x <= 0 || x > 1 {
				t.Fatalf("normalized value %v outside (0,1]", x)
			}
		}
	}
	// Middle car is strictly between.
	if !(norm.Points[2][0] > 0 && norm.Points[2][0] < 1) {
		t.Fatalf("middle price score = %v", norm.Points[2][0])
	}
}

func TestNormalizeConstantColumn(t *testing.T) {
	d := &Dataset{Points: []geom.Vector{{5, 1}, {5, 2}}}
	norm, err := d.Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Points[0][0] != 1 || norm.Points[1][0] != 1 {
		t.Fatalf("constant column must normalize to 1: %v", norm.Points)
	}
}

func TestNormalizeBadOrientations(t *testing.T) {
	d := &Dataset{Points: []geom.Vector{{1, 2}}}
	if _, err := d.Normalize([]Orientation{LargerBetter}); err == nil {
		t.Fatal("orientation arity mismatch must error")
	}
}

func TestNormalizeEmpty(t *testing.T) {
	d := &Dataset{Name: "empty"}
	norm, err := d.Normalize(nil)
	if err != nil || norm.Size() != 0 {
		t.Fatalf("empty normalize: %v %v", norm, err)
	}
}
