package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ist/internal/geom"
)

// CSV input/output and normalization, so real tabular data can be fed to
// the algorithms the way the paper preprocesses its datasets: every
// attribute scaled to (0,1] with larger-is-better orientation (Section 3).

// WriteCSV writes the dataset as comma-separated rows with 6 decimal
// places, one point per line.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range d.Points {
		for i, x := range p {
			if i > 0 {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.6f", x); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses comma-separated numeric rows into a dataset. Blank lines
// and lines starting with '#' are skipped; a non-numeric first row is
// treated as a header and skipped. All data rows must agree in width.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var pts []geom.Vector
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		row := make(geom.Vector, len(fields))
		ok := true
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				ok = false
				break
			}
			row[i] = v
		}
		if !ok {
			if len(pts) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("dataset: line %d is not numeric", lineNo)
		}
		if len(pts) > 0 && len(row) != len(pts[0]) {
			return nil, fmt.Errorf("dataset: line %d has %d columns, want %d", lineNo, len(row), len(pts[0]))
		}
		pts = append(pts, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("dataset: no data rows")
	}
	return &Dataset{Name: name, Points: pts}, nil
}

// Orientation declares whether larger raw values of an attribute are better
// (e.g. horse power) or worse (e.g. price, used kilometers).
type Orientation int

const (
	// LargerBetter keeps the attribute's direction.
	LargerBetter Orientation = iota
	// SmallerBetter flips the attribute so that the normalized value grows
	// as the raw value shrinks.
	SmallerBetter
)

// Normalize rescales every attribute into (0,1] with larger-is-better
// orientation, the domain the paper's algorithms assume. orientations may
// be nil (all LargerBetter) or must have one entry per attribute. Constant
// attributes map to 1 everywhere. A new dataset is returned; the input is
// not modified.
func (d *Dataset) Normalize(orientations []Orientation) (*Dataset, error) {
	if d.Size() == 0 {
		return &Dataset{Name: d.Name}, nil
	}
	dim := d.Dim()
	if orientations != nil && len(orientations) != dim {
		return nil, fmt.Errorf("dataset: %d orientations for %d attributes", len(orientations), dim)
	}
	mins := d.Points[0].Clone()
	maxs := d.Points[0].Clone()
	for _, p := range d.Points[1:] {
		for i, x := range p {
			if x < mins[i] {
				mins[i] = x
			}
			if x > maxs[i] {
				maxs[i] = x
			}
		}
	}
	out := make([]geom.Vector, d.Size())
	for pi, p := range d.Points {
		q := geom.NewVector(dim)
		for i, x := range p {
			span := maxs[i] - mins[i]
			var v float64
			if span <= 0 {
				v = 1
			} else {
				v = (x - mins[i]) / span
				if orientations != nil && orientations[i] == SmallerBetter {
					v = 1 - v
				}
				// (0,1]: the worst raw value maps to a tiny positive number
				// rather than 0, matching the paper's open lower bound.
				if v <= 0 {
					v = attrFloor
				}
			}
			q[i] = v
		}
		out[pi] = q
	}
	return &Dataset{Name: d.Name, Points: out}, nil
}
