package oracle

import "ist/internal/geom"

// MajorityOracle repeats every question an odd number of times and returns
// the majority answer — the simplest mistake-mitigation for the noisy users
// of Section 6.4 (and the "users might make mistakes" future work of the
// paper's conclusion). Every repetition counts as a question asked of the
// underlying oracle, so the effort trade-off is visible in the measurements.
type MajorityOracle struct {
	inner Oracle
	votes int
}

// NewMajorityOracle wraps an oracle with votes-fold repetition; votes must
// be odd and positive.
func NewMajorityOracle(inner Oracle, votes int) *MajorityOracle {
	if votes < 1 || votes%2 == 0 {
		panic("oracle: majority votes must be odd and positive")
	}
	return &MajorityOracle{inner: inner, votes: votes}
}

// Prefer implements Oracle.
func (m *MajorityOracle) Prefer(p, q geom.Vector) bool {
	yes := 0
	for v := 0; v < m.votes; v++ {
		if m.inner.Prefer(p, q) {
			yes++
		}
		// Early exit once the majority is decided.
		if yes > m.votes/2 || v+1-yes > m.votes/2 {
			break
		}
	}
	return yes > m.votes/2
}

// Questions implements Oracle: the true user effort, counting repetitions.
func (m *MajorityOracle) Questions() int { return m.inner.Questions() }
