// Package oracle simulates the interacting user of the IST problem: a hidden
// linear utility vector that answers pairwise preference questions, with an
// optional per-question mistake rate for the user-study experiments
// (Sections 6.4 and 6.5.2). It also hosts the ranking helpers (top-k of a
// dataset w.r.t. a utility vector) shared by algorithms and experiments.
package oracle

import (
	"math"
	"math/rand"
	"sort"

	"ist/internal/geom"
)

// Oracle answers pairwise preference questions. Implementations count the
// questions they are asked, which is the paper's primary cost measure.
type Oracle interface {
	// Prefer reports whether the user prefers p to q. Ties are reported as
	// preferring p (the user must pick one of the two displayed tuples).
	Prefer(p, q geom.Vector) bool
	// Questions returns the number of questions asked so far.
	Questions() int
}

// User is a truthful simulated user with a hidden utility vector.
type User struct {
	u         geom.Vector
	questions int
}

// NewUser returns a truthful user with the given utility vector.
func NewUser(u geom.Vector) *User { return &User{u: u.Clone()} }

// RandomUser returns a truthful user with a utility vector drawn uniformly
// from the standard simplex.
func RandomUser(rng *rand.Rand, d int) *User {
	return NewUser(RandomUtility(rng, d))
}

// Prefer implements Oracle.
func (o *User) Prefer(p, q geom.Vector) bool {
	o.questions++
	// The simulated user IS the ground truth: its exact utility comparison
	// defines the true preference the algorithms are measured against, so no
	// tolerance belongs here (ties go to the first point, deterministically).
	//lint:ignore floatcmp the oracle's exact comparison defines ground truth
	return o.u.Dot(p) >= o.u.Dot(q)
}

// Questions implements Oracle.
func (o *User) Questions() int { return o.questions }

// Utility exposes the hidden vector for evaluation purposes only (verifying
// that a returned point really is among the top-k). Algorithms must never
// touch it.
func (o *User) Utility() geom.Vector { return o.u.Clone() }

// NoisyUser answers like User but flips each answer independently with the
// given probability, modelling the user mistakes studied in Section 6.4.
type NoisyUser struct {
	User
	errRate float64
	rng     *rand.Rand
	flips   int
}

// NewNoisyUser returns a user who errs with probability errRate per question.
func NewNoisyUser(u geom.Vector, errRate float64, rng *rand.Rand) *NoisyUser {
	return &NoisyUser{User: User{u: u.Clone()}, errRate: errRate, rng: rng}
}

// Prefer implements Oracle.
func (o *NoisyUser) Prefer(p, q geom.Vector) bool {
	ans := o.User.Prefer(p, q)
	if o.rng.Float64() < o.errRate {
		o.flips++
		return !ans
	}
	return ans
}

// Flips returns how many answers were flipped by noise.
func (o *NoisyUser) Flips() int { return o.flips }

// RandomUtility draws a utility vector uniformly from the standard simplex
// (via normalized exponentials).
func RandomUtility(rng *rand.Rand, d int) geom.Vector {
	u := geom.NewVector(d)
	s := 0.0
	for i := range u {
		u[i] = rng.ExpFloat64() + geom.TieEps
		s += u[i]
	}
	return u.Scale(1 / s)
}

// TopK returns the indices of the k highest-utility points w.r.t. u,
// best first. Ties are broken by index for determinism.
func TopK(points []geom.Vector, u geom.Vector, k int) []int {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ua, ub := u.Dot(points[idx[a]]), u.Dot(points[idx[b]])
		// An eps-based comparator is not transitive; sorting needs a strict
		// weak order, so the ranking tie-break must compare exactly.
		//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
		if ua != ub {
			return ua > ub
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// IsTopK reports whether point p (by value) has one of the k highest
// utilities in points w.r.t. u. Points with utility equal to the k-th
// highest count as top-k, matching the paper's tie semantics.
func IsTopK(points []geom.Vector, u geom.Vector, k int, p geom.Vector) bool {
	fp := u.Dot(p)
	better := 0
	for _, q := range points {
		if u.Dot(q) > fp+geom.Eps {
			better++
			if better >= k {
				return false
			}
		}
	}
	return true
}

// KthUtility returns the k-th largest utility among points w.r.t. u.
func KthUtility(points []geom.Vector, u geom.Vector, k int) float64 {
	vals := make([]float64, len(points))
	for i, p := range points {
		vals[i] = u.Dot(p)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	if k > len(vals) {
		k = len(vals)
	}
	return vals[k-1]
}

// Accuracy is the paper's result-quality measure (Section 6.1, after [8,10]):
// f(p)/f(p_k) when f(p) < f(p_k), else 1, where p_k has the k-th largest
// utility.
func Accuracy(points []geom.Vector, u geom.Vector, k int, p geom.Vector) float64 {
	fk := KthUtility(points, u, k)
	fp := u.Dot(p)
	if fp >= fk || fk <= 0 {
		return 1
	}
	return fp / fk
}

// Boredom maps a question count to the paper's 1–10 "degree of boredness"
// scale. The coefficients are fitted to the (questions, boredness) pairs the
// paper reports in Figure 16 — (4.1, 1.9), (7.1, 3.0), (45.4, 7.7) — giving
// boredom ≈ −1.5 + 2.4·ln(questions), clamped to [1, 10].
func Boredom(questions float64) float64 {
	if questions < 1 {
		questions = 1
	}
	b := -1.5 + 2.4*math.Log(questions)
	if b < 1 {
		b = 1
	}
	if b > 10 {
		b = 10
	}
	return b
}

// RankByBoredom assigns 1-based ranks to algorithms given their average
// question counts (fewer questions → less boredom → better rank), the
// ordering participants produced in the user studies. Ties share the better
// rank.
func RankByBoredom(questions []float64) []int {
	n := len(questions)
	ranks := make([]int, n)
	for i := range ranks {
		r := 1
		for j := range questions {
			if questions[j] < questions[i]-geom.TieEps {
				r++
			}
		}
		ranks[i] = r
	}
	return ranks
}
