package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"ist/internal/geom"
)

func TestRecordingOracle(t *testing.T) {
	u := NewUser(geom.Vector{0.4, 0.6})
	rec := NewRecordingOracle(u)
	a, b := geom.Vector{0.5, 0.8}, geom.Vector{0, 1}
	if !rec.Prefer(a, b) {
		t.Fatal("wrong answer passthrough")
	}
	rec.Prefer(b, a)
	tr := rec.Transcript()
	if len(tr.Exchanges) != 2 {
		t.Fatalf("%d exchanges", len(tr.Exchanges))
	}
	if !tr.Exchanges[0].P.Equal(a) || !tr.Exchanges[0].PreferredP {
		t.Fatalf("exchange 0 = %+v", tr.Exchanges[0])
	}
	if tr.Exchanges[1].PreferredP {
		t.Fatal("exchange 1 answer wrong")
	}
	if rec.Questions() != 2 {
		t.Fatalf("Questions = %d", rec.Questions())
	}
}

func TestTranscriptJSONRoundTrip(t *testing.T) {
	tr := &Transcript{Exchanges: []Exchange{
		{P: geom.Vector{1, 0}, Q: geom.Vector{0, 1}, PreferredP: true},
	}}
	var buf strings.Builder
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTranscript(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Exchanges) != 1 || !back.Exchanges[0].P.Equal(geom.Vector{1, 0}) || !back.Exchanges[0].PreferredP {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := LoadTranscript(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestReplayOracle(t *testing.T) {
	a, b := geom.Vector{0.5, 0.8}, geom.Vector{0, 1}
	tr := &Transcript{Exchanges: []Exchange{
		{P: a, Q: b, PreferredP: true},
		{P: b, Q: a, PreferredP: false},
	}}
	rep := NewReplayOracle(tr)
	if !rep.Prefer(a, b) || rep.Prefer(b, a) {
		t.Fatal("replay answers wrong")
	}
	if rep.Err() != nil {
		t.Fatalf("unexpected error: %v", rep.Err())
	}
	// Exhaustion.
	rep.Prefer(a, b)
	if rep.Err() == nil {
		t.Fatal("exhausted replay must error")
	}
	if rep.Questions() != 3 {
		t.Fatalf("Questions = %d", rep.Questions())
	}
}

func TestReplayMismatch(t *testing.T) {
	tr := &Transcript{Exchanges: []Exchange{
		{P: geom.Vector{1, 0}, Q: geom.Vector{0, 1}, PreferredP: true},
	}}
	rep := NewReplayOracle(tr)
	rep.Prefer(geom.Vector{0.3, 0.3}, geom.Vector{0, 1})
	if rep.Err() == nil {
		t.Fatal("mismatched question must error")
	}
}

func TestRecordThenReplayReproducesRun(t *testing.T) {
	// Record a full simulated interaction, then replay it and verify the
	// same answers come back in the same order.
	rng := rand.New(rand.NewSource(1))
	u := RandomUser(rng, 3)
	rec := NewRecordingOracle(u)
	pts := make([]geom.Vector, 20)
	for i := range pts {
		pts[i] = geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	var answers []bool
	for i := 0; i+1 < len(pts); i += 2 {
		answers = append(answers, rec.Prefer(pts[i], pts[i+1]))
	}
	rep := NewReplayOracle(rec.Transcript())
	for i := 0; i+1 < len(pts); i += 2 {
		if rep.Prefer(pts[i], pts[i+1]) != answers[i/2] {
			t.Fatalf("replay diverged at question %d", i/2)
		}
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
}
