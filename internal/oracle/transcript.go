package oracle

import (
	"encoding/json"
	"fmt"
	"io"

	"ist/internal/geom"
)

// Transcripts record an interaction for auditing, debugging and replay — a
// production necessity when the oracle is a real person whose answers
// arrive over days (think of the used-car broker emailing Alice one
// question at a time). A RecordingOracle wraps any oracle and captures
// every exchange; a ReplayOracle answers from a saved transcript, which
// lets a deterministic algorithm resume or reproduce a session exactly.

// Exchange is a single recorded question and its answer.
type Exchange struct {
	P          geom.Vector `json:"p"`
	Q          geom.Vector `json:"q"`
	PreferredP bool        `json:"preferredP"`
}

// Transcript is an ordered record of exchanges.
type Transcript struct {
	Exchanges []Exchange `json:"exchanges"`
}

// Save writes the transcript as JSON.
func (t *Transcript) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// LoadTranscript reads a JSON transcript.
func LoadTranscript(r io.Reader) (*Transcript, error) {
	var t Transcript
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("oracle: bad transcript: %w", err)
	}
	return &t, nil
}

// Answers extracts just the answer bits of the transcript, in order. For a
// deterministic algorithm with a known seed this is the minimal state needed
// to reproduce a session — the questions are re-derived by the algorithm
// itself — which is what makes compact crash-recovery logs possible.
func (t *Transcript) Answers() []bool {
	out := make([]bool, len(t.Exchanges))
	for i, ex := range t.Exchanges {
		out[i] = ex.PreferredP
	}
	return out
}

// RecordingOracle wraps an oracle and records every exchange.
type RecordingOracle struct {
	inner Oracle
	t     Transcript
}

// NewRecordingOracle wraps inner with recording.
func NewRecordingOracle(inner Oracle) *RecordingOracle {
	return &RecordingOracle{inner: inner}
}

// Prefer implements Oracle.
func (r *RecordingOracle) Prefer(p, q geom.Vector) bool {
	ans := r.inner.Prefer(p, q)
	r.t.Exchanges = append(r.t.Exchanges, Exchange{P: p.Clone(), Q: q.Clone(), PreferredP: ans})
	return ans
}

// Questions implements Oracle.
func (r *RecordingOracle) Questions() int { return r.inner.Questions() }

// Transcript returns the recorded exchanges so far.
func (r *RecordingOracle) Transcript() *Transcript { return &r.t }

// ReplayOracle answers questions from a transcript. The questions must
// arrive in the same order with the same tuples (which deterministic
// algorithms with fixed seeds guarantee); a mismatch or exhaustion returns
// an error through Err and a default answer.
type ReplayOracle struct {
	t         *Transcript
	pos       int
	questions int
	err       error
}

// NewReplayOracle builds a replaying oracle.
func NewReplayOracle(t *Transcript) *ReplayOracle { return &ReplayOracle{t: t} }

// Prefer implements Oracle.
func (r *ReplayOracle) Prefer(p, q geom.Vector) bool {
	r.questions++
	if r.pos >= len(r.t.Exchanges) {
		r.setErr(fmt.Errorf("oracle: transcript exhausted at question %d", r.questions))
		return true
	}
	ex := r.t.Exchanges[r.pos]
	r.pos++
	if !ex.P.Equal(p) || !ex.Q.Equal(q) {
		r.setErr(fmt.Errorf("oracle: transcript mismatch at question %d", r.questions))
		return true
	}
	return ex.PreferredP
}

// Questions implements Oracle.
func (r *ReplayOracle) Questions() int { return r.questions }

// Err reports the first replay failure, if any.
func (r *ReplayOracle) Err() error { return r.err }

func (r *ReplayOracle) setErr(err error) {
	if r.err == nil {
		r.err = err
	}
}
