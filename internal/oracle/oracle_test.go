package oracle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ist/internal/geom"
)

func TestUserPrefer(t *testing.T) {
	u := NewUser(geom.Vector{0.4, 0.6})
	// Table 2 of the paper: f(p3)=0.68 > f(p1)=0.6.
	if !u.Prefer(geom.Vector{0.5, 0.8}, geom.Vector{0, 1}) {
		t.Fatal("user must prefer p3 to p1")
	}
	if u.Prefer(geom.Vector{0, 1}, geom.Vector{0.5, 0.8}) {
		t.Fatal("user must not prefer p1 to p3")
	}
	if u.Questions() != 2 {
		t.Fatalf("Questions = %d, want 2", u.Questions())
	}
}

func TestUserTieBreak(t *testing.T) {
	u := NewUser(geom.Vector{0.5, 0.5})
	a, b := geom.Vector{0.6, 0.4}, geom.Vector{0.4, 0.6}
	if !u.Prefer(a, b) || !u.Prefer(b, a) {
		t.Fatal("ties must report the first argument as preferred")
	}
}

func TestRandomUtilityOnSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		u := RandomUtility(rng, 5)
		if math.Abs(u.Sum()-1) > 1e-9 {
			t.Fatalf("sum = %v", u.Sum())
		}
		for _, x := range u {
			if x <= 0 {
				t.Fatalf("non-positive weight %v", x)
			}
		}
	}
}

func TestNoisyUserFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := NewNoisyUser(geom.Vector{0.4, 0.6}, 0.5, rng)
	correct := 0
	trials := 2000
	truth := NewUser(geom.Vector{0.4, 0.6})
	p, q := geom.Vector{0.5, 0.8}, geom.Vector{0, 1}
	want := truth.Prefer(p, q)
	for i := 0; i < trials; i++ {
		if u.Prefer(p, q) == want {
			correct++
		}
	}
	if u.Flips()+correct != trials {
		t.Fatalf("flips %d + correct %d != %d", u.Flips(), correct, trials)
	}
	if correct < trials*2/5 || correct > trials*3/5 {
		t.Fatalf("error rate 0.5 gave %d/%d correct", correct, trials)
	}
	if u.Questions() != trials {
		t.Fatalf("Questions = %d", u.Questions())
	}
	zero := NewNoisyUser(geom.Vector{0.4, 0.6}, 0, rng)
	for i := 0; i < 50; i++ {
		if zero.Prefer(p, q) != want {
			t.Fatal("zero-noise user must answer truthfully")
		}
	}
}

func TestTopK(t *testing.T) {
	// Table 2, u = (0.4, 0.6): ranking p3, p1, p2, p4, p5.
	pts := []geom.Vector{{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0}}
	u := geom.Vector{0.4, 0.6}
	got := TopK(pts, u, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("TopK = %v, want [2 0] (p3, p1)", got)
	}
	all := TopK(pts, u, 10)
	want := []int{2, 0, 1, 3, 4}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("full ranking = %v, want %v", all, want)
		}
	}
}

func TestIsTopK(t *testing.T) {
	pts := []geom.Vector{{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0}}
	u := geom.Vector{0.4, 0.6}
	if !IsTopK(pts, u, 2, pts[2]) || !IsTopK(pts, u, 2, pts[0]) {
		t.Fatal("p3 and p1 are top-2")
	}
	if IsTopK(pts, u, 2, pts[1]) {
		t.Fatal("p2 is not top-2")
	}
	if !IsTopK(pts, u, 1, pts[2]) {
		t.Fatal("p3 is top-1")
	}
}

func TestKthUtilityAndAccuracy(t *testing.T) {
	pts := []geom.Vector{{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0}}
	u := geom.Vector{0.4, 0.6}
	if got := KthUtility(pts, u, 2); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("KthUtility = %v, want 0.6", got)
	}
	if got := Accuracy(pts, u, 2, pts[2]); got != 1 {
		t.Fatalf("Accuracy of top point = %v", got)
	}
	// p2 (utility 0.54) vs k-th utility 0.6: 0.9.
	if got := Accuracy(pts, u, 2, pts[1]); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("Accuracy = %v, want 0.9", got)
	}
}

func TestBoredomFitsPaperPoints(t *testing.T) {
	// Figure 16's reported pairs should be reproduced within ~0.5.
	cases := []struct{ q, b float64 }{{4.1, 1.9}, {7.1, 3.0}, {45.4, 7.7}}
	for _, c := range cases {
		if got := Boredom(c.q); math.Abs(got-c.b) > 0.55 {
			t.Fatalf("Boredom(%v) = %v, want ~%v", c.q, got, c.b)
		}
	}
	if Boredom(0) < 1 || Boredom(1e9) > 10 {
		t.Fatal("Boredom must clamp to [1,10]")
	}
}

func TestRankByBoredom(t *testing.T) {
	ranks := RankByBoredom([]float64{4.1, 7.1, 4.8, 45.4})
	want := []int{1, 3, 2, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
	tied := RankByBoredom([]float64{5, 5, 7})
	if tied[0] != 1 || tied[1] != 1 || tied[2] != 3 {
		t.Fatalf("tied ranks = %v", tied)
	}
}

// Property: TopK(k)[0..] utilities are non-increasing and IsTopK agrees with
// membership in TopK for points with distinct utilities.
func TestQuickTopKConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		d := 2 + rng.Intn(3)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := geom.NewVector(d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		u := RandomUtility(rng, d)
		k := 1 + rng.Intn(n)
		top := TopK(pts, u, k)
		for i := 1; i < len(top); i++ {
			if u.Dot(pts[top[i-1]]) < u.Dot(pts[top[i]])-1e-12 {
				return false
			}
		}
		for _, i := range top {
			if !IsTopK(pts, u, k, pts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
