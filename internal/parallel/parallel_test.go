package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	if got := Degree(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Degree(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Degree(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Degree(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Degree(7); got != 7 {
		t.Fatalf("Degree(7) = %d", got)
	}
}

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		const n = 500
		hits := make([]atomic.Int32, n)
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoSerialOrder(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("serial Do ran %d of 5 tasks", len(order))
	}
}

func TestDoPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if workers > 1 {
					p, ok := r.(Panic)
					if !ok {
						t.Fatalf("workers=%d: recovered %T, want parallel.Panic", workers, r)
					}
					if p.Value != "boom" {
						t.Fatalf("panic value = %v, want boom", p.Value)
					}
					if len(p.Stack) == 0 {
						t.Fatal("panic carries no worker stack")
					}
				}
			}()
			Do(workers, 64, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachOrderedCommitsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 200
		var committed []int
		ForEachOrdered(workers, n,
			func(i int) int { return i * i },
			func(i, r int) {
				if r != i*i {
					t.Fatalf("workers=%d: commit(%d) got %d", workers, i, r)
				}
				committed = append(committed, i)
			})
		if len(committed) != n {
			t.Fatalf("workers=%d: committed %d of %d", workers, len(committed), n)
		}
		for i, v := range committed {
			if i != v {
				t.Fatalf("workers=%d: commits out of order at %d: %d", workers, i, v)
			}
		}
	}
}

// TestForEachOrderedSerialInterleaving pins the workers<=1 contract: task(i)
// runs immediately before commit(i), with no lookahead — the legacy path
// callers rely on when a commit feeds the next task.
func TestForEachOrderedSerialInterleaving(t *testing.T) {
	var trace []string
	ForEachOrdered(1, 3,
		func(i int) int { trace = append(trace, "t"); return i },
		func(i, r int) { trace = append(trace, "c") })
	want := "tctctc"
	got := ""
	for _, s := range trace {
		got += s
	}
	if got != want {
		t.Fatalf("serial interleaving = %q, want %q", got, want)
	}
}
