// Package parallel provides the bounded, deterministic fan-out primitives
// behind the library's parallel code paths (DESIGN.md §14). The rules every
// user of this package follows:
//
//   - Degree 1 is the serial legacy path: no goroutines are spawned and the
//     caller's exact single-threaded interleaving is preserved.
//   - Results are collected into index-ordered slots and committed in index
//     order, so the observable outcome (return values, Observer event
//     streams, transcripts) of a parallel run is bit-identical to the serial
//     run. The detpar analyzer (internal/analysis) enforces the
//     index-ordered-slot idiom mechanically.
//   - A panic in a worker is captured and re-raised on the calling
//     goroutine, so recover-based isolation barriers above (the session
//     layer's panic isolation, the budget tracker's rescue) keep working
//     exactly as they do for serial code.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Degree normalizes a requested parallelism degree: values <= 0 select
// GOMAXPROCS (the serving default), anything else is returned unchanged.
func Degree(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Panic carries a task panic across goroutines: the original value plus the
// panicking worker's stack. Do re-raises it on the calling goroutine so the
// recover barriers above (session isolation, tracker rescue) observe worker
// panics exactly like serial ones.
type Panic struct {
	Value any
	Stack []byte
}

// String renders the original panic value followed by the worker stack.
func (p Panic) String() string {
	return fmt.Sprintf("%v\n\nworker stack:\n%s", p.Value, p.Stack)
}

// Do runs task(0) … task(n-1) on at most workers goroutines and returns when
// all have finished. workers <= 1 (or n <= 1) runs every task inline on the
// calling goroutine in index order — the serial path, no goroutines spawned.
// Tasks must be independent of each other; the order in which they run
// concurrently is unspecified (callers commit results in index order
// afterwards). If any task panics, the first panic is re-raised on the
// calling goroutine as a Panic after all workers have stopped.
func Do(workers, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		panicMu sync.Mutex
		pan     *Panic
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore goroleak workers drain a finite atomic counter and exit; Do blocks on wg.Wait, so none can outlive the call
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					failed.Store(true)
					panicMu.Lock()
					if pan == nil {
						pan = &Panic{Value: r, Stack: debug.Stack()}
					}
					panicMu.Unlock()
				}
			}()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(*pan)
	}
}

// ForEachOrdered runs task(0) … task(n-1) on at most workers goroutines and
// then applies commit(i, result) strictly in index order on the calling
// goroutine. With workers <= 1 it degenerates to the exact serial
// interleaving — task(i) immediately followed by commit(i) — which is the
// legacy code path. With workers > 1 every task must be independent of every
// commit: all tasks finish (barrier) before the first commit runs.
func ForEachOrdered[R any](workers, n int, task func(i int) R, commit func(i int, r R)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			commit(i, task(i))
		}
		return
	}
	results := make([]R, n)
	Do(workers, n, func(i int) {
		results[i] = task(i)
	})
	for i := 0; i < n; i++ {
		commit(i, results[i])
	}
}
