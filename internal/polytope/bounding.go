package polytope

import (
	"ist/internal/geom"
)

// Bounding volumes from Section 5.1 (Lemma 5.1): a bounding ball gives an
// O(1) sufficient condition for "polytope contained in a halfspace", and a
// bounding rectangle gives a tighter O(2^d) condition.

// Strategy selects which bounding shortcut Classify-with-bounds uses before
// falling back to the exact vertex scan. The zero value is StrategyBall —
// the paper's default after the Figure 5 comparison — so that callers who
// do not care get the fast behaviour.
type Strategy int

const (
	// StrategyBall uses the O(1) bounding-ball test first (the default).
	StrategyBall Strategy = iota
	// StrategyRect uses the paper's O(2^d) bounding-rectangle test first.
	StrategyRect
	// StrategyRectFast uses the O(d) separable bounding-rectangle test first
	// (our optimization, benchmarked as an ablation).
	StrategyRectFast
	// StrategyNone always uses the exact vertex scan.
	StrategyNone
)

func (s Strategy) String() string {
	switch s {
	case StrategyBall:
		return "ball"
	case StrategyRect:
		return "rectangle"
	case StrategyRectFast:
		return "rectangle-fast"
	default:
		return "none"
	}
}

// ball returns the bounding ball (B_c, B_r), computing and caching it.
func (p *Polytope) ball() (geom.Vector, float64) {
	if !p.ballValid {
		p.ballC = p.Center()
		p.ballR = 0
		for _, v := range p.verts {
			if d := v.P.Dist(p.ballC); d > p.ballR {
				p.ballR = d
			}
		}
		p.ballValid = true
	}
	return p.ballC, p.ballR
}

// rect returns the bounding rectangle [min_i, max_i] per dimension,
// computing and caching it.
func (p *Polytope) rect() (geom.Vector, geom.Vector) {
	if !p.rectValid {
		p.rectMin = p.verts[0].P.Clone()
		p.rectMax = p.verts[0].P.Clone()
		for _, v := range p.verts[1:] {
			for i, x := range v.P {
				if x < p.rectMin[i] {
					p.rectMin[i] = x
				}
				if x > p.rectMax[i] {
					p.rectMax[i] = x
				}
			}
		}
		p.rectValid = true
	}
	return p.rectMin, p.rectMax
}

// BallSide tests the bounding ball against the hyperplane: it returns
// ClassAbove or ClassBelow when the whole ball is strictly on one side, and
// ClassIntersect when the ball straddles it (inconclusive about the
// polytope). Empty polytopes report ClassEmpty.
func (p *Polytope) BallSide(h geom.Hyperplane) Class {
	if len(p.verts) == 0 {
		return ClassEmpty
	}
	c, r := p.ball()
	d := h.Distance(c)
	if d <= r {
		return ClassIntersect
	}
	if h.SideOf(c) == geom.Above {
		return ClassAbove
	}
	return ClassBelow
}

// RectSide tests the bounding rectangle against the hyperplane by explicitly
// checking all 2^d corners, exactly as the paper describes (O(2^d),
// Section 5.1). It returns ClassAbove/ClassBelow when every corner is
// strictly on that side, ClassIntersect otherwise (inconclusive).
func (p *Polytope) RectSide(h geom.Hyperplane) Class {
	if len(p.verts) == 0 {
		return ClassEmpty
	}
	lo, hi := p.rect()
	d := p.dim
	allAbove, allBelow := true, true
	corner := geom.NewVector(d)
	for mask := 0; mask < 1<<uint(d); mask++ {
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				corner[i] = hi[i]
			} else {
				corner[i] = lo[i]
			}
		}
		switch h.SideOf(corner) {
		case geom.Above:
			allBelow = false
		case geom.Below:
			allAbove = false
		default:
			allAbove, allBelow = false, false
		}
		if !allAbove && !allBelow {
			return ClassIntersect
		}
	}
	if allAbove {
		return ClassAbove
	}
	return ClassBelow
}

// RectSideFast is our O(d) ablation of RectSide: per dimension, the corner
// minimizing (resp. maximizing) the dot product is picked directly, which
// yields the same classification as enumerating all 2^d corners because the
// dot product is separable across dimensions. Kept distinct from RectSide so
// the paper's claimed O(2^d) cost profile (Figure 5) stays reproducible.
func (p *Polytope) RectSideFast(h geom.Hyperplane) Class {
	if len(p.verts) == 0 {
		return ClassEmpty
	}
	lo, hi := p.rect()
	minDot, maxDot := 0.0, 0.0
	for i, w := range h.Normal {
		if w >= 0 {
			minDot += w * lo[i]
			maxDot += w * hi[i]
		} else {
			minDot += w * hi[i]
			maxDot += w * lo[i]
		}
	}
	switch {
	case minDot > geom.Eps:
		return ClassAbove
	case maxDot < -geom.Eps:
		return ClassBelow
	default:
		return ClassIntersect
	}
}

// BoundStats counts how often bounding shortcuts decide a classification,
// feeding the paper's "effective ratio" measurement (Figure 5).
type BoundStats struct {
	// Identifications is N_I: total classification requests.
	Identifications int
	// ByBound is N_B: requests decided by the bounding volume alone.
	ByBound int
}

// EffectiveRatio returns N_B / N_I (0 when nothing was classified).
func (s BoundStats) EffectiveRatio() float64 {
	if s.Identifications == 0 {
		return 0
	}
	return float64(s.ByBound) / float64(s.Identifications)
}

// ClassifyWith classifies the polytope against h using the given bounding
// strategy first and the exact vertex scan as fallback, updating stats (which
// may be nil).
func (p *Polytope) ClassifyWith(h geom.Hyperplane, strat Strategy, stats *BoundStats) Class {
	if stats != nil {
		stats.Identifications++
	}
	switch strat {
	case StrategyBall:
		if c := p.BallSide(h); c == ClassAbove || c == ClassBelow || c == ClassEmpty {
			if stats != nil {
				stats.ByBound++
			}
			return c
		}
	case StrategyRect:
		if c := p.RectSide(h); c == ClassAbove || c == ClassBelow || c == ClassEmpty {
			if stats != nil {
				stats.ByBound++
			}
			return c
		}
	case StrategyRectFast:
		if c := p.RectSideFast(h); c == ClassAbove || c == ClassBelow || c == ClassEmpty {
			if stats != nil {
				stats.ByBound++
			}
			return c
		}
	}
	return p.Classify(h)
}
