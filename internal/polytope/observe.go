package polytope

import (
	"ist/internal/geom"
	"ist/internal/obs"
)

// CutObserved is Cut plus a halfspace-cut trace event describing the cut's
// effect: the pre-cut classification and the vertex counts before and
// after. With a nil observer it is exactly Cut — construction-time cuts
// (initial partition building) stay unobserved so per-question cut counts
// measure only answer-driven work.
func (p *Polytope) CutObserved(h geom.Hyperplane, o obs.Observer) Class {
	if o == nil {
		return p.Cut(h)
	}
	before := len(p.verts)
	class := p.Cut(h)
	obs.HalfspaceCut(o, class.String(), before, len(p.verts))
	return class
}
