package polytope

import (
	"math"
	"testing"

	"ist/internal/geom"
	"ist/internal/lp"
)

// FuzzCutSequence applies arbitrary byte-derived cut sequences to a simplex
// and cross-checks the vertex representation against LP feasibility, plus
// the basic vertex invariants (on-simplex, satisfy all constraints).
func FuzzCutSequence(f *testing.F) {
	f.Add([]byte{3, 100, 20, 200, 90, 10}, uint8(3))
	f.Add([]byte{0, 0, 255, 255}, uint8(2))
	f.Add([]byte{128, 127, 129, 126, 130, 125, 131, 124}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, dRaw uint8) {
		d := int(dRaw)%4 + 2 // dimensions 2..5
		if len(data) < d || len(data) > 10*d {
			return
		}
		p := NewSimplex(d)
		var hs [][]float64
		for off := 0; off+d <= len(data); off += d {
			n := geom.NewVector(d)
			zero := true
			for i := 0; i < d; i++ {
				n[i] = (float64(data[off+i]) - 127.5) / 127.5
				if n[i] != 0 {
					zero = false
				}
			}
			if zero {
				continue
			}
			hs = append(hs, n)
			p.Cut(geom.Hyperplane{Normal: n})
		}
		for _, v := range p.Vertices() {
			if math.Abs(v.Sum()-1) > 1e-7 {
				t.Fatalf("vertex %v off the simplex", v)
			}
			if !p.Contains(v) {
				t.Fatalf("vertex %v violates a constraint", v)
			}
		}
		_, feasible := lp.FeasibleOverSimplex(hs, d)
		if !p.IsEmpty() && !feasible {
			t.Fatal("vertices exist but LP says infeasible")
		}
		if p.IsEmpty() && feasible {
			// Accept only when the LP region has no interior (the vertex
			// machinery may drop measure-zero slivers).
			if _, slack, ok := lp.InteriorPointOverSimplex(hs, d); ok && slack > 1e-7 {
				t.Fatal("polytope empty but LP region has interior")
			}
		}
	})
}
