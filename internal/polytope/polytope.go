// Package polytope implements convex polytopes on the utility simplex
// {u in R^d : Σu[i] = 1, u >= 0}, cut incrementally by preference halfspaces
// w·u >= 0 learned from user feedback (Section 5.1 of the paper).
//
// A polytope is stored in combined V+H representation: the list of halfspace
// constraints applied so far, and the exact vertex set with, for every
// vertex, the set of constraints tight at it. Cutting by a new halfspace
// keeps the inside vertices and adds the crossing points of boundary edges;
// edges are recognized combinatorially (two vertices sharing >= d-2 tight
// constraints span an edge candidate), which never misses a true edge
// because an edge's defining constraints are tight at both endpoints.
// Crossing points of non-edges are interior points of the new face and are
// harmless for every downstream use (side classification, bounding volumes,
// centers), so no exact-adjacency machinery is needed.
package polytope

import (
	"fmt"
	"math/rand"

	"ist/internal/geom"
)

// Class is the relationship between a polytope and a hyperplane
// (Section 5.1: in h+, in h-, or intersecting).
type Class int

const (
	// ClassIntersect means the polytope has vertices strictly on both sides.
	ClassIntersect Class = iota
	// ClassAbove means the polytope is contained in the closed positive halfspace.
	ClassAbove
	// ClassBelow means the polytope is contained in the closed negative halfspace.
	ClassBelow
	// ClassOn means every vertex lies on the hyperplane (degenerate).
	ClassOn
	// ClassEmpty means the polytope has no vertices.
	ClassEmpty
)

func (c Class) String() string {
	switch c {
	case ClassIntersect:
		return "intersect"
	case ClassAbove:
		return "above"
	case ClassBelow:
		return "below"
	case ClassOn:
		return "on"
	case ClassEmpty:
		return "empty"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Vertex is a polytope corner with the set of tight constraints at it.
// Constraint indices 0..d-1 are the coordinate bounds u[i] >= 0; indices
// d..d+len(cons)-1 are the applied halfspace cuts, offset by d.
type Vertex struct {
	P     geom.Vector
	tight bitset
}

// Polytope is a convex region of the utility simplex.
type Polytope struct {
	dim   int
	verts []Vertex
	cons  []geom.Hyperplane

	// cached bounding volumes; invalidated on every cut.
	ballValid bool
	ballC     geom.Vector
	ballR     float64
	rectValid bool
	rectMin   geom.Vector
	rectMax   geom.Vector
}

// NewSimplex returns the whole utility space for dimension d: the standard
// simplex with vertices e_1..e_d.
func NewSimplex(d int) *Polytope {
	if d < 1 {
		panic("polytope: dimension must be >= 1")
	}
	p := &Polytope{dim: d}
	for i := 0; i < d; i++ {
		v := geom.NewVector(d)
		v[i] = 1
		var t bitset
		for j := 0; j < d; j++ {
			if j != i {
				t.set(j)
			}
		}
		p.verts = append(p.verts, Vertex{P: v, tight: t})
	}
	return p
}

// Dim returns the ambient dimension d.
func (p *Polytope) Dim() int { return p.dim }

// IsEmpty reports whether the polytope has no points left.
func (p *Polytope) IsEmpty() bool { return len(p.verts) == 0 }

// NumVertices returns the current vertex count.
func (p *Polytope) NumVertices() int { return len(p.verts) }

// NumConstraints returns the number of halfspace cuts applied.
func (p *Polytope) NumConstraints() int { return len(p.cons) }

// Vertices returns copies of the vertex coordinates.
func (p *Polytope) Vertices() []geom.Vector {
	out := make([]geom.Vector, len(p.verts))
	for i, v := range p.verts {
		out[i] = v.P.Clone()
	}
	return out
}

// Constraints returns the halfspace normals applied so far (each is
// Normal·u >= 0).
func (p *Polytope) Constraints() []geom.Vector {
	out := make([]geom.Vector, len(p.cons))
	for i, h := range p.cons {
		out[i] = h.Normal.Clone()
	}
	return out
}

// Clone returns an independent deep copy.
func (p *Polytope) Clone() *Polytope {
	c := &Polytope{dim: p.dim}
	c.verts = make([]Vertex, len(p.verts))
	for i, v := range p.verts {
		c.verts[i] = Vertex{P: v.P.Clone(), tight: v.tight.clone()}
	}
	c.cons = make([]geom.Hyperplane, len(p.cons))
	copy(c.cons, p.cons)
	return c
}

// Classify reports the relationship between the polytope and the hyperplane
// by scanning all vertices (the exact O(|V|) test of Section 5.1).
func (p *Polytope) Classify(h geom.Hyperplane) Class {
	if len(p.verts) == 0 {
		return ClassEmpty
	}
	hasAbove, hasBelow := false, false
	for _, v := range p.verts {
		switch h.SideOf(v.P) {
		case geom.Above:
			hasAbove = true
		case geom.Below:
			hasBelow = true
		}
		if hasAbove && hasBelow {
			return ClassIntersect
		}
	}
	switch {
	case hasAbove:
		return ClassAbove
	case hasBelow:
		return ClassBelow
	default:
		return ClassOn
	}
}

// Cut intersects the polytope with the closed halfspace Normal·u >= 0 and
// returns the classification that held before the cut. After a
// ClassBelow cut the polytope becomes empty; after ClassOn it is unchanged
// except that the constraint is recorded (it is degenerate-tight).
func (p *Polytope) Cut(h geom.Hyperplane) Class {
	p.ballValid, p.rectValid = false, false
	class := p.Classify(h)
	idx := p.dim + len(p.cons)
	p.cons = append(p.cons, h)

	switch class {
	case ClassEmpty:
		return class
	case ClassBelow:
		// Closed-halfspace semantics: vertices exactly on the hyperplane
		// survive the cut (the polytope collapses to its On face, possibly
		// empty). This matters for indifference answers and for the
		// degenerate hyperplanes of duplicated points.
		var kept []Vertex
		for _, v := range p.verts {
			if h.SideOf(v.P) == geom.On {
				v.tight.set(idx)
				kept = append(kept, v)
			}
		}
		p.verts = kept
		return class
	case ClassAbove, ClassOn:
		// Nothing removed; mark tightness on touching vertices.
		for i := range p.verts {
			if h.SideOf(p.verts[i].P) == geom.On {
				p.verts[i].tight.set(idx)
			}
		}
		return class
	}

	// ClassIntersect: partition vertices, generate edge crossings.
	var above, below []Vertex
	var kept []Vertex
	for _, v := range p.verts {
		switch h.SideOf(v.P) {
		case geom.Above:
			above = append(above, v)
			kept = append(kept, v)
		case geom.Below:
			below = append(below, v)
		default:
			v.tight.set(idx)
			kept = append(kept, v)
		}
	}

	need := p.dim - 2 // tight constraints shared along an edge of a (d-1)-dim polytope
	if need < 0 {
		need = 0
	}
	for _, a := range above {
		for _, b := range below {
			if a.tight.commonCount(b.tight) < need {
				continue
			}
			x, ok := h.Crossing(a.P, b.P)
			if !ok {
				continue
			}
			dup := false
			for _, k := range kept {
				if k.P.Equal(x) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			tight := p.crossingTight(a, b, x, idx)
			if !p.tightRankFull(tight) {
				// The inherited tight set may undercount under degeneracy;
				// recompute exactly before rejecting the candidate.
				tight = p.tightSetAt(x)
				tight.set(idx)
				if !p.tightRankFull(tight) {
					// Fewer than d independent tight constraints: the point
					// is interior to a face, not a vertex. Dropping it keeps
					// the vertex set from ballooning combinatorially in
					// higher dimensions (it carries no extra volume).
					continue
				}
			}
			kept = append(kept, Vertex{P: x, tight: tight})
		}
	}
	p.verts = kept
	return class
}

// tightSetAt recomputes the exact tight-constraint set at point x.
func (p *Polytope) tightSetAt(x geom.Vector) bitset {
	var t bitset
	for i := 0; i < p.dim; i++ {
		if x[i] <= geom.Eps {
			t.set(i)
		}
	}
	for i, h := range p.cons {
		if h.SideOf(x) == geom.On {
			t.set(p.dim + i)
		}
	}
	return t
}

// tightRankFull reports whether the normals of the tight constraints,
// together with the simplex equality Σu = 1, span the full dimension d —
// the defining property of a polytope vertex.
func (p *Polytope) tightRankFull(t bitset) bool {
	d := p.dim
	ones := geom.NewVector(d)
	for i := range ones {
		ones[i] = 1
	}
	rows := make([]geom.Vector, 0, d+2)
	rows = append(rows, ones)
	for i := 0; i < d; i++ {
		if t.has(i) {
			e := geom.NewVector(d)
			e[i] = 1
			rows = append(rows, e)
		}
	}
	for i := range p.cons {
		if t.has(p.dim + i) {
			rows = append(rows, p.cons[i].Normal)
		}
	}
	if len(rows) < d {
		return false
	}
	return geom.RankOfRows(rows) >= d
}

// crossingTight builds the tight-constraint set of a new crossing vertex
// incrementally (the double-description inheritance rule): the constraints
// tight at both edge endpoints stay tight along the edge, the new cut is
// tight by construction, and coordinate tightness is recomputed exactly in
// O(d). This avoids the O(constraints) rescan per crossing that dominates
// partition construction; in (rare) degenerate inputs an old constraint
// coincidentally tight only at the crossing point is missed, which can only
// add redundant vertices later, never lose polytope volume.
func (p *Polytope) crossingTight(a, b Vertex, x geom.Vector, newIdx int) bitset {
	n := len(a.tight.w)
	if len(b.tight.w) < n {
		n = len(b.tight.w)
	}
	var t bitset
	t.w = make([]uint64, n)
	for i := 0; i < n; i++ {
		t.w[i] = a.tight.w[i] & b.tight.w[i]
	}
	for i := 0; i < p.dim; i++ {
		if x[i] <= geom.Eps {
			t.set(i)
		} else if t.has(i) {
			// inherited coordinate tightness that does not actually hold
			t.w[i>>6] &^= 1 << uint(i&63)
		}
	}
	t.set(newIdx)
	return t
}

// Center returns the vertex centroid (the paper's R_c / B_c). It panics on an
// empty polytope.
func (p *Polytope) Center() geom.Vector {
	if len(p.verts) == 0 {
		panic("polytope: center of empty polytope")
	}
	c := geom.NewVector(p.dim)
	for _, v := range p.verts {
		for i, x := range v.P {
			c[i] += x
		}
	}
	return c.Scale(1 / float64(len(p.verts)))
}

// Sample returns a random point of the polytope: a random convex combination
// of its vertices. It panics on an empty polytope.
func (p *Polytope) Sample(rng *rand.Rand) geom.Vector {
	if len(p.verts) == 0 {
		panic("polytope: sample of empty polytope")
	}
	w := make([]float64, len(p.verts))
	sum := 0.0
	for i := range w {
		w[i] = rng.ExpFloat64()
		sum += w[i]
	}
	x := geom.NewVector(p.dim)
	for i, v := range p.verts {
		f := w[i] / sum
		for j, c := range v.P {
			x[j] += f * c
		}
	}
	return x
}

// Contains reports whether u satisfies every recorded constraint and the
// coordinate bounds (within geom.Eps). It does not test Σu = 1 because all
// callers work with simplex points by construction.
func (p *Polytope) Contains(u geom.Vector) bool {
	for i := 0; i < p.dim; i++ {
		if u[i] < -geom.Eps {
			return false
		}
	}
	for _, h := range p.cons {
		if h.SideOf(u) == geom.Below {
			return false
		}
	}
	return true
}
