package polytope

import "math/bits"

// bitset is a growable set of small nonnegative integers used to track which
// constraints are tight at a vertex.
type bitset struct {
	w []uint64
}

func (b *bitset) set(i int) {
	word := i >> 6
	for len(b.w) <= word {
		b.w = append(b.w, 0)
	}
	b.w[word] |= 1 << uint(i&63)
}

func (b bitset) has(i int) bool {
	word := i >> 6
	if word >= len(b.w) {
		return false
	}
	return b.w[word]&(1<<uint(i&63)) != 0
}

func (b bitset) clone() bitset {
	c := make([]uint64, len(b.w))
	copy(c, b.w)
	return bitset{w: c}
}

// commonCount returns |b ∩ o|.
func (b bitset) commonCount(o bitset) int {
	n := len(b.w)
	if len(o.w) < n {
		n = len(o.w)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(b.w[i] & o.w[i])
	}
	return total
}

// count returns |b|.
func (b bitset) count() int {
	total := 0
	for _, w := range b.w {
		total += bits.OnesCount64(w)
	}
	return total
}
