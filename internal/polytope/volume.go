package polytope

import (
	"math/rand"

	"ist/internal/geom"
)

// Volume and split estimation. The paper's RH selects the hyperplane
// "dividing R the most evenly" via the cheap distance-to-centre heuristic
// (Section 5.3.3); the Monte-Carlo estimators here provide the ground truth
// those heuristics approximate, used by tests and the ablation benchmarks.

// EstimateVolumeShare estimates the fraction of the whole utility simplex
// occupied by the polytope, by sampling `samples` uniform simplex points
// and testing containment. The returned value is a share in [0,1] of
// (d−1)-dimensional measure.
func (p *Polytope) EstimateVolumeShare(rng *rand.Rand, samples int) float64 {
	if p.IsEmpty() || samples <= 0 {
		return 0
	}
	in := 0
	for s := 0; s < samples; s++ {
		if p.Contains(uniformSimplexPoint(rng, p.dim)) {
			in++
		}
	}
	return float64(in) / float64(samples)
}

// EstimateSplitShare estimates how the hyperplane divides the polytope: the
// fraction of the polytope's sampled points strictly above h. Points are
// drawn as random convex combinations of the vertices (not exactly uniform
// over the polytope, but an unbiased-enough probe for evenness checks —
// exact uniform sampling over a polytope would need its triangulation).
// Returns 0.5 exactly only in expectation for a perfectly even split.
func (p *Polytope) EstimateSplitShare(h geom.Hyperplane, rng *rand.Rand, samples int) float64 {
	if p.IsEmpty() || samples <= 0 {
		return 0
	}
	above := 0
	for s := 0; s < samples; s++ {
		if h.SideOf(p.Sample(rng)) == geom.Above {
			above++
		}
	}
	return float64(above) / float64(samples)
}

// uniformSimplexPoint draws a uniform point of the standard simplex (via
// normalized exponentials, the Dirichlet(1,...,1) construction).
func uniformSimplexPoint(rng *rand.Rand, d int) geom.Vector {
	u := geom.NewVector(d)
	s := 0.0
	for i := range u {
		u[i] = rng.ExpFloat64() + 1e-300
		s += u[i]
	}
	return u.Scale(1 / s)
}
