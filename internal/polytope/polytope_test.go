package polytope

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ist/internal/geom"
	"ist/internal/lp"
)

func TestNewSimplex(t *testing.T) {
	for d := 1; d <= 6; d++ {
		p := NewSimplex(d)
		if p.NumVertices() != d {
			t.Fatalf("d=%d: %d vertices, want %d", d, p.NumVertices(), d)
		}
		c := p.Center()
		for _, x := range c {
			if math.Abs(x-1/float64(d)) > 1e-9 {
				t.Fatalf("d=%d: center %v", d, c)
			}
		}
	}
}

func TestCutHalvesSimplex2D(t *testing.T) {
	p := NewSimplex(2)
	// u1 >= u2: normal (1, -1).
	class := p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -1}})
	if class != ClassIntersect {
		t.Fatalf("class = %v, want intersect", class)
	}
	// Result: segment from (1,0) to (0.5,0.5).
	if p.NumVertices() != 2 {
		t.Fatalf("%d vertices, want 2: %v", p.NumVertices(), p.Vertices())
	}
	want := map[string]bool{}
	for _, v := range p.Vertices() {
		if v.Equal(geom.Vector{1, 0}) {
			want["e1"] = true
		}
		if v.Equal(geom.Vector{0.5, 0.5}) {
			want["mid"] = true
		}
	}
	if !want["e1"] || !want["mid"] {
		t.Fatalf("vertices %v, want (1,0) and (0.5,0.5)", p.Vertices())
	}
}

func TestCutBelowEmpties(t *testing.T) {
	p := NewSimplex(3)
	// -u1 - u2 - u3 >= 0 is impossible on the simplex.
	class := p.Cut(geom.Hyperplane{Normal: geom.Vector{-1, -1, -1}})
	if class != ClassBelow || !p.IsEmpty() {
		t.Fatalf("class=%v empty=%v, want below/empty", class, p.IsEmpty())
	}
}

func TestCutAboveNoChange(t *testing.T) {
	p := NewSimplex(3)
	class := p.Cut(geom.Hyperplane{Normal: geom.Vector{1, 1, 1}})
	if class != ClassAbove || p.NumVertices() != 3 {
		t.Fatalf("class=%v nv=%d, want above/3", class, p.NumVertices())
	}
}

func TestSequentialCuts3D(t *testing.T) {
	p := NewSimplex(3)
	// u1 >= u2 and u2 >= u3 leaves the region with vertices
	// (1,0,0), (1/2,1/2,0), (1/3,1/3,1/3).
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -1, 0}})
	p.Cut(geom.Hyperplane{Normal: geom.Vector{0, 1, -1}})
	if p.IsEmpty() {
		t.Fatal("region must be nonempty")
	}
	wants := []geom.Vector{{1, 0, 0}, {0.5, 0.5, 0}, {1.0 / 3, 1.0 / 3, 1.0 / 3}}
	for _, w := range wants {
		found := false
		for _, v := range p.Vertices() {
			if v.Equal(w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing vertex %v; have %v", w, p.Vertices())
		}
	}
	if p.NumVertices() != 3 {
		t.Errorf("%d vertices, want 3: %v", p.NumVertices(), p.Vertices())
	}
}

func TestOppositeCutsDegenerate(t *testing.T) {
	p := NewSimplex(3)
	h := geom.Hyperplane{Normal: geom.Vector{1, -1, 0}}
	p.Cut(h)
	class := p.Cut(h.Flip())
	// After the first cut the polytope is in closed h+, so the opposite cut
	// classifies Below but must retain the On face u1 == u2.
	if class != ClassBelow {
		t.Fatalf("class = %v, want below", class)
	}
	if p.IsEmpty() {
		t.Fatal("face u1=u2 must remain")
	}
	for _, v := range p.Vertices() {
		if math.Abs(v[0]-v[1]) > 1e-9 {
			t.Fatalf("vertex %v not on u1=u2", v)
		}
	}
	// Now the region is entirely On h.
	if got := p.Classify(h); got != ClassOn {
		t.Fatalf("Classify = %v, want on", got)
	}
}

func TestCenterSampleContained(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewSimplex(4)
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -1, 0.3, -0.2}})
	p.Cut(geom.Hyperplane{Normal: geom.Vector{-0.5, 1, -1, 0.8}})
	if p.IsEmpty() {
		t.Skip("region empty under these cuts")
	}
	if !p.Contains(p.Center()) {
		t.Fatalf("center %v not contained", p.Center())
	}
	for i := 0; i < 50; i++ {
		u := p.Sample(rng)
		if !p.Contains(u) {
			t.Fatalf("sample %v not contained", u)
		}
		if math.Abs(u.Sum()-1) > 1e-9 {
			t.Fatalf("sample %v off the simplex", u)
		}
	}
}

func TestBallSide(t *testing.T) {
	// Shrunken 2D region: segment (1,0)-(0.5,0.5), center (0.75,0.25),
	// radius ~0.354.
	p := NewSimplex(2)
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -1}}) // u1 >= u2
	// Distance from center to plane u1+u2=0 is 1/sqrt(2) ~ 0.707 > radius.
	if got := p.BallSide(geom.Hyperplane{Normal: geom.Vector{1, 1}}); got != ClassAbove {
		t.Fatalf("BallSide far-above = %v", got)
	}
	if got := p.BallSide(geom.Hyperplane{Normal: geom.Vector{-1, -1}}); got != ClassBelow {
		t.Fatalf("BallSide far-below = %v", got)
	}
	// The plane u1=u2 touches the endpoint (0.5,0.5): inconclusive.
	if got := p.BallSide(geom.Hyperplane{Normal: geom.Vector{1, -1}}); got != ClassIntersect {
		t.Fatalf("BallSide touching = %v", got)
	}
}

func TestRectSideMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		d := 2 + rng.Intn(4)
		p := NewSimplex(d)
		for c := 0; c < rng.Intn(4); c++ {
			n := geom.NewVector(d)
			for i := range n {
				n[i] = rng.Float64()*2 - 1
			}
			p.Cut(geom.Hyperplane{Normal: n})
			if p.IsEmpty() {
				break
			}
		}
		if p.IsEmpty() {
			continue
		}
		n := geom.NewVector(d)
		for i := range n {
			n[i] = rng.Float64()*2 - 1
		}
		h := geom.Hyperplane{Normal: n}
		if a, b := p.RectSide(h), p.RectSideFast(h); a != b {
			t.Fatalf("trial %d: RectSide=%v RectSideFast=%v (d=%d)", trial, a, b, d)
		}
	}
}

// Bounding tests are sufficient conditions: whenever they are conclusive,
// the exact classification must agree.
func TestBoundsAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		d := 2 + rng.Intn(4)
		p := NewSimplex(d)
		for c := 0; c < rng.Intn(5); c++ {
			n := geom.NewVector(d)
			for i := range n {
				n[i] = rng.Float64()*2 - 1
			}
			p.Cut(geom.Hyperplane{Normal: n})
			if p.IsEmpty() {
				break
			}
		}
		if p.IsEmpty() {
			continue
		}
		n := geom.NewVector(d)
		for i := range n {
			n[i] = rng.Float64()*2 - 1
		}
		h := geom.Hyperplane{Normal: n}
		exact := p.Classify(h)
		for _, got := range []Class{p.BallSide(h), p.RectSide(h)} {
			if got == ClassAbove && !(exact == ClassAbove) {
				t.Fatalf("bound says above, exact %v", exact)
			}
			if got == ClassBelow && !(exact == ClassBelow) {
				t.Fatalf("bound says below, exact %v", exact)
			}
		}
	}
}

func TestClassifyWithStats(t *testing.T) {
	p := NewSimplex(2)
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -1}}) // shrink so the ball is conclusive
	var stats BoundStats
	// Conclusive for the ball.
	p.ClassifyWith(geom.Hyperplane{Normal: geom.Vector{1, 1}}, StrategyBall, &stats)
	// Inconclusive (touches an endpoint), falls back to exact scan.
	p.ClassifyWith(geom.Hyperplane{Normal: geom.Vector{1, -1}}, StrategyBall, &stats)
	if stats.Identifications != 2 || stats.ByBound != 1 {
		t.Fatalf("stats = %+v, want 2/1", stats)
	}
	if r := stats.EffectiveRatio(); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("EffectiveRatio = %v", r)
	}
	if (BoundStats{}).EffectiveRatio() != 0 {
		t.Fatal("empty stats ratio must be 0")
	}
}

// Property: after a sequence of random cuts, the polytope's emptiness agrees
// with LP feasibility of the same constraint system, and every reported
// vertex satisfies every constraint.
func TestQuickCutMatchesLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		p := NewSimplex(d)
		var hs [][]float64
		for c := 0; c < 1+rng.Intn(6); c++ {
			n := geom.NewVector(d)
			for i := range n {
				n[i] = rng.Float64()*2 - 1
			}
			hs = append(hs, n)
			p.Cut(geom.Hyperplane{Normal: n})
		}
		// Vertices must satisfy all constraints.
		for _, v := range p.Vertices() {
			if !p.Contains(v) {
				return false
			}
			if math.Abs(v.Sum()-1) > 1e-7 {
				return false
			}
		}
		_, feasible := lp.FeasibleOverSimplex(hs, d)
		if p.IsEmpty() && feasible {
			// The LP might find a single boundary point that the vertex
			// machinery dropped as degenerate; accept only interior-empty.
			_, slack, ok := lp.InteriorPointOverSimplex(hs, d)
			return !ok || slack <= 1e-7
		}
		if !p.IsEmpty() && !feasible {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cut never enlarges the vertex set's reach: every vertex after
// the cut is inside the pre-cut polytope.
func TestQuickCutMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		p := NewSimplex(d)
		for c := 0; c < rng.Intn(4); c++ {
			n := geom.NewVector(d)
			for i := range n {
				n[i] = rng.Float64()*2 - 1
			}
			p.Cut(geom.Hyperplane{Normal: n})
		}
		before := p.Clone()
		n := geom.NewVector(d)
		for i := range n {
			n[i] = rng.Float64()*2 - 1
		}
		p.Cut(geom.Hyperplane{Normal: n})
		for _, v := range p.Vertices() {
			if !before.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBitset(t *testing.T) {
	var b bitset
	b.set(3)
	b.set(70)
	if !b.has(3) || !b.has(70) || b.has(4) || b.has(1000) {
		t.Fatal("bitset membership wrong")
	}
	if b.count() != 2 {
		t.Fatalf("count = %d", b.count())
	}
	var c bitset
	c.set(70)
	c.set(5)
	if b.commonCount(c) != 1 {
		t.Fatalf("commonCount = %d", b.commonCount(c))
	}
	cl := b.clone()
	cl.set(9)
	if b.has(9) {
		t.Fatal("clone aliases original")
	}
}

// BenchmarkCut measures the incremental halfspace cut across dimensions.
func BenchmarkCut(b *testing.B) {
	for _, d := range []int{3, 4, 6} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			normals := make([]geom.Vector, 24)
			for i := range normals {
				n := geom.NewVector(d)
				for j := range n {
					n[j] = rng.Float64()*2 - 1
				}
				normals[i] = n
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := NewSimplex(d)
				for _, n := range normals {
					p.Cut(geom.Hyperplane{Normal: n})
					if p.IsEmpty() {
						break
					}
				}
			}
		})
	}
}

// BenchmarkClassify compares exact classification with the bounding
// shortcuts on a realistic cut polytope.
func BenchmarkClassify(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := 5
	p := NewSimplex(d)
	for c := 0; c < 8; c++ {
		n := geom.NewVector(d)
		for j := range n {
			n[j] = rng.Float64()*2 - 1
		}
		p.Cut(geom.Hyperplane{Normal: n})
	}
	h := geom.Hyperplane{Normal: geom.Vector{1, -0.3, 0.2, -0.8, 0.1}}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Classify(h)
		}
	})
	b.Run("ball", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.BallSide(h)
		}
	})
	b.Run("rect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.RectSide(h)
		}
	})
	b.Run("rectfast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.RectSideFast(h)
		}
	})
}
