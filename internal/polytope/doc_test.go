package polytope_test

import (
	"fmt"

	"ist/internal/geom"
	"ist/internal/polytope"
)

// A utility range starts as the whole simplex and shrinks with each
// answered question.
func ExamplePolytope_Cut() {
	R := polytope.NewSimplex(3)
	fmt.Println("vertices:", R.NumVertices())

	// The user prefers p_i with normal p_i − p_j = (0.4, -0.2, -0.1):
	class := R.Cut(geom.Hyperplane{Normal: geom.Vector{0.4, -0.2, -0.1}})
	fmt.Println("cut:", class)
	fmt.Println("still contains the centre?", R.Contains(R.Center()))
	// Output:
	// vertices: 3
	// cut: intersect
	// still contains the centre? true
}
