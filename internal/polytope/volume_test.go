package polytope

import (
	"math"
	"math/rand"
	"testing"

	"ist/internal/geom"
)

func TestEstimateVolumeShareWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewSimplex(3)
	if got := p.EstimateVolumeShare(rng, 2000); math.Abs(got-1) > 1e-9 {
		t.Fatalf("whole simplex share = %v, want 1", got)
	}
}

func TestEstimateVolumeShareHalf(t *testing.T) {
	// Cutting the 2-simplex (a segment in u-space) at u1 >= u2 keeps half.
	rng := rand.New(rand.NewSource(2))
	p := NewSimplex(2)
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -1}})
	got := p.EstimateVolumeShare(rng, 20000)
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("half-simplex share = %v, want ~0.5", got)
	}
}

func TestEstimateVolumeShareSymmetricThird(t *testing.T) {
	// In 3d, u1 >= u2 and u1 >= u3 keeps exactly one third by symmetry.
	rng := rand.New(rand.NewSource(3))
	p := NewSimplex(3)
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -1, 0}})
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, 0, -1}})
	got := p.EstimateVolumeShare(rng, 30000)
	if math.Abs(got-1.0/3) > 0.02 {
		t.Fatalf("share = %v, want ~1/3", got)
	}
}

func TestEstimateVolumeShareEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewSimplex(2)
	p.Cut(geom.Hyperplane{Normal: geom.Vector{-1, -1}})
	if got := p.EstimateVolumeShare(rng, 100); got != 0 {
		t.Fatalf("empty polytope share = %v", got)
	}
}

func TestEstimateSplitShare(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewSimplex(3)
	// u1 vs u2 splits the whole simplex symmetrically.
	got := p.EstimateSplitShare(geom.Hyperplane{Normal: geom.Vector{1, -1, 0}}, rng, 20000)
	if math.Abs(got-0.5) > 0.03 {
		t.Fatalf("split share = %v, want ~0.5", got)
	}
	// A hyperplane with the polytope entirely above it.
	if got := p.EstimateSplitShare(geom.Hyperplane{Normal: geom.Vector{1, 1, 1}}, rng, 500); got != 1 {
		t.Fatalf("all-above split share = %v, want 1", got)
	}
}

func TestRHDistanceHeuristicTracksEvenSplits(t *testing.T) {
	// Ablation backing Section 5.3.3: among candidate hyperplanes, the one
	// closest to the centre should split the region more evenly on average
	// than the farthest.
	rng := rand.New(rand.NewSource(6))
	p := NewSimplex(4)
	p.Cut(geom.Hyperplane{Normal: geom.Vector{1, -0.5, 0.2, -0.7}})
	center := p.Center()
	var cands []cand4
	for i := 0; i < 40; i++ {
		n := geom.NewVector(4)
		for j := range n {
			n[j] = rng.Float64()*2 - 1
		}
		h := geom.Hyperplane{Normal: n}
		if p.Classify(h) != ClassIntersect {
			continue
		}
		share := p.EstimateSplitShare(h, rng, 3000)
		cands = append(cands, cand4{h: h, dist: h.Distance(center), evenness: math.Abs(share - 0.5)})
	}
	if len(cands) < 8 {
		t.Skip("not enough intersecting candidates")
	}
	// Compare the mean evenness of the closest third vs the farthest third.
	sortCands(cands)
	third := len(cands) / 3
	closeMean, farMean := 0.0, 0.0
	for i := 0; i < third; i++ {
		closeMean += cands[i].evenness
		farMean += cands[len(cands)-1-i].evenness
	}
	if closeMean >= farMean {
		t.Fatalf("distance heuristic failed: close-third evenness %.3f >= far-third %.3f",
			closeMean/float64(third), farMean/float64(third))
	}
}

func sortCands(cands []cand4) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dist < cands[j-1].dist; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// cand4 is a candidate hyperplane with its distance-to-centre and measured
// split evenness, shared by the heuristic-validation test.
type cand4 struct {
	h        geom.Hyperplane
	dist     float64
	evenness float64 // |share - 0.5|, lower is more even
}
