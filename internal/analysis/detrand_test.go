package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, analysis.DetRandAnalyzer, "detrand")
}

// TestDetRandSkipsMain asserts that package main (CLI binaries) is exempt:
// the testdata package seeds from the wall clock and must produce no
// diagnostics.
func TestDetRandSkipsMain(t *testing.T) {
	analysistest.Run(t, analysis.DetRandAnalyzer, "detrandmain")
}
