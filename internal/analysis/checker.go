package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// Check runs every analyzer over every package and returns the surviving
// diagnostics, ordered by file, line and column. Diagnostics matched by a
// justified //lint:ignore directive are dropped.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := checkPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

func checkPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.PkgPath,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	ig := collectIgnores(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppresses(d) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// ignoreSet records //lint:ignore directives: per file, the set of lines a
// given analyzer is suppressed on.
type ignoreSet map[string]map[int]map[string]bool // file -> line -> analyzer

// collectIgnores gathers justified ignore directives. A directive written as
//
//	//lint:ignore name1,name2 reason
//
// suppresses the named analyzers (or every analyzer, for the name "all") on
// its own line and on the following line, so it works both as a trailing
// comment and as a directive line above the offending statement. Directives
// without a reason are ignored — the justification is the point.
func collectIgnores(pkg *Package) ignoreSet {
	ig := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no justifying reason: not honored
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ig[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ig[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig ignoreSet) suppresses(d Diagnostic) bool {
	names := ig[d.Pos.Filename][d.Pos.Line]
	return names != nil && (names[d.Analyzer] || names["all"])
}

// isTestFile reports whether the file's basename ends in _test.go. The
// loader skips test files, but analyzers guard on it anyway so they stay
// correct if the loading policy ever changes.
func isTestFile(pass *Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
