package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// Check runs every analyzer over every package and returns the surviving
// diagnostics, ordered by file, line and column. Diagnostics matched by a
// justified //lint:ignore directive are dropped.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := checkPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

func checkPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.PkgPath,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	ig := collectIgnores(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppresses(d) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// ignoreSet records //lint:ignore directives: per file, the set of lines a
// given analyzer is suppressed on.
type ignoreSet map[string]map[int]map[string]bool // file -> line -> analyzer

// collectIgnores gathers justified ignore directives. A directive written as
//
//	//lint:ignore name1,name2 reason
//
// suppresses the named analyzers (or every analyzer, for the name "all") on
// its own line and on the following line, so it works both as a trailing
// comment and as a directive line above the offending statement. Directives
// without a reason are ignored — the justification is the point.
func collectIgnores(pkg *Package) ignoreSet {
	ig := ignoreSet{}
	for _, sup := range packageSuppressions(pkg) {
		if sup.Reason == "" {
			continue // no justifying reason: not honored
		}
		lines := ig[sup.File]
		if lines == nil {
			lines = map[int]map[string]bool{}
			ig[sup.File] = lines
		}
		for _, name := range sup.Analyzers {
			for _, line := range []int{sup.Line, sup.Line + 1} {
				if lines[line] == nil {
					lines[line] = map[string]bool{}
				}
				lines[line][name] = true
			}
		}
	}
	return ig
}

// Suppression is one //lint:ignore directive, as seen by the audit trail. A
// directive with an empty Reason is bare — it suppresses nothing, and the
// audit surfaces it as a mistake (either dead or missing its justification).
type Suppression struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason,omitempty"`
}

// Suppressions lists every //lint:ignore directive in the packages, ordered
// by file and line — the `istlint suppressions` audit: each deliberate
// exception to the lint policy, with its mandatory justification.
func Suppressions(pkgs []*Package) []Suppression {
	var all []Suppression
	for _, pkg := range pkgs {
		all = append(all, packageSuppressions(pkg)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		return all[i].Line < all[j].Line
	})
	return all
}

func packageSuppressions(pkg *Package) []Suppression {
	var out []Suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue // no analyzer names at all: not a directive
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := ""
				if len(fields) > 1 {
					reason = strings.Join(fields[1:], " ")
				}
				out = append(out, Suppression{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: strings.Split(fields[0], ","),
					Reason:    reason,
				})
			}
		}
	}
	return out
}

func (ig ignoreSet) suppresses(d Diagnostic) bool {
	names := ig[d.Pos.Filename][d.Pos.Line]
	return names != nil && (names[d.Analyzer] || names["all"])
}

// isTestFile reports whether the file's basename ends in _test.go. The
// loader skips test files, but analyzers guard on it anyway so they stay
// correct if the loading policy ever changes.
func isTestFile(pass *Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
