package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a single function declaration and
// returns its CFG plus the fileset for position lookups.
func parseBody(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing test body: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fset
}

// reachableLeaves collects the source text of every leaf node in a reachable
// block, in block order — a compact fingerprint of what the CFG considers
// live code.
func reachableLeaves(t *testing.T, g *CFG, fset *token.FileSet, src string) []string {
	t.Helper()
	_ = fset
	_ = src
	reach := g.Reachable()
	var out []string
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			out = append(out, nodeText(n))
		}
	}
	return out
}

func nodeText(n ast.Node) string {
	switch n := n.(type) {
	case *ast.ExprStmt:
		return nodeText(n.X)
	case *ast.CallExpr:
		return nodeText(n.Fun) + "()"
	case *ast.Ident:
		return n.Name
	case *ast.SelectorExpr:
		return nodeText(n.X) + "." + n.Sel.Name
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		return n.Tok.String()
	case *ast.DeferStmt:
		return "defer " + nodeText(n.Call)
	case *ast.BinaryExpr:
		return nodeText(n.X) + n.Op.String() + nodeText(n.Y)
	case *ast.BasicLit:
		return n.Value
	case *ast.RangeStmt:
		return "range " + nodeText(n.X)
	case *ast.IncDecStmt:
		return nodeText(n.X) + n.Tok.String()
	default:
		return "?"
	}
}

func containsLeaf(leaves []string, want string) bool {
	for _, l := range leaves {
		if l == want {
			return true
		}
	}
	return false
}

func TestCFGDeferInLoop(t *testing.T) {
	g, _ := parseBody(t, `
	for i := 0; i < 3; i++ {
		defer cleanup()
	}
	work()
`)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1 (the defer statement, not its executions)", len(g.Defers))
	}
	// The defer must live inside the loop body — on the back-edge path —
	// not hoisted out of it: its block must reach the loop head again.
	var deferBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferBlock = b
			}
		}
	}
	if deferBlock == nil {
		t.Fatal("defer statement not placed in any block")
	}
	if !reachesItself(deferBlock) {
		t.Errorf("defer-in-loop block does not lie on a cycle; loop structure lost")
	}
}

// reachesItself reports whether b can reach itself through successor edges.
func reachesItself(b *Block) bool {
	seen := map[*Block]bool{}
	var walk func(c *Block) bool
	walk = func(c *Block) bool {
		for _, s := range c.Succs {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	return walk(b)
}

func TestCFGLabeledContinue(t *testing.T) {
	src := `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if skip() {
				continue outer
			}
			inner()
		}
		tail()
	}
	done()
`
	g, fset := parseBody(t, src)
	leaves := reachableLeaves(t, g, fset, src)
	for _, want := range []string{"continue", "inner()", "tail()", "done()"} {
		if !containsLeaf(leaves, want) {
			t.Errorf("leaf %q not reachable; CFG:\n%s", want, g)
		}
	}
	// The `continue outer` block must edge directly to the OUTER post block
	// (the one carrying i++), skipping the inner post (j++): after a labeled
	// continue, i++ runs but j++ does not.
	contBlock := blockWithLeaf(g, "continue")
	if contBlock == nil {
		t.Fatal("no block holds the continue statement")
	}
	if len(contBlock.Succs) != 1 || !blockHasLeaf(contBlock.Succs[0], "i++") {
		t.Errorf("continue outer does not edge to the outer post block (i++); CFG:\n%s", g)
	}
	if blockHasLeaf(contBlock.Succs[0], "j++") {
		t.Errorf("continue outer passes through the inner post block (j++); CFG:\n%s", g)
	}
}

func blockWithLeaf(g *CFG, text string) *Block {
	for _, b := range g.Blocks {
		if blockHasLeaf(b, text) {
			return b
		}
	}
	return nil
}

func blockHasLeaf(b *Block, text string) bool {
	for _, n := range b.Nodes {
		if nodeText(n) == text {
			return true
		}
	}
	return false
}

// pathAvoiding reports whether a path from src exists that never enters a
// block matched by avoid. dst==nil means "any exit-reaching path".
func pathAvoiding(src, dst *Block, avoid func(*Block) bool) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if avoid(b) || seen[b] {
			return false
		}
		seen[b] = true
		if len(b.Succs) == 0 {
			return true
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(src)
}

func TestCFGSelectWithDefault(t *testing.T) {
	src := `
	select {
	case v := <-in:
		use(v)
	case out <- 1:
		sent()
	default:
		idle()
	}
	after()
`
	g, fset := parseBody(t, src)
	leaves := reachableLeaves(t, g, fset, src)
	for _, want := range []string{"use()", "sent()", "idle()", "after()"} {
		if !containsLeaf(leaves, want) {
			t.Errorf("leaf %q not reachable; CFG:\n%s", want, g)
		}
	}
	// All three arms must merge back before after(): after()'s block needs
	// at least three distinct predecessors.
	afterB := blockWithLeaf(g, "after()")
	if afterB == nil {
		t.Fatal("after() not placed")
	}
	preds := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == afterB {
				preds++
			}
		}
	}
	if preds < 3 {
		t.Errorf("after() has %d predecessors, want >= 3 (one per select arm); CFG:\n%s", preds, g)
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	g, _ := parseBody(t, `
	work()
	select {}
	unreached()
`)
	reach := g.Reachable()
	if b := blockWithLeaf(g, "unreached()"); b != nil && reach[b] {
		t.Errorf("code after select{} is reachable; CFG:\n%s", g)
	}
}

func TestCFGEarlyReturnsInSwitch(t *testing.T) {
	src := `
	switch k() {
	case 1:
		one()
		return
	case 2:
		two()
	default:
		panic("bad")
	}
	after()
`
	g, fset := parseBody(t, src)
	leaves := reachableLeaves(t, g, fset, src)
	for _, want := range []string{"one()", "two()", "after()"} {
		if !containsLeaf(leaves, want) {
			t.Errorf("leaf %q not reachable; CFG:\n%s", want, g)
		}
	}
	// after() is reachable ONLY through case 2: case 1 returns and default
	// panics. Every path into after() must pass through two().
	afterB := blockWithLeaf(g, "after()")
	oneB := blockWithLeaf(g, "one()")
	if afterB == nil || oneB == nil {
		t.Fatal("switch bodies not placed")
	}
	if pathAvoiding(oneB, nil, func(b *Block) bool { return b == afterB }) == false {
		t.Errorf("case 1 (which returns) still always flows into after(); CFG:\n%s", g)
	}
	if !pathAvoiding(g.Entry, nil, func(b *Block) bool { return false }) {
		t.Fatal("entry reaches no terminal block")
	}
}

func TestCFGFallthroughChainsCases(t *testing.T) {
	src := `
	switch k() {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	}
	after()
`
	g, _ := parseBody(t, src)
	oneB := blockWithLeaf(g, "one()")
	twoB := blockWithLeaf(g, "two()")
	if oneB == nil || twoB == nil {
		t.Fatal("case bodies not placed")
	}
	found := false
	for _, s := range oneB.Succs {
		if s == twoB {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough edge from case 1 to case 2 missing; CFG:\n%s", g)
	}
}

func TestCFGCondSwitchRefinesLikeIfChain(t *testing.T) {
	// Tagless switches desugar to an if/else-if chain: each case condition
	// must end a block with Cond set (true/false successors), because that
	// is what lets errflow treat `case err != nil: return` as a check.
	g, _ := parseBody(t, `
	switch {
	case a():
		one()
	case b():
		two()
	default:
		other()
	}
	after()
`)
	conds := 0
	for _, b := range g.Blocks {
		if b.Cond != nil {
			conds++
			if len(b.Succs) != 2 {
				t.Errorf("cond block b%d has %d successors, want 2", b.Index, len(b.Succs))
			}
		}
	}
	if conds != 2 {
		t.Errorf("desugared tagless switch has %d cond blocks, want 2; CFG:\n%s", conds, g)
	}
}

func TestCFGNoReturnCallsEndThePath(t *testing.T) {
	g, _ := parseBody(t, `
	if bad() {
		panic("x")
	}
	work()
`)
	reach := g.Reachable()
	workB := blockWithLeaf(g, "work()")
	if workB == nil || !reach[workB] {
		t.Fatalf("work() should stay reachable via the non-panic path; CFG:\n%s", g)
	}
	panicB := blockWithLeaf(g, "panic()")
	if panicB == nil {
		t.Fatal("panic not placed")
	}
	// panic's block must not flow into work(): its only successor chain goes
	// to Exit.
	if pathAvoiding(panicB, nil, func(b *Block) bool { return b == g.Exit }) {
		t.Errorf("a path from panic() bypasses Exit; CFG:\n%s", g)
	}
}

func TestCFGStringIsStable(t *testing.T) {
	g, _ := parseBody(t, `
	if c {
		x()
	}
`)
	s := g.String()
	if !strings.Contains(s, "b0(entry)") || !strings.Contains(s, "[cond]") {
		t.Errorf("String() missing entry/cond markers:\n%s", s)
	}
}
