package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafeAnalyzer enforces the lock discipline the race detector cannot:
// it is a *shape* check over every path of a function, not a schedule
// check over one run.
//
//  1. Balance: a sync.Mutex/RWMutex locked in a function must reach an
//     Unlock (or a defer Unlock) on every path to a return. An early
//     `return err` that forgets the Unlock deadlocks the next caller — the
//     classic bug pattern in the server's per-session state machines.
//  2. No double Lock: locking a mutex on a path where this function
//     already holds it is a guaranteed self-deadlock.
//  3. No blocking calls under a lock: an fsync, a file/stream Write, an LP
//     Solve, a channel operation, time.Sleep, WaitGroup.Wait or an HTTP
//     handler invoked while a mutex is held turns every other goroutine's
//     microsecond-critical-section into a disk- or human-latency wait.
//     Deliberate holds (a WAL serializing appends through its lock) carry a
//     `//lint:ignore locksafe <reason>` so the policy stays auditable.
//
// The analysis is intraprocedural: helpers that assume "caller holds mu"
// (the *Locked naming convention) are neither checked nor flagged — the
// check fires where the Lock call itself is visible.
var LockSafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc:  "flags unbalanced mutex paths, double locks, and blocking calls while a mutex is held",
	Run:  runLockSafe,
}

// lockState is the per-mutex lattice: absent (never locked) < held states
// < lsMixed (conflicting paths — the analysis stays silent rather than
// guessing).
type lockState uint8

const (
	lsReleased lockState = iota + 1 // was held on this path, released
	lsHeld                          // held, no release scheduled
	lsDeferred                      // held, a defer guarantees release at exit
	lsMixed                         // held on some paths only
)

// lockFact maps a canonical mutex expression ("w:s.mu" for write locks,
// "r:s.mu" for read locks) to its state. Treated as immutable.
type lockFact map[string]lockState

func (f lockFact) with(key string, s lockState) lockFact {
	out := make(lockFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	out[key] = s
	return out
}

func runLockSafe(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fb := range funcBodies(f) {
			checkLockSafe(pass, fb)
		}
	}
	return nil
}

func checkLockSafe(pass *Pass, fb funcBody) {
	g := BuildCFG(fb.body)
	an := FlowAnalysis[lockFact]{
		Entry:    lockFact{},
		Transfer: func(n ast.Node, fact lockFact) lockFact { return lockTransfer(pass, n, fact) },
		Join:     joinLockFacts,
		Equal:    equalLockFacts,
	}
	in := SolveFlow(g, an)

	// Checks 2 and 3: double locks and blocking calls, with the fact in
	// force just before each node.
	WalkFlow(g, an, in, func(n ast.Node, before lockFact) {
		for _, op := range lockOps(pass, n) {
			if op.kind != lockAcquire || strings.HasPrefix(op.key, "r:") {
				continue // recursive RLock is shared, not a self-deadlock
			}
			if s := before[op.key]; s == lsHeld || s == lsDeferred {
				pass.Reportf(op.pos, "%s.%s() while %s is already held on this path (self-deadlock)",
					op.expr, op.method, op.expr)
			}
		}
		held := heldMutexes(before)
		if len(held) == 0 {
			return
		}
		for _, bc := range blockingCalls(pass, n) {
			pass.Reportf(bc.pos, "%s while %s is held; release the lock first or justify with //lint:ignore locksafe",
				bc.what, strings.Join(held, ", "))
		}
	})

	// Check 1: every path to a return releases what it locked.
	for _, ef := range ExitFacts(g, an, in) {
		if es, ok := ef.Last.(*ast.ExprStmt); ok && isNoReturnCall(es.X) {
			continue // a panicking path is not a leak the caller can see
		}
		pos := fb.body.End() - 1
		if ef.Last != nil {
			pos = ef.Last.Pos()
		}
		var leaked []string
		for key, s := range ef.Fact {
			if s == lsHeld {
				leaked = append(leaked, strings.TrimPrefix(strings.TrimPrefix(key, "w:"), "r:"))
			}
		}
		sort.Strings(leaked)
		for _, m := range leaked {
			pass.Reportf(pos, "%s is still held when %s returns here; add the missing Unlock or defer it",
				m, fb.name)
		}
	}
}

func heldMutexes(f lockFact) []string {
	var held []string
	for key, s := range f {
		if s == lsHeld || s == lsDeferred {
			held = append(held, strings.TrimPrefix(strings.TrimPrefix(key, "w:"), "r:"))
		}
	}
	sort.Strings(held)
	return held
}

func lockTransfer(pass *Pass, n ast.Node, fact lockFact) lockFact {
	for _, op := range lockOps(pass, n) {
		switch op.kind {
		case lockAcquire:
			fact = fact.with(op.key, lsHeld)
		case lockRelease:
			fact = fact.with(op.key, lsReleased)
		case lockDeferRelease:
			fact = fact.with(op.key, lsDeferred)
		}
	}
	return fact
}

func joinLockFacts(a, b lockFact) lockFact {
	out := make(lockFact, len(a))
	for k, v := range a {
		if w, ok := b[k]; ok {
			if v == w {
				out[k] = v
			} else {
				out[k] = lsMixed
			}
		} else {
			// Locked on one path, never touched on the other.
			if v == lsReleased {
				out[k] = lsReleased
			} else {
				out[k] = lsMixed
			}
		}
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			if v == lsReleased {
				out[k] = lsReleased
			} else {
				out[k] = lsMixed
			}
		}
	}
	return out
}

func equalLockFacts(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

type lockOpKind int

const (
	lockAcquire lockOpKind = iota
	lockRelease
	lockDeferRelease
)

type lockOp struct {
	kind   lockOpKind
	key    string // "w:<expr>" or "r:<expr>"
	expr   string
	method string
	pos    token.Pos
}

// lockOps extracts sync lock/unlock operations from one leaf node, in
// source order. A `defer x.Unlock()` is a deferred release at its
// registration point: from here on, every path is guaranteed to release x
// at function exit.
func lockOps(pass *Pass, n ast.Node) []lockOp {
	var ops []lockOp
	deferred := false
	if d, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = d.Call
	}
	inspectLeaf(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		var kind lockOpKind
		var rw string
		switch name {
		case "Lock":
			kind, rw = lockAcquire, "w:"
		case "RLock":
			kind, rw = lockAcquire, "r:"
		case "Unlock":
			kind, rw = lockRelease, "w:"
		case "RUnlock":
			kind, rw = lockRelease, "r:"
		default:
			return true
		}
		if !isSyncLockMethod(pass, sel) {
			return true
		}
		if deferred && kind == lockRelease {
			kind = lockDeferRelease
		}
		expr := types.ExprString(sel.X)
		ops = append(ops, lockOp{kind: kind, key: rw + expr, expr: expr, method: name, pos: call.Pos()})
		return true
	})
	return ops
}

// isSyncLockMethod reports whether sel resolves to a method declared in
// package sync (Mutex, RWMutex, or the Locker interface) — including when
// the mutex is embedded in a larger struct.
func isSyncLockMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, _ := pass.Info.ObjectOf(sel.Sel).(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

type blockingCall struct {
	what string
	pos  token.Pos
}

// blockingCalls finds operations in one leaf node that can block for disk,
// network, another goroutine, or a human: channel sends and receives,
// fsyncs, writes to files/streams, LP solves, HTTP handler invocations,
// time.Sleep and WaitGroup/Cond waits.
func blockingCalls(pass *Pass, n ast.Node) []blockingCall {
	var out []blockingCall
	if _, ok := n.(*ast.DeferStmt); ok {
		// The deferred call runs at exit, when this function's locks are
		// normally released (the deferred-Unlock pattern); holding across
		// it is the defer ordering's business, not this path's.
		return out
	}
	inspectLeaf(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			out = append(out, blockingCall{"channel send", m.Arrow})
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				out = append(out, blockingCall{"channel receive", m.OpPos})
			}
		case *ast.CallExpr:
			if what, ok := blockingCallName(pass, m); ok {
				out = append(out, blockingCall{what, m.Pos()})
			}
		}
		return true
	})
	if r, ok := n.(*ast.RangeStmt); ok {
		if t := pass.TypeOf(r.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				out = append(out, blockingCall{"channel range", r.For})
			}
		}
	}
	return out
}

func blockingCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	fn, _ := pass.Info.ObjectOf(sel.Sel).(*types.Func)
	switch name {
	case "Sync":
		// fsync on a file or the repo's wal.File/FS abstractions.
		if hasErrorOnlyResult(fn) {
			return fmt.Sprintf("%s.Sync() (fsync)", types.ExprString(sel.X)), true
		}
	case "Write", "WriteString", "ReadFrom":
		// Only writer-shaped receivers: interfaces (io.Writer, wal.File)
		// and *os.File. Concrete in-memory buffers are cheap and common.
		if t := pass.TypeOf(sel.X); t != nil {
			if _, isIface := t.Underlying().(*types.Interface); isIface || isOSFile(t) {
				return fmt.Sprintf("%s.%s() (stream write)", types.ExprString(sel.X), name), true
			}
		}
	case "Solve", "SolveTraced":
		if fn != nil && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/lp") {
			return "an LP solve", true
		}
	case "ServeHTTP":
		return "an HTTP handler call", true
	case "Sleep":
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			return "time.Sleep", true
		}
	case "Wait":
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			return fmt.Sprintf("%s.Wait()", types.ExprString(sel.X)), true
		}
	}
	return "", false
}

func hasErrorOnlyResult(fn *types.Func) bool {
	if fn == nil {
		return true // untyped (interface via testdata): assume fsync shape
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

func isOSFile(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
