package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilGuardAnalyzer is the path-sensitive nil-deref check for the repo's
// nil-safe wrapper pattern (obs.Observer, core's budget tracker,
// wal.Metrics): those values are nil by contract on the uninstrumented
// path, so the code is full of `if x == nil` guards — and the bug class is
// a guard on one path with an unguarded dereference on another:
//
//	if o == nil {
//	    log.Println("uninstrumented")   // forgot the return
//	}
//	o.Event(...)                        // panics exactly when unobserved
//
// The analysis tracks local variables and parameters that are compared to
// nil somewhere in the function (the comparison is the evidence nil is
// possible). Branch edges refine the state (== nil: true edge isnil, false
// edge nonnil, through &&, || and !), assignments of fresh values set
// nonnil, and a dereference is flagged when the state is isnil (every path
// is nil) or maybenil (the nil branch of a check flows here unguarded).
//
// "Dereference" means what panics on nil: a field access, *p, an index on
// a pointer-to-array, calling a method through a nil interface, or calling
// a value-receiver method on a nil pointer. Calling a POINTER-receiver
// method on a nil pointer is fine — that is precisely the sanctioned
// nil-receiver wrapper idiom — and is not flagged.
var NilGuardAnalyzer = &Analyzer{
	Name: "nilguard",
	Doc:  "flags dereferences of pointers/interfaces that are nil-checked on one path and used unguarded on another",
	Run:  runNilGuard,
}

// nilState is the per-variable lattice: absent (untracked/no info) is
// bottom; nnMaybeNil is top.
type nilState uint8

const (
	nnNonNil nilState = iota + 1
	nnIsNil
	nnMaybeNil
)

// nilFact maps tracked variables to their state. Immutable.
type nilFact map[*types.Var]nilState

func (f nilFact) with(v *types.Var, s nilState) nilFact {
	out := make(nilFact, len(f)+1)
	for k, val := range f {
		out[k] = val
	}
	out[v] = s
	return out
}

func (f nilFact) without(v *types.Var) nilFact {
	out := make(nilFact, len(f))
	for k, val := range f {
		if k != v {
			out[k] = val
		}
	}
	return out
}

func runNilGuard(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fb := range funcBodies(f) {
			checkNilGuard(pass, fb)
		}
	}
	return nil
}

func checkNilGuard(pass *Pass, fb funcBody) {
	tracked := nilComparedVars(pass, fb.body)
	if len(tracked) == 0 {
		return
	}
	an := FlowAnalysis[nilFact]{
		Entry:    nilFact{},
		Transfer: func(n ast.Node, fact nilFact) nilFact { return nilTransfer(pass, tracked, n, fact) },
		Refine: func(cond ast.Expr, branch bool, fact nilFact) nilFact {
			return nilRefine(pass, tracked, cond, branch, fact)
		},
		Join:  joinNilFacts,
		Equal: equalNilFacts,
	}
	g := BuildCFG(fb.body)
	in := SolveFlow(g, an)

	reported := map[*types.Var]bool{}
	WalkFlow(g, an, in, func(n ast.Node, before nilFact) {
		for _, d := range derefs(pass, tracked, n) {
			switch before[d.v] {
			case nnIsNil:
				if !reported[d.v] {
					reported[d.v] = true
					pass.Reportf(d.pos, "%s is nil on every path reaching this dereference", d.v.Name())
				}
			case nnMaybeNil:
				if !reported[d.v] {
					reported[d.v] = true
					pass.Reportf(d.pos, "%s is nil-checked on another path but dereferenced unguarded here; hoist the guard or return from the nil branch", d.v.Name())
				}
			}
		}
	})
}

// nilComparedVars finds the local variables and parameters of pointer or
// interface type that the function compares against nil — the tracking
// universe. Variables never compared are assumed managed elsewhere.
func nilComparedVars(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	tracked := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			id, ok := ast.Unparen(pair[0]).(*ast.Ident)
			if !ok {
				continue
			}
			if !isNilIdent(pass, pair[1]) {
				continue
			}
			v, ok := pass.Info.ObjectOf(id).(*types.Var)
			if !ok || v.IsField() {
				continue
			}
			switch v.Type().Underlying().(type) {
			case *types.Pointer, *types.Interface:
				tracked[v] = true
			}
		}
		return true
	})
	return tracked
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.ObjectOf(id).(*types.Nil)
	return isNil
}

// nilTransfer applies assignments and survived dereferences.
func nilTransfer(pass *Pass, tracked map[*types.Var]bool, n ast.Node, fact nilFact) nilFact {
	// A dereference the path survived proves non-nil from here on (and
	// stops cascading reports for the same variable).
	for _, d := range derefs(pass, tracked, n) {
		fact = fact.with(d.v, nnNonNil)
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := pass.Info.ObjectOf(id).(*types.Var)
				if v == nil || !tracked[v] {
					continue
				}
				if ns := rhsNilState(pass, s.Rhs[i]); ns != 0 {
					fact = fact.with(v, ns)
				} else {
					fact = fact.without(v)
				}
			}
		} else {
			// Multi-value call: results are unknown.
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, _ := pass.Info.ObjectOf(id).(*types.Var); v != nil && tracked[v] {
						fact = fact.without(v)
					}
				}
			}
		}
	case *ast.UnaryExpr:
		// Handled below via inspect for &v anywhere in the node.
	}
	// Taking a tracked variable's address lets callees mutate it: drop it.
	inspectLeaf(n, func(m ast.Node) bool {
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
				if v, _ := pass.Info.ObjectOf(id).(*types.Var); v != nil && tracked[v] {
					fact = fact.without(v)
				}
			}
		}
		return true
	})
	return fact
}

// rhsNilState classifies what an assignment proves about the new value.
func rhsNilState(pass *Pass, rhs ast.Expr) nilState {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if isNilIdent(pass, e) {
			return nnIsNil
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nnNonNil // &x is never nil
		}
	case *ast.CompositeLit, *ast.FuncLit:
		return nnNonNil
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "new" || id.Name == "make") {
			if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
				return nnNonNil
			}
		}
	}
	return 0 // unknown
}

// nilRefine sharpens facts along a branch edge through ==/!=, &&, || and !.
func nilRefine(pass *Pass, tracked map[*types.Var]bool, cond ast.Expr, branch bool, fact nilFact) nilFact {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ:
			v := comparedVar(pass, tracked, e)
			if v == nil {
				return fact
			}
			isNilWhenTrue := e.Op == token.EQL
			if branch == isNilWhenTrue {
				return fact.with(v, nnIsNil)
			}
			return fact.with(v, nnNonNil)
		case token.LAND:
			if branch { // both conjuncts known true
				return nilRefine(pass, tracked, e.Y, true, nilRefine(pass, tracked, e.X, true, fact))
			}
		case token.LOR:
			if !branch { // both disjuncts known false
				return nilRefine(pass, tracked, e.Y, false, nilRefine(pass, tracked, e.X, false, fact))
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return nilRefine(pass, tracked, e.X, !branch, fact)
		}
	}
	return fact
}

// joinNilFacts merges path knowledge: agreement survives, disagreement
// (one path proved nil, another proved otherwise) becomes nnMaybeNil — the
// state that makes an unguarded dereference a finding. A path with no
// information (absent) neither clears nor raises suspicion on its own —
// EXCEPT against isnil: if one path definitely carries nil, the merge can
// no longer claim "nil on every path", only "nil on some path", which is
// exactly nnMaybeNil. (nonnil ⊔ absent stays nonnil so an untouched path
// does not manufacture false positives.)
func joinNilFacts(a, b nilFact) nilFact {
	merge := func(s nilState, other nilFact, k *types.Var) nilState {
		if w, ok := other[k]; ok {
			if w == s {
				return s
			}
			return nnMaybeNil
		}
		if s == nnIsNil {
			return nnMaybeNil
		}
		return s
	}
	out := make(nilFact, len(a)+len(b))
	for k, v := range a {
		out[k] = merge(v, b, k)
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			out[k] = merge(v, a, k)
		}
	}
	return out
}

func equalNilFacts(a, b nilFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func comparedVar(pass *Pass, tracked map[*types.Var]bool, be *ast.BinaryExpr) *types.Var {
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok || !isNilIdent(pass, pair[1]) {
			continue
		}
		if v, _ := pass.Info.ObjectOf(id).(*types.Var); v != nil && tracked[v] {
			return v
		}
	}
	return nil
}

type derefSite struct {
	v   *types.Var
	pos token.Pos
}

// derefs finds the nil-unsafe uses of tracked variables in one leaf node.
// Short-circuit guards inside the node are honored: in `p != nil && p.f > 0`
// (and `p == nil || p.f > 0`) the right operand only evaluates with p
// proven non-nil, so derefs there are not findings.
func derefs(pass *Pass, tracked map[*types.Var]bool, n ast.Node) []derefSite {
	spans := guardSpans(pass, tracked, n)
	var out []derefSite
	add := func(e ast.Expr, pos token.Pos) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if v, _ := pass.Info.ObjectOf(id).(*types.Var); v != nil && tracked[v] {
			for _, sp := range spans {
				if sp.vars[v] && sp.from <= pos && pos < sp.to {
					return
				}
			}
			out = append(out, derefSite{v, pos})
		}
	}
	inspectLeaf(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.StarExpr:
			add(m.X, m.Pos())
		case *ast.SelectorExpr:
			if unsafeSelection(pass, m) {
				add(m.X, m.Pos())
			}
		case *ast.IndexExpr:
			if t := pass.TypeOf(m.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					add(m.X, m.Pos())
				}
			}
		}
		return true
	})
	return out
}

// guardSpan marks a source range in which vars are proven non-nil by the
// left operand of a short-circuit operator.
type guardSpan struct {
	from, to token.Pos
	vars     map[*types.Var]bool
}

// guardSpans collects, for every `X && Y` / `X || Y` under n, the variables
// X proves non-nil on the edge that evaluates Y, spanning Y.
func guardSpans(pass *Pass, tracked map[*types.Var]bool, n ast.Node) []guardSpan {
	var spans []guardSpan
	inspectLeaf(n, func(m ast.Node) bool {
		be, ok := m.(*ast.BinaryExpr)
		if !ok || (be.Op != token.LAND && be.Op != token.LOR) {
			return true
		}
		// Y runs only when X is true (&&) or false (||).
		refined := nilRefine(pass, tracked, be.X, be.Op == token.LAND, nilFact{})
		vars := map[*types.Var]bool{}
		for v, s := range refined {
			if s == nnNonNil {
				vars[v] = true
			}
		}
		if len(vars) > 0 {
			spans = append(spans, guardSpan{from: be.Y.Pos(), to: be.Y.End(), vars: vars})
		}
		return true
	})
	return spans
}

// unsafeSelection reports whether x.sel panics when x is nil: a field
// access through a pointer, any selection through a nil interface, or a
// value-receiver method on a pointer (the auto-deref). Pointer-receiver
// methods are the nil-safe idiom and return false.
func unsafeSelection(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false // qualified identifier (pkg.Name), not a selection
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if _, isIface := recv.Underlying().(*types.Interface); isIface {
		return true // any selection on a nil interface panics at the call
	}
	if _, isPtr := recv.Underlying().(*types.Pointer); !isPtr {
		return false // value receivers cannot be nil
	}
	switch s.Kind() {
	case types.FieldVal:
		return true
	case types.MethodVal, types.MethodExpr:
		fn, _ := s.Obj().(*types.Func)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return true
		}
		_, ptrRecv := sig.Recv().Type().Underlying().(*types.Pointer)
		return !ptrRecv // value-receiver method on *T derefs the pointer
	}
	return false
}
