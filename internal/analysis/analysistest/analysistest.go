// Package analysistest runs istlint analyzers over testdata packages and
// checks their diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A testdata source line carrying an expected diagnostic is annotated with a
// trailing comment of quoted regular expressions:
//
//	res := lp.Solve(p).X // want `read directly off the Solve call`
//
// Every diagnostic must match a want on its line and every want must be
// matched by a diagnostic; //lint:ignore suppression is applied first, so
// testdata can also assert that justified suppressions are honored.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ist/internal/analysis"
)

// Run loads testdata/src/<pkg> (relative to the calling test's directory),
// applies the analyzer, and reports any mismatch between diagnostics and
// want annotations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	loaded, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Check([]*analysis.Package{loaded}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants, err := parseWants(loaded)
	if err != nil {
		t.Fatal(err)
	}

	matched := map[*want]bool{}
diag:
	for _, d := range diags {
		for _, w := range wants {
			if !matched[w] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[w] = true
				continue diag
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func parseWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(strings.TrimSpace(text[idx+len("want "):]))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// parsePatterns reads a space-separated sequence of Go string literals
// (double- or back-quoted).
func parsePatterns(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted pattern, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		lit := s[:end+2]
		p, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", lit, err)
		}
		out = append(out, p)
		s = s[end+2:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}
