package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsNilAnalyzer enforces the nil-safety contract of the observability layer
// (PR 4): library code emits trace events only through the nil-safe wrapper
// functions of internal/obs (obs.Emit, obs.QuestionAsked, obs.LPSolve, ...),
// never by calling Observer.Event directly. The observer threaded through an
// algorithm is nil on the uninstrumented fast path — a direct o.Event(...)
// panics exactly when no one is watching, and the wrappers are also where
// the "observation is passive" guarantee lives (they drop events instead of
// changing control flow).
//
// Flagged in non-test, non-main packages: any call x.Event(...) where the
// static type of x implements ist/internal/obs.Observer. Exempt entirely:
//
//   - package main (CLIs construct concrete observers they know are non-nil);
//   - _test.go files;
//   - internal/obs itself (the wrappers and Combine are the sanctioned call
//     sites).
var ObsNilAnalyzer = &Analyzer{
	Name: "obsnil",
	Doc:  "flags direct Observer.Event calls in library packages; use the nil-safe obs wrappers",
	Run:  runObsNil,
}

// obsNilExemptSuffixes lists package paths allowed to call Event directly.
var obsNilExemptSuffixes = []string{
	"internal/obs",
}

func runObsNil(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLIs wire concrete, known-non-nil observers
	}
	for _, suffix := range obsNilExemptSuffixes {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			return nil
		}
	}
	iface := observerInterface(pass.Pkg)
	if iface == nil {
		return nil // the package cannot even name an Observer
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Event" {
				return true
			}
			if _, isPkg := packageOf(pass, sel); isPkg {
				return true // a package-level Event function, not a method
			}
			t := pass.TypeOf(sel.X)
			if t == nil || !types.Implements(t, iface) {
				return true
			}
			pass.Reportf(call.Pos(), "direct Observer.Event call panics on the nil (uninstrumented) observer; emit through the nil-safe obs wrappers (obs.Emit and friends)")
			return true
		})
	}
	return nil
}

// observerInterface finds ist/internal/obs.Observer in the package's
// transitive imports, or nil if the package never touches obs.
func observerInterface(root *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if strings.HasSuffix(p.Path(), "internal/obs") {
			obj := p.Scope().Lookup("Observer")
			if obj == nil {
				return nil
			}
			iface, _ := obj.Type().Underlying().(*types.Interface)
			return iface
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(root)
}
