package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SpanEndAnalyzer closes the instrumentation loop of internal/obs: a span
// that is started but never ended silently vanishes — it is never delivered
// to the sink, so the trace shows a hole exactly where something
// interesting (usually an early error return) happened. The check is the
// span-lifecycle sibling of locksafe's lock balance: every local variable
// holding the result of Tracer.Start or Span.StartChild must reach an
// End/EndAt (or a defer of one) on every path to a return.
//
// A span that escapes the function — passed as an argument, returned,
// stored in a field or composite literal, captured by a closure in a
// non-End position — is someone else's responsibility and is exempt, as
// are panic paths (the runtime unwinds; there is no caller-visible leak to
// report). Deliberate fire-and-forget spans carry a
// `//lint:ignore spanend <reason>`.
var SpanEndAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "flags obs spans (Tracer.Start / Span.StartChild) that do not reach End on every path",
	Run:  runSpanEnd,
}

// spanState is the per-variable lattice. ssMixed covers paths that
// disagree (started on one, ended on another): the analysis stays silent
// there rather than guessing, exactly like locksafe.
type spanState uint8

const (
	ssStarted  spanState = iota + 1 // holds a live span, no End scheduled
	ssEnded                         // End/EndAt reached on this path
	ssDeferred                      // a defer guarantees End at exit
	ssEscaped                       // left the function's custody
	ssMixed                         // conflicting paths
)

// spanFact maps a span variable (keyed by its defining object, so
// shadowing cannot alias two spans) to its state. Treated as immutable.
type spanFact map[*types.Var]spanState

func (f spanFact) with(v *types.Var, s spanState) spanFact {
	out := make(spanFact, len(f)+1)
	for k, val := range f {
		out[k] = val
	}
	out[v] = s
	return out
}

func runSpanEnd(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fb := range funcBodies(f) {
			checkSpanEnd(pass, fb)
		}
	}
	return nil
}

func checkSpanEnd(pass *Pass, fb funcBody) {
	g := BuildCFG(fb.body)
	an := FlowAnalysis[spanFact]{
		Entry:    spanFact{},
		Transfer: func(n ast.Node, fact spanFact) spanFact { return spanTransfer(pass, n, fact) },
		Join:     joinSpanFacts,
		Equal:    equalSpanFacts,
	}
	in := SolveFlow(g, an)

	for _, ef := range ExitFacts(g, an, in) {
		if es, ok := ef.Last.(*ast.ExprStmt); ok && isNoReturnCall(es.X) {
			continue // a panicking path unwinds; nothing to End
		}
		pos := fb.body.End() - 1
		if ef.Last != nil {
			pos = ef.Last.Pos()
		}
		var leaked []string
		for v, s := range ef.Fact {
			if s == ssStarted {
				leaked = append(leaked, v.Name())
			}
		}
		sort.Strings(leaked)
		for _, name := range leaked {
			pass.Reportf(pos, "span %s is never ended on this path; call %s.End() before %s returns here or defer it",
				name, name, fb.name)
		}
	}
}

func spanTransfer(pass *Pass, n ast.Node, fact spanFact) spanFact {
	for _, op := range spanOps(pass, n) {
		fact = fact.with(op.v, op.state)
	}
	return fact
}

func joinSpanFacts(a, b spanFact) spanFact {
	out := make(spanFact, len(a))
	merge := func(v, w spanState) spanState {
		switch {
		case v == w:
			return v
		case v == ssEscaped || w == ssEscaped:
			return ssEscaped
		default:
			return ssMixed
		}
	}
	for k, v := range a {
		if w, ok := b[k]; ok {
			out[k] = merge(v, w)
		} else if v == ssStarted {
			// Started on one path, never seen on the other: conflicting.
			out[k] = ssMixed
		} else {
			out[k] = v
		}
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			if v == ssStarted {
				out[k] = ssMixed
			} else {
				out[k] = v
			}
		}
	}
	return out
}

func equalSpanFacts(a, b spanFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// spanOp is one state transition extracted from a leaf node.
type spanOp struct {
	v     *types.Var
	state spanState
	pos   token.Pos
}

// spanOps extracts span lifecycle transitions from one leaf node. The
// classification runs in two passes: first every *benign* occurrence of a
// span variable is recorded (assignment target, receiver of an obs method
// call, nil comparison); then any remaining occurrence demotes the
// variable to escaped — it left this function's custody and the balance
// obligation moves with it.
func spanOps(pass *Pass, n ast.Node) []spanOp {
	var ops []spanOp
	benign := map[*ast.Ident]bool{}

	// Pass 1: creations, End calls, other obs method receivers, nil checks.
	inspectLeaf(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) != len(m.Rhs) {
				return true
			}
			for i, lhs := range m.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				benign[id] = true
				v, _ := pass.Info.ObjectOf(id).(*types.Var)
				if v == nil {
					continue
				}
				if call, ok := ast.Unparen(m.Rhs[i]).(*ast.CallExpr); ok && isSpanCreation(pass, call) {
					ops = append(ops, spanOp{v: v, state: ssStarted, pos: call.Pos()})
				} else if isObsSpanPtr(pass.TypeOf(lhs)) {
					// Reassigned from something we cannot follow (a field, a
					// helper's return): custody is unclear, stop tracking.
					ops = append(ops, spanOp{v: v, state: ssEscaped, pos: m.Pos()})
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || !isObsMethod(pass, sel) {
				return true
			}
			benign[id] = true
			v, _ := pass.Info.ObjectOf(id).(*types.Var)
			if v == nil {
				return true
			}
			switch sel.Sel.Name {
			case "End", "EndAt":
				st := ssEnded
				if insideDefer(n, m) {
					st = ssDeferred
				}
				ops = append(ops, spanOp{v: v, state: st, pos: m.Pos()})
			}
		case *ast.BinaryExpr:
			if m.Op == token.EQL || m.Op == token.NEQ {
				for _, side := range []ast.Expr{m.X, m.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok {
						benign[id] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: any other mention of a span-typed variable is an escape —
	// argument, return value, field store, composite literal, closure use.
	inspectLeaf(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || benign[id] {
			return true
		}
		v, _ := pass.Info.ObjectOf(id).(*types.Var)
		if v == nil || !isObsSpanPtr(v.Type()) {
			return true
		}
		ops = append(ops, spanOp{v: v, state: ssEscaped, pos: id.Pos()})
		return true
	})

	// Pass 3: function literals, which inspectLeaf deliberately skips (their
	// statements belong to another CFG) but which can capture span variables.
	// `defer func() { sp.End() }()` guarantees the End at exit, so the
	// capture counts as deferred; any other closure capture is an escape —
	// the closure's schedule, not this path, decides when End runs.
	_, isDefer := n.(*ast.DeferStmt)
	ast.Inspect(n, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(b ast.Node) bool {
			id, ok := b.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := pass.Info.ObjectOf(id).(*types.Var)
			if v == nil || !isObsSpanPtr(v.Type()) {
				return true
			}
			ops = append(ops, spanOp{v: v, state: ssEscaped, pos: id.Pos()})
			return true
		})
		if isDefer {
			ast.Inspect(lit.Body, func(b ast.Node) bool {
				call, ok := b.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndAt") || !isObsMethod(pass, sel) {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					return true
				}
				if v, _ := pass.Info.ObjectOf(id).(*types.Var); v != nil {
					ops = append(ops, spanOp{v: v, state: ssDeferred, pos: call.Pos()})
				}
				return true
			})
		}
		return false // the literal's own body gets its own CFG pass
	})
	return ops
}

// insideDefer reports whether call is (part of) the deferred call of n.
func insideDefer(n ast.Node, call *ast.CallExpr) bool {
	d, ok := n.(*ast.DeferStmt)
	if !ok {
		return false
	}
	if d.Call == call {
		return true
	}
	// defer func() { sp.End() }(): the End runs at exit too.
	inside := false
	ast.Inspect(d.Call, func(m ast.Node) bool {
		if m == call {
			inside = true
		}
		return !inside
	})
	return inside
}

// isSpanCreation reports whether call starts a span: a method named Start
// or StartChild, declared in internal/obs, returning *obs.Span.
func isSpanCreation(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Start" && sel.Sel.Name != "StartChild" {
		return false
	}
	return isObsMethod(pass, sel) && isObsSpanPtr(pass.TypeOf(call))
}

// isObsMethod reports whether sel resolves to a method declared in the
// internal/obs package.
func isObsMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, _ := pass.Info.ObjectOf(sel.Sel).(*types.Func)
	return fn != nil && fn.Pkg() != nil && isObsPkgPath(fn.Pkg().Path())
}

// isObsSpanPtr reports whether t is *obs.Span.
func isObsSpanPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && isObsPkgPath(obj.Pkg().Path())
}

func isObsPkgPath(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}
