package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestDetPar(t *testing.T) {
	analysistest.Run(t, analysis.DetParAnalyzer, "detpar")
}

// TestDetParSkipsMain asserts that package main (CLI binaries) is exempt.
func TestDetParSkipsMain(t *testing.T) {
	analysistest.Run(t, analysis.DetParAnalyzer, "detparmain")
}
