package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the control-flow half of the dataflow layer (DESIGN.md §11):
// an intraprocedural CFG built from a function body's go/ast, consumed by
// the forward worklist solver in dataflow.go. The flow-sensitive analyzers
// (locksafe, goroleak, errflow, nilguard) are built on the pair.
//
// Design notes:
//
//   - Blocks hold only "leaf" statements (assignments, calls, sends,
//     returns, defers, ...) plus at most one trailing branch condition;
//     compound statements (if/for/switch/select) are decomposed into edges.
//   - A block that ends on a condition records it in Cond; Succs[0] is the
//     edge taken when Cond is true and Succs[1] when it is false. This is
//     what gives errflow and nilguard their path sensitivity: the solver
//     refines facts per edge through FlowAnalysis.Refine.
//   - Expression-less switches are desugared into an if/else-if chain so a
//     `case err != nil:` arm refines like the equivalent if-statement.
//   - Statements that cannot complete normally (return, panic, os.Exit,
//     log.Fatal*, runtime.Goexit, t.Fatal*) edge to the synthetic Exit
//     block. Exit is also where falling off the end of the body lands, so
//     "fact at Exit" means "fact at every function termination".
//   - defer statements stay in their block (so an analyzer sees *where* the
//     defer was registered, which is the point that guarantees the deferred
//     call will run) and are additionally collected in CFG.Defers.
type CFG struct {
	// Blocks in creation order; Blocks[0] is Entry, Blocks[1] is Exit.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the function, in source order,
	// regardless of path.
	Defers []*ast.DeferStmt
}

// Block is a straight-line run of statements with no internal control flow.
type Block struct {
	Index int
	// Nodes are the block's leaf statements in execution order. When Cond
	// is non-nil it is also the last element of Nodes (conditions can have
	// side effects and must flow through Transfer like any node).
	Nodes []ast.Node
	// Cond, when non-nil, is the branch condition ending the block:
	// Succs[0] is the true edge, Succs[1] the false edge.
	Cond  ast.Expr
	Succs []*Block
	// desc labels the block's role for CFG dumps and tests ("entry",
	// "exit", "for.head", "select.case", ...).
	desc string
}

// BuildCFG constructs the CFG of one function body. Nested function
// literals are NOT traversed — each deserves its own CFG (their bodies run
// at some other time, on some other goroutine; splicing them in here would
// be simply wrong).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmt(body)
	// Falling off the end of the body is an implicit return.
	b.jump(b.cfg.Exit)
	b.resolveGotos()
	return b.cfg
}

// Reachable returns the set of blocks reachable from Entry. Code after an
// unconditional return/panic builds blocks that are absent here; analyzers
// use this to skip dead statements.
func (g *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// String renders the graph compactly for tests and debugging:
//
//	b0(entry): -> b2
//	b2(for.head): [cond] -> b3 b4
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", b.Index, b.desc)
		if len(b.Nodes) > 0 {
			fmt.Fprintf(&sb, " %d node(s)", len(b.Nodes))
		}
		if b.Cond != nil {
			sb.WriteString(" [cond]")
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// loops/switches are the enclosing break/continue targets, innermost
	// last. label is "" for unlabeled scopes.
	scopes []scope
	// labels maps a pending label to apply to the next loop/switch/select.
	pendingLabel string
	// gotos are unresolved goto edges; labeled targets fill in later.
	gotos       []gotoEdge
	labelBlocks map[string]*Block
}

type scope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select scopes
}

type gotoEdge struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock(desc string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), desc: desc}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge to dst and leaves
// the builder on a fresh (possibly unreachable) block.
func (b *cfgBuilder) jump(dst *Block) {
	b.cur.Succs = append(b.cur.Succs, dst)
	b.cur = b.newBlock("after." + b.cur.desc)
}

// edge adds an edge without retiring the current block.
func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// branch ends the current block on cond: trueB on success, falseB on
// failure. cond may be nil (unconditional multi-way dispatch; callers add
// edges themselves).
func (b *cfgBuilder) branch(cond ast.Expr, trueB, falseB *Block) {
	b.cur.Nodes = append(b.cur.Nodes, cond)
	b.cur.Cond = cond
	b.cur.Succs = append(b.cur.Succs, trueB, falseB)
}

func (b *cfgBuilder) pushScope(s scope) { b.scopes = append(b.scopes, s) }
func (b *cfgBuilder) popScope()         { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if label == "" || s.label == label {
			return s.breakTo
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if s.continueTo != nil && (label == "" || s.label == label) {
			return s.continueTo
		}
	}
	return nil
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if dst, ok := b.labelBlocks[g.label]; ok {
			b.edge(g.from, dst)
		} else {
			// Unknown label (shouldn't type-check); be safe, edge to exit.
			b.edge(g.from, b.cfg.Exit)
		}
	}
}

// stmt translates one statement, growing the graph from b.cur.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		thenB := b.newBlock("if.then")
		elseB := b.newBlock("if.else")
		joinB := b.newBlock("if.join")
		b.branch(s.Cond, thenB, elseB)
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, joinB)
		b.cur = elseB
		if s.Else != nil {
			b.stmt(s.Else)
		}
		b.edge(b.cur, joinB)
		b.cur = joinB

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		post := b.newBlock("for.post")
		after := b.newBlock("for.after")
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.branch(s.Cond, body, after)
		} else {
			b.edge(b.cur, body)
			// No false edge: for{} only leaves via break/return.
		}
		b.pushScope(scope{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmt(s.Body)
		b.popScope()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edge(b.cur, head)
		// The whole RangeStmt is the head's node so analyzers see the
		// per-iteration assignment and the ranged expression (a channel
		// range is a receive).
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body)
		b.edge(head, after)
		b.pushScope(scope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.popScope()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		after := b.newBlock("switch.after")
		b.pushScope(scope{label: label, breakTo: after})
		if s.Tag != nil {
			b.add(s.Tag)
			b.tagSwitch(s.Body, after)
		} else {
			b.condSwitch(s.Body, after)
		}
		b.popScope()
		b.cur = after

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		after := b.newBlock("typeswitch.after")
		b.pushScope(scope{label: label, breakTo: after})
		b.tagSwitch(s.Body, after)
		b.popScope()
		b.cur = after

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock("select.after")
		head := b.cur
		b.pushScope(scope{label: label, breakTo: after})
		var bodies []*Block
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			bodies = append(bodies, b.cur)
		}
		b.popScope()
		for _, end := range bodies {
			b.edge(end, after)
		}
		if len(s.Body.List) == 0 {
			// select{} blocks forever; no edge to after.
			b.edge(head, b.cfg.Exit)
		}
		b.cur = after

	case *ast.LabeledStmt:
		// Expose the label both to the following loop/switch (for labeled
		// break/continue) and as a goto target.
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		if b.labelBlocks == nil {
			b.labelBlocks = map[string]*Block{}
		}
		b.labelBlocks[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if dst := b.findBreak(label); dst != nil {
				b.add(s)
				b.jump(dst)
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if dst := b.findContinue(label); dst != nil {
				b.add(s)
				b.jump(dst)
			}
		case token.GOTO:
			b.add(s)
			from := b.cur
			b.cur = b.newBlock("after.goto")
			b.gotos = append(b.gotos, gotoEdge{from: from, label: s.Label.Name})
		case token.FALLTHROUGH:
			// Handled structurally by tagSwitch; nothing to do here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isNoReturnCall(s.X) {
			b.jump(b.cfg.Exit)
		}

	case nil:
		// Absent optional statement.

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: leaves.
		b.add(s)
	}
}

// tagSwitch wires a tag (or type) switch: every case body is an alternative
// successor of the current block; fallthrough chains bodies.
func (b *cfgBuilder) tagSwitch(body *ast.BlockStmt, after *Block) {
	head := b.cur
	type caseBlocks struct {
		clause *ast.CaseClause
		blk    *Block
	}
	var cases []caseBlocks
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock("case")
		if cc.List == nil {
			hasDefault = true
			blk.desc = "case.default"
		}
		b.edge(head, blk)
		cases = append(cases, caseBlocks{cc, blk})
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, c := range cases {
		b.cur = c.blk
		// Case expressions are evaluated (they can be calls).
		for _, e := range c.clause.List {
			b.add(e)
		}
		falls := false
		for _, st := range c.clause.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(cases) {
			b.edge(b.cur, cases[i+1].blk)
		} else {
			b.edge(b.cur, after)
		}
	}
}

// condSwitch desugars `switch { case c1: ... }` into an if/else-if chain so
// that each case condition refines facts exactly like an if would — this is
// what lets errflow treat `switch { case err != nil: return }` as a check.
func (b *cfgBuilder) condSwitch(body *ast.BlockStmt, after *Block) {
	var defaultClause *ast.CaseClause
	var conds []*ast.CaseClause
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
		} else {
			conds = append(conds, cc)
		}
	}
	for _, cc := range conds {
		caseB := b.newBlock("case")
		nextB := b.newBlock("case.next")
		if len(cc.List) == 1 {
			b.branch(cc.List[0], caseB, nextB)
		} else {
			// `case a, b:` — evaluate both, branch without refinement.
			for _, e := range cc.List {
				b.add(e)
			}
			b.edge(b.cur, caseB)
			b.edge(b.cur, nextB)
		}
		b.cur = caseB
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
		b.cur = nextB
	}
	if defaultClause != nil {
		for _, st := range defaultClause.Body {
			b.stmt(st)
		}
	}
	b.edge(b.cur, after)
}

// isNoReturnCall recognizes calls that terminate the path: panic, os.Exit,
// runtime.Goexit, log.Fatal*, and testing's t.Fatal*/t.Skip* (the latter
// matter because testdata fixtures sometimes model them).
func isNoReturnCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			switch {
			case id.Name == "os" && name == "Exit",
				id.Name == "runtime" && name == "Goexit",
				id.Name == "log" && strings.HasPrefix(name, "Fatal"):
				return true
			}
		}
		return strings.HasPrefix(name, "Fatal") || name == "Skip" || name == "SkipNow" || name == "Skipf"
	}
	return false
}

// funcBodies yields every function body in the file together with the node
// that owns it (FuncDecl or FuncLit), outermost first. Analyzers iterate
// this instead of walking for FuncDecls so closures get their own CFGs.
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, funcBody{owner: n, body: n.Body, name: n.Name.Name})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{owner: n, body: n.Body, name: "func literal"})
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].body.Pos() < out[j].body.Pos() })
	return out
}

type funcBody struct {
	owner ast.Node
	body  *ast.BlockStmt
	name  string
}

// inspectLeaf walks the AST below a CFG leaf node without descending into
// nested function literals — their statements belong to another CFG. A
// RangeStmt leaf (a range head) exposes only its ranged expression and
// iteration variables: the loop body lives in its own blocks.
func inspectLeaf(n ast.Node, visit func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		for _, sub := range []ast.Node{r.Key, r.Value, r.X} {
			if sub != nil {
				inspectLeaf(sub, visit)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}
