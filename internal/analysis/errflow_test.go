package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, analysis.ErrFlowAnalyzer, "errflow")
}
