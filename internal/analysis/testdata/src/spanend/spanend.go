// Package spanenddata exercises the spanend analyzer: span-lifecycle
// balance on every path, defer handling, and escape exemptions.
package spanenddata

import (
	"errors"
	"time"

	"ist/internal/obs"
)

var errFail = errors.New("fail")

type holder struct {
	sp *obs.Span
}

// --- balance -------------------------------------------------------------

func earlyReturnLeak(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	if fail {
		return errFail // want `span sp is never ended on this path`
	}
	sp.End()
	return nil
}

func fallOffEndLeak(tr *obs.Tracer) {
	sp := tr.Start("work")
	sp.SetAttr("k", "v") // want `span sp is never ended on this path`
}

func deferBalanced(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

func deferClosureBalanced(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	defer func() { sp.End() }()
	if fail {
		return errFail
	}
	return nil
}

func manualBalanced(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	if fail {
		sp.SetStatus(errFail)
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

func endAtBalanced(tr *obs.Tracer) {
	sp := tr.Start("point")
	sp.EndAt(time.Time{}) // EndAt counts as an End
}

func childLeak(parent *obs.Span, fail bool) error {
	child := parent.StartChild("step")
	if fail {
		return errFail // want `span child is never ended on this path`
	}
	child.End()
	return nil
}

func panicPathOK(tr *obs.Tracer, bad bool) {
	sp := tr.Start("work")
	if bad {
		panic("corrupt") // runtime unwinds; not a leak the caller can see
	}
	sp.End()
}

// --- escapes are exempt --------------------------------------------------

func escapeByReturn(tr *obs.Tracer) *obs.Span {
	sp := tr.Start("handed-off")
	return sp // custody moves to the caller
}

func escapeByArg(tr *obs.Tracer) {
	sp := tr.Start("handed-off")
	adopt(sp)
}

func escapeByField(tr *obs.Tracer, h *holder) {
	sp := tr.Start("handed-off")
	h.sp = sp
}

func escapeByLiteral(tr *obs.Tracer) holder {
	sp := tr.Start("handed-off")
	return holder{sp: sp}
}

func adopt(sp *obs.Span) {
	sp.End()
}

// nilCheckIsNotAnEscape: comparing against nil keeps the obligation here.
func nilCheckIsNotAnEscape(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	if sp != nil && fail {
		return errFail // want `span sp is never ended on this path`
	}
	sp.End()
	return nil
}

// --- unrelated Start methods are not tracked -----------------------------

type stopwatch struct{}

func (stopwatch) Start(string) *stopwatch { return &stopwatch{} }

func otherStart(w stopwatch) {
	_ = w.Start("not a span") // different package: allowed
}

// --- suppression ---------------------------------------------------------

func suppressed(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("fire-and-forget")
	_ = sp.Context()
	if fail {
		//lint:ignore spanend this probe span is intentionally left open for the sink flush test
		return errFail
	}
	sp.End()
	return nil
}
