// Package main asserts the detpar analyzer exempts CLI binaries: this racy
// fan-in must produce no diagnostics.
package main

import "sync"

func main() {
	var total int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // main packages are exempt
		}()
	}
	wg.Wait()
	_ = total
}
