// Package nilguarddata exercises the nilguard analyzer: a pointer or
// interface that is nil-checked on one path must not be dereferenced
// unguarded on another.
package nilguarddata

type observer interface {
	event(string)
}

type metrics struct {
	count int
}

// observe is a pointer-receiver method: calling it on a nil *metrics is the
// repo's sanctioned nil-safe wrapper idiom.
func (m *metrics) observe() {
	if m == nil {
		return
	}
	m.count++
}

// snapshot has a value receiver: calling it through a nil pointer derefs.
func (m metrics) snapshot() int { return m.count }

// --- flagged -------------------------------------------------------------

func forgotTheReturn(o observer) {
	if o == nil {
		println("uninstrumented") // forgot to return here
	}
	o.event("x") // want `o is nil-checked on another path but dereferenced unguarded here`
}

func nilOnEveryPath(m *metrics) int {
	if m == nil {
		return m.count // want `m is nil on every path reaching this dereference`
	}
	return m.count
}

func valueReceiverOnNilPointer(m *metrics) int {
	if m == nil {
		println("no metrics")
	}
	return m.snapshot() // want `m is nil-checked on another path but dereferenced unguarded here`
}

func fieldAccessAfterPartialGuard(m *metrics, verbose bool) int {
	if verbose && m == nil {
		println("no metrics")
	}
	return m.count // want `m is nil-checked on another path but dereferenced unguarded here`
}

func starDeref(p *int) int {
	if p != nil {
		println("have value")
	}
	return *p // want `p is nil-checked on another path but dereferenced unguarded here`
}

// --- clean ---------------------------------------------------------------

func guardedWithReturn(o observer) {
	if o == nil {
		return
	}
	o.event("x")
}

func guardedElse(m *metrics) int {
	if m == nil {
		return 0
	} else {
		return m.count
	}
}

func pointerReceiverIdiom(m *metrics) {
	if m == nil {
		println("uninstrumented")
	}
	m.observe() // pointer-receiver method: nil-safe by contract
}

func shortCircuitGuard(m *metrics) int {
	if m != nil && m.count > 0 {
		return m.count
	}
	return 0
}

func orGuard(m *metrics) bool {
	return m == nil || m.count == 0
}

func reassignedInNilBranch(m *metrics) int {
	if m == nil {
		m = &metrics{}
	}
	return m.count
}

func untrackedNeverCompared(m *metrics) int {
	return m.count // never compared to nil: assumed managed by the caller
}

func survivedDerefStopsCascade(m *metrics) int {
	if m == nil {
		println("no metrics")
	}
	a := m.count // want `m is nil-checked on another path but dereferenced unguarded here`
	b := m.count // the path survived the first deref; no second report
	return a + b
}

func justified(o observer) {
	if o == nil {
		println("uninstrumented")
	}
	//lint:ignore nilguard the registry rejects nil observers before this point
	o.event("x")
}
