// Package errdropdata exercises the errdrop analyzer.
package errdropdata

import (
	"fmt"
	"os"

	"ist/internal/server"
)

func drops(st server.SessionStore, rec server.SessionRecord) {
	st.Create(rec)   // want `error returned by ist/internal/server.Create is silently discarded`
	defer st.Close() // want `error returned by ist/internal/server.Close is silently discarded`
	localErr()       // want `localErr is silently discarded`
}

func handled(st server.SessionStore, rec server.SessionRecord) error {
	if err := st.Create(rec); err != nil {
		return err
	}
	_ = st.Finish(rec.ID) // explicit, reviewable discard: allowed
	fmt.Println("stdlib drops are staticcheck's business")
	os.Remove("x") // stdlib callee: allowed here
	noError()      // no error in results: allowed
	return localErr()
}

func suppressedDrop(st server.SessionStore) {
	//lint:ignore errdrop best-effort cleanup on an already-failed path
	st.Finish("s1")
}

func localErr() error { return nil }
func noError()        {}
