// Package main shows the detrand analyzer skips command binaries: a CLI may
// legitimately default its -seed flag to the wall clock.
package main

import (
	"math/rand"
	"time"
)

func main() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	_ = rng.Float64()
	_ = rand.Int()
}
