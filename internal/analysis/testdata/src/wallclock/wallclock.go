// Package wallclockdata exercises the wallclock analyzer.
package wallclockdata

import "time"

type clock interface {
	Now() time.Time
}

func direct() time.Time {
	return time.Now() // want `direct wall-clock read time.Now`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `direct wall-clock read time.Since`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `direct wall-clock read time.Until`
}

func injected(clk clock) time.Time {
	return clk.Now() // injected clock: allowed
}

func schedule(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // timers schedule, they do not observe: allowed
}

func suppressedUptime() time.Time {
	//lint:ignore wallclock log decoration only, never reaches algorithm decisions
	return time.Now()
}
