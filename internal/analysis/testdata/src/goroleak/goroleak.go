// Package goroleakdata exercises the goroleak analyzer: goroutines in
// library packages must have a reachable cancellation path.
package goroleakdata

import "context"

type pool struct {
	jobs chan int
	done chan struct{}
}

func work(int) {}

// --- flagged: no way to tell the goroutine to stop ----------------------

func spinForever(p *pool) {
	go func() { // want `no reachable cancellation path`
		for {
			work(0)
		}
	}()
}

func unreachableCancel(p *pool) {
	go func() { // want `no reachable cancellation path`
		for {
			work(0)
		}
		<-p.done // dead code: the loop above never exits
	}()
}

func namedLeaky(p *pool) {
	go p.hotLoop() // want `no reachable cancellation path`
}

func (p *pool) hotLoop() {
	for {
		work(1)
	}
}

// --- clean: a closer can unblock them -----------------------------------

func selectLoop(p *pool, ctx context.Context) {
	go func() {
		for {
			select {
			case j := <-p.jobs:
				work(j)
			case <-ctx.Done():
				return
			}
		}
	}()
}

func rangeOverChannel(p *pool) {
	go func() {
		for j := range p.jobs {
			work(j)
		}
	}()
}

func directReceive(p *pool) {
	go func() {
		<-p.done
		work(0)
	}()
}

func namedMethod(p *pool) {
	go p.drain()
}

func (p *pool) drain() {
	for j := range p.jobs {
		work(j)
	}
}

// transitive: the goroutine body calls a same-package helper that blocks on
// the done channel.
func viaHelper(p *pool) {
	go func() {
		for {
			work(0)
			if p.waitQuiet() {
				return
			}
		}
	}()
}

func (p *pool) waitQuiet() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// mutually recursive helpers with no cancellation anywhere must not hang
// the analysis — and are flagged.
func pingPong(p *pool) {
	go func() { // want `no reachable cancellation path`
		ping(p)
	}()
}

func ping(p *pool) { pong(p) }
func pong(p *pool) { ping(p) }

func justified(p *pool) {
	//lint:ignore goroleak bounded one-shot warmup; exits on its own within a tick
	go func() {
		work(0)
	}()
}
