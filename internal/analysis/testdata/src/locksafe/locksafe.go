// Package locksafedata exercises the locksafe analyzer: lock balance on
// every path, double-lock detection, and blocking calls under a held mutex.
package locksafedata

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int
	f   *os.File
	ch  chan int
	buf []byte
}

// --- balance -------------------------------------------------------------

func earlyReturnLeak(s *store, fail bool) error {
	s.mu.Lock()
	if fail {
		return errFail // want `s\.mu is still held when earlyReturnLeak returns here`
	}
	s.mu.Unlock()
	return nil
}

func deferBalanced(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func manualBalanced(s *store, fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errFail
	}
	s.n++
	s.mu.Unlock()
	return nil
}

func fallOffEndLeak(s *store) {
	s.mu.Lock()
	s.n++ // want `s\.mu is still held when fallOffEndLeak returns here`
}

func panicPathOK(s *store, bad bool) {
	s.mu.Lock()
	if bad {
		panic("corrupt") // runtime unwinds; not a leak the caller waits on
	}
	s.mu.Unlock()
}

func switchLeak(s *store, k int) int {
	s.mu.Lock()
	switch k {
	case 0:
		s.mu.Unlock()
		return 0
	default:
		return s.n // want `s\.mu is still held when switchLeak returns here`
	}
}

// oneSidedLock locks only on one branch and releases on the same branch:
// the merge is mixed, and the analysis stays silent rather than guessing.
func oneSidedLock(s *store, hot bool) {
	if hot {
		s.mu.Lock()
	}
	s.n++
	if hot {
		s.mu.Unlock()
	}
}

// --- double lock ---------------------------------------------------------

func doubleLock(s *store) {
	s.mu.Lock()
	s.mu.Lock() // want `self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

func doubleLockViaDefer(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The relock is both a self-deadlock and (statically) a leak of the
	// second acquisition, so two diagnostics land here.
	s.mu.Lock() // want `self-deadlock` `s\.mu is still held when doubleLockViaDefer returns here`
}

func recursiveRLockOK(s *store) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.rw.RLock() // shared acquisition: not a self-deadlock
	defer s.rw.RUnlock()
	return s.n
}

func relockAfterUnlockOK(s *store) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Lock()
	s.n--
	s.mu.Unlock()
}

func distinctMutexesOK(s *store) {
	s.mu.Lock()
	s.rw.Lock()
	s.rw.Unlock()
	s.mu.Unlock()
}

// --- blocking calls under a lock ----------------------------------------

func sendUnderLock(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- s.n // want `channel send while s\.mu is held`
}

func recvUnderLock(s *store) int {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while s\.mu is held`
	s.mu.Unlock()
	return v
}

func syncUnderLock(s *store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `s\.f\.Sync\(\) \(fsync\) while s\.mu is held`
}

func writeUnderLock(s *store) {
	s.mu.Lock()
	s.f.Write(s.buf) // want `s\.f\.Write\(\) \(stream write\) while s\.mu is held`
	s.mu.Unlock()
}

func sleepUnderLock(s *store) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is held`
	s.mu.Unlock()
}

func blockingAfterUnlockOK(s *store) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	s.ch <- n
	s.f.Sync()
}

// memory-only writes are cheap: a bytes-like concrete receiver is allowed.
type memBuf struct{}

func (memBuf) Write(p []byte) (int, error) { return len(p), nil }

func memWriteUnderLockOK(s *store, b memBuf) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b.Write(s.buf)
}

func justifiedHold(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore locksafe the WAL serializes appends through this lock by design
	s.f.Write(s.buf)
}

var errFail = os.ErrInvalid
