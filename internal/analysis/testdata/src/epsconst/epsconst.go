// Package epsconstdata exercises the epsconst analyzer.
package epsconstdata

const tol = 1e-9 // want `hardcoded tolerance literal 1e-9`

var thresholds = []float64{
	1e-12,    // want `hardcoded tolerance literal 1e-12`
	0.000001, // want `hardcoded tolerance literal 0.000001`
	1e-15,    // want `hardcoded tolerance literal 1e-15`
	1e-300,   // underflow guard, far below tolerance range: allowed
	0.5,      // ordinary number: allowed
	1e-4,     // above the tolerance range: allowed
	123.25,   // ordinary number: allowed
}

func compare(a, b float64) bool {
	return a-b < 1e-9 // want `hardcoded tolerance literal 1e-9`
}

//lint:ignore epsconst demonstrates that justified suppressions are honored
const suppressed = 1e-9
