// Package floatcmpdata exercises the floatcmp analyzer.
package floatcmpdata

import "ist/internal/geom"

const localEps = 1e-9

func equality(a, b float64) {
	_ = a == b // want `raw float64 == comparison`
	_ = a != b // want `raw float64 != comparison`
	_ = a == 0 // structural zero sentinel: allowed
	_ = 0 != b // structural zero sentinel: allowed
	_ = geom.Eq(a, b)
}

func ordering(a, b float64, v, w geom.Vector, h geom.Hyperplane) {
	_ = a < b   // plain float ordering (max-tracking): allowed
	_ = a > 0.5 // constant threshold: allowed

	_ = v.Dot(w) > w.Dot(v)     // want `ordering raw utility values with >`
	_ = v.Dot(w) >= b           // want `ordering raw utility values with >=`
	_ = h.Value(v) < b          // want `ordering raw utility values with <`
	_ = v.Dot(w) >= b-geom.Eps  // tolerance term present: allowed
	_ = h.Value(v) > b+localEps // tolerance term present: allowed
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
	return a != b
}

func unjustifiedSuppression(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b // want `raw float64 == comparison`
}

// intsAreFine shows the analyzer only cares about floats.
func intsAreFine(a, b int) bool { return a == b }
