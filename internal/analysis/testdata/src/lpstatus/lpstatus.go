// Package lpstatusdata exercises the lpstatus analyzer.
package lpstatusdata

import "ist/internal/lp"

func unchecked(p lp.Problem) []float64 {
	res := lp.Solve(p)
	return res.X // want `lp.Result.X read but Result.Status is never checked`
}

func uncheckedValue(p lp.Problem) float64 {
	res := lp.Solve(p)
	return res.Value // want `lp.Result.Value read but Result.Status is never checked`
}

func checked(p lp.Problem) []float64 {
	res := lp.Solve(p)
	if res.Status != lp.Optimal {
		return nil
	}
	return res.X
}

func chained(p lp.Problem) float64 {
	return lp.Solve(p).Value // want `lp.Result.Value read directly off the Solve call`
}

func chainedX(p lp.Problem) []float64 {
	return lp.Solve(p).X // want `lp.Result.X read directly off the Solve call`
}

// escapes hands the whole Result to another function, which is assumed to
// check Status on the caller's behalf.
func escapes(p lp.Problem) float64 {
	res := lp.Solve(p)
	inspect(res)
	return res.Value
}

func inspect(r lp.Result) {}

func statusOnly(p lp.Problem) bool {
	res := lp.Solve(p)
	return res.Status == lp.Optimal
}

func suppressedUse(p lp.Problem) []float64 {
	res := lp.Solve(p)
	//lint:ignore lpstatus this probe only logs X and never acts on it
	return res.X
}
