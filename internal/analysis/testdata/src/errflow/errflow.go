// Package errflowdata exercises the errflow analyzer: a result returned
// alongside an error must not be used on any path before the error is
// consulted.
package errflowdata

import "fmt"

type conn struct{ id int }

func (c *conn) ping() {}

func dial() (*conn, error)            { return nil, nil }
func dialTwo() (*conn, *conn, error)  { return nil, nil, nil }
func readN() (int, error)             { return 0, nil }
func lookup() (map[string]int, error) { return nil, nil }

// --- flagged -------------------------------------------------------------

func straightLine() {
	c, err := dial()
	c.ping() // want `c is used here, but the err returned with it is unchecked`
	_ = err
}

func checkedOnOneBranchOnly(verbose bool) *conn {
	c, err := dial()
	if verbose {
		if err != nil {
			return nil
		}
		c.ping()
	}
	return c // want `c is used here, but the err returned with it is unchecked`
}

func usedInCall() {
	m, err := lookup()
	fmt.Println(len(m)) // want `m is used here, but the err returned with it is unchecked`
	_ = err
}

func siblingResults() {
	a, b, err := dialTwo()
	a.ping() // want `a is used here, but the err returned with it is unchecked`
	if err != nil {
		return
	}
	b.ping() // fine: err checked by now
}

// --- clean ---------------------------------------------------------------

func checkedFirst() {
	c, err := dial()
	if err != nil {
		return
	}
	c.ping()
}

func checkedViaSwitch() {
	c, err := dial()
	switch {
	case err != nil:
		return
	}
	c.ping()
}

func propagation() (*conn, error) {
	c, err := dial()
	return c, err // same statement consults err: propagation, not use
}

func errorFuncConsult() {
	c, err := dial()
	if fmt.Errorf("dial: %w", err) != nil {
		c.ping() // err was consulted (wrapped) before the use
	}
}

func nonNilableResultsIgnored() int {
	n, err := readN()
	_ = err
	return n // int is not deref-prone; out of scope by design
}

func reboundGuard() {
	c, err := dial()
	if err != nil {
		return
	}
	d, err := dial()
	c.ping() // c's guard was already discharged
	_ = err
	_ = d
}

func reassignedValueDropsGuard() {
	c, err := dial()
	c = &conn{id: 1}
	c.ping() // c no longer holds the fallible result
	_ = err
}

func justified() {
	c, err := dial()
	//lint:ignore errflow dial's contract returns a usable sentinel conn even on error
	c.ping()
	_ = err
}
