// Package main is exempt from goroleak: a CLI's goroutines die with the
// process by design. No diagnostics expected anywhere in this file.
package main

func work() {}

func spawn() {
	go func() {
		for {
			work()
		}
	}()
}

func main() { spawn() }
