// Package detpardata exercises the detpar analyzer.
package detpardata

import (
	"sync"

	"ist/internal/parallel"
)

func appendRace(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, 1) // want `append to captured out`
		}()
	}
	wg.Wait()
	return out
}

func counterRace(n int) int {
	total := 0
	parallel.Do(4, n, func(i int) {
		total += i // want `write to captured total`
	})
	return total
}

func mapRace(keys []string) map[string]int {
	m := map[string]int{}
	parallel.Do(2, len(keys), func(i int) {
		m[keys[i]] = i // want `write to captured map m`
	})
	return m
}

type tally struct{ n int }

func fieldRace(t *tally, n int) {
	parallel.Do(4, n, func(i int) {
		t.n++ // want `field write on captured t`
	})
}

func orderedTaskRace(n int) int {
	sum := 0
	parallel.ForEachOrdered(4, n, func(i int) int {
		sum += i // want `write to captured sum`
		return i
	}, func(i, r int) {})
	return sum
}

func slots(n int) []int {
	results := make([]int, n)
	parallel.Do(4, n, func(i int) {
		results[i] = i * i // index-ordered slot: allowed
	})
	return results
}

func orderedCommit(n int) []int {
	var kept []int
	parallel.ForEachOrdered(4, n, func(i int) int {
		return i * 2
	}, func(i, r int) {
		kept = append(kept, r) // commit runs serialized on the caller: allowed
	})
	return kept
}

func guarded(n int) int {
	var mu sync.Mutex
	total := 0
	parallel.Do(4, n, func(i int) {
		mu.Lock()
		total += i // held under mu: allowed (lock discipline is locksafe's job)
		mu.Unlock()
	})
	return total
}

func locals(n int) []int {
	results := make([]int, n)
	parallel.Do(4, n, func(i int) {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j // local to the task: allowed
		}
		results[i] = acc
	})
	return results
}

func sends(n int) <-chan int {
	ch := make(chan int, n)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i // channel sends synchronize: allowed
		}
		close(ch)
	}()
	return ch
}

func suppressed(n int) int {
	done := 0
	go func() {
		//lint:ignore detpar progress hint only; a torn read is acceptable here
		done = n
	}()
	return done
}
