// Package detranddata exercises the detrand analyzer.
package detranddata

import (
	"math/rand"
	"time"
)

func globalState() float64 {
	rand.Shuffle(2, func(i, j int) {}) // want `global math/rand.Shuffle`
	return rand.Float64()              // want `global math/rand.Float64`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand.NewSource seeded from the wall clock`
}

func deterministic(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // injected seed: allowed
}

func injected(rng *rand.Rand) float64 {
	return rng.Float64() // method on injected generator: allowed
}

func suppressedJitter() int {
	//lint:ignore detrand cache-key jitter never reaches algorithm decisions
	return rand.Intn(16)
}
