// Package main must be exempt from the wallclock analyzer: CLI binaries
// legitimately read the real clock.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
