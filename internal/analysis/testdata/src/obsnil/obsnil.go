// Package obsnildata exercises the obsnil analyzer.
package obsnildata

import "ist/internal/obs"

func direct(o obs.Observer) {
	o.Event(obs.Event{Kind: obs.KindQuestionAsked}) // want `direct Observer.Event call`
}

func directConcrete(c *obs.Counting) {
	c.Event(obs.Event{Kind: obs.KindHalfspaceCut}) // want `direct Observer.Event call`
}

func wrapped(o obs.Observer) {
	obs.Emit(o, obs.Event{Kind: obs.KindQuestionAsked}) // nil-safe wrapper: allowed
	obs.QuestionAsked(o, 0, 1)                          // nil-safe wrapper: allowed
}

// unrelated has an Event method that does not implement obs.Observer; calls
// to it must not be flagged.
type unrelated struct{}

func (unrelated) Event(n int) int { return n + 1 }

func otherEvent(u unrelated) int {
	return u.Event(3) // not an Observer: allowed
}

func suppressed(o obs.Observer) {
	//lint:ignore obsnil caller guarantees a non-nil observer on this path
	o.Event(obs.Event{Kind: obs.KindStopConditionCheck})
}
