package analysis

import "go/ast"

// This file is the solver half of the dataflow layer (DESIGN.md §11): a
// generic forward worklist algorithm over the CFGs of cfg.go. An analyzer
// describes its lattice with a FlowAnalysis — an entry fact, a transfer
// function over leaf nodes, a join, and (optionally) an edge refinement for
// branch conditions — and gets back the fixpoint fact at every block entry.
//
// Facts must behave as immutable values: Transfer/Refine/Join return fresh
// facts rather than mutating their inputs, because a block's out-fact flows
// into several successors and a loop re-applies Transfer arbitrarily often.
// The concrete analyzers use small copy-on-write maps; function bodies are
// a few dozen blocks, so the cost is noise.

// FlowAnalysis describes one forward dataflow problem over fact type F.
type FlowAnalysis[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Transfer applies one leaf node's effect to the incoming fact.
	Transfer func(n ast.Node, fact F) F
	// Refine, when non-nil, sharpens the fact along the two edges of a
	// block ending in condition cond: it is called with branch=true for the
	// Succs[0] edge and branch=false for Succs[1]. This is the
	// path-sensitivity hook (nil-checks, err-checks).
	Refine func(cond ast.Expr, branch bool, fact F) F
	// Join merges facts where paths meet. It must be commutative,
	// associative and idempotent (a semilattice join), or the worklist may
	// not terminate.
	Join func(a, b F) F
	// Equal reports fact equality; the fixpoint stops when nothing changes.
	Equal func(a, b F) bool
}

// SolveFlow runs the forward worklist to fixpoint and returns the fact at
// the entry of every reachable block. Unreachable blocks are absent.
func SolveFlow[F any](g *CFG, a FlowAnalysis[F]) map[*Block]F {
	in := map[*Block]F{g.Entry: a.Entry}
	// Seed with every reachable block so work-order is deterministic-ish;
	// correctness does not depend on order, only termination speed.
	reachable := g.Reachable()
	work := []*Block{g.Entry}
	inWork := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		out := blockOut(a, b, in[b])
		for i, s := range b.Succs {
			if !reachable[s] {
				continue
			}
			f := out
			if b.Cond != nil && a.Refine != nil && i < 2 {
				f = a.Refine(b.Cond, i == 0, out)
			}
			old, ok := in[s]
			merged := f
			if ok {
				merged = a.Join(old, f)
			}
			if !ok || !a.Equal(old, merged) {
				in[s] = merged
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// blockOut pushes a fact through every node of a block.
func blockOut[F any](a FlowAnalysis[F], b *Block, fact F) F {
	for _, n := range b.Nodes {
		fact = a.Transfer(n, fact)
	}
	return fact
}

// WalkFlow replays the solved facts node by node, calling visit with the
// fact in force immediately BEFORE each node executes. This is where
// analyzers report: the before-fact is exactly "what is known on the paths
// reaching this statement". Unreachable blocks are skipped — dead code
// cannot break a runtime invariant.
func WalkFlow[F any](g *CFG, a FlowAnalysis[F], in map[*Block]F, visit func(n ast.Node, before F)) {
	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			visit(n, fact)
			fact = a.Transfer(n, fact)
		}
	}
}

// ExitFacts returns, for every reachable predecessor of Exit, the fact
// after the block's last node together with that node (nil when the block
// is empty — e.g. the entry of an empty function). locksafe uses this for
// the all-paths lock-balance check.
func ExitFacts[F any](g *CFG, a FlowAnalysis[F], in map[*Block]F) []ExitFact[F] {
	var out []ExitFact[F]
	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok {
			continue
		}
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits && b != g.Exit {
			continue
		}
		if b == g.Exit {
			continue
		}
		var last ast.Node
		for _, n := range b.Nodes {
			fact = a.Transfer(n, fact)
			last = n
		}
		out = append(out, ExitFact[F]{Block: b, Last: last, Fact: fact})
	}
	return out
}

// ExitFact is one path's state at function termination.
type ExitFact[F any] struct {
	Block *Block
	Last  ast.Node
	Fact  F
}
