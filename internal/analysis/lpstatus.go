package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LPStatusAnalyzer flags code that reads lp.Result.X or lp.Result.Value in a
// function that never inspects the same Result's Status. An infeasible or
// unbounded solve leaves X and Value meaningless (zero-valued), so acting on
// them without the Status == lp.Optimal check turns a numeric edge case into
// a silently wrong geometric decision.
//
// The check is flow-insensitive per function: a Result-typed variable whose
// .X/.Value is read must have a .Status read somewhere in the same function.
// Results that escape the function whole (returned, passed as an argument,
// re-assigned) are assumed to be checked by the consumer. Chained access
// like lp.Solve(p).X can never be status-checked and is always flagged.
var LPStatusAnalyzer = &Analyzer{
	Name: "lpstatus",
	Doc:  "flags lp.Result.X/.Value reads on paths where Result.Status was never checked",
	Run:  runLPStatus,
}

func runLPStatus(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// FuncDecl inspection reaches nested literals; analyzing them
				// separately would double-report.
				return true
			default:
				return true
			}
			if body != nil {
				checkLPStatusFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

type lpVarState struct {
	usePos        token.Pos // first .X/.Value read
	useName       string
	statusChecked bool
	escaped       bool
}

func checkLPStatusFunc(pass *Pass, body *ast.BlockStmt) {
	vars := map[*types.Var]*lpVarState{}
	state := func(v *types.Var) *lpVarState {
		if s, ok := vars[v]; ok {
			return s
		}
		s := &lpVarState{}
		vars[v] = s
		return s
	}
	// Idents consumed as the base of a tracked selector; any other use of a
	// tracked variable counts as an escape.
	selectorBases := map[*ast.Ident]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isLPResult(pass.TypeOf(sel.X)) {
			return true
		}
		switch base := sel.X.(type) {
		case *ast.Ident:
			v, ok := pass.Info.ObjectOf(base).(*types.Var)
			if !ok {
				return true
			}
			selectorBases[base] = true
			s := state(v)
			switch sel.Sel.Name {
			case "Status":
				s.statusChecked = true
			case "X", "Value":
				if s.usePos == token.NoPos {
					s.usePos, s.useName = sel.Sel.Pos(), sel.Sel.Name
				}
			}
		case *ast.CallExpr:
			// Chained lp.Solve(p).X — no variable to check Status on.
			if sel.Sel.Name == "X" || sel.Sel.Name == "Value" {
				pass.Reportf(sel.Sel.Pos(), "lp.Result.%s read directly off the Solve call; bind the Result and check .Status == lp.Optimal first", sel.Sel.Name)
			}
		}
		return true
	})

	// Escapes: any use of a tracked variable outside its own selectors.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || selectorBases[id] {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			if s, tracked := vars[v]; tracked {
				s.escaped = true
			}
		}
		return true
	})

	for _, s := range vars {
		if s.usePos != token.NoPos && !s.statusChecked && !s.escaped {
			pass.Reportf(s.usePos, "lp.Result.%s read but Result.Status is never checked in this function; gate on .Status == lp.Optimal", s.useName)
		}
	}
}

// isLPResult reports whether t (or *t) is the named type Result from the
// internal/lp package.
func isLPResult(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Result" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/lp")
}
