package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// loader loads module-local packages from source, resolving stdlib imports
// through the compiler export-data importer (which works offline via the go
// build cache) and module-local imports recursively through itself.
type loader struct {
	root    string // module root directory (contains go.mod)
	modPath string // module path from go.mod
	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// Load type-checks the packages under root matching the patterns and returns
// them sorted by import path. root must be (or be inside) a Go module; all
// non-stdlib imports must resolve within that module. Patterns are a subset
// of the go tool's: "./..." or "./dir/..." for subtrees, "./dir" for one
// package, "." for the root package.
func Load(root string, patterns ...string) ([]*Package, error) {
	root, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	dirs, err := ld.match(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := ld.load(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (which may live
// outside any module, e.g. an analysistest testdata directory). Imports of
// the enclosing module (found by walking up from dir, then from the current
// working directory) resolve against that module's source.
func LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		// Not inside a module (testdata trees have no go.mod); fall back to
		// the module enclosing the working directory for "ist/..." imports.
		wd, werr := os.Getwd()
		if werr != nil {
			return nil, err
		}
		root, modPath, err = findModule(wd)
		if err != nil {
			return nil, err
		}
	}
	ld := newLoader(root, modPath)
	return ld.load(abs)
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "gc", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
	}
}

// match expands patterns into package directories (absolute paths).
func (ld *loader) match(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := filepath.Join(ld.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a package directory to its import path within the
// module.
func (ld *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return ld.modPath, nil
	}
	if strings.HasPrefix(rel, "../") {
		// Outside the module (testdata trees): synthesize a distinct path.
		return "testdata/" + filepath.Base(dir), nil
	}
	return ld.modPath + "/" + rel, nil
}

// load parses and type-checks the package in dir (cached by import path).
func (ld *loader) load(dir string) (*Package, error) {
	path, err := ld.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: (*moduleImporter)(ld),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{PkgPath: path, Dir: dir, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-local imports through the loader and
// everything else through the offline export-data importer.
type moduleImporter loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	ld := (*loader)(m)
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
		pkg, err := ld.load(filepath.Join(ld.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return ld.std.ImportFrom(path, srcDir, mode)
}
