package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestLPStatus(t *testing.T) {
	analysistest.Run(t, analysis.LPStatusAnalyzer, "lpstatus")
}
