package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestNilGuard(t *testing.T) {
	analysistest.Run(t, analysis.NilGuardAnalyzer, "nilguard")
}
