package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmpAnalyzer flags raw floating-point comparisons that bypass the
// shared geom tolerance (DESIGN §6). Exact float64 comparison silently
// breaks the consistency of "on / above / below a hyperplane" across
// packages, and with it the paper's question-count guarantees.
//
// Rules:
//
//   - ==/!= between two float expressions is flagged unless one side is a
//     constant zero (a structural sentinel check, e.g. testing a value that
//     was explicitly zeroed) or the comparison already involves a tolerance
//     term (an identifier matching eps/tol).
//   - </>/<=/>= is flagged only when a side is a direct utility evaluation —
//     a Dot product, a Hyperplane.Value or a Line.At call — with no
//     tolerance term anywhere in the comparison. Ranking two raw utilities
//     without an epsilon is exactly the tie-handling bug class of Section 4;
//     plain float ordering (max-tracking loops, constant thresholds) is
//     allowed.
//
// The analyzer does not run on internal/geom itself: that package is where
// the tolerance predicates live.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags raw float64 comparisons that bypass the shared geom.Eps tolerance",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if strings.HasSuffix(pass.PkgPath, "internal/geom") {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			default:
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if hasToleranceTerm(be) {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				if isConstantZero(pass, be.X) || isConstantZero(pass, be.Y) {
					return true // structural sentinel check against exact zero
				}
				pass.Reportf(be.OpPos, "raw float64 %s comparison; use a geom.Eps-based predicate (geom.Eq) or justify with //lint:ignore floatcmp", be.Op)
			default:
				if isConstant(pass, be.X) || isConstant(pass, be.Y) {
					return true
				}
				if isUtilityEval(pass, be.X) || isUtilityEval(pass, be.Y) {
					pass.Reportf(be.OpPos, "ordering raw utility values with %s and no tolerance; use geom.Less/geom.LessEq or add an explicit eps term", be.Op)
				}
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

func isConstantZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil && constant.Sign(tv.Value) == 0
}

// hasToleranceTerm reports whether any identifier in the comparison looks
// like a tolerance (eps, Eps, epsilon, tieEps, tol, tolerance, ...). Such
// comparisons are already tolerance-aware.
func hasToleranceTerm(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			name := strings.ToLower(id.Name)
			if strings.Contains(name, "eps") || strings.Contains(name, "tol") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isUtilityEval reports whether the expression contains a direct utility
// evaluation: a call to a method named Dot, a Hyperplane.Value, or a
// Line.At.
func isUtilityEval(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Dot":
			found = true
		case "Value", "At":
			// Only the geometric evaluators, not arbitrary Value/At methods.
			if recv := receiverNamed(pass, sel); recv == "Hyperplane" || recv == "Line" {
				found = true
			}
		}
		return !found
	})
	return found
}

// receiverNamed returns the name of the named type of the selector's
// receiver (dereferencing one pointer level), or "".
func receiverNamed(pass *Pass, sel *ast.SelectorExpr) string {
	t := pass.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
