package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// EpsConstAnalyzer keeps every tolerance constant in internal/geom. A
// hardcoded 1e-9 in one package and 1e-8 in another make "equal within
// tolerance" mean different things on the two sides of a package boundary —
// the exact failure mode the shared geom.Eps exists to prevent (DESIGN §6).
//
// Any float literal whose value lies in the tolerance range
// [1e-15, 1e-5] outside internal/geom is flagged; refer to geom.Eps,
// geom.TieEps or geom.FeasEps instead, or add a named constant in geom.
// Magnitudes below 1e-15 (underflow guards like 1e-300) and above 1e-5
// (ordinary small numbers) are not tolerances and are left alone.
var EpsConstAnalyzer = &Analyzer{
	Name: "epsconst",
	Doc:  "flags hardcoded tolerance literals (1e-9-style) outside internal/geom",
	Run:  runEpsConst,
}

const (
	epsRangeLo = 1e-15
	epsRangeHi = 1e-5
)

func runEpsConst(pass *Pass) error {
	// internal/geom owns the tolerances; internal/analysis describes their
	// range (epsRangeLo/Hi above) without being one.
	if strings.HasSuffix(pass.PkgPath, "internal/geom") || strings.HasSuffix(pass.PkgPath, "internal/analysis") {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.FLOAT {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || tv.Value == nil {
				return true
			}
			v, _ := constant.Float64Val(tv.Value)
			if v < 0 {
				v = -v
			}
			if v >= epsRangeLo && v <= epsRangeHi {
				pass.Reportf(lit.Pos(), "hardcoded tolerance literal %s outside internal/geom; use geom.Eps / geom.TieEps / geom.FeasEps (or add a named geom constant)", lit.Value)
			}
			return true
		})
	}
	return nil
}
