package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestObsNil(t *testing.T) {
	analysistest.Run(t, analysis.ObsNilAnalyzer, "obsnil")
}
