package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestEpsConst(t *testing.T) {
	analysistest.Run(t, analysis.EpsConstAnalyzer, "epsconst")
}
