package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, analysis.WallClockAnalyzer, "wallclock")
}

// TestWallClockSkipsMain asserts that package main (CLI binaries) is exempt:
// the testdata package reads the wall clock freely and must produce no
// diagnostics.
func TestWallClockSkipsMain(t *testing.T) {
	analysistest.Run(t, analysis.WallClockAnalyzer, "wallclockmain")
}
