package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrFlowAnalyzer is the path-sensitive companion of errdrop. errdrop
// catches an error that is never bound at all; errflow catches the subtler
// bug where the error IS bound — `v, err := f()` — but a path exists on
// which `v` is used before anything looked at `err`. The canonical shape:
//
//	f, err := os.Open(path)
//	if verbose {
//	    if err != nil { return err }
//	    log.Println(f.Name())
//	}
//	return readAll(f)        // err was only checked on the verbose path
//
// Tracking is restricted to paired values of nil-able type (pointers,
// interfaces, slices, maps, chans, funcs): those are what a failed call
// leaves nil, so an unchecked use is a latent nil dereference. Plain ints
// and strings (e.g. the n of a Write) are deliberately out of scope — io
// semantics make partial counts meaningful even on error.
//
// Any read of the error marks it checked on the paths through that read:
// a comparison, a branch condition, returning it, wrapping it with %w, or
// passing it to errors.Is/log — the analysis does not care how it was
// consulted, only that the path consulted it before using the value. A use
// that mentions the error in the same statement (`return v, err`) is
// propagation, not consumption, and is allowed.
var ErrFlowAnalyzer = &Analyzer{
	Name: "errflow",
	Doc:  "flags paths that use a call's result before checking the error returned with it",
	Run:  runErrFlow,
}

// errFact is the set of error variables NOT yet checked on this path, each
// mapped to the paired result variables it guards. Immutable.
type errFact map[*types.Var]errPair

type errPair struct {
	vals map[*types.Var]bool // results returned alongside the error
}

func (f errFact) without(v *types.Var) errFact {
	out := make(errFact, len(f))
	for k, p := range f {
		if k != v {
			out[k] = p
		}
	}
	return out
}

func (f errFact) with(v *types.Var, p errPair) errFact {
	out := make(errFact, len(f)+1)
	for k, q := range f {
		out[k] = q
	}
	out[v] = p
	return out
}

func runErrFlow(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fb := range funcBodies(f) {
			checkErrFlow(pass, fb)
		}
	}
	return nil
}

func checkErrFlow(pass *Pass, fb funcBody) {
	an := FlowAnalysis[errFact]{
		Entry:    errFact{},
		Transfer: func(n ast.Node, fact errFact) errFact { return errTransfer(pass, n, fact) },
		Join:     joinErrFacts,
		Equal:    equalErrFacts,
	}
	g := BuildCFG(fb.body)
	in := SolveFlow(g, an)

	reported := map[*types.Var]bool{}
	WalkFlow(g, an, in, func(n ast.Node, before errFact) {
		if len(before) == 0 {
			return
		}
		reads := identReads(pass, n)
		for errVar, pair := range before {
			if reads[errVar] {
				continue // same statement consults the error: propagation
			}
			for valVar := range pair.vals {
				if reads[valVar] && !reported[valVar] {
					reported[valVar] = true
					pass.Reportf(firstReadPos(pass, n, valVar),
						"%s is used here, but the %s returned with it is unchecked on at least one path reaching this point",
						valVar.Name(), errVar.Name())
				}
			}
		}
	})
}

// errTransfer updates the unchecked set across one node:
//
//   - `v, err := f()` puts err into the unchecked set guarding v
//     (reads in f's arguments are processed first);
//   - any other read of err removes it — the path has consulted it;
//   - a use of a guarded v also clears the guard, so one bug reports once
//     per variable instead of cascading down the path.
func errTransfer(pass *Pass, n ast.Node, fact errFact) errFact {
	reads := identReads(pass, n)
	for errVar := range fact {
		if reads[errVar] {
			fact = fact.without(errVar)
			continue
		}
		for valVar := range fact[errVar].vals {
			if reads[valVar] {
				fact = fact.without(errVar)
				break
			}
		}
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		fact = errAssign(pass, as, fact)
	}
	return fact
}

// errAssign handles `v1, ..., err := call(...)`: one error-typed LHS
// becomes unchecked, guarding the nilable sibling results. Reassigning a
// tracked variable by any other shape clears its stale tracking.
func errAssign(pass *Pass, as *ast.AssignStmt, fact errFact) errFact {
	// Any assignment overwrites: drop tracking that names an LHS.
	for _, lhs := range as.Lhs {
		if v := lhsVar(pass, lhs); v != nil {
			if _, ok := fact[v]; ok {
				fact = fact.without(v)
			}
			for errVar, pair := range fact {
				if pair.vals[v] {
					vals := map[*types.Var]bool{}
					for k := range pair.vals {
						if k != v {
							vals[k] = true
						}
					}
					fact = fact.with(errVar, errPair{vals: vals})
				}
			}
		}
	}
	if len(as.Lhs) < 2 || len(as.Rhs) != 1 {
		return fact
	}
	if _, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !ok {
		return fact
	}
	var errVar *types.Var
	vals := map[*types.Var]bool{}
	for _, lhs := range as.Lhs {
		v := lhsVar(pass, lhs)
		if v == nil {
			continue
		}
		if isErrorType(v.Type()) {
			if errVar != nil {
				return fact // two error results: ambiguous, stay silent
			}
			errVar = v
		} else if isNilable(v.Type()) {
			vals[v] = true
		}
	}
	if errVar == nil || len(vals) == 0 {
		return fact
	}
	return fact.with(errVar, errPair{vals: vals})
}

func lhsVar(pass *Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, _ := pass.Info.ObjectOf(id).(*types.Var)
	return v
}

// identReads collects the variables read in one leaf node. Identifiers on
// the left of `=`/`:=` are writes, not reads (but indexed/field writes
// like m[k] = x do read m).
func identReads(pass *Pass, n ast.Node) map[*types.Var]bool {
	reads := map[*types.Var]bool{}
	writes := map[ast.Expr]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if _, ok := lhs.(*ast.Ident); ok {
				writes[lhs] = true
			}
		}
	}
	inspectLeaf(n, func(m ast.Node) bool {
		if e, ok := m.(ast.Expr); ok && writes[e] {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok {
				reads[v] = true
			}
		}
		return true
	})
	return reads
}

func firstReadPos(pass *Pass, n ast.Node, v *types.Var) (pos token.Pos) {
	pos = n.Pos()
	found := false
	inspectLeaf(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if pass.Info.ObjectOf(id) == v {
				pos, found = id.Pos(), true
				return false
			}
		}
		return true
	})
	return pos
}

func joinErrFacts(a, b errFact) errFact {
	// Unchecked-on-any-path wins: the union keeps a guard alive if either
	// branch failed to check it.
	out := make(errFact, len(a)+len(b))
	for k, p := range a {
		out[k] = p
	}
	for k, p := range b {
		if q, ok := out[k]; ok {
			vals := map[*types.Var]bool{}
			for v := range q.vals {
				vals[v] = true
			}
			for v := range p.vals {
				vals[v] = true
			}
			out[k] = errPair{vals: vals}
		} else {
			out[k] = p
		}
	}
	return out
}

func equalErrFacts(a, b errFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, p := range a {
		q, ok := b[k]
		if !ok || len(p.vals) != len(q.vals) {
			return false
		}
		for v := range p.vals {
			if !q.vals[v] {
				return false
			}
		}
	}
	return true
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isNilable reports whether a failed call leaves this type nil (and a
// subsequent use deref-prone).
func isNilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}
