package analysis

import (
	"go/ast"
	"strings"
)

// WallClockAnalyzer enforces the injectable-time contract behind anytime
// budgets (PR 3): library code must read time through an injected
// clock.Clock (internal/clock), never directly from the wall clock. A
// direct time.Now deep inside an algorithm or the session layer cannot be
// faked, so deadline behaviour becomes untestable and — worse — a replayed
// session can take a different deadline-degradation path than the recorded
// one took.
//
// Flagged in non-test, non-main packages: calls to time.Now, time.Since and
// time.Until. Exempt entirely:
//
//   - package main (CLIs may read the real clock);
//   - _test.go files (tests time out against the real world);
//   - internal/clock (the one sanctioned time.Now call site);
//   - internal/experiments (benchmark harnesses measure real wall time).
//
// Timers and tickers (time.NewTicker, time.After) are not flagged: they
// schedule work rather than observe the clock, and faking them buys nothing
// for replay soundness.
var WallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "flags direct wall-clock reads (time.Now/Since/Until) in library packages",
	Run:  runWallClock,
}

// wallClockReads are the time package functions that observe the current
// time (as opposed to constructing durations or scheduling timers).
var wallClockReads = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// wallClockExemptSuffixes lists package paths allowed to read the wall
// clock directly.
var wallClockExemptSuffixes = []string{
	"internal/clock",
	"internal/experiments",
}

func runWallClock(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLIs may legitimately read the real clock
	}
	for _, suffix := range wallClockExemptSuffixes {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			return nil
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, isPkg := packageOf(pass, sel)
			if !isPkg || pkgPath != "time" || !wallClockReads[sel.Sel.Name] {
				return true
			}
			pass.Reportf(call.Pos(), "direct wall-clock read time.%s in a library package; take time from an injected clock.Clock so deadlines stay testable and replayable", sel.Sel.Name)
			return true
		})
	}
	return nil
}
