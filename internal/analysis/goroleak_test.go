package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysis.GoroLeakAnalyzer, "goroleak")
}

// TestGoroLeakMainExempt checks the package-main exemption: the fixture
// launches an uncancellable goroutine and must produce zero diagnostics.
func TestGoroLeakMainExempt(t *testing.T) {
	analysistest.Run(t, analysis.GoroLeakAnalyzer, "goroleakmain")
}
