package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, analysis.SpanEndAnalyzer, "spanend")
}
