package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, analysis.LockSafeAnalyzer, "locksafe")
}
