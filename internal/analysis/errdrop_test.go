package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysis.ErrDropAnalyzer, "errdrop")
}
