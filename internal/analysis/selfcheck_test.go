package analysis_test

import (
	"testing"

	"ist/internal/analysis"
)

// TestRepoIsClean runs the full analyzer suite over the whole module —
// exactly what `go run ./cmd/istlint ./...` does — and fails on any finding.
// This keeps the repo lint-clean even where CI runs only `go test`.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Check(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if got := analysis.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) should be nil")
	}
}
