package analysis_test

import (
	"testing"

	"ist/internal/analysis"
)

// TestRepoIsClean runs the full analyzer suite over the whole module —
// exactly what `go run ./cmd/istlint ./...` does — and fails on any finding.
// This keeps the repo lint-clean even where CI runs only `go test`.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Check(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSuiteComposition pins the suite: TestRepoIsClean only means "the repo
// satisfies every registered analyzer", so an analyzer silently dropped from
// All() would weaken the gate without failing anything. The five
// flow-sensitive analyzers ride the same CFG/dataflow layer; losing one
// loses a whole invariant class.
func TestSuiteComposition(t *testing.T) {
	want := []string{
		"floatcmp", "lpstatus", "detrand", "epsconst", "errdrop",
		"wallclock", "obsnil", "detpar",
		"locksafe", "goroleak", "errflow", "nilguard", "spanend",
	}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %q, want %q", i, all[i].Name, name)
		}
		if all[i].Doc == "" {
			t.Errorf("analyzer %q has no Doc", all[i].Name)
		}
	}
}

// TestSuppressionsAreJustified audits every //lint:ignore in the module: a
// bare directive (no reason) suppresses nothing — it is either dead or a
// missing justification, and both are mistakes.
func TestSuppressionsAreJustified(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, s := range analysis.Suppressions(pkgs) {
		if s.Reason == "" {
			t.Errorf("%s:%d: //lint:ignore without a reason (not honored)", s.File, s.Line)
		}
	}
}

// TestSweepCoversNetworkPackages pins the network-protocol packages into
// the repo-wide sweep: ist/client and ist/internal/netchaos promise fully
// injected time and randomness (their retry schedules and fault plans must
// replay deterministically), which is only enforced while the wallclock and
// detrand analyzers actually see them. A build-tag or module-layout change
// that silently dropped them from `./...` would void the promise.
func TestSweepCoversNetworkPackages(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	covered := map[string]bool{}
	for _, p := range pkgs {
		covered[p.PkgPath] = true
	}
	for _, want := range []string{"ist/client", "ist/internal/netchaos", "ist/internal/server"} {
		if !covered[want] {
			t.Errorf("package %s is not in the analyzer sweep", want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if got := analysis.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) should be nil")
	}
}
