package analysis

import (
	"go/ast"
	"go/types"
)

// DetRandAnalyzer enforces the determinism contract behind transcript-replay
// recovery (PR 1): library code must take randomness from an injected,
// seeded *rand.Rand. Global math/rand functions draw from process-wide
// state shared across sessions, and wall-clock seeds make replay produce a
// different question sequence than the recorded one — both silently corrupt
// ResumeSession.
//
// Flagged in non-test, non-main packages:
//
//   - calls to package-level math/rand (and math/rand/v2) functions such as
//     rand.Float64, rand.Intn, rand.Shuffle, rand.Seed;
//   - rand source construction seeded from the wall clock
//     (rand.NewSource(time.Now().UnixNano()) and variants).
//
// Constructors (rand.New, rand.NewSource, ...) with deterministic seeds are
// fine — they are how the injected generators get built.
var DetRandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc:  "flags global math/rand state and wall-clock seeding in library packages",
	Run:  runDetRand,
}

// randConstructors are the math/rand package-level functions that build
// independent generators rather than touching global state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runDetRand(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLIs may legitimately default to wall-clock seeds
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, isPkg := packageOf(pass, sel)
			if !isPkg || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if !randConstructors[name] {
				if _, isFunc := pass.Info.ObjectOf(sel.Sel).(*types.Func); isFunc {
					pass.Reportf(call.Pos(), "global math/rand.%s uses process-wide state; inject a seeded *rand.Rand so transcript replay stays deterministic", name)
				}
				return true
			}
			for _, arg := range call.Args {
				if at, found := findWallClock(pass, arg); found {
					pass.Reportf(at.Pos(), "rand.%s seeded from the wall clock; derive seeds from configuration so transcript replay stays deterministic", name)
				}
			}
			return true
		})
	}
	return nil
}

// findWallClock locates a call into the time package (time.Now and friends)
// inside e, skipping subtrees that are themselves rand constructor calls
// (those are flagged at their own site).
func findWallClock(pass *Pass, e ast.Expr) (ast.Node, bool) {
	var at ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		if at != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgPath, isPkg := packageOf(pass, sel); isPkg {
			switch pkgPath {
			case "time":
				at = call
				return false
			case "math/rand", "math/rand/v2":
				if randConstructors[sel.Sel.Name] {
					return false // inner constructor reports for itself
				}
			}
		}
		return true
	})
	return at, at != nil
}

// packageOf resolves sel's base to an imported package, returning its path.
func packageOf(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
