// Package analysis is a dependency-free static-analysis framework plus the
// istlint analyzer suite that mechanically enforces this repository's
// numeric, LP and determinism invariants.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate to the upstream framework
// wholesale if the x/tools dependency ever becomes available; it is
// reimplemented here on top of go/ast + go/types only, because the build
// environment is fully offline and the module must stay stdlib-only.
//
// The expression-level analyzers and the invariant each one guards:
//
//   - floatcmp: float comparisons go through the shared geom tolerance
//     helpers, never raw ==/!= (and never raw ordering of utility
//     dot-products). A single exact float64 equality silently breaks the
//     paper's Ω(log₂(n/k)) question-count guarantees.
//   - lpstatus: lp.Result.X / .Value are only meaningful after Result.Status
//     has been checked; using them on an unchecked path reads garbage from
//     an infeasible or unbounded solve.
//   - detrand: library packages never use global math/rand state or
//     wall-clock seeds — transcript-replay recovery (PR 1) is sound only if
//     every random choice is reproducible from an injected, seeded
//     *rand.Rand.
//   - epsconst: tolerance literals (1e-9 and friends) live in internal/geom
//     only, so "on the hyperplane" means the same thing in every package.
//   - errdrop: errors returned by this module's own APIs (Session stores,
//     dataset IO, transcripts) are never silently discarded by a bare call
//     statement.
//   - wallclock: library packages read time only through an injected
//     clock.Clock (internal/clock), never time.Now/Since/Until directly —
//     otherwise anytime deadlines (PR 3) become untestable and replayed
//     sessions can degrade differently than the recorded run did.
//   - obsnil: library code emits trace events only through the nil-safe
//     wrappers of internal/obs, never by calling Observer.Event directly —
//     the observer is nil on the uninstrumented fast path (PR 4), and the
//     wrappers are where the observation-is-passive guarantee lives.
//   - detpar: function literals that run concurrently (go statements, the
//     task closures of internal/parallel) never mutate captured state
//     without synchronization — the index-ordered-slot idiom is the only
//     bare way results may leave a worker, which is what keeps parallel
//     transcripts bit-identical to serial ones (DESIGN.md §14).
//
// A diagnostic can be suppressed with a justifying directive on the same
// line or the line immediately above:
//
//	//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
//
// The reason is mandatory; a bare directive does not suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check, in the shape of x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// PkgPath is the package import path (e.g. "ist/internal/lp").
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// All returns the full istlint analyzer suite in reporting order: the
// eight expression-level analyzers above, then the five flow-sensitive
// analyzers built on the CFG/dataflow layer (cfg.go, dataflow.go):
//
//   - locksafe: every Lock reaches an Unlock on all paths, no double
//     locks, and no blocking call (fsync, stream write, LP solve, channel
//     op, HTTP handler) runs while a mutex is held.
//   - goroleak: goroutines launched in library/server packages have a
//     reachable cancellation path (ctx.Done()/done-channel receive,
//     select, or channel range).
//   - errflow: path-sensitive err checking — a result returned alongside
//     an error is not used on any path before the error is consulted.
//   - nilguard: path-sensitive nil analysis for the nil-safe wrapper
//     pattern — a pointer/interface nil-checked on one path is not
//     dereferenced unguarded on another.
//   - spanend: span-lifecycle balance — every obs span started with
//     Tracer.Start/Span.StartChild reaches End/EndAt (or a defer of one)
//     on every path to a return; escaping spans are exempt.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmpAnalyzer,
		LPStatusAnalyzer,
		DetRandAnalyzer,
		EpsConstAnalyzer,
		ErrDropAnalyzer,
		WallClockAnalyzer,
		ObsNilAnalyzer,
		DetParAnalyzer,
		LockSafeAnalyzer,
		GoroLeakAnalyzer,
		ErrFlowAnalyzer,
		NilGuardAnalyzer,
		SpanEndAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
