package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer flags bare call statements that silently discard an error
// returned by this module's own APIs — Session and SessionStore operations,
// dataset IO, transcript save/load. A dropped store error is exactly how a
// "crash-safe" session log quietly stops being crash-safe.
//
// Only calls whose callee is declared inside module "ist" are considered;
// dropping stdlib errors (fmt.Fprintf, deferred file closes on read paths)
// is left to staticcheck. An explicit `_ = f()` assignment is treated as a
// deliberate, reviewable discard and is not flagged.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flags silently discarded error returns from the module's own APIs",
	Run:  runErrDrop,
}

// errDropModule scopes the check to callees declared in this module.
const errDropModule = "ist"

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != errDropModule && !strings.HasPrefix(path, errDropModule+"/") {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s.%s is silently discarded; handle it or assign to _ with a justifying comment", path, fn.Name())
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function or method, or nil for indirect
// calls, conversions and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.ObjectOf(id).(*types.Func)
	return fn
}

// returnsError reports whether any result of fn is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}
