package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeakAnalyzer enforces that goroutines launched in library and server
// packages are cancellable. The session layer's contract (PR 1) is that
// Close releases the algorithm goroutine; the reaper and worker pools make
// the same promise. A goroutine with no reachable way to be told to stop —
// no receive on a ctx.Done()/done/stop channel, no select, no channel
// range — outlives its owner, and a leaked goroutine per session is a slow
// memory exhaustion with a -race-clean conscience.
//
// Accepted cancellation shapes, anywhere reachable in the goroutine body or
// in same-package functions it calls (transitively):
//
//   - a channel receive (`<-ctx.Done()`, `<-stop`, `v, ok := <-c`);
//   - a select statement (its cases are receives/sends that a closer can
//     unblock);
//   - ranging over a channel (closing the channel ends the loop).
//
// A goroutine that is genuinely fire-and-forget (bounded work, no channel
// coupling) documents that with `//lint:ignore goroleak <reason>`.
//
// package main is exempt: a CLI's goroutines die with the process by
// design. Test files are exempt with it.
var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "flags goroutines in library packages with no reachable cancellation path",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := launchedBody(pass, decls, g.Call)
			if body == nil {
				return true // cross-package or dynamic target: cannot see it
			}
			if !cancellable(pass, decls, body, map[*ast.BlockStmt]bool{}) {
				pass.Reportf(g.Pos(), "goroutine has no reachable cancellation path (channel receive, select, or channel range); thread a done/ctx channel through it or justify with //lint:ignore goroleak")
			}
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes the package's function declarations by their
// types object, so `go s.loop()` resolves to loop's body.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.ObjectOf(fd.Name); obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// launchedBody resolves the body the go statement starts: a function
// literal's own body, or the declaration of a same-package function or
// method.
func launchedBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pass.Info.ObjectOf(fun)]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.Info.ObjectOf(fun.Sel)]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// cancellable reports whether a reachable cancellation point exists in the
// body — via its CFG, so code after an unconditional return does not count
// — or in the body of any same-package function it calls.
func cancellable(pass *Pass, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt, visiting map[*ast.BlockStmt]bool) bool {
	if visiting[body] {
		return false
	}
	visiting[body] = true

	g := BuildCFG(body)
	reachable := g.Reachable()
	var callees []*ast.BlockStmt
	found := false
	for _, b := range g.Blocks {
		if !reachable[b] || found {
			continue
		}
		// A select head is decomposed: its comm statements are the first
		// nodes of the case blocks, so receives/sends there are seen as
		// ordinary nodes; a bare `select {}` parks forever (edge to exit)
		// and counts as a (degenerate) cancellation point only through its
		// comm cases — none, so it does not.
		for _, n := range b.Nodes {
			if nodeHasCancellationPoint(pass, n) {
				found = true
				break
			}
			inspectLeaf(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				var obj types.Object
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					obj = pass.Info.ObjectOf(fun)
				case *ast.SelectorExpr:
					obj = pass.Info.ObjectOf(fun.Sel)
				}
				if fd := decls[obj]; fd != nil {
					callees = append(callees, fd.Body)
				}
				return true
			})
		}
	}
	if !found {
		for _, callee := range callees {
			if cancellable(pass, decls, callee, visiting) {
				found = true
				break
			}
		}
	}
	return found
}

// nodeHasCancellationPoint looks for a receive or channel range in one leaf
// node. Sends inside a select are covered because the CommClause statement
// is a leaf node of the case block; a bare blocking send is NOT a
// cancellation point (nobody may ever receive).
func nodeHasCancellationPoint(pass *Pass, n ast.Node) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		if t := pass.TypeOf(r.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	found := false
	inspectLeaf(n, func(m ast.Node) bool {
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
			return false
		}
		return true
	})
	return found
}
