package analysis

import (
	"go/ast"
	"go/types"
)

// DetParAnalyzer enforces the deterministic-parallelism contract of
// internal/parallel (DESIGN.md §14): code that runs concurrently — a `go`
// statement's function literal, or the task closure handed to parallel.Do /
// parallel.ForEachOrdered — must not mutate state captured from the
// enclosing scope without synchronization. An unsynchronized captured write
// is a data race, and in this codebase a race is also a determinism bug: the
// commit order of results decides the question transcript, and transcripts
// must be bit-identical across worker counts for replay recovery to work.
//
// Flagged inside a concurrent function literal (non-test, non-main
// packages):
//
//   - append to a captured slice (s = append(s, ...)) — the classic lost
//     update; results land in nondeterministic order even when the race
//     happens to be benign;
//   - assignment or ++/-- on a captured variable (x = v, n++);
//   - writes through a captured map (m[k] = v);
//   - field writes on a captured value (s.f = v) when no index expression
//     selects a per-task slot.
//
// Sanctioned, because they are the idioms the parallel package is built on:
//
//   - index-ordered result slots: results[i] = ... where each task owns
//     index i and a serial pass commits in order afterwards;
//   - writes that happen after a mutex Lock call earlier in the literal
//     (lock discipline itself is locksafe's job, not detpar's);
//   - variables declared inside the literal, channel sends, and
//     sync/atomic calls (none of which are assignment statements).
//
// The commit callback of ForEachOrdered runs serialized on the calling
// goroutine and is exempt.
var DetParAnalyzer = &Analyzer{
	Name: "detpar",
	Doc:  "flags unsynchronized captured-state mutation inside concurrently running function literals",
	Run:  runDetPar,
}

func runDetPar(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLIs own their goroutines end to end; races there are vet's domain
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkConcurrentLit(pass, lit)
				}
			case *ast.CallExpr:
				if lit := parallelTaskArg(pass, n); lit != nil {
					checkConcurrentLit(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// parallelTaskArg returns the function-literal task argument of a call to
// internal/parallel's fan-out primitives (Do and ForEachOrdered both take the
// concurrently-run task as their third argument), or nil. ForEachOrdered's
// commit callback runs serialized and is deliberately not returned.
func parallelTaskArg(pass *Pass, call *ast.CallExpr) *ast.FuncLit {
	const taskArg = 2
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		pkgPath, isPkg := packageOf(pass, fun)
		if !isPkg || pkgPath != "ist/internal/parallel" {
			return nil
		}
		name = fun.Sel.Name
	case *ast.Ident:
		if pass.PkgPath != "ist/internal/parallel" {
			return nil
		}
		name = fun.Name
	case *ast.IndexExpr: // explicit instantiation: parallel.ForEachOrdered[T](...)
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			pkgPath, isPkg := packageOf(pass, sel)
			if !isPkg || pkgPath != "ist/internal/parallel" {
				return nil
			}
			name = sel.Sel.Name
		} else if id, ok := fun.X.(*ast.Ident); ok && pass.PkgPath == "ist/internal/parallel" {
			name = id.Name
		} else {
			return nil
		}
	default:
		return nil
	}
	if name != "Do" && name != "ForEachOrdered" {
		return nil
	}
	if len(call.Args) <= taskArg {
		return nil
	}
	lit, _ := call.Args[taskArg].(*ast.FuncLit)
	return lit
}

// checkConcurrentLit reports unsynchronized captured writes in lit's body
// (including nested literals — a closure deferred inside a goroutine still
// runs on the worker).
func checkConcurrentLit(pass *Pass, lit *ast.FuncLit) {
	// Mutex sanction: a write positioned after any ".Lock()" call inside the
	// literal is treated as guarded. Whether the lock is the RIGHT lock, held
	// at the write, and released on every path is locksafe's concern; detpar
	// only needs to separate deliberate synchronization from the bare idiom.
	firstLock := lit.End()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
				if call.Pos() < firstLock {
					firstLock = call.Pos()
				}
			}
		}
		return true
	})

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Pos() > firstLock {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				checkWrite(pass, lit, lhs, rhs)
			}
		case *ast.IncDecStmt:
			if n.Pos() > firstLock {
				return true
			}
			checkWrite(pass, lit, n.X, nil)
		}
		return true
	})
}

// checkWrite reports lhs when it mutates state captured from outside lit.
func checkWrite(pass *Pass, lit *ast.FuncLit, lhs, rhs ast.Expr) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if !capturedVar(pass, lit, l) {
			return
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				pass.Reportf(lhs.Pos(), "append to captured %s inside a concurrently running function loses updates; collect into an index-ordered slot (results[i] = ...) and commit serially", l.Name)
				return
			}
		}
		pass.Reportf(lhs.Pos(), "write to captured %s inside a concurrently running function is unsynchronized; use an index-ordered result slot or guard it with a mutex", l.Name)
	case *ast.IndexExpr:
		base := pass.TypeOf(l.X)
		if base == nil {
			return
		}
		if _, isMap := base.Underlying().(*types.Map); !isMap {
			return // slice/array slot writes are the sanctioned commit idiom
		}
		root := rootIdent(l.X)
		if root == nil || !capturedVar(pass, lit, root) {
			return
		}
		pass.Reportf(lhs.Pos(), "write to captured map %s inside a concurrently running function races; collect per-worker results and merge after the barrier", root.Name)
	case *ast.SelectorExpr:
		if hasIndex(l.X) {
			return // results[i].field = ... — per-task slot
		}
		root := rootIdent(l.X)
		if root == nil || !capturedVar(pass, lit, root) {
			return
		}
		pass.Reportf(lhs.Pos(), "field write on captured %s inside a concurrently running function is unsynchronized; use an index-ordered result slot or guard it with a mutex", root.Name)
	case *ast.StarExpr:
		root := rootIdent(l.X)
		if root == nil || !capturedVar(pass, lit, root) {
			return
		}
		pass.Reportf(lhs.Pos(), "write through captured pointer %s inside a concurrently running function is unsynchronized; use an index-ordered result slot or guard it with a mutex", root.Name)
	}
}

// capturedVar reports whether id names a variable declared outside lit —
// i.e. captured by the closure rather than its own local or parameter.
func capturedVar(pass *Pass, lit *ast.FuncLit, id *ast.Ident) bool {
	if id.Name == "_" {
		return false
	}
	v, ok := pass.Info.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// rootIdent unwraps selector/index/star/paren chains to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// hasIndex reports whether the expression chain contains an index selection
// (the per-task-slot idiom).
func hasIndex(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}
