package analysis_test

import (
	"testing"

	"ist/internal/analysis"
	"ist/internal/analysis/analysistest"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, analysis.FloatCmpAnalyzer, "floatcmp")
}
