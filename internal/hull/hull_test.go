package hull

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/oracle"
)

func TestConvexPointsExact2D(t *testing.T) {
	// Table 2: p1(0,1), p2(0.3,0.7), p3(0.5,0.8), p4(0.7,0.4), p5(1,0).
	// Upper hull (top-1 achievable): p1, p3, p5. p2 is below segment p1-p3;
	// p4 is below segment p3-p5 (at x=0.7: 0.8 + 0.2/0.5*(-0.8)... check in
	// utility terms instead: verified by the sampling cross-check below).
	pts := []geom.Vector{{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0}}
	got := ConvexPointsExact(pts)
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("ConvexPointsExact = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ConvexPointsExact = %v, want %v", got, want)
		}
	}
}

func TestConvexPointsDominatedNeverConvex(t *testing.T) {
	pts := []geom.Vector{{0.9, 0.9}, {0.5, 0.5}, {0.8, 0.95}}
	got := ConvexPointsExact(pts)
	for _, i := range got {
		if i == 1 {
			t.Fatal("strictly dominated point reported convex")
		}
	}
}

func TestConvexPointsDuplicates(t *testing.T) {
	// Duplicates of a convex point are all convex (tied top-1).
	pts := []geom.Vector{{1, 0}, {1, 0}, {0, 1}, {0.4, 0.4}}
	got := ConvexPointsExact(pts)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestConvexPointsSingle(t *testing.T) {
	pts := []geom.Vector{{0.5, 0.5, 0.5}}
	if got := ConvexPointsExact(pts); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton: %v", got)
	}
	if got := ConvexPointsExact(nil); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestSamplingSubsetOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.AntiCorrelated(rng, 300, 3)
	exact := map[int]bool{}
	for _, i := range ConvexPointsExact(d.Points) {
		exact[i] = true
	}
	sampled := ConvexPointsSampling(d.Points, 500, rng)
	for _, i := range sampled {
		if !exact[i] {
			t.Fatalf("sampling found %d which exact says is not convex", i)
		}
	}
	if len(sampled) == 0 {
		t.Fatal("sampling found nothing")
	}
}

// Property: every point that wins a random utility draw must be reported by
// the exact method (completeness), and every reported point must win at its
// LP witness (checked internally) — cross-validate with brute force over a
// fine sample.
func TestQuickExactCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		d := 2 + rng.Intn(3)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := geom.NewVector(d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		exact := map[int]bool{}
		for _, i := range ConvexPointsExact(pts) {
			exact[i] = true
		}
		for s := 0; s < 200; s++ {
			u := oracle.RandomUtility(rng, d)
			if !exact[argmax(pts, u, -1)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: soundness — every exact convex point is the (tied) winner of at
// least one sampled utility among many, OR wins its own verification (small
// top-1 regions can escape sampling, so verify via a dense sweep in 2D
// where the answer is computable by brute force).
func TestExactSoundness2D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(50)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		got := ConvexPointsExact(pts)
		// Brute force in 2D: sweep u1 over a fine grid, collect winners
		// (with tolerance for ties).
		winners := map[int]bool{}
		for s := 0; s <= 5000; s++ {
			u1 := float64(s) / 5000
			u := geom.Vector{u1, 1 - u1}
			best := -1.0
			for _, p := range pts {
				if v := u.Dot(p); v > best {
					best = v
				}
			}
			for i, p := range pts {
				if u.Dot(p) >= best-1e-12 {
					winners[i] = true
				}
			}
		}
		gotSet := map[int]bool{}
		for _, i := range got {
			gotSet[i] = true
		}
		// Completeness: every grid winner is reported.
		for i := range winners {
			if !gotSet[i] {
				t.Fatalf("trial %d: grid winner %d missing from exact set", trial, i)
			}
		}
		// Soundness is allowed a tolerance: a reported point must at least be
		// within epsilon of winning somewhere on the grid. Verify by a direct
		// LP-free check: max over grid of (utility of p - best other).
		for _, i := range got {
			bestMargin := -1.0
			for s := 0; s <= 5000; s++ {
				u1 := float64(s) / 5000
				u := geom.Vector{u1, 1 - u1}
				my := u.Dot(pts[i])
				other := -1.0
				for j, p := range pts {
					if j != i {
						if v := u.Dot(p); v > other {
							other = v
						}
					}
				}
				if m := my - other; m > bestMargin {
					bestMargin = m
				}
			}
			if bestMargin < -1e-4 {
				t.Fatalf("trial %d: reported convex point %d never close to winning (margin %v)", trial, i, bestMargin)
			}
		}
	}
}

func sortedEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSamplingDeterministicSeed(t *testing.T) {
	pts := dataset.AntiCorrelated(rand.New(rand.NewSource(3)), 200, 4).Points
	a := ConvexPointsSampling(pts, 300, rand.New(rand.NewSource(5)))
	b := ConvexPointsSampling(pts, 300, rand.New(rand.NewSource(5)))
	if !sortedEqual(a, b) {
		t.Fatal("same seed must give the same sampled convex points")
	}
}

func TestConvexPoints2DMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(80)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		fast := ConvexPoints2D(pts)
		exact := ConvexPointsExact(pts)
		if !sortedEqual(fast, exact) {
			t.Fatalf("trial %d: fast %v != exact %v", trial, fast, exact)
		}
	}
}

func TestConvexPoints2DDuplicates(t *testing.T) {
	pts := []geom.Vector{{1, 0}, {1, 0}, {0, 1}, {0.2, 0.2}}
	got := ConvexPoints2D(pts)
	want := ConvexPointsExact(pts)
	if !sortedEqual(got, want) {
		t.Fatalf("fast %v != exact %v on duplicates", got, want)
	}
}

func TestConvexPoints2DPanicsOn3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 3-d input")
		}
	}()
	ConvexPoints2D([]geom.Vector{{1, 2, 3}})
}

func BenchmarkConvexPoints2DVsExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := dataset.AntiCorrelated(rng, 2000, 2).Points
	b.Run("envelope", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ConvexPoints2D(pts)
		}
	})
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ConvexPointsExact(pts)
		}
	})
}
