package hull

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/lp"
	"ist/internal/obs"
	"ist/internal/skyband"
)

// freezeLPClock pins traced-solve timing to a constant so event streams from
// serial and parallel runs can be compared with DeepEqual.
func freezeLPClock(t *testing.T) {
	t.Helper()
	lp.SetClock(clock.NewFake(time.Unix(0, 0)))
	t.Cleanup(func() { lp.SetClock(nil) })
}

func antiCorrelatedBand(t testing.TB, n, d, k int) []geom.Vector {
	t.Helper()
	ds := dataset.AntiCorrelated(rand.New(rand.NewSource(42)), n, d)
	band := skyband.KSkyband(ds.Points, k)
	pts := make([]geom.Vector, len(band))
	for i, idx := range band {
		pts[i] = ds.Points[idx]
	}
	return pts
}

// TestParallelMatchesSerial is the core determinism contract: for every
// worker count the parallel engine must return the same convex points AND
// emit a bit-identical event stream to the serial engine.
func TestParallelMatchesSerial(t *testing.T) {
	freezeLPClock(t)
	pts := antiCorrelatedBand(t, 300, 5, 3)

	var serialRec obs.Recorder
	wantV, wantErr := convexPointsExact(pts, nil, true, &serialRec)
	if wantErr != nil {
		t.Fatalf("serial: %v", wantErr)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var rec obs.Recorder
		gotV, err := ConvexPointsExactParallel(pts, nil, true, &rec, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotV, wantV) {
			t.Fatalf("workers=%d: convex points diverge\ngot  %v\nwant %v", workers, gotV, wantV)
		}
		if !reflect.DeepEqual(rec.Events(), serialRec.Events()) {
			t.Fatalf("workers=%d: event stream diverges (%d events vs %d)",
				workers, rec.Len(), serialRec.Len())
		}
	}
}

// TestParallelMatchesSerialNilObserver checks the nil-observer fast path —
// the engines must still agree when nobody is recording.
func TestParallelMatchesSerialNilObserver(t *testing.T) {
	pts := antiCorrelatedBand(t, 200, 4, 2)
	want, _ := convexPointsExact(pts, nil, false, nil)
	for _, workers := range []int{2, 4} {
		got, err := ConvexPointsExactParallel(pts, nil, false, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
		}
	}
}

// TestParallelStopImmediately: a stop() that is already true must yield the
// seed confirms only, exactly as the serial engine does.
func TestParallelStopImmediately(t *testing.T) {
	freezeLPClock(t)
	pts := antiCorrelatedBand(t, 120, 4, 2)
	stop := func() bool { return true }

	var serialRec obs.Recorder
	want, err := convexPointsExact(pts, stop, true, &serialRec)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	var rec obs.Recorder
	got, err := ConvexPointsExactParallel(pts, stop, true, &rec, 4)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !reflect.DeepEqual(rec.Events(), serialRec.Events()) {
		t.Fatalf("event streams diverge under immediate stop")
	}
}

// TestParallelStopMidway: stop() predicates see the identical call sequence
// in both engines (one call per unconfirmed candidate, in candidate order),
// so a count-based budget must cut both scans at the same place.
func TestParallelStopMidway(t *testing.T) {
	freezeLPClock(t)
	pts := antiCorrelatedBand(t, 250, 5, 3)
	for _, budget := range []int{1, 7, 40} {
		mkStop := func() func() bool {
			calls := 0
			return func() bool {
				calls++
				return calls > budget
			}
		}
		var serialRec obs.Recorder
		want, err := convexPointsExact(pts, mkStop(), true, &serialRec)
		if err != nil {
			t.Fatalf("budget=%d serial: %v", budget, err)
		}
		var rec obs.Recorder
		got, err := ConvexPointsExactParallel(pts, mkStop(), true, &rec, 4)
		if err != nil {
			t.Fatalf("budget=%d parallel: %v", budget, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("budget=%d: got %v, want %v", budget, got, want)
		}
		if !reflect.DeepEqual(rec.Events(), serialRec.Events()) {
			t.Fatalf("budget=%d: event streams diverge", budget)
		}
	}
}

// TestParallelWorkersOneIsSerialEngine pins that workers<=1 routes through
// the legacy serial function (no batching, no snapshots).
func TestParallelWorkersOneIsSerialEngine(t *testing.T) {
	freezeLPClock(t)
	pts := antiCorrelatedBand(t, 100, 4, 2)
	var a, b obs.Recorder
	v1, _ := ConvexPointsExactParallel(pts, nil, true, &a, 1)
	v2, _ := convexPointsExact(pts, nil, true, &b)
	if !reflect.DeepEqual(v1, v2) || !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("workers=1 does not match the serial engine")
	}
}

func TestParallelEmpty(t *testing.T) {
	got, err := ConvexPointsExactParallel(nil, nil, true, nil, 4)
	if err != nil || got != nil {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
}

// BenchmarkConvexPointsExact is the serial baseline on the acceptance
// workload: the k-skyband of an anti-correlated 6-d dataset.
func BenchmarkConvexPointsExact(b *testing.B) {
	pts := antiCorrelatedBand(b, 400, 6, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvexPointsExact(pts)
	}
}

// BenchmarkConvexPointsExactParallel sweeps the worker-pool degree on the
// same workload; the w4 / serial ratio is the headline speedup in
// BENCH_10.json.
func BenchmarkConvexPointsExactParallel(b *testing.B) {
	pts := antiCorrelatedBand(b, 400, 6, 3)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[w], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ConvexPointsExactParallel(pts, nil, false, nil, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxMinMargin measures one hot-loop LP staging + solve (the unit
// of work the scratch arena de-allocates).
func BenchmarkMaxMinMargin(b *testing.B) {
	pts := antiCorrelatedBand(b, 400, 6, 3)
	against := ConvexPointsExact(pts)
	p := -1
	seen := map[int]bool{}
	for _, q := range against {
		seen[q] = true
	}
	for i := range pts {
		if !seen[i] {
			p = i
			break
		}
	}
	if p < 0 {
		b.Skip("every point convex; no candidate to test")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maxMinMargin(pts, p, against, nil)
	}
}

// BenchmarkArgmax measures the witness verification scan.
func BenchmarkArgmax(b *testing.B) {
	pts := antiCorrelatedBand(b, 400, 6, 3)
	u := geom.NewVector(6)
	for i := range u {
		u[i] = 1 / 6.0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		argmax(pts, u, i%len(pts))
	}
}
