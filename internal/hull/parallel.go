package hull

import (
	"fmt"
	"sort"

	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/parallel"
)

// ConvexPointsExactParallel is ConvexPointsExactObserved fanned out over a
// bounded worker pool. workers <= 1 runs the serial engine unchanged. For
// workers > 1 the scan is speculative-batch parallel (DESIGN.md §14):
//
//   - The dispatcher snapshots the confirmed set and hands a batch of
//     candidates to the pool. Each worker runs the full serial retry loop for
//     its candidate against the snapshot, recording the lp-solve events it
//     would have emitted into a private obs.Recorder and collecting the
//     confirms it would have made.
//   - Results are committed strictly in candidate order. A commit replays the
//     worker's event buffer, applies its confirms, and emits the candidate's
//     convex-point-test event — so the merged event stream, the confirmed
//     set, and every stop() call site are bit-identical to a serial run.
//   - A commit that grows the confirmed set invalidates the later slots of
//     the batch (their LPs were solved against a stale constraint set); the
//     dispatcher discards them and re-speculates from the first stale
//     candidate. Most candidates confirm nothing, so most batches commit
//     whole — that is where the speedup comes from.
//
// stop is only ever called from the dispatcher goroutine (once per
// unconfirmed candidate, in candidate order, exactly as the serial scan
// does), so callers may pass predicates that are not goroutine-safe.
func ConvexPointsExactParallel(points []geom.Vector, stop func() bool, strict bool, o obs.Observer, workers int) ([]int, error) {
	if workers <= 1 {
		return convexPointsExact(points, stop, strict, o)
	}
	return convexPointsExactParallel(points, stop, strict, o, workers)
}

// spexResult is one worker's speculation: the confirms its retry loop made
// (in order; the candidate itself appears last iff it was confirmed), the
// private event tape, and the strict-mode LP failure, if any.
type spexResult struct {
	ext []int
	rec *obs.Recorder
	err error
}

func convexPointsExactParallel(points []geom.Vector, stop func() bool, strict bool, o obs.Observer, workers int) ([]int, error) {
	n := len(points)
	if n == 0 {
		return nil, nil
	}
	d := len(points[0])

	confirmed := map[int]bool{}
	var confirmedList []int
	confirm := func(i int) {
		if !confirmed[i] {
			confirmed[i] = true
			confirmedList = append(confirmedList, i)
		}
	}
	for _, u := range seedUtilities(d) {
		confirm(argmax(points, u, -1))
	}

	// Batch size adapts to the confirm rate: every commit that grows the
	// confirmed set discards the rest of its batch, so while confirms are
	// frequent (the early part of the scan, where the convex set is still
	// being discovered) wide batches only burn CPU on doomed speculation.
	// Start narrow, double after each batch that commits whole, halve on a
	// stale discard. The reject-only tail — the bulk of the LP work —
	// quickly reaches full width. The schedule depends only on commit
	// outcomes, which are deterministic, so it is reproducible run to run.
	batchCap := 2 * workers
	batchSize := 1
	batch := make([]int, 0, batchCap)
	var results []spexResult
	next := 0
	for next < n {
		batch = batch[:0]
		scan := next
		for ; scan < n && len(batch) < batchSize; scan++ {
			if !confirmed[scan] {
				batch = append(batch, scan)
			}
		}
		if len(batch) == 0 {
			next = scan
			continue
		}

		// Snapshot the confirmed set. The three-index slice caps the
		// snapshot at its own length, so a worker's append reallocates
		// instead of scribbling on the shared backing array.
		version := len(confirmedList)
		snap := confirmedList[:version:version]
		snapSet := make(map[int]bool, version)
		for _, q := range snap {
			snapSet[q] = true
		}

		if cap(results) < len(batch) {
			results = make([]spexResult, len(batch))
		}
		results = results[:len(batch)]
		parallel.Do(workers, len(batch), func(i int) {
			results[i] = speculate(points, batch[i], snap, snapSet, strict)
		})

		// Commit in candidate order, mirroring the serial loop's per-candidate
		// sequence: skip-if-confirmed, stop check, then the candidate's work.
		next = scan
		stale := false
		for i, p := range batch {
			if confirmed[p] {
				continue // confirmed by an earlier commit; serial skips silently
			}
			if len(confirmedList) != version {
				// An earlier commit grew the confirmed set, so this slot's
				// LPs ran against a stale constraint set. Re-speculate from
				// here with the fresh snapshot. Checked before stop() so a
				// discarded slot does not consume a budget probe — stop()
				// must fire exactly once per committed candidate, as in the
				// serial scan.
				next = p
				stale = true
				break
			}
			if stop != nil && stop() {
				sort.Ints(confirmedList)
				return confirmedList, nil
			}
			r := results[i]
			r.rec.Replay(o)
			for _, w := range r.ext {
				confirm(w)
			}
			if r.err != nil {
				sort.Ints(confirmedList)
				return confirmedList, r.err
			}
			obs.ConvexPointTest(o, p, confirmed[p])
		}
		if stale {
			if batchSize > 1 {
				batchSize /= 2
			}
		} else if batchSize < batchCap {
			batchSize *= 2
		}
	}
	sort.Ints(confirmedList)
	return confirmedList, nil
}

// speculate runs the serial engine's inner retry loop for candidate p against
// the confirmed-set snapshot, buffering events and confirms instead of
// publishing them. It reads only shared immutable state (points, snap,
// snapSet) and is safe to run concurrently with other speculations.
func speculate(points []geom.Vector, p int, snap []int, snapSet map[int]bool, strict bool) spexResult {
	res := spexResult{rec: &obs.Recorder{}}
	local := snap // cap-limited by the dispatcher: append reallocates
	var localSet map[int]bool
	for {
		u, delta, ok := maxMinMargin(points, p, local, res.rec)
		if !ok {
			if strict {
				res.err = fmt.Errorf("hull: convex-point LP for candidate %d returned a non-optimal status", p)
			}
			break // otherwise the historical behaviour: reject the candidate
		}
		if delta < -geom.Eps {
			break // beaten everywhere by confirmed points: not convex
		}
		w, dp, dw := argmaxVals(points, u, p)
		if dp >= dw-geom.Eps {
			res.ext = append(res.ext, p) // p is (tied-)top-1 at the witness
			break
		}
		if snapSet[w] || localSet[w] {
			// Numerical disagreement between LP and the exact argmax; the
			// confirmed winner strictly beats p at its own witness, so
			// reject p conservatively (as the serial engine does).
			break
		}
		if localSet == nil {
			localSet = map[int]bool{}
		}
		localSet[w] = true
		local = append(local, w)
		res.ext = append(res.ext, w) // new convex point; retry with it constrained
	}
	return res
}
