package hull

import (
	"sort"

	"ist/internal/geom"
	"ist/internal/sweep"
)

// ConvexPoints2D computes the convex points of a 2-d dataset without LPs:
// a point is top-1 for some utility vector exactly when its dual line
// appears on the upper envelope over u₁ ∈ [0,1] (Section 4.1's duality), so
// the plane-sweep envelope gives the answer in O(n·h) for h envelope
// segments. Points whose duals coincide with an envelope line (duplicates)
// are tied top-1 and included, matching ConvexPointsExact's semantics.
func ConvexPoints2D(points []geom.Vector) []int {
	if len(points) == 0 {
		return nil
	}
	if len(points[0]) != 2 {
		panic("hull: ConvexPoints2D needs 2-d points")
	}
	order, _ := sweep.UpperEnvelope(points)
	seen := map[int]bool{}
	for _, i := range order {
		seen[i] = true
	}
	// Include exact duplicates of envelope points (tied top-1).
	for i, p := range points {
		if seen[i] {
			continue
		}
		for j := range seen {
			if points[j].Equal(p) {
				seen[i] = true
				break
			}
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
