// Package hull finds the convex points of a dataset: points that are top-1
// w.r.t. at least one utility vector of the simplex (Section 5.2.1). HD-PI
// builds its initial utility-space partitions from exactly these points.
//
// Two strategies are provided, matching the paper's two HD-PI versions:
//
//   - ConvexPointsExact ("accurate"): an output-sensitive LP method. For
//     each candidate p we solve max δ s.t. u·(p−q) ≥ δ for all confirmed
//     convex points q; if δ < 0 then p is beaten everywhere already by the
//     confirmed set and is rejected (adding constraints can only lower δ).
//     Otherwise the witness u is verified against the full dataset: either p
//     is top-1 at u (confirmed), or the actual winner is a new convex point
//     that joins the confirmed set and the LP is retried. Every retry grows
//     the confirmed set, so the total LP count is O(n + |V|) with tiny LPs.
//
//   - ConvexPointsSampling ("sampling"): the paper's practical strategy —
//     sample utility vectors uniformly and collect the distinct top-1
//     points. May miss convex points with small top-1 regions; Figure 7
//     measures how little this costs in result accuracy.
package hull

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ist/internal/geom"
	"ist/internal/lp"
	"ist/internal/obs"
	"ist/internal/oracle"
)

// ConvexPointsExact returns the indices of all points that are top-1 for at
// least one utility vector (ties count as top-1). A non-optimal LP solve
// conservatively rejects the candidate (the historical behaviour); use
// ConvexPointsExactErr to detect that instead.
func ConvexPointsExact(points []geom.Vector) []int {
	v, _ := convexPointsExact(points, nil, false, nil)
	return v
}

// ConvexPointsExactErr is ConvexPointsExact with two production affordances:
// a non-Optimal LP solve — which on this always-feasible problem means
// numerical trouble, not geometry — is reported as an error so callers can
// degrade to sampling mode rather than silently mislabel convex points, and
// an optional stop predicate (checked once per candidate, the unit of the
// LP batch loop) lets a budgeted caller abandon the scan early, receiving
// the convex points confirmed so far.
func ConvexPointsExactErr(points []geom.Vector, stop func() bool) ([]int, error) {
	return convexPointsExact(points, stop, true, nil)
}

// ConvexPointsExactObserved is the fully parameterized exact detection with
// trace events: one lp-solve event per LP (via lp.SolveTraced) and one
// convex-point-test event per candidate decision. stop optionally abandons
// the scan early as in ConvexPointsExactErr; strict selects that function's
// error reporting for bad LP solves (true) or ConvexPointsExact's historical
// silent-reject behaviour (false), so instrumented callers can keep whichever
// fault semantics they had before attaching an observer.
func ConvexPointsExactObserved(points []geom.Vector, stop func() bool, strict bool, o obs.Observer) ([]int, error) {
	return convexPointsExact(points, stop, strict, o)
}

func convexPointsExact(points []geom.Vector, stop func() bool, strict bool, o obs.Observer) ([]int, error) {
	n := len(points)
	if n == 0 {
		return nil, nil
	}
	d := len(points[0])

	confirmed := map[int]bool{}
	var confirmedList []int
	confirm := func(i int) {
		if !confirmed[i] {
			confirmed[i] = true
			confirmedList = append(confirmedList, i)
		}
	}

	// Seed: the winner at each simplex corner and at the centroid is a
	// convex point by construction.
	for _, u := range seedUtilities(d) {
		confirm(argmax(points, u, -1))
	}

	for p := 0; p < n; p++ {
		if confirmed[p] {
			continue
		}
		if stop != nil && stop() {
			break // budget exhausted: report what is confirmed so far
		}
		for {
			u, delta, ok := maxMinMargin(points, p, confirmedList, o)
			if !ok {
				if strict {
					sort.Ints(confirmedList)
					return confirmedList, fmt.Errorf("hull: convex-point LP for candidate %d returned a non-optimal status", p)
				}
				break // historical behaviour: reject the candidate
			}
			if delta < -geom.Eps {
				break // beaten everywhere by confirmed points: not convex
			}
			// argmaxVals hands back the dot products the witness scan already
			// computed, so the tie-top-1 test below re-derives nothing.
			w, dp, dw := argmaxVals(points, u, p)
			if dp >= dw-geom.Eps {
				confirm(p) // p is (tied-)top-1 at the witness
				break
			}
			if confirmed[w] {
				// Numerical disagreement between LP and the exact argmax;
				// the confirmed winner strictly beats p at its own witness,
				// so reject p conservatively.
				break
			}
			confirm(w) // found a new convex point; retry with it constrained
		}
		obs.ConvexPointTest(o, p, confirmed[p])
	}
	sort.Ints(confirmedList)
	return confirmedList, nil
}

// seedUtilities returns the utility vectors whose winners are convex points
// by construction: the d simplex corners and the centroid.
func seedUtilities(d int) []geom.Vector {
	seeds := make([]geom.Vector, 0, d+1)
	for i := 0; i < d; i++ {
		e := geom.NewVector(d)
		e[i] = 1
		seeds = append(seeds, e)
	}
	c := geom.NewVector(d)
	for i := range c {
		c[i] = 1 / float64(d)
	}
	return append(seeds, c)
}

// marginScratch reuses maxMinMargin's LP staging buffers across calls: the
// coefficient arena (objective + simplex row + one difference row per
// confirmed point), the constraint headers, and the free-variable mask.
// Reused memory is re-zeroed to fresh-make state, so the staged problem —
// and therefore the solve — is bit-identical to the allocating version this
// replaced (the hot-loop fix of PR 10; see BenchmarkMaxMinMargin). Pooled
// because the parallel fan-out calls this from many workers at once.
type marginScratch struct {
	arena []float64
	cons  []lp.Constraint
	free  []bool
}

var marginPool = sync.Pool{New: func() any { return new(marginScratch) }}

// maxMinMargin solves max δ s.t. u in simplex, u·(p − q) ≥ δ for all q in
// against (excluding p itself). Returns the witness u and δ.
func maxMinMargin(points []geom.Vector, p int, against []int, o obs.Observer) (geom.Vector, float64, bool) {
	d := len(points[p])
	nv := d + 1 // u plus δ
	s := marginPool.Get().(*marginScratch)
	arena := s.arena
	if need := nv * (2 + len(against)); cap(arena) < need {
		arena = make([]float64, need)
	} else {
		arena = arena[:need]
		clear(arena)
	}
	s.arena = arena
	obj := arena[0:nv]
	obj[d] = 1
	one := arena[nv : 2*nv]
	for i := 0; i < d; i++ {
		one[i] = 1
	}
	cons := append(s.cons[:0], lp.Constraint{Coef: one, Rel: lp.EQ, RHS: 1})
	off := 2 * nv
	pp := points[p]
	for _, q := range against {
		if q == p {
			continue
		}
		// The difference p − q is written straight into the arena row: same
		// floats as the Sub-then-copy it replaces, without the temporary.
		row := arena[off : off+nv]
		off += nv
		pq := points[q]
		for j := 0; j < d; j++ {
			row[j] = pp[j] - pq[j]
		}
		row[d] = -1
		cons = append(cons, lp.Constraint{Coef: row, Rel: lp.GE, RHS: 0})
	}
	s.cons = cons
	free := s.free
	if cap(free) < nv {
		free = make([]bool, nv)
	} else {
		free = free[:nv]
		clear(free)
	}
	s.free = free
	free[d] = true
	res := lp.SolveTraced(lp.Problem{NumVars: nv, Objective: obj, Constraints: cons, Free: free}, o)
	// The solver copies the problem into its own scratch and Result.X is
	// freshly allocated, so the buffers can go back to the pool here.
	marginPool.Put(s)
	if res.Status != lp.Optimal {
		return nil, 0, false
	}
	return geom.Vector(res.X[:d]), res.Value, true
}

// argmax returns the index with the highest utility w.r.t. u; prefer wins
// ties when it is within Eps of the maximum (pass -1 to disable).
func argmax(points []geom.Vector, u geom.Vector, prefer int) int {
	if prefer < 0 {
		best, bestVal := 0, u.Dot(points[0])
		for i := 1; i < len(points); i++ {
			if v := u.Dot(points[i]); v > bestVal {
				best, bestVal = i, v
			}
		}
		return best
	}
	best, _, _ := argmaxVals(points, u, prefer)
	return best
}

// argmaxVals is argmax for a real candidate (prefer >= 0) that also returns
// the dot products the scan computed — prefer's value and the maximum — so
// callers deciding a tie-top-1 test need no repeat Dot calls. prefer's value
// is tracked inside the single pass instead of being recomputed after it.
func argmaxVals(points []geom.Vector, u geom.Vector, prefer int) (int, float64, float64) {
	best, bestVal := 0, u.Dot(points[0])
	preferVal := bestVal // prefer == 0 is covered by the init
	for i := 1; i < len(points); i++ {
		v := u.Dot(points[i])
		if i == prefer {
			preferVal = v
		}
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	if preferVal >= bestVal-geom.Eps {
		return prefer, preferVal, bestVal
	}
	return best, preferVal, bestVal
}

// ConvexPointsSampling approximates the convex points by sampling `samples`
// utility vectors uniformly from the simplex (always including the corners
// and the centroid) and collecting the distinct top-1 winners.
func ConvexPointsSampling(points []geom.Vector, samples int, rng *rand.Rand) []int {
	if len(points) == 0 {
		return nil
	}
	d := len(points[0])
	seen := map[int]bool{}
	try := func(u geom.Vector) { seen[argmax(points, u, -1)] = true }

	for i := 0; i < d; i++ {
		e := geom.NewVector(d)
		e[i] = 1
		try(e)
	}
	c := geom.NewVector(d)
	for i := range c {
		c[i] = 1 / float64(d)
	}
	try(c)
	for s := 0; s < samples; s++ {
		try(oracle.RandomUtility(rng, d))
	}

	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
