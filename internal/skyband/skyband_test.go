package skyband

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ist/internal/geom"
)

func TestSkylineSmall(t *testing.T) {
	pts := []geom.Vector{
		{0.9, 0.1}, // skyline
		{0.5, 0.5}, // skyline
		{0.4, 0.4}, // dominated by (0.5,0.5)
		{0.1, 0.9}, // skyline
		{0.9, 0.1}, // duplicate of first: not dominated (no strict dim)
	}
	got := Skyline(pts)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Skyline = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Skyline = %v, want %v", got, want)
		}
	}
}

func TestKSkybandPaperTable2(t *testing.T) {
	// Table 2's dataset: all five points are in the 2-skyband except p5?
	// Verify against brute force below; here check k=1: p1, p3, p5 only
	// (p2 is dominated by p3; p4 is dominated by p3? p3=(0.5,0.8), p4=(0.7,0.4):
	// no. p4 not dominated; p5=(1,0) not dominated).
	pts := []geom.Vector{
		{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0},
	}
	got := Skyline(pts)
	want := []int{0, 2, 3, 4} // p2 dominated by p3
	if len(got) != len(want) {
		t.Fatalf("Skyline = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Skyline = %v, want %v", got, want)
		}
	}
	// k=2: everything survives (p2 has only 1 dominator).
	if got := KSkyband(pts, 2); len(got) != 5 {
		t.Fatalf("2-skyband = %v, want all 5", got)
	}
}

func TestKSkybandMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 200, 3)
	prev := 0
	for k := 1; k <= 5; k++ {
		cur := len(KSkyband(pts, k))
		if cur < prev {
			t.Fatalf("skyband size decreased from %d to %d at k=%d", prev, cur, k)
		}
		prev = cur
	}
}

// Property: KSkyband agrees with the brute-force dominator count.
func TestQuickKSkybandMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(70)
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(4)
		pts := randomPoints(rng, n, d)
		got := KSkyband(pts, k)
		counts := DominatorCount(pts)
		var want []int
		for i, c := range counts {
			if c < k {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		sort.Ints(got)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every possible top-k point is in the k-skyband — for random
// utility vectors, the top-k points by utility are all skyband members.
func TestQuickSkybandContainsTopK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(50)
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(3)
		pts := randomPoints(rng, n, d)
		band := map[int]bool{}
		for _, i := range KSkyband(pts, k) {
			band[i] = true
		}
		for trial := 0; trial < 20; trial++ {
			u := randSimplex(rng, d)
			idx := topK(pts, u, k)
			for _, i := range idx {
				if !band[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFilter(t *testing.T) {
	pts := []geom.Vector{{1}, {2}, {3}}
	got := Filter(pts, []int{2, 0})
	if len(got) != 2 || got[0][0] != 3 || got[1][0] != 1 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestKSkybandDuplicates(t *testing.T) {
	// The lower-bound dataset of Theorem 3.2: groups of k identical points.
	// Duplicates never dominate each other, so all of them stay in any
	// skyband.
	pts := []geom.Vector{
		{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5},
		{0.9, 0.9}, {0.9, 0.9}, {0.9, 0.9},
	}
	// (0.9,0.9) dominates (0.5,0.5): only the three 0.9s survive k=1, and
	// the duplicates do not eliminate each other.
	if got := Skyline(pts); len(got) != 3 {
		t.Fatalf("Skyline = %v, want the three 0.9 duplicates", got)
	}
}

func TestKSkybandDuplicatesDominated(t *testing.T) {
	pts := []geom.Vector{
		{0.5, 0.5}, {0.5, 0.5},
		{0.9, 0.9}, {0.9, 0.9},
	}
	// Each (0.5,0.5) is dominated by two points; 2-skyband excludes them,
	// 3-skyband includes everything.
	if got := KSkyband(pts, 2); len(got) != 2 {
		t.Fatalf("2-skyband = %v, want the two 0.9s", got)
	}
	if got := KSkyband(pts, 3); len(got) != 4 {
		t.Fatalf("3-skyband = %v, want all", got)
	}
}

func randomPoints(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := geom.NewVector(d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func randSimplex(rng *rand.Rand, d int) geom.Vector {
	u := geom.NewVector(d)
	s := 0.0
	for i := range u {
		u[i] = rng.ExpFloat64()
		s += u[i]
	}
	return u.Scale(1 / s)
}

func topK(pts []geom.Vector, u geom.Vector, k int) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return u.Dot(pts[idx[a]]) > u.Dot(pts[idx[b]])
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
