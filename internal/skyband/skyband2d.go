package skyband

import (
	"sort"

	"ist/internal/geom"
)

// KSkyband2D computes the k-skyband of 2-dimensional points in O(n log n)
// using a Fenwick tree over compressed y-ranks — the fast path behind the
// paper's 2-d experiments, where the generic counting approach wastes time.
// Semantics match KSkyband exactly (domination = >= in both dimensions,
// strict in at least one; duplicates never dominate each other).
func KSkyband2D(points []geom.Vector, k int) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	if len(points[0]) != 2 {
		panic("skyband: KSkyband2D needs 2-d points")
	}
	if k < 1 {
		panic("skyband: k must be >= 1")
	}

	// Compress y values to ranks 1..m.
	ys := make([]float64, n)
	for i, p := range points {
		ys[i] = p[1]
	}
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	uniq := sorted[:0]
	for i, v := range sorted {
		// Exact dedup: Fenwick ranks need exact equivalence classes (an
		// eps-based grouping is not transitive), and rankOf looks values up
		// with exact binary search.
		//lint:ignore floatcmp exact grouping; eps-based classes are not transitive
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	rankOf := func(y float64) int { return sort.SearchFloat64s(uniq, y) + 1 }

	// Process points in decreasing x; within equal x, y plays no role for
	// the cross-group count but the within-group count handles strict-y.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := points[order[a]], points[order[b]]
		//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
		if pa[0] != pb[0] {
			return pa[0] > pb[0]
		}
		return pa[1] > pb[1]
	})

	bit := newFenwick(len(uniq))
	dominators := make([]int, n)
	for gs := 0; gs < n; {
		ge := gs
		x := points[order[gs]][0]
		// Equal-x groups mirror the exact sort order above; eps-grouping
		// would disagree with the comparator and split groups inconsistently.
		//lint:ignore floatcmp exact grouping must match the exact sort comparator
		for ge < n && points[order[ge]][0] == x {
			ge++
		}
		group := order[gs:ge]
		// Cross-group: processed points all have strictly larger x, so any
		// of them with y >= p.y dominates p.
		for _, idx := range group {
			dominators[idx] = bit.suffixCount(rankOf(points[idx][1]))
		}
		// Within-group (equal x): q dominates p iff q.y > p.y. The group is
		// sorted by y descending, so the number of strictly-larger ys is the
		// count of predecessors with a different y value.
		strictlyAbove := 0
		for gi, idx := range group {
			if gi > 0 && points[group[gi-1]][1] > points[idx][1] {
				strictlyAbove = gi
			}
			dominators[idx] += strictlyAbove
		}
		for _, idx := range group {
			bit.add(rankOf(points[idx][1]))
		}
		gs = ge
	}

	var out []int
	for i := 0; i < n; i++ {
		if dominators[i] < k {
			out = append(out, i)
		}
	}
	return out
}

// fenwick is a Fenwick (binary indexed) tree counting inserted y-ranks.
type fenwick struct {
	tree []int
	n    int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1), n: n} }

// add inserts one occurrence of rank r (1-based).
func (f *fenwick) add(r int) {
	for ; r <= f.n; r += r & -r {
		f.tree[r]++
	}
}

// prefixCount returns the number of inserted ranks <= r.
func (f *fenwick) prefixCount(r int) int {
	s := 0
	for ; r > 0; r -= r & -r {
		s += f.tree[r]
	}
	return s
}

// suffixCount returns the number of inserted ranks >= r.
func (f *fenwick) suffixCount(r int) int {
	return f.prefixCount(f.n) - f.prefixCount(r-1)
}
