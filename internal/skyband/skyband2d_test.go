package skyband

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ist/internal/geom"
)

func TestKSkyband2DMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(200)
		k := 1 + rng.Intn(5)
		pts := make([]geom.Vector, n)
		for i := range pts {
			// Coarse grid to force plenty of ties and duplicates.
			pts[i] = geom.Vector{
				float64(rng.Intn(12)) / 12,
				float64(rng.Intn(12)) / 12,
			}
		}
		fast := KSkyband2D(pts, k)
		slow := kSkybandGeneric(pts, k)
		if !equalInts(fast, slow) {
			t.Fatalf("trial %d (n=%d k=%d): fast %v != slow %v", trial, n, k, fast, slow)
		}
	}
}

// kSkybandGeneric is the O(n^2) reference.
func kSkybandGeneric(pts []geom.Vector, k int) []int {
	counts := DominatorCount(pts)
	var out []int
	for i, c := range counts {
		if c < k {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKSkyband2DDuplicates(t *testing.T) {
	pts := []geom.Vector{
		{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}, {0.9, 0.9},
	}
	if got := KSkyband2D(pts, 2); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("2-skyband = %v, want [2 3]", got)
	}
	if got := KSkyband2D(pts, 3); len(got) != 4 {
		t.Fatalf("3-skyband = %v, want all", got)
	}
}

func TestKSkyband2DPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"3d":   func() { KSkyband2D([]geom.Vector{{1, 2, 3}}, 1) },
		"badK": func() { KSkyband2D([]geom.Vector{{1, 2}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	if got := KSkyband2D(nil, 1); got != nil {
		t.Fatalf("empty input: %v", got)
	}
}

// Property: fast path equals the generic path on continuous random data.
func TestQuick2DMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(150)
		k := 1 + rng.Intn(6)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		return equalInts(KSkyband2D(pts, k), kSkybandGeneric(pts, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3)
	f.add(3)
	f.add(7)
	if f.prefixCount(2) != 0 || f.prefixCount(3) != 2 || f.prefixCount(10) != 3 {
		t.Fatal("prefix counts wrong")
	}
	if f.suffixCount(1) != 3 || f.suffixCount(4) != 1 || f.suffixCount(8) != 0 {
		t.Fatal("suffix counts wrong")
	}
}

func BenchmarkKSkyband2DVsGeneric(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Vector, 20000)
	for i := range pts {
		// anti-correlated-ish for a large band
		x := rng.Float64()
		pts[i] = geom.Vector{x, 1 - x + rng.NormFloat64()*0.05}
	}
	b.Run("fenwick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KSkyband2D(pts, 10)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kSkybandCounting(pts, 10)
		}
	})
}
