// Package skyband computes skylines and k-skybands, the dataset
// preprocessing used throughout the paper's experiments (Section 6: "we
// preprocessed all the datasets to include k-skyband points, which are all
// possible top-k points for any utility function").
package skyband

import (
	"sort"

	"ist/internal/geom"
)

// Skyline returns the indices of points not dominated by any other point.
// Equivalent to KSkyband(points, 1).
func Skyline(points []geom.Vector) []int {
	return KSkyband(points, 1)
}

// KSkyband returns the indices (in the original slice, ascending) of points
// dominated by fewer than k other points. Only such points can appear among
// the top-k for some linear utility function.
//
// The implementation processes points in decreasing coordinate-sum order and
// counts dominators only among already-confirmed skyband members, which is
// sound: a rejected point has >= k confirmed dominators, each of which also
// dominates everything the rejected point dominates.
func KSkyband(points []geom.Vector, k int) []int {
	if k < 1 {
		panic("skyband: k must be >= 1")
	}
	if len(points) > 0 && len(points[0]) == 2 {
		// O(n log n) Fenwick-tree fast path with identical semantics
		// (property-tested against the generic counting below).
		return KSkyband2D(points, k)
	}
	return kSkybandCounting(points, k)
}

// kSkybandCounting is the generic d-dimensional skyband: points processed
// in decreasing coordinate-sum order, dominators counted among confirmed
// members only (sound by the chain argument in the KSkyband doc comment).
func kSkybandCounting(points []geom.Vector, k int) []int {
	n := len(points)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sums := make([]float64, n)
	for i, p := range points {
		sums[i] = p.Sum()
	}
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })

	var members []int // confirmed skyband, in processing order
	for _, idx := range order {
		p := points[idx]
		dominators := 0
		for _, m := range members {
			if points[m].Dominates(p) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			members = append(members, idx)
		}
	}
	sort.Ints(members)
	return members
}

// Filter returns the subset of points whose indices are given, preserving
// order.
func Filter(points []geom.Vector, idx []int) []geom.Vector {
	out := make([]geom.Vector, len(idx))
	for i, j := range idx {
		out[i] = points[j]
	}
	return out
}

// DominatorCount returns, for each point, the number of other points that
// dominate it (exact, O(n^2); used by tests and small-scale validation).
func DominatorCount(points []geom.Vector) []int {
	counts := make([]int, len(points))
	for i, p := range points {
		for j, q := range points {
			if i != j && q.Dominates(p) {
				counts[i]++
			}
		}
	}
	return counts
}
