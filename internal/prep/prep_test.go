package prep

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ist/internal/obs"
)

func computeReturning(v any, size int64, events ...obs.Event) func(obs.Observer) (any, int64, error) {
	return func(o obs.Observer) (any, int64, error) {
		for _, e := range events {
			obs.Emit(o, e)
		}
		return v, size, nil
	}
}

func TestDoComputesOnceAndReplaysTape(t *testing.T) {
	c := New(0)
	key := Key{Fingerprint: 1, Kind: "convex-exact"}
	ev := obs.Event{Kind: obs.KindLPSolve, Note: "probe"}
	var calls atomic.Int64
	run := func() []obs.Event {
		var rec obs.Recorder
		v, err := c.Do(key, &rec, func(o obs.Observer) (any, int64, error) {
			calls.Add(1)
			return computeReturning([]int{1, 2, 3}, 24, ev)(o)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v, []int{1, 2, 3}) {
			t.Fatalf("value = %v", v)
		}
		return rec.Events()
	}
	cold := run()
	hit := run()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if !reflect.DeepEqual(cold, hit) {
		t.Fatalf("cold and hit event streams differ:\ncold %v\nhit  %v", cold, hit)
	}
	if len(cold) != 1 || cold[0].Note != "probe" {
		t.Fatalf("tape not replayed on cold path: %v", cold)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New(0)
	key := Key{Fingerprint: 9, Kind: "sweep-2d", Param: 3}
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, err := c.Do(key, nil, func(o obs.Observer) (any, int64, error) {
				calls.Add(1)
				return "partitions", 10, nil
			})
			if err != nil || v != "partitions" {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", calls.Load())
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(0)
	key := Key{Fingerprint: 2, Kind: "convex-exact"}
	boom := errors.New("lp wobble")
	fail := true
	do := func() (any, error) {
		return c.Do(key, nil, func(o obs.Observer) (any, int64, error) {
			if fail {
				return nil, 0, boom
			}
			return 42, 8, nil
		})
	}
	if _, err := do(); !errors.Is(err, boom) {
		t.Fatalf("want error, got %v", err)
	}
	fail = false
	v, err := do()
	if err != nil || v != 42 {
		t.Fatalf("retry after error: got %v, %v", v, err)
	}
}

func TestLookupNonBlocking(t *testing.T) {
	c := New(0)
	key := Key{Fingerprint: 3, Kind: "skyband", Param: 2}
	if _, ok := c.Lookup(key, nil); ok {
		t.Fatal("lookup hit on empty cache")
	}
	if _, err := c.Do(key, nil, computeReturning([]int{7}, 8, obs.Event{Kind: obs.KindConvexPointTest})); err != nil {
		t.Fatal(err)
	}
	var rec obs.Recorder
	v, ok := c.Lookup(key, &rec)
	if !ok || !reflect.DeepEqual(v, []int{7}) {
		t.Fatalf("lookup after Do: %v, %v", v, ok)
	}
	if rec.Len() != 1 {
		t.Fatalf("lookup did not replay tape: %d events", rec.Len())
	}
}

// TestLookupInFlightMisses: Lookup must not block on an entry another
// goroutine is still computing.
func TestLookupInFlightMisses(t *testing.T) {
	c := New(0)
	key := Key{Fingerprint: 4, Kind: "convex-exact"}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(key, nil, func(o obs.Observer) (any, int64, error) {
			close(started)
			<-release
			return 1, 1, nil
		})
	}()
	<-started
	if _, ok := c.Lookup(key, nil); ok {
		t.Fatal("lookup returned an in-flight entry")
	}
	close(release)
	<-done
	if _, ok := c.Lookup(key, nil); !ok {
		t.Fatal("lookup missed a completed entry")
	}
}

func TestEvictionByteCap(t *testing.T) {
	c := New(100)
	for i := 0; i < 5; i++ {
		key := Key{Fingerprint: uint64(i), Kind: "convex-exact"}
		if _, err := c.Do(key, nil, computeReturning(i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Bytes > 100 {
		t.Fatalf("bytes %d over cap", s.Bytes)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite cap pressure")
	}
	// The most recent key survives; the oldest is gone.
	if _, ok := c.Lookup(Key{Fingerprint: 4, Kind: "convex-exact"}, nil); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Lookup(Key{Fingerprint: 0, Kind: "convex-exact"}, nil); ok {
		t.Fatal("oldest entry survived the cap")
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	var rec obs.Recorder
	v, err := c.Do(Key{}, &rec, computeReturning("x", 1, obs.Event{Kind: obs.KindLPSolve}))
	if err != nil || v != "x" {
		t.Fatalf("nil cache Do: %v, %v", v, err)
	}
	if rec.Len() != 1 {
		t.Fatal("nil cache should stream events straight through")
	}
	if _, ok := c.Lookup(Key{}, nil); ok {
		t.Fatal("nil cache lookup hit")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}
