// Package prep is the shared preprocessing cache (DESIGN.md §14.3). A server
// hosting many sessions over the same dataset repeats the same deterministic
// preprocessing per session: the k-skyband, the 2-d sweep partitions, the
// exact convex-point set. This cache memoizes those results under the
// dataset fingerprint so the work runs once and every later session reuses
// it.
//
// Determinism is preserved by taping: the first computation records the
// observer events it emits into an obs.Recorder, and the tape is stored next
// to the value. BOTH the cold path and every hit replay the tape into the
// session's observer, so a cached session's event stream (and therefore its
// transcript) is bit-identical to a cold one by construction.
//
// Only reproducible, rng-free computations may be cached (exact convex
// points, sweep partitions, skybands — never sampling mode), and only
// complete ones: budgeted runs that may stop mid-scan use the non-blocking
// Lookup and never populate an entry, so a partial result cannot poison the
// cache.
package prep

import (
	"container/list"
	"sync"

	"ist/internal/obs"
)

// Key identifies one preprocessing artifact: the dataset fingerprint
// (ist.Fingerprint over points and k), the computation kind, and an optional
// integer parameter (e.g. the k of a skyband).
type Key struct {
	Fingerprint uint64
	Kind        string
	Param       int
}

// Stats is a point-in-time snapshot of cache effectiveness, exported on
// /metrics as ist_preprocess_cache_{hits,misses,bytes}.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

type entry struct {
	ready chan struct{} // closed once value/tape/err are set
	value any
	tape  []obs.Event
	bytes int64
	err   error
	elem  *list.Element // LRU position; nil until ready
}

// Cache memoizes preprocessing results with single-flight computation and
// byte-capped LRU eviction. The zero value is not usable; use New.
type Cache struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // front = most recently used; values are Key
	maxBytes int64
	bytes    int64

	hits      int64
	misses    int64
	evictions int64
}

// New returns a cache bounded to maxBytes of stored values (approximate,
// self-reported by each computation). maxBytes <= 0 means unbounded.
func New(maxBytes int64) *Cache {
	return &Cache{
		entries:  map[Key]*entry{},
		lru:      list.New(),
		maxBytes: maxBytes,
	}
}

// Do returns the cached value for key, computing it at most once across
// concurrent callers (single-flight). compute receives an observer that
// tapes the events of the computation; the tape is replayed into o on every
// path — first computation and every hit alike — so event streams do not
// depend on cache state. compute reports the value's approximate resident
// size for the byte cap. Errors are returned but never cached: the next Do
// retries.
func (c *Cache) Do(key Key, o obs.Observer, compute func(obs.Observer) (any, int64, error)) (any, error) {
	if c == nil {
		// Uncached: run compute straight against the session observer.
		v, _, err := compute(o)
		return v, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.mu.Lock()
		c.touch(e)
		c.mu.Unlock()
		obs.ReplayTape(e.tape, o)
		return e.value, nil
	}
	c.misses++
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	rec := &obs.Recorder{}
	v, size, err := compute(rec)
	tape := append([]obs.Event(nil), rec.Events()...)

	c.mu.Lock()
	if err != nil {
		// Never cache failures; let the next caller retry.
		delete(c.entries, key)
		e.err = err
		close(e.ready)
		c.mu.Unlock()
		return nil, err
	}
	e.value, e.tape, e.bytes = v, tape, size
	e.elem = c.lru.PushFront(key)
	c.bytes += size
	c.evict()
	c.mu.Unlock()
	close(e.ready)

	obs.ReplayTape(tape, o)
	return v, nil
}

// Lookup is the non-blocking read used by budgeted algorithm paths: it
// returns the cached value (replaying its tape into o) only when the entry
// is already complete, and never computes or waits. A budgeted run that
// misses computes locally and must NOT populate the cache — it may stop
// mid-scan, and a partial preprocessing result would poison every later
// session.
func (c *Cache) Lookup(key Key, o obs.Observer) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		select {
		//lint:ignore locksafe the default arm makes this receive non-blocking, so it cannot stall holders of c.mu
		case <-e.ready:
		default:
			ok = false // in flight: treat as a miss rather than block
		}
	}
	if !ok || e.err != nil {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	c.touch(e)
	c.mu.Unlock()
	obs.ReplayTape(e.tape, o)
	return e.value, true
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
	}
}

// touch moves a ready entry to the LRU front. Called with c.mu held. An
// entry evicted between the hit bookkeeping and the touch has elem pointing
// at a removed element; MoveToFront on it is harmless (the list ignores
// foreign elements), and the caller still returns the value it already has.
func (c *Cache) touch(e *entry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// evict drops least-recently-used ready entries until the byte cap holds.
// Called with c.mu held.
func (c *Cache) evict() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		key := back.Value.(Key)
		e := c.entries[key]
		c.lru.Remove(back)
		delete(c.entries, key)
		c.bytes -= e.bytes
		c.evictions++
	}
}
