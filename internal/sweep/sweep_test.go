package sweep

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ist/internal/geom"
	"ist/internal/oracle"
)

// paperPoints is Table 2 of the paper.
var paperPoints = []geom.Vector{
	{0, 1},     // p1
	{0.3, 0.7}, // p2
	{0.5, 0.8}, // p3
	{0.7, 0.4}, // p4
	{1, 0},     // p5
}

func TestLineOf(t *testing.T) {
	// p2 = (0.3, 0.7) -> l2: f = -0.4x + 0.7 (Section 4.1).
	l := LineOf(paperPoints[1])
	if math.Abs(l.Slope+0.4) > 1e-12 || math.Abs(l.Intercept-0.7) > 1e-12 {
		t.Fatalf("LineOf(p2) = %+v", l)
	}
}

func TestPaperExampleK2(t *testing.T) {
	// Example 4.1 / Figure 1: k=2 gives two partitions, [0, ~0.67] with p3
	// and [~0.67, 1] with p4.
	parts := PartitionUtilitySpace(paperPoints, 2)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions %+v, want 2", len(parts), parts)
	}
	if parts[0].L != 0 || parts[1].R != 1 {
		t.Fatalf("bad cover: %+v", parts)
	}
	if math.Abs(parts[0].R-parts[1].L) > 1e-12 {
		t.Fatalf("gap between partitions: %+v", parts)
	}
	// Boundary at the crossing of l3 and l4: -0.3x+0.8 = 0.3x+0.4 -> x=2/3.
	if math.Abs(parts[0].R-2.0/3) > 1e-9 {
		t.Fatalf("boundary = %v, want 2/3", parts[0].R)
	}
	if parts[0].Point != 2 {
		t.Fatalf("partition 1 point = p%d, want p3", parts[0].Point+1)
	}
	if parts[1].Point != 3 {
		t.Fatalf("partition 2 point = p%d, want p4", parts[1].Point+1)
	}
	// The boundary pair is (p3, p4) with p3 ranked higher on the left.
	if parts[0].BoundaryI != 2 || parts[0].BoundaryJ != 3 {
		t.Fatalf("boundary pair = (%d,%d), want (2,3)", parts[0].BoundaryI, parts[0].BoundaryJ)
	}
}

func TestRankingAtUtility(t *testing.T) {
	// Figure 1: ranking w.r.t. u=(0.1, 0.9) is p1, p3, p2, p4, p5.
	u := geom.Vector{0.1, 0.9}
	got := oracle.TopK(paperPoints, u, 5)
	want := []int{0, 2, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", got, want)
		}
	}
}

func TestKAtLeastN(t *testing.T) {
	parts := PartitionUtilitySpace(paperPoints, 5)
	if len(parts) != 1 || parts[0].L != 0 || parts[0].R != 1 {
		t.Fatalf("k>=n must give the single full partition, got %+v", parts)
	}
	parts = PartitionUtilitySpace(paperPoints, 50)
	if len(parts) != 1 {
		t.Fatalf("k>n: %+v", parts)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty": func() { PartitionUtilitySpace(nil, 1) },
		"3d":    func() { PartitionUtilitySpace([]geom.Vector{{1, 2, 3}}, 1) },
		"badK":  func() { PartitionUtilitySpace(paperPoints, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Theorem 3.2's dataset: duplicates never cross, so with k copies per
	// group the partitioning must still succeed.
	pts := []geom.Vector{
		{0.9, 0.1}, {0.9, 0.1},
		{0.5, 0.5}, {0.5, 0.5},
		{0.1, 0.9}, {0.1, 0.9},
	}
	parts := PartitionUtilitySpace(pts, 2)
	validatePartitions(t, pts, 2, parts)
}

// validatePartitions checks the structural invariants: partitions tile
// [0,1] and each associated point is among the top-k throughout its
// partition (verified at boundary-adjusted sample points).
func validatePartitions(t *testing.T, pts []geom.Vector, k int, parts []Partition) {
	t.Helper()
	if len(parts) == 0 {
		t.Fatal("no partitions")
	}
	if parts[0].L != 0 || parts[len(parts)-1].R != 1 {
		t.Fatalf("partitions do not span [0,1]: %+v", parts)
	}
	for i := 1; i < len(parts); i++ {
		if math.Abs(parts[i].L-parts[i-1].R) > 1e-12 {
			t.Fatalf("gap between partitions %d and %d", i-1, i)
		}
	}
	for pi, part := range parts {
		if part.R < part.L-1e-12 {
			t.Fatalf("partition %d inverted: %+v", pi, part)
		}
		for _, frac := range []float64{0.001, 0.25, 0.5, 0.75, 0.999} {
			x := part.L + (part.R-part.L)*frac
			u := geom.Vector{x, 1 - x}
			if !oracle.IsTopK(pts, u, k, pts[part.Point]) {
				t.Fatalf("partition %d: point %d not top-%d at x=%v", pi, part.Point, k, x)
			}
		}
	}
}

// bruteMinPartitions computes the true minimum number of partitions by
// elementary-interval decomposition + greedy interval covering.
func bruteMinPartitions(pts []geom.Vector, k int) int {
	// Collect all pairwise crossings in (0,1).
	xs := []float64{0, 1}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if x, ok := CrossingX(LineOf(pts[i]), LineOf(pts[j])); ok && x > 0 && x < 1 {
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	// Elementary intervals between consecutive distinct xs; top-k set is
	// constant inside each.
	type interval struct{ topk map[int]bool }
	var intervals []interval
	for i := 0; i+1 < len(xs); i++ {
		if xs[i+1]-xs[i] < 1e-12 {
			continue
		}
		mid := (xs[i] + xs[i+1]) / 2
		u := geom.Vector{mid, 1 - mid}
		set := map[int]bool{}
		kth := oracle.KthUtility(pts, u, k)
		for idx, p := range pts {
			if u.Dot(p) >= kth-1e-12 {
				set[idx] = true
			}
		}
		intervals = append(intervals, interval{topk: set})
	}
	// Greedy: extend the current partition while some point is top-k in
	// every elementary interval so far.
	count := 0
	var live map[int]bool
	for _, iv := range intervals {
		if live == nil {
			live = copySet(iv.topk)
			count++
			continue
		}
		next := map[int]bool{}
		for p := range live {
			if iv.topk[p] {
				next[p] = true
			}
		}
		if len(next) == 0 {
			live = copySet(iv.topk)
			count++
		} else {
			live = next
		}
	}
	if count == 0 {
		count = 1
	}
	return count
}

func copySet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// Property: the sweep output is valid and achieves the minimal partition
// count (Lemma 4.3), within the Theorem 4.5 bound.
func TestQuickSweepMinimalAndValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		k := 1 + rng.Intn(4)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
		}
		parts := PartitionUtilitySpace(pts, k)
		// Theorem 4.5 bound.
		bound := int(math.Ceil(2 * float64(n) / float64(k+1)))
		if len(parts) > bound {
			t.Logf("seed %d: %d partitions > bound %d", seed, len(parts), bound)
			return false
		}
		// Validity at midpoints of each partition.
		for _, part := range parts {
			mid := (part.L + part.R) / 2
			u := geom.Vector{mid, 1 - mid}
			if !oracle.IsTopK(pts, u, k, pts[part.Point]) {
				t.Logf("seed %d: invalid partition %+v", seed, part)
				return false
			}
		}
		// Minimality (Lemma 4.3).
		if want := bruteMinPartitions(pts, k); len(parts) != want {
			t.Logf("seed %d: got %d partitions, brute force says %d", seed, len(parts), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePaperPartitionsAllK(t *testing.T) {
	for k := 1; k <= 4; k++ {
		parts := PartitionUtilitySpace(paperPoints, k)
		validatePartitions(t, paperPoints, k, parts)
	}
}

func TestBoundaryPairsCrossAtR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Vector, 40)
	for i := range pts {
		pts[i] = geom.Vector{rng.Float64(), rng.Float64()}
	}
	for k := 1; k <= 5; k++ {
		parts := PartitionUtilitySpace(pts, k)
		for _, part := range parts[:len(parts)-1] {
			if part.BoundaryI < 0 || part.BoundaryJ < 0 {
				t.Fatalf("interior partition missing boundary pair: %+v", part)
			}
			x, ok := CrossingX(LineOf(pts[part.BoundaryI]), LineOf(pts[part.BoundaryJ]))
			if !ok || math.Abs(x-part.R) > 1e-9 {
				t.Fatalf("boundary pair crossing %v != R %v", x, part.R)
			}
			// BoundaryI must rank higher than BoundaryJ just left of R.
			xl := part.R - 1e-6
			u := geom.Vector{xl, 1 - xl}
			if u.Dot(pts[part.BoundaryI]) < u.Dot(pts[part.BoundaryJ]) {
				t.Fatalf("boundary orientation wrong at %+v", part)
			}
		}
	}
}

func TestPencilOfConcurrentLines(t *testing.T) {
	// Ultimate degeneracy: points (t, 1-t) dualize to lines all passing
	// through (0.5, 0.5) — every pairwise crossing coincides. Algorithm 1
	// must process the simultaneous swaps without losing the invariants.
	var pts []geom.Vector
	for i := 0; i <= 20; i++ {
		tt := float64(i) / 20
		pts = append(pts, geom.Vector{tt, 1 - tt})
	}
	// Plus a few generic points to mix crossings at and away from 0.5.
	pts = append(pts, geom.Vector{0.9, 0.3}, geom.Vector{0.2, 0.85}, geom.Vector{0.55, 0.5})
	for _, k := range []int{1, 2, 5, 10} {
		parts := PartitionUtilitySpace(pts, k)
		validatePartitions(t, pts, k, parts)
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	pts := make([]geom.Vector, 10)
	for i := range pts {
		pts[i] = geom.Vector{0.4, 0.7}
	}
	for _, k := range []int{1, 3, 10} {
		parts := PartitionUtilitySpace(pts, k)
		validatePartitions(t, pts, k, parts)
		if len(parts) != 1 {
			t.Fatalf("identical points: %d partitions, want 1", len(parts))
		}
	}
}

func TestUpperEnvelopeBasics(t *testing.T) {
	// Table 2 again: envelope is p1, p3, p5 left to right.
	order, breaks := UpperEnvelope(paperPoints)
	want := []int{0, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("envelope = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("envelope = %v, want %v", order, want)
		}
	}
	if len(breaks) != 2 {
		t.Fatalf("breaks = %v", breaks)
	}
	// The envelope winner at each sampled x must be the true top-1.
	for s := 0; s <= 100; s++ {
		x := float64(s) / 100
		u := geom.Vector{x, 1 - x}
		seg := 0
		for seg < len(breaks) && x > breaks[seg] {
			seg++
		}
		if !oracle.IsTopK(paperPoints, u, 1, paperPoints[order[seg]]) {
			t.Fatalf("envelope winner at x=%v is not top-1", x)
		}
	}
}

func TestUpperEnvelopeEmpty(t *testing.T) {
	order, breaks := UpperEnvelope(nil)
	if order != nil || breaks != nil {
		t.Fatal("empty input must give empty envelope")
	}
}
