package sweep

import "ist/internal/geom"

// UpperEnvelope computes the top-1 structure of 2-d points over the utility
// parameter x = u[1] ∈ [0,1]: the sequence of points that are top-1 on
// consecutive intervals, and the breakpoints between them.
//
// The returned order has one entry per envelope segment (left to right) and
// breaks has len(order)-1 entries; order[i] is top-1 on
// [breaks[i-1], breaks[i]] (with breaks[-1] = 0 and breaks[len] = 1).
// Used by the Median/Hull baselines of [36].
func UpperEnvelope(points []geom.Vector) (order []int, breaks []float64) {
	n := len(points)
	if n == 0 {
		return nil, nil
	}
	lines := make([]Line, n)
	for i, p := range points {
		lines[i] = LineOf(p)
	}
	// Start at x = 0 with the highest line; ties broken by larger slope
	// (the winner just right of 0), then by index. The tie must be detected
	// within tieEps, not exactly: the overtake scan below drops crossings
	// closer than tieEps to the sweep position, so starting from a line that
	// is ahead by a sub-tieEps sliver but rises slower would silently lose
	// the true envelope line for the rest of [0,1].
	cur := 0
	for i := 1; i < n; i++ {
		li, lc := lines[i], lines[cur]
		if li.Intercept > lc.Intercept+tieEps ||
			(li.Intercept > lc.Intercept-tieEps && li.Slope > lc.Slope) {
			cur = i
		}
	}
	x := 0.0
	order = append(order, cur)
	for {
		// Next breakpoint: the earliest crossing after x where some line
		// overtakes the current top.
		nextX, nextI := 2.0, -1
		for i := 0; i < n; i++ {
			if i == cur || lines[i].Slope <= lines[cur].Slope {
				continue // only faster-rising lines can overtake
			}
			cx, ok := CrossingX(lines[cur], lines[i])
			if !ok || cx <= x+tieEps || cx > 1 {
				continue
			}
			if cx < nextX-tieEps ||
				(cx < nextX+tieEps && (nextI < 0 || lines[i].Slope > lines[nextI].Slope)) {
				nextX, nextI = cx, i
			}
		}
		if nextI < 0 {
			return order, breaks
		}
		x = nextX
		cur = nextI
		order = append(order, cur)
		breaks = append(breaks, x)
	}
}
