package sweep

import (
	"testing"

	"ist/internal/geom"
)

// TestUpperEnvelopeNearTieAtStart is the regression test for a tie-handling
// bug surfaced by the floatcmp analyzer: the starting line at x = 0 was
// chosen by exact intercept comparison. With two lines separated by a
// sub-tieEps sliver at x = 0, the slower-rising line could win the exact
// comparison, and the true envelope line's overtake crossing (at x ≈ 2e-16)
// was then dropped by the `cx <= x+tieEps` guard of the overtake scan — so
// the reported envelope was wrong on essentially all of [0, 1].
func TestUpperEnvelopeNearTieAtStart(t *testing.T) {
	// Line of riser: slope 0.5, intercept 0.3. Line of sliver: slope ≈ -1e-16,
	// intercept 0.3 + 1e-16 — ahead at x = 0 by far less than tieEps, behind
	// everywhere that matters.
	riser := geom.Vector{0.8, 0.3}
	sliver := geom.Vector{0.3, 0.3 + 1e-16}
	if LineOf(sliver).Intercept <= LineOf(riser).Intercept {
		t.Fatal("test setup: sliver must be exactly ahead at x = 0")
	}

	for name, tc := range map[string]struct {
		points []geom.Vector
		want   int // index of riser
	}{
		"riser-first":  {[]geom.Vector{riser, sliver}, 0},
		"sliver-first": {[]geom.Vector{sliver, riser}, 1},
	} {
		order, breaks := UpperEnvelope(tc.points)
		if len(order) != 1 || order[0] != tc.want {
			t.Errorf("%s: order = %v, want [%d] (breaks %v)", name, order, tc.want, breaks)
		}
		if len(breaks) != 0 {
			t.Errorf("%s: breaks = %v, want none", name, breaks)
		}
	}
}
