package sweep

import (
	"math"
	"testing"

	"ist/internal/geom"
	"ist/internal/oracle"
)

// FuzzPartitionUtilitySpace feeds arbitrary byte-derived 2-d datasets into
// Algorithm 1 and checks the structural invariants: full [0,1] coverage, no
// gaps, valid associated points, and the Theorem 4.5 partition bound.
func FuzzPartitionUtilitySpace(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60}, uint8(1))
	f.Add([]byte{1, 1, 1, 1}, uint8(2))
	f.Add([]byte{255, 0, 0, 255, 128, 128}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		if len(data) < 4 || len(data) > 120 {
			return
		}
		n := len(data) / 2
		pts := make([]geom.Vector, n)
		for i := 0; i < n; i++ {
			// Map bytes to (0,1]; duplicates and ties are the point of the fuzz.
			pts[i] = geom.Vector{
				(float64(data[2*i]) + 1) / 256,
				(float64(data[2*i+1]) + 1) / 256,
			}
		}
		k := int(kRaw)%8 + 1
		parts := PartitionUtilitySpace(pts, k)
		if len(parts) == 0 {
			t.Fatal("no partitions")
		}
		if parts[0].L != 0 || parts[len(parts)-1].R != 1 {
			t.Fatalf("cover broken: %+v", parts)
		}
		if k < n {
			bound := int(math.Ceil(2 * float64(n) / float64(k+1)))
			if len(parts) > bound {
				t.Fatalf("%d partitions exceed bound %d (n=%d k=%d)", len(parts), bound, n, k)
			}
		}
		for i, part := range parts {
			if i > 0 && math.Abs(part.L-parts[i-1].R) > 1e-12 {
				t.Fatalf("gap at partition %d", i)
			}
			if part.R < part.L-1e-12 {
				t.Fatalf("inverted partition %d", i)
			}
			mid := (part.L + part.R) / 2
			u := geom.Vector{mid, 1 - mid}
			if !oracle.IsTopK(pts, u, k, pts[part.Point]) {
				t.Fatalf("partition %d point %d not top-%d at %v", i, part.Point, k, mid)
			}
		}
	})
}
