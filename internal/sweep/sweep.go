// Package sweep implements Algorithm 1 of the paper: 2-dimensional utility
// space partitioning by plane sweeping.
//
// Every 2-d point p maps to the line v_p(x) = (p[0]−p[1])·x + p[1] over the
// utility parameter x = u[1] ∈ [0,1]; the ranking of points at utility
// vector (x, 1−x) is the top-to-bottom order of the lines at x. The sweep
// maintains that order in a queue Q and a min-heap of the crossing events of
// adjacent lines, and labels the current top-k points so that each output
// partition Θ = [l, r] carries a point that stays inside the top-k for every
// x ∈ [l, r]. Algorithm 1 produces the least possible number of partitions
// (Lemma 4.3), and at most ⌈2n/(k+1)⌉ of them (Theorem 4.5).
package sweep

import (
	"container/heap"
	"fmt"

	"ist/internal/geom"
)

// Partition is one interval of the utility space with its associated point.
type Partition struct {
	// L and R delimit the interval [L, R] of u[1] values.
	L, R float64
	// Point is the index (into the input slice) of the associated point,
	// which is among the top-k w.r.t. every utility vector (x, 1−x), x ∈ [L,R].
	Point int
	// BoundaryI and BoundaryJ are the indices of the two points whose line
	// crossing defines R; BoundaryI ranks higher than BoundaryJ for x < R.
	// They are -1 for the rightmost partition (R = 1 is not a crossing).
	BoundaryI, BoundaryJ int
}

type event struct {
	x    float64
	a, b int // expected adjacent pair: a directly above b in Q
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].x < h[j].x }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Line is the dual of a 2-d point.
type Line struct {
	Slope, Intercept float64
}

// LineOf maps a 2-d point to its dual line (Section 4.1).
func LineOf(p geom.Vector) Line {
	return Line{Slope: p[0] - p[1], Intercept: p[1]}
}

// At evaluates the line at x.
func (l Line) At(x float64) float64 { return l.Slope*x + l.Intercept }

// CrossingX returns the x where two lines cross and whether they do
// (parallel lines never cross).
func CrossingX(a, b Line) (float64, bool) {
	ds := a.Slope - b.Slope
	if ds == 0 {
		return 0, false
	}
	return (b.Intercept - a.Intercept) / ds, true
}

const tieEps = geom.TieEps

// PartitionUtilitySpace runs Algorithm 1 on 2-d points and returns the
// partitions left to right. It panics on empty input or non-2-d points. For
// k >= n the whole utility space is a single partition.
func PartitionUtilitySpace(points []geom.Vector, k int) []Partition {
	n := len(points)
	if n == 0 {
		panic("sweep: empty point set")
	}
	if len(points[0]) != 2 {
		panic(fmt.Sprintf("sweep: need 2-d points, got %d-d", len(points[0])))
	}
	if k < 1 {
		panic("sweep: k must be >= 1")
	}
	lines := make([]Line, n)
	for i, p := range points {
		lines[i] = LineOf(p)
	}
	if k >= n {
		// Everything is always in the top-k: one partition, any point.
		return []Partition{{L: 0, R: 1, Point: 0, BoundaryI: -1, BoundaryJ: -1}}
	}

	// Q: order of lines at x=0, ties broken by slope (the order just after
	// 0) so that tied lines never need to swap at x=0, then by index.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lessAtStart := func(a, b int) bool {
		la, lb := lines[a], lines[b]
		// Exact comparisons: an eps-based comparator is not transitive and
		// would break the strict weak order sorting requires. Lines whose
		// intercepts differ by less than tieEps sort "wrong" by at most that
		// sliver, and the event loop swaps them immediately (pushEvent
		// admits crossings down to t-tieEps).
		//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
		if la.Intercept != lb.Intercept {
			return la.Intercept > lb.Intercept
		}
		//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
		if la.Slope != lb.Slope {
			return la.Slope > lb.Slope
		}
		return a < b
	}
	sortInts(order, lessAtStart)
	pos := make([]int, n)
	for i, p := range order {
		pos[p] = i
	}

	// Labels: label[i] = partition number whose candidate set point i
	// belongs to, or 0 for unlabeled. labelCount[x] = #points with label x.
	label := make([]int, n)
	labelCount := map[int]int{}
	cur := 1
	for i := 0; i < k; i++ {
		label[order[i]] = cur
		labelCount[cur]++
	}

	var h eventHeap
	t := 0.0
	pushEvent := func(ia, ib int) {
		// ia directly above ib in Q. They swap in the future iff ib's line
		// rises faster.
		la, lb := lines[ia], lines[ib]
		if lb.Slope <= la.Slope {
			return
		}
		x, ok := CrossingX(la, lb)
		if !ok {
			return
		}
		if x < t-tieEps || x > 1 {
			return
		}
		if x < t {
			x = t
		}
		heap.Push(&h, event{x: x, a: ia, b: ib})
	}
	for i := 0; i+1 < n; i++ {
		pushEvent(order[i], order[i+1])
	}

	var parts []Partition
	l := 0.0

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		// Stale events: the pair must still be adjacent with a above b.
		pa, pb := pos[e.a], pos[e.b]
		if pb != pa+1 {
			continue
		}
		t = e.x
		// Swap in Q.
		order[pa], order[pb] = e.b, e.a
		pos[e.a], pos[e.b] = pb, pa
		// New adjacencies: (above-neighbor, b) and (a, below-neighbor).
		if pa > 0 {
			pushEvent(order[pa-1], e.b)
		}
		if pb+1 < n {
			pushEvent(e.a, order[pb+1])
		}
		// Label maintenance for a swap across the top-k boundary
		// (0-indexed: positions k-1 and k are the k-th and (k+1)-th).
		if pa == k-1 {
			leaving, entering := e.a, e.b
			lv := label[leaving]
			if lv != 0 {
				labelCount[lv]--
				label[leaving] = 0
			}
			if label[entering] != 0 {
				labelCount[label[entering]]--
			}
			label[entering] = cur + 1
			labelCount[cur+1]++
			if lv == cur && labelCount[cur] == 0 {
				parts = append(parts, Partition{
					L: l, R: t, Point: leaving,
					BoundaryI: leaving, BoundaryJ: entering,
				})
				delete(labelCount, cur)
				cur++
				l = t
			}
		}
	}

	// Close the final partition: any point still holding the current label
	// has been in the top-k from l through 1.
	final := -1
	for i := 0; i < n; i++ {
		if label[i] == cur {
			final = i
			break
		}
	}
	if final < 0 {
		// The current partition just started at the very last event; all
		// top-k points are labeled cur+1 and stay top-k through x=1.
		for i := 0; i < n; i++ {
			if label[i] == cur+1 {
				final = i
				break
			}
		}
	}
	if final < 0 {
		// Cannot happen: the top-k is always fully labeled.
		panic("sweep: no labeled point at end of sweep")
	}
	parts = append(parts, Partition{L: l, R: 1, Point: final, BoundaryI: -1, BoundaryJ: -1})
	return parts
}

// sortInts sorts idx with the provided less function (tiny insertion-free
// wrapper around sort.Slice without pulling reflect into the hot path).
func sortInts(idx []int, less func(a, b int) bool) {
	// simple merge sort for determinism and O(n log n)
	if len(idx) < 2 {
		return
	}
	mid := len(idx) / 2
	left := append([]int(nil), idx[:mid]...)
	right := append([]int(nil), idx[mid:]...)
	sortInts(left, less)
	sortInts(right, less)
	i, j := 0, 0
	for k := range idx {
		switch {
		case i < len(left) && (j >= len(right) || !less(right[j], left[i])):
			idx[k] = left[i]
			i++
		default:
			idx[k] = right[j]
			j++
		}
	}
}
