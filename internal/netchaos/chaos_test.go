package netchaos_test

// The network-chaos suite: a real ist/client (full retry stack) drives a
// real internal/server over a fault-injecting Transport, and under EVERY
// fault plan the dialogue must be bit-identical to the fault-free run and
// end on a point inside the hidden utility's top-k. This is the end-to-end
// proof of the exactly-once seq protocol (DESIGN.md §12): dropped
// responses, truncated bodies, proxy retransmits and 5xx bursts may cost
// retries, but they can never inject, lose or double-apply an answer.
//
// Everything is injected — clock, RNG, Sleep, transport — so the whole
// suite runs in milliseconds under -race and replays identically. Set
// NETCHAOS_REPORT to a path to get the per-plan fault matrix as JSON (CI
// uploads it as an artifact).

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"ist"
	"ist/client"
	"ist/internal/clock"
	"ist/internal/netchaos"
	"ist/internal/server"
)

// dialogueResult is one full session's outcome, summarized for comparison
// and for the report artifact.
type dialogueResult struct {
	Plan       string           `json:"plan"`
	Transcript string           `json:"-"`
	Questions  int              `json:"questions"`
	Requests   int              `json:"requests"`
	Faults     int              `json:"faults"`
	FaultKinds map[string]int   `json:"faultKinds,omitempty"`
	Conflicts  int              `json:"conflicts"`
	TopK       bool             `json:"topK"`
	Identical  bool             `json:"transcriptIdentical"`
	Result     []float64        `json:"result"`
	FaultLog   []netchaos.Fault `json:"faultLog,omitempty"`
}

// chaosBand builds the deterministic dataset every plan runs against.
func chaosBand() ([]ist.Point, int, ist.Point) {
	rng := rand.New(rand.NewSource(1))
	ds := ist.CarLike(rng, 500)
	k := 2
	band := ist.Preprocess(ds.Points, k)
	hidden := ist.RandomUtility(rng, 4)
	return band, k, hidden
}

// runDialogue plays one complete session through the fault plan and returns
// its outcome. The server, client, user and fault schedule are all seeded
// identically across plans, so any divergence in the transcript is the
// fault's doing.
func runDialogue(t *testing.T, plan netchaos.Plan) dialogueResult {
	t.Helper()
	band, k, hidden := chaosBand()
	srv, err := server.New(band, k, server.Options{Seed: 1, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	tr := &netchaos.Transport{
		Inner:        netchaos.HandlerTransport{Handler: srv},
		Plan:         plan,
		AdvanceClock: fake.Advance,
	}
	c, err := client.New("http://chaos.test", client.Options{
		HTTP:        &http.Client{Transport: tr},
		Clock:       fake,
		Rand:        rand.New(rand.NewSource(9)),
		MaxAttempts: 8,
		Sleep: func(ctx context.Context, d time.Duration) error {
			fake.Advance(d) // backoff spends fake time, never wall time
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	s, err := c.Create(ctx, "")
	if err != nil {
		t.Fatalf("%s: create: %v", plan.Name, err)
	}
	user := ist.NewUser(hidden)
	var transcript strings.Builder
	st := s.State()
	conflicts := 0
	for steps := 0; !st.Done; steps++ {
		if steps > 500 {
			t.Fatalf("%s: dialogue did not converge after %d answers", plan.Name, steps)
		}
		if st.Question == nil {
			t.Fatalf("%s: live session carries no question: %+v", plan.Name, st)
		}
		prefer := 2
		if user.Prefer(st.Question.Option1, st.Question.Option2) {
			prefer = 1
		}
		fmt.Fprintf(&transcript, "seq=%d q=%v|%v prefer=%d\n",
			st.Seq, st.Question.Option1, st.Question.Option2, prefer)
		next, err := s.Answer(ctx, prefer)
		if cerr, ok := err.(*client.ConflictError); ok {
			// The protocol's resync path: adopt the authoritative state.
			conflicts++
			st = cerr.State
			continue
		}
		if err != nil {
			t.Fatalf("%s: answer at seq %d: %v", plan.Name, st.Seq, err)
		}
		st = next
	}

	kinds := map[string]int{}
	faults := tr.Faults()
	for _, f := range faults {
		kinds[f.Kind]++
	}
	return dialogueResult{
		Plan:       plan.Name,
		Transcript: transcript.String(),
		Questions:  st.Questions,
		Requests:   tr.Requests(),
		Faults:     len(faults),
		FaultKinds: kinds,
		Conflicts:  conflicts,
		TopK:       ist.IsTopK(band, hidden, k, ist.Point(st.Result)),
		Result:     st.Result,
		FaultLog:   faults,
	}
}

// chaosPlans is the fault matrix. Step 1 is the session create: plans keep
// response-loss and duplication off it because a lost create response
// legitimately orphans a session (documented client trade-off), which would
// shift the per-session seed and make transcript comparison meaningless.
func chaosPlans() []netchaos.Plan {
	return []netchaos.Plan{
		{Name: "latency-everywhere", LatencyAt: []int{1}, Every: 1, Latency: 250 * time.Millisecond},
		{Name: "drop-request", DropRequestAt: []int{2}, Every: 3},
		{Name: "drop-response", DropResponseAt: []int{3}, Every: 4},
		{Name: "truncate-body", TruncateAt: []int{2}, Every: 4},
		{Name: "duplicate-delivery", DuplicateAt: []int{2}, Every: 3},
		{Name: "503-burst", Status503At: []int{2, 3}, Every: 6},
		{Name: "500-burst", Status500At: []int{4}, Every: 5},
		{
			Name:           "kitchen-sink",
			Every:          7,
			LatencyAt:      []int{1},
			Latency:        100 * time.Millisecond,
			DropRequestAt:  []int{2},
			DropResponseAt: []int{3},
			TruncateAt:     []int{4},
			DuplicateAt:    []int{5},
			Status503At:    []int{6},
		},
	}
}

func TestChaosTranscriptsBitIdentical(t *testing.T) {
	clean := runDialogue(t, netchaos.Plan{Name: "clean"})
	if !clean.TopK {
		t.Fatalf("clean run ended outside the top-%d: %v", 10, clean.Result)
	}
	if clean.Faults != 0 {
		t.Fatalf("clean plan injected %d faults", clean.Faults)
	}

	clean.Identical = true // the baseline is trivially identical to itself
	report := []dialogueResult{clean}
	for _, plan := range chaosPlans() {
		got := runDialogue(t, plan)
		got.Identical = got.Transcript == clean.Transcript
		report = append(report, got)

		if got.Faults == 0 {
			t.Errorf("%s: injected no faults — the plan is not exercising anything", plan.Name)
		}
		if !got.Identical {
			t.Errorf("%s: transcript diverged from the clean run\nclean:\n%s\nchaos:\n%s",
				plan.Name, clean.Transcript, got.Transcript)
		}
		if got.Questions != clean.Questions {
			t.Errorf("%s: server counted %d questions, clean run %d — an answer was lost or double-applied",
				plan.Name, got.Questions, clean.Questions)
		}
		if !got.TopK {
			t.Errorf("%s: final result %v is outside the hidden utility's top-k", plan.Name, got.Result)
		}
		if got.Requests <= clean.Requests && got.Faults > 0 && plan.Name != "duplicate-delivery" &&
			plan.Name != "latency-everywhere" {
			t.Errorf("%s: %d requests vs clean %d — faults should cost retries, not answers",
				plan.Name, got.Requests, clean.Requests)
		}
		t.Logf("%-20s requests=%-3d faults=%-2d conflicts=%d kinds=%v",
			plan.Name, got.Requests, got.Faults, got.Conflicts, got.FaultKinds)
	}

	if path := os.Getenv("NETCHAOS_REPORT"); path != "" {
		data, err := json.MarshalIndent(struct {
			Clean int              `json:"cleanQuestions"`
			Plans []dialogueResult `json:"plans"`
		}{clean.Questions, report}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write netchaos report: %v", err)
		}
		t.Logf("netchaos report written to %s", path)
	}
}

// TestChaosDuplicateNeverDoubleApplies pins the sharpest corruption case
// directly: every single answer POST is retransmitted, and the session must
// still advance exactly one question per logical answer.
func TestChaosDuplicateNeverDoubleApplies(t *testing.T) {
	clean := runDialogue(t, netchaos.Plan{Name: "clean"})
	// Steps 2..600 absolute: every answer POST, but not the create (a
	// duplicated create forks a second session and shifts the seed).
	everyAnswer := make([]int, 0, 599)
	for step := 2; step <= 600; step++ {
		everyAnswer = append(everyAnswer, step)
	}
	dup := runDialogue(t, netchaos.Plan{Name: "dup-every-answer", DuplicateAt: everyAnswer})
	if dup.Questions != clean.Questions {
		t.Fatalf("with every answer duplicated: %d questions, clean %d", dup.Questions, clean.Questions)
	}
	if dup.Transcript != clean.Transcript {
		t.Fatalf("duplicated deliveries changed the dialogue:\nclean:\n%s\ndup:\n%s",
			clean.Transcript, dup.Transcript)
	}
	if dup.FaultKinds["duplicate"] == 0 {
		t.Fatal("no duplicates were injected")
	}
}

// TestChaosRetryAfterTimeout is the satellite regression: the client gives
// up cleanly (ctx deadline honored) when the network eats every request,
// instead of spinning forever.
func TestChaosRetryAfterTimeout(t *testing.T) {
	band, k, _ := chaosBand()
	srv, err := server.New(band, k, server.Options{Seed: 1, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	tr := &netchaos.Transport{
		Inner: netchaos.HandlerTransport{Handler: srv},
		Plan:  netchaos.Plan{Name: "blackhole", DropRequestAt: []int{1}, Every: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := client.New("http://chaos.test", client.Options{
		HTTP:        &http.Client{Transport: tr},
		Clock:       fake,
		Rand:        rand.New(rand.NewSource(9)),
		MaxAttempts: 4,
		Sleep: func(ctx context.Context, d time.Duration) error {
			fake.Advance(d)
			if fake.Now().After(time.Unix(1_700_000_000, 0).Add(2 * time.Second)) {
				cancel() // the injected "deadline": the user walks away
			}
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Create(ctx, "")
	if err == nil {
		t.Fatal("create through a blackhole network succeeded")
	}
	if tr.Requests() > 4 {
		t.Fatalf("client kept hammering a dead network: %d attempts (max 4)", tr.Requests())
	}
}
