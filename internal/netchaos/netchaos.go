// Package netchaos injects network faults between an HTTP client and an
// in-process server, completing the faultinject ecosystem (process crashes:
// faultinject.FS; algorithm faults: faultinject.Oracle/Algorithm; server-side
// HTTP faults: faultinject.Middleware) with the client-observed failure
// modes of a real network: added latency, connections dropped before or
// after delivery, truncated response bodies, duplicated deliveries, and 5xx
// bursts.
//
// The faults live in a Transport (an http.RoundTripper) so any client —
// ist/client in particular — experiences them exactly where a flaky proxy
// or dying NAT would sit. Fault schedules are deterministic step lists, and
// injected latency advances an injected clock rather than sleeping, so a
// whole chaos suite runs in microseconds under -race and replays
// identically (the wallclock and detrand analyzers keep this package free
// of real time and global randomness).
//
// The one-line threat model: a request the client believes failed may have
// been fully applied by the server (DropResponseAt, TruncateAt,
// DuplicateAt), and a request the client believes succeeded happened
// exactly once. The exactly-once seq protocol (DESIGN.md §12) is what makes
// the first half survivable; the chaos suite in this package proves it.
package netchaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Plan schedules faults by request step: the Transport numbers the requests
// it carries 1, 2, 3, ... and fires each fault at the listed steps. With
// Every > 0 the schedule repeats: a step fires a fault when step mod Every
// equals a listed value (mod Every). Inner deliveries made on behalf of one
// client request (the duplicate of DuplicateAt) do not advance the step
// counter — steps count client-visible exchanges.
type Plan struct {
	Name string

	// LatencyAt adds Latency to the injected clock before delivery.
	LatencyAt []int
	Latency   time.Duration

	// DropRequestAt fails the exchange before the server sees it — a SYN
	// that never arrived. The server state does not change.
	DropRequestAt []int

	// DropResponseAt delivers the request, then loses the response — the
	// worst case: the server applied the answer, the client saw an error.
	DropResponseAt []int

	// TruncateAt delivers the request but cuts the response body in half
	// mid-stream (io.ErrUnexpectedEOF), like a proxy dying mid-transfer.
	TruncateAt []int

	// DuplicateAt delivers the request TWICE (an eager proxy retransmit);
	// the client receives the second response.
	DuplicateAt []int

	// Status503At short-circuits with a synthesized 503 + Retry-After: 1,
	// Status500At with a bare 500 — the shapes of an overloaded LB and a
	// crashed backend. The server never sees these requests.
	Status503At []int
	Status500At []int

	// Every repeats the schedule with this period (0 = absolute steps).
	Every int
}

// Fault records one injected fault, for reports and assertions.
type Fault struct {
	Step int    `json:"step"`
	Kind string `json:"kind"`
	Path string `json:"path"`
}

// Transport is the fault-injecting http.RoundTripper. Safe for concurrent
// use, though fault steps interleave nondeterministically under concurrency
// — chaos suites drive it sequentially for reproducibility.
type Transport struct {
	// Inner carries the surviving requests (e.g. a HandlerTransport).
	Inner http.RoundTripper
	// Plan is the fault schedule.
	Plan Plan
	// AdvanceClock advances the injected test clock for latency faults
	// (nil = latency faults only record themselves). Wire it to
	// (*clock.Fake).Advance.
	AdvanceClock func(time.Duration)

	mu     sync.Mutex
	step   int
	faults []Fault
}

// Requests returns how many client-visible exchanges the transport carried.
func (t *Transport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.step
}

// Faults returns every fault injected so far, in order.
func (t *Transport) Faults() []Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Fault(nil), t.faults...)
}

// hits reports whether step n is scheduled in list under the plan's period.
func (p Plan) hits(list []int, n int) bool {
	for _, at := range list {
		if at == n {
			return true
		}
		if p.Every > 0 && at%p.Every == n%p.Every {
			return true
		}
	}
	return false
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body once so the request can be delivered more than once
	// (duplicate fault) or re-formed after a drop records it as consumed.
	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("netchaos: reading request body: %w", err)
		}
		body = b
	}
	fresh := func() *http.Request {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return r
	}

	t.mu.Lock()
	t.step++
	n := t.step
	t.mu.Unlock()
	record := func(kind string) {
		t.mu.Lock()
		t.faults = append(t.faults, Fault{Step: n, Kind: kind, Path: req.URL.Path})
		t.mu.Unlock()
	}

	if t.Plan.hits(t.Plan.LatencyAt, n) && t.Plan.Latency > 0 {
		record("latency")
		if t.AdvanceClock != nil {
			t.AdvanceClock(t.Plan.Latency)
		}
	}
	switch {
	case t.Plan.hits(t.Plan.DropRequestAt, n):
		record("drop-request")
		return nil, fmt.Errorf("netchaos: connection dropped before delivery (step %d)", n)
	case t.Plan.hits(t.Plan.Status503At, n):
		record("503-burst")
		return synthResponse(req, http.StatusServiceUnavailable, "netchaos: synthetic overload", "1"), nil
	case t.Plan.hits(t.Plan.Status500At, n):
		record("500-burst")
		return synthResponse(req, http.StatusInternalServerError, "netchaos: synthetic backend crash", ""), nil
	}

	resp, err := t.Inner.RoundTrip(fresh())
	if err != nil {
		return resp, err
	}
	if t.Plan.hits(t.Plan.DuplicateAt, n) {
		record("duplicate")
		// The retransmit: same bytes hit the server a second time; the
		// client only ever sees the second response.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resp, err = t.Inner.RoundTrip(fresh())
		if err != nil {
			return resp, err
		}
	}
	if t.Plan.hits(t.Plan.DropResponseAt, n) {
		record("drop-response")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("netchaos: connection reset after delivery (step %d)", n)
	}
	if t.Plan.hits(t.Plan.TruncateAt, n) {
		record("truncate")
		full, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = &truncatedBody{data: full[:len(full)/2]}
	}
	return resp, nil
}

// truncatedBody yields a prefix of the real body and then fails the way a
// severed connection does.
type truncatedBody struct {
	data []byte
	off  int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *truncatedBody) Close() error { return nil }

// synthResponse fabricates a minimal error response that never touched the
// server.
func synthResponse(req *http.Request, code int, msg, retryAfter string) *http.Response {
	h := http.Header{"Content-Type": {"text/plain; charset=utf-8"}}
	if retryAfter != "" {
		h.Set("Retry-After", retryAfter)
	}
	body := msg + "\n"
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// HandlerTransport adapts an http.Handler into an http.RoundTripper, so a
// real *http.Client (and therefore ist/client with its full retry stack)
// can drive an in-process server with no sockets — which keeps the chaos
// suite deterministic and -race-friendly.
type HandlerTransport struct {
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper.
func (h HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	h.Handler.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
