package netchaos_test

// The tracing acceptance run (DESIGN.md §13): one traced dialogue under a
// fault plan that duplicates an answer POST at the wire AND 500-fails
// another, proving the span story end to end — the client's retry, the
// server's idempotent replay of the duplicate, and the original apply are
// all distinct spans sharing the single trace id the client minted at
// session create.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ist"
	"ist/client"
	"ist/internal/clock"
	"ist/internal/netchaos"
	"ist/internal/obs"
	"ist/internal/server"
)

func TestChaosTraceSharedAcrossRetryAndReplay(t *testing.T) {
	band, k, hidden := chaosBand()
	srv, err := server.New(band, k, server.Options{Seed: 1, TTL: time.Minute, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Step 1 is the create; step 3's answer POST is delivered twice (proxy
	// retransmit), step 5's is answered with a synthetic 500 (client retry).
	plan := netchaos.Plan{
		Name:        "trace-acceptance",
		DuplicateAt: []int{3},
		Status500At: []int{5},
	}
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	tr := &netchaos.Transport{
		Inner:        netchaos.HandlerTransport{Handler: srv},
		Plan:         plan,
		AdvanceClock: fake.Advance,
	}
	clientSpans := obs.NewSpanStore(0, 0)
	c, err := client.New("http://chaos.test", client.Options{
		HTTP:        &http.Client{Transport: tr},
		Clock:       fake,
		Rand:        rand.New(rand.NewSource(9)),
		MaxAttempts: 8,
		Tracer:      obs.NewTracer(fake, clientSpans, rand.New(rand.NewSource(42))),
		Sleep: func(ctx context.Context, d time.Duration) error {
			fake.Advance(d)
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	s, err := c.Create(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	traceID := s.TraceID()
	if len(traceID) != 32 {
		t.Fatalf("client trace id %q is not 32 hex digits", traceID)
	}
	user := ist.NewUser(hidden)
	st := s.State()
	for steps := 0; !st.Done; steps++ {
		if steps > 500 {
			t.Fatalf("dialogue did not converge after %d answers", steps)
		}
		prefer := 2
		if user.Prefer(st.Question.Option1, st.Question.Option2) {
			prefer = 1
		}
		next, err := s.Answer(ctx, prefer)
		if err != nil {
			t.Fatalf("answer at seq %d: %v", st.Seq, err)
		}
		st = next
	}
	if !ist.IsTopK(band, hidden, k, ist.Point(st.Result)) {
		t.Errorf("chaos run ended outside the top-%d: %v", k, st.Result)
	}
	s.EndTrace()

	// Every fault actually fired; without them the test proves nothing.
	kinds := map[string]int{}
	for _, f := range tr.Faults() {
		kinds[f.Kind]++
	}
	if kinds["duplicate"] == 0 || kinds["500-burst"] == 0 {
		t.Fatalf("fault plan did not fire as scheduled: %v", kinds)
	}

	// Client side: all spans share the minted trace, and the 500-failed
	// answer carries two sibling attempt spans under one operation span.
	var id obs.TraceID
	if err := id.UnmarshalText([]byte(traceID)); err != nil {
		t.Fatal(err)
	}
	cspans, _ := clientSpans.Trace(id)
	if len(cspans) == 0 {
		t.Fatal("client recorded no spans under its own trace id")
	}
	attemptsByOp := map[obs.SpanID][]obs.SpanData{}
	for _, d := range cspans {
		if d.Trace != id {
			t.Fatalf("client span %s belongs to trace %s, want %s", d.Name, d.Trace, id)
		}
		if d.Name == "attempt" {
			attemptsByOp[d.Parent] = append(attemptsByOp[d.Parent], d)
		}
	}
	var retried []obs.SpanData
	for _, atts := range attemptsByOp {
		if len(atts) > 1 {
			retried = atts
		}
	}
	if retried == nil {
		t.Fatal("no operation span with more than one attempt: the 500 retry left no trace")
	}
	if retried[0].ID == retried[1].ID {
		t.Error("retry attempts share a span id; each attempt must be distinct")
	}

	// Server side: the same trace holds the duplicate's idempotent-replay
	// span AND the original apply, as distinct spans.
	req := httptest.NewRequest(http.MethodGet, "/debug/ist/traces?trace="+traceID, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("server trace fetch: %d %s", rec.Code, rec.Body.String())
	}
	var resp server.TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != traceID {
		t.Fatalf("server trace %s, want the client's %s", resp.Trace, traceID)
	}
	names := map[string][]obs.SpanData{}
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, n := range ns {
			names[n.Name] = append(names[n.Name], n.SpanData)
			walk(n.Children)
		}
	}
	walk(resp.Tree)
	if len(names["idempotent-replay"]) == 0 {
		t.Error("the duplicated POST left no idempotent-replay span")
	}
	if len(names["apply"]) == 0 {
		t.Error("no apply span on the server side")
	}
	if len(names["session"]) != 1 || len(names["question"]) == 0 {
		t.Errorf("server trace misses the session/question skeleton: %d session, %d question",
			len(names["session"]), len(names["question"]))
	}
	seen := map[obs.SpanID]string{}
	for name, ds := range names {
		for _, d := range ds {
			if other, dup := seen[d.ID]; dup {
				t.Errorf("span id %s shared by %s and %s", d.ID, other, name)
			}
			seen[d.ID] = name
		}
	}
	// The replay span descends from a different client attempt than the
	// applied answer only when the wire duplicated the SAME attempt — the
	// two server spans must instead share the one attempt parent.
	replay, answers := names["idempotent-replay"][0], names["answer"]
	var sameParent bool
	for _, a := range answers {
		if a.Parent == replay.Parent {
			sameParent = true
		}
	}
	if !sameParent {
		t.Error("replay and original answer do not share the duplicated attempt's parent span")
	}
}
