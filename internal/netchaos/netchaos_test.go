package netchaos

// White-box tests for the fault transport itself: step accounting, the
// periodic schedule, and the exact client-observable shape of each fault
// kind. The end-to-end proof that the protocol survives these faults lives
// in chaos_test.go.

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// countingInner records every delivery it carries.
type countingInner struct {
	calls  int
	bodies []string
	status int
}

func (c *countingInner) RoundTrip(req *http.Request) (*http.Response, error) {
	c.calls++
	var body string
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		if err != nil {
			return nil, err
		}
		body = string(b)
	}
	c.bodies = append(c.bodies, body)
	status := c.status
	if status == 0 {
		status = http.StatusOK
	}
	return &http.Response{
		StatusCode: status,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader("response to: " + body)),
		Request:    req,
	}, nil
}

func get(t *testing.T, tr *Transport, body string) (*http.Response, error) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(http.MethodPost, "http://chaos.test/x", rd)
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

func TestHitsAbsoluteAndPeriodic(t *testing.T) {
	abs := Plan{DropRequestAt: []int{3}}
	for n := 1; n <= 6; n++ {
		if got, want := abs.hits(abs.DropRequestAt, n), n == 3; got != want {
			t.Errorf("absolute: hits(3, %d) = %v, want %v", n, got, want)
		}
	}
	per := Plan{DropRequestAt: []int{2}, Every: 5}
	for n := 1; n <= 13; n++ {
		if got, want := per.hits(per.DropRequestAt, n), n%5 == 2; got != want {
			t.Errorf("periodic: hits(2 mod 5, %d) = %v, want %v", n, got, want)
		}
	}
}

func TestDropRequestNeverReachesServer(t *testing.T) {
	inner := &countingInner{}
	tr := &Transport{Inner: inner, Plan: Plan{DropRequestAt: []int{1}}}
	if _, err := get(t, tr, "a"); err == nil {
		t.Fatal("dropped request returned no error")
	}
	if inner.calls != 0 {
		t.Fatalf("inner saw %d deliveries, want 0 — a dropped SYN must not arrive", inner.calls)
	}
	resp, err := get(t, tr, "b")
	if err != nil {
		t.Fatalf("step 2 should be clean: %v", err)
	}
	resp.Body.Close()
	if inner.calls != 1 || tr.Requests() != 2 {
		t.Fatalf("calls=%d requests=%d, want 1 delivery over 2 steps", inner.calls, tr.Requests())
	}
	faults := tr.Faults()
	if len(faults) != 1 || faults[0].Kind != "drop-request" || faults[0].Step != 1 {
		t.Fatalf("fault log = %+v", faults)
	}
}

func TestSynth503CarriesRetryAfter(t *testing.T) {
	inner := &countingInner{}
	tr := &Transport{Inner: inner, Plan: Plan{Status503At: []int{1}}}
	resp, err := get(t, tr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	if inner.calls != 0 {
		t.Fatal("synthesized 503 must not touch the server")
	}
}

func TestDuplicateDeliversSameBytesTwice(t *testing.T) {
	inner := &countingInner{}
	tr := &Transport{Inner: inner, Plan: Plan{DuplicateAt: []int{1}}}
	resp, err := get(t, tr, `{"prefer":1,"seq":0}`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if inner.calls != 2 {
		t.Fatalf("inner deliveries = %d, want 2 (the retransmit)", inner.calls)
	}
	if inner.bodies[0] != inner.bodies[1] || inner.bodies[0] != `{"prefer":1,"seq":0}` {
		t.Fatalf("retransmit altered the bytes: %q vs %q", inner.bodies[0], inner.bodies[1])
	}
	if tr.Requests() != 1 {
		t.Fatalf("requests = %d — the duplicate must not advance the step counter", tr.Requests())
	}
}

func TestDropResponseDeliversThenErrors(t *testing.T) {
	inner := &countingInner{}
	tr := &Transport{Inner: inner, Plan: Plan{DropResponseAt: []int{1}}}
	if _, err := get(t, tr, "applied"); err == nil {
		t.Fatal("dropped response returned no error")
	}
	if inner.calls != 1 {
		t.Fatalf("inner deliveries = %d, want 1 — the server DID apply it", inner.calls)
	}
}

func TestTruncateFailsMidBody(t *testing.T) {
	inner := &countingInner{}
	tr := &Transport{Inner: inner, Plan: Plan{TruncateAt: []int{1}}}
	resp, err := get(t, tr, "payload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want io.ErrUnexpectedEOF", rerr)
	}
	full := "response to: payload"
	if len(got) == 0 || len(got) >= len(full) || !strings.HasPrefix(full, string(got)) {
		t.Fatalf("truncated body = %q, want a strict prefix of %q", got, full)
	}
}

func TestLatencyAdvancesInjectedClock(t *testing.T) {
	inner := &countingInner{}
	var advanced time.Duration
	tr := &Transport{
		Inner:        inner,
		Plan:         Plan{LatencyAt: []int{1}, Every: 1, Latency: 250 * time.Millisecond},
		AdvanceClock: func(d time.Duration) { advanced += d },
	}
	for i := 0; i < 3; i++ {
		resp, err := get(t, tr, "")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if advanced != 750*time.Millisecond {
		t.Fatalf("clock advanced %v, want 750ms (3 × 250ms) — and never a real sleep", advanced)
	}
}

func TestHandlerTransportBridgesWithoutSockets(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Echo", "1")
		w.WriteHeader(http.StatusTeapot)
		w.Write(append([]byte("got: "), b...))
	})
	tr := HandlerTransport{Handler: h}
	req := httptest.NewRequest(http.MethodPost, "http://x/y", strings.NewReader("ping"))
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTeapot || string(body) != "got: ping" || resp.Header.Get("X-Echo") != "1" {
		t.Fatalf("bridge mangled the exchange: %d %q %v", resp.StatusCode, body, resp.Header)
	}
}
