package obs

// SpanObserver turns the flat Observer event stream into the span tree of
// DESIGN.md §13 without touching any algorithm code: it is just another
// Observer hung off obs.Combine. Under a session-root span it maintains one
// "question" span per question of the dialogue, aligned with the
// question-latency metric: the span opens lazily at the FIRST event that
// contributes to computing the question (for question 0 that is the first
// LP solve of session create; for question N it is the first cut or prune
// that the previous answer triggered) and closes when the question's answer
// arrives (or the session finishes). Each question span therefore reads as
// "compute + user think time for this question", and the phase spans that
// produced it — LP solves, halfspace cuts, prunes, degradations — are its
// children. LP solves carry a measured duration and are backdated with
// StartAt so the waterfall shows where the time went, while cuts and prunes
// are point spans (start == end) marking the moment.
//
// The trailing compute after the LAST answer (the work that certifies the
// result rather than surfacing another pair) opens one final question span
// that never receives i/j attributes; Finish closes it with final=true so
// the waterfall shows the certification tail instead of dropping it.

import (
	"fmt"
	"strconv"
	"sync"
)

// SpanObserver is an Observer that assembles phase spans under a session
// root. Safe for concurrent use; nil-safe like every observer here.
type SpanObserver struct {
	mu    sync.Mutex
	tr    *Tracer
	root  *Span
	q     *Span // the open question span (lazily created)
	asked bool  // the open span's question actually surfaced
	seq   int   // questions opened so far
}

// NewSpanObserver builds the bridge, or nil when tracing is off (nil tracer
// or root) — so callers can pass the result straight to Combine.
func NewSpanObserver(tr *Tracer, root *Span) *SpanObserver {
	if tr == nil || root == nil {
		return nil
	}
	return &SpanObserver{tr: tr, root: root}
}

// Finish closes the open question span, if any. The server calls it when
// the session certifies or tears down; a span that never saw its question
// surface (the certification tail) is marked final.
func (o *SpanObserver) Finish() {
	if o == nil {
		return
	}
	o.mu.Lock()
	q, asked := o.q, o.asked
	o.q = nil
	o.mu.Unlock()
	if q != nil && !asked {
		q.SetAttr("final", "true")
	}
	q.End()
}

// QuestionSpan returns the currently open question span (nil between an
// answer and the next event), for callers that want to attach exemplars or
// server spans.
func (o *SpanObserver) QuestionSpan() *Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.q
}

// ensureLocked opens the question span for the dialogue position we are
// computing toward, if none is open yet.
func (o *SpanObserver) ensureLocked() *Span {
	if o.q == nil {
		o.q = o.tr.Start("question", ChildOf(o.root), WithAttrs(
			Attr{"seq", strconv.Itoa(o.seq)},
		))
		o.asked = false
		o.seq++
	}
	return o.q
}

// Event implements Observer.
func (o *SpanObserver) Event(e Event) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	switch e.Kind {
	case KindQuestionAsked:
		q := o.ensureLocked()
		o.asked = true
		q.SetAttr("i", strconv.Itoa(e.I))
		q.SetAttr("j", strconv.Itoa(e.J))
	case KindAnswerReceived:
		q := o.q
		o.q = nil
		q.SetAttr("answer", strconv.FormatBool(e.Answer))
		q.End()
	case KindLPSolve:
		// The solve already happened: reconstruct it from the measured
		// duration so it lands where it ran on the timeline.
		now := o.tr.clk.Now()
		sp := o.tr.Start("lp-solve", ChildOf(o.ensureLocked()), StartAt(now.Add(-e.Duration)), WithAttrs(
			Attr{"status", e.Status},
			Attr{"iterations", strconv.Itoa(e.Count)},
		))
		sp.EndAt(now)
	case KindHalfspaceCut:
		sp := o.tr.Start("halfspace-cut", ChildOf(o.ensureLocked()), WithAttrs(
			Attr{"class", e.Status},
			Attr{"vertices", fmt.Sprintf("%d->%d", e.Before, e.After)},
		))
		sp.EndAt(sp.start)
	case KindCandidatePruned:
		sp := o.tr.Start("prune", ChildOf(o.ensureLocked()), WithAttrs(
			Attr{"count", strconv.Itoa(e.Count)},
		))
		sp.EndAt(sp.start)
	case KindDegradationStep:
		sp := o.tr.Start("degradation", ChildOf(o.ensureLocked()), WithAttrs(
			Attr{"step", e.Note},
		))
		sp.EndAt(sp.start)
	}
}
