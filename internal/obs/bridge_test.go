package obs

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsBridgeEager asserts every standard metric appears in the
// exposition before any event arrives, so dashboards see zeros rather than
// gaps on a fresh process.
func TestMetricsBridgeEager(t *testing.T) {
	r := NewRegistry()
	NewMetrics(r)
	got := expose(r)
	for _, name := range []string{
		MetricQuestions, MetricLPSolves, MetricLPIterations, MetricCuts,
		MetricPruned, MetricStopChecks, MetricConvexTests, MetricDegradations,
		MetricLPSolveSeconds,
	} {
		if !strings.Contains(got, "# TYPE "+name+" ") {
			t.Errorf("metric %s not registered eagerly:\n%s", name, got)
		}
	}
}

func TestMetricsBridgeCounts(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	AnswerReceived(m, 0, 1, true)
	AnswerReceived(m, 0, 2, false)
	LPSolve(m, "optimal", 6, 20*time.Millisecond)
	LPSolve(m, "infeasible", 2, time.Millisecond)
	HalfspaceCut(m, "intersect", 8, 5)
	CandidatePruned(m, 3)
	StopConditionCheck(m, false)
	ConvexPointTest(m, 4, true)
	DegradationStep(m, "ball->rect")

	got := expose(r)
	for _, line := range []string{
		MetricQuestions + " 2",
		MetricLPSolves + " 2",
		MetricLPIterations + " 8",
		`ist_lp_solves_by_status_total{status="infeasible"} 1`,
		`ist_lp_solves_by_status_total{status="optimal"} 1`,
		MetricCuts + " 1",
		MetricPruned + " 3",
		MetricStopChecks + " 1",
		MetricConvexTests + " 1",
		MetricDegradations + " 1",
		MetricLPSolveSeconds + "_count 2",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in exposition:\n%s", line, got)
		}
	}
}

// TestMetricsBridgeIdempotent asserts two bridges over one registry share
// counters instead of panicking on re-registration.
func TestMetricsBridgeIdempotent(t *testing.T) {
	r := NewRegistry()
	a, b := NewMetrics(r), NewMetrics(r)
	AnswerReceived(a, 0, 1, true)
	AnswerReceived(b, 0, 1, true)
	if !strings.Contains(expose(r), MetricQuestions+" 2\n") {
		t.Fatalf("bridges do not share counters:\n%s", expose(r))
	}
}
