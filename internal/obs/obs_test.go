package obs

import (
	"reflect"
	"testing"
	"time"
)

// TestNilSafeWrappers asserts the core contract: every emit helper is a
// no-op on a nil observer. Instrumented library code relies on this for its
// uninstrumented fast path (and the obsnil analyzer forbids bypassing it).
func TestNilSafeWrappers(t *testing.T) {
	Emit(nil, Event{Kind: KindQuestionAsked})
	QuestionAsked(nil, 0, 1)
	AnswerReceived(nil, 0, 1, true)
	HalfspaceCut(nil, "intersect", 5, 3)
	CandidatePruned(nil, 2)
	LPSolve(nil, "optimal", 7, time.Millisecond)
	ConvexPointTest(nil, 3, true)
	ConvexPointsFound(nil, 4, "sampling")
	DegradationStep(nil, "ball->rect")
	StopConditionCheck(nil, false)
}

func TestCountingTallies(t *testing.T) {
	c := NewCounting()
	QuestionAsked(c, 0, 1)
	QuestionAsked(c, 2, 3)
	AnswerReceived(c, 0, 1, true)
	LPSolve(c, "optimal", 10, 0)
	LPSolve(c, "infeasible", 4, 0)
	CandidatePruned(c, 5)
	CandidatePruned(c, 0) // removed nothing: not a prune event

	if got := c.Count(KindQuestionAsked); got != 2 {
		t.Errorf("questions = %d, want 2", got)
	}
	if got := c.Count(KindAnswerReceived); got != 1 {
		t.Errorf("answers = %d, want 1", got)
	}
	if got := c.Count(KindLPSolve); got != 2 {
		t.Errorf("lp solves = %d, want 2", got)
	}
	if got := c.Sum(KindLPSolve); got != 14 {
		t.Errorf("lp iterations = %d, want 14", got)
	}
	if got := c.Count(KindCandidatePruned); got != 1 {
		t.Errorf("prune events = %d, want 1", got)
	}
	if got := c.Sum(KindCandidatePruned); got != 5 {
		t.Errorf("pruned total = %d, want 5", got)
	}
}

func TestCombine(t *testing.T) {
	if Combine() != nil || Combine(nil, nil) != nil {
		t.Fatal("Combine of nothing must stay nil to preserve the fast path")
	}
	c := NewCounting()
	if got := Combine(nil, c, nil); got != Observer(c) {
		t.Fatal("Combine with one live observer must return it unwrapped")
	}
	c2 := NewCounting()
	both := Combine(c, c2)
	QuestionAsked(both, 1, 2)
	if c.Count(KindQuestionAsked) != 1 || c2.Count(KindQuestionAsked) != 1 {
		t.Fatal("Combine did not fan out to both observers")
	}
}

func TestFuncAdapter(t *testing.T) {
	var got []Event
	o := Func(func(e Event) { got = append(got, e) })
	StopConditionCheck(o, true)
	want := []Event{{Kind: KindStopConditionCheck, OK: true}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events = %+v, want %+v", got, want)
	}
}
