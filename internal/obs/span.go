package obs

// This file is the span half of the observability layer (DESIGN.md §13):
// a dependency-free Tracer/Span pair with parent/child links, attributes,
// status and W3C traceparent propagation, built to the same nil-safe
// contract as the Observer wrappers — a nil *Tracer starts nil *Spans,
// every Span method is a no-op on the nil receiver, and the whole layer
// consumes no randomness and reads no clock on the nil path, so an
// uninstrumented run stays bit-identical to an instrumented one.
//
// Timing discipline matches the rest of the package: the Tracer stamps
// spans on an injected clock.Clock, never the wall clock directly, so
// traces taken under a fake clock replay deterministically.

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"ist/internal/clock"
)

// TraceID is the 16-byte W3C trace id shared by every span of one trace.
type TraceID [16]byte

// SpanID is the 8-byte W3C span id.
type SpanID [8]byte

// IsZero reports whether the id is unset (all zero — invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText implements encoding.TextMarshaler; a zero id renders empty so
// JSON span records omit absent parents cleanly.
func (t TraceID) MarshalText() ([]byte, error) {
	if t.IsZero() {
		return nil, nil
	}
	return []byte(t.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*t = TraceID{}
		return nil
	}
	if len(b) != 32 {
		return fmt.Errorf("obs: trace id %q is not 32 hex digits", b)
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// MarshalText implements encoding.TextMarshaler.
func (s SpanID) MarshalText() ([]byte, error) {
	if s.IsZero() {
		return nil, nil
	}
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*s = SpanID{}
		return nil
	}
	if len(b) != 16 {
		return fmt.Errorf("obs: span id %q is not 16 hex digits", b)
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// SpanContext is the propagated part of a span: what goes on the wire.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context can be propagated (both ids non-zero).
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set): "00-<trace>-<span>-01".
func (c SpanContext) Traceparent() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// TraceparentHeader is the canonical header name for trace propagation.
const TraceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte (per spec, parsers must tolerate future versions) and
// ignores the trace flags. ok is false for malformed or all-zero ids.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	var c SpanContext
	if err := c.Trace.UnmarshalText([]byte(strings.ToLower(parts[1]))); err != nil {
		return SpanContext{}, false
	}
	if err := c.Span.UnmarshalText([]byte(strings.ToLower(parts[2]))); err != nil {
		return SpanContext{}, false
	}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// Attr is one key/value span attribute. Values are strings: span attributes
// annotate, they are not a metrics channel.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanData is the immutable snapshot of an ended span, what sinks receive
// and stores keep. Parent is zero for trace roots (or for spans whose
// parent lives in another process and was propagated via traceparent).
type SpanData struct {
	Trace  TraceID   `json:"trace"`
	ID     SpanID    `json:"span"`
	Parent SpanID    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Attrs  []Attr    `json:"attrs,omitempty"`
	// Status is "" (unset), "ok" or "error"; Note carries the error detail.
	Status string `json:"status,omitempty"`
	Note   string `json:"note,omitempty"`
}

// Duration is the span's wall time on its tracer's clock.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Attr returns the value of the named attribute ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// SpanSink receives ended spans. Implementations must be safe for
// concurrent use — one tracer may serve many goroutines.
type SpanSink interface {
	OnSpanEnd(SpanData)
}

// SinkFunc adapts a function to a SpanSink.
type SinkFunc func(SpanData)

// OnSpanEnd implements SpanSink.
func (f SinkFunc) OnSpanEnd(d SpanData) { f(d) }

// MultiSink fans ended spans out to several sinks; nil members are skipped.
// Like Combine for observers, it returns nil when every argument is nil.
func MultiSink(sinks ...SpanSink) SpanSink {
	var live []SpanSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []SpanSink

// OnSpanEnd implements SpanSink.
func (m multiSink) OnSpanEnd(d SpanData) {
	for _, s := range m {
		s.OnSpanEnd(d)
	}
}

// Tracer mints spans: it owns the clock spans are stamped on, the RNG span
// and trace ids are drawn from, and the sink ended spans are delivered to.
// A nil *Tracer is the uninstrumented fast path: Start returns a nil *Span
// and nothing downstream allocates, reads the clock, or consumes
// randomness. Safe for concurrent use.
type Tracer struct {
	clk  clock.Clock
	sink SpanSink

	mu  sync.Mutex
	rng *rand.Rand
}

// NewTracer builds a tracer stamping spans on clk (nil = the real clock),
// delivering ended spans to sink (nil = spans vanish on End, attributes and
// all — useful only for overhead tests), drawing ids from rng (nil = a
// private generator seeded from the process id, never the wall clock, so
// runs that inject nothing still replay deterministically per pid).
func NewTracer(clk clock.Clock, sink SpanSink, rng *rand.Rand) *Tracer {
	if clk == nil {
		clk = clock.Real
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(os.Getpid()) ^ 0x697374737061)) // "istspa"
	}
	return &Tracer{clk: clk, sink: sink, rng: rng}
}

// newTraceID draws a non-zero trace id.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	t.mu.Lock()
	for id.IsZero() {
		for i := 0; i < len(id); i += 8 {
			v := t.rng.Uint64()
			for j := 0; j < 8; j++ {
				id[i+j] = byte(v >> (8 * j))
			}
		}
	}
	t.mu.Unlock()
	return id
}

// newSpanID draws a non-zero span id.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	t.mu.Lock()
	for id.IsZero() {
		v := t.rng.Uint64()
		for j := 0; j < 8; j++ {
			id[j] = byte(v >> (8 * j))
		}
	}
	t.mu.Unlock()
	return id
}

// SpanOption configures one Start call.
type SpanOption func(*spanConfig)

type spanConfig struct {
	parent  *Span
	remote  SpanContext
	start   time.Time
	hasTime bool
	attrs   []Attr
}

// ChildOf parents the new span under parent (same trace). A nil parent
// makes the span a trace root.
func ChildOf(parent *Span) SpanOption {
	return func(c *spanConfig) { c.parent = parent }
}

// Remote continues a propagated trace: the new span joins ctx's trace with
// ctx's span as its parent. Invalid contexts are ignored (the span roots a
// fresh trace), so callers can pass whatever the wire carried.
func Remote(ctx SpanContext) SpanOption {
	return func(c *spanConfig) { c.remote = ctx }
}

// StartAt backdates the span to start (for spans reconstructed from a
// measured duration, like LP solves reported by the event stream).
func StartAt(start time.Time) SpanOption {
	return func(c *spanConfig) { c.start, c.hasTime = start, true }
}

// WithAttrs seeds the span's attributes.
func WithAttrs(attrs ...Attr) SpanOption {
	return func(c *spanConfig) { c.attrs = append(c.attrs, attrs...) }
}

// Start opens a span. Precedence for trace placement: an explicit parent
// wins, then a valid remote context, then a fresh root trace. Nil-safe: a
// nil tracer returns a nil span, and a nil parent in ChildOf simply roots.
func (t *Tracer) Start(name string, opts ...SpanOption) *Span {
	if t == nil {
		return nil
	}
	var cfg spanConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Span{tr: t, name: name, id: t.newSpanID(), attrs: cfg.attrs}
	switch {
	case cfg.parent != nil:
		cfg.parent.mu.Lock()
		s.trace, s.parent = cfg.parent.trace, cfg.parent.id
		cfg.parent.mu.Unlock()
	case cfg.remote.Valid():
		s.trace, s.parent = cfg.remote.Trace, cfg.remote.Span
	default:
		s.trace = t.newTraceID()
	}
	if cfg.hasTime {
		s.start = cfg.start
	} else {
		s.start = t.clk.Now()
	}
	return s
}

// Span is one timed operation in a trace. All methods are no-ops on the nil
// receiver — the nil span is how uninstrumented code paths stay free — and
// safe for concurrent use otherwise.
type Span struct {
	tr *Tracer

	mu     sync.Mutex
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
	status string
	note   string
	ended  bool
}

// Context returns the span's propagation context (zero on a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanContext{Trace: s.trace, Span: s.id}
}

// TraceID returns the span's trace id (zero on a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trace
}

// SetAttr adds (or replaces) an attribute. No-op after End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	for i, a := range s.attrs {
		if a.Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetStatus records the span's outcome: err == nil marks "ok", otherwise
// "error" with the error text as the note. No-op after End.
func (s *Span) SetStatus(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if err == nil {
		s.status, s.note = "ok", ""
	} else {
		s.status, s.note = "error", err.Error()
	}
}

// StartChild opens a child span under s on s's tracer. Nil-safe: the child
// of a nil span is nil, so instrumentation chains through helpers without
// ever checking.
func (s *Span) StartChild(name string, opts ...SpanOption) *Span {
	if s == nil {
		return nil
	}
	return s.tr.Start(name, append([]SpanOption{ChildOf(s)}, opts...)...)
}

// End closes the span: stamps the end time on the tracer's clock and
// delivers the snapshot to the tracer's sink. Idempotent; the first End
// wins. EndAt is the backdating variant for reconstructed spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endAt(s.tr.clk.Now())
}

// EndAt is End with an explicit end time (reconstructed spans).
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.endAt(end)
}

func (s *Span) endAt(end time.Time) {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    end,
		Attrs:  append([]Attr(nil), s.attrs...),
		Status: s.status,
		Note:   s.note,
	}
	s.mu.Unlock()
	if s.tr.sink != nil {
		s.tr.sink.OnSpanEnd(data)
	}
}
