// Package obs is the repository's dependency-free observability layer:
// a structured trace Observer fed by the LP core, the geometry packages and
// every algorithm in internal/core, plus a metrics Registry with Prometheus
// text exposition (metrics.go) and a JSONL trace writer (jsonl.go).
//
// The design mirrors the nil-safe tracker of internal/core's Budget (PR 3):
// instrumented code never calls an Observer method directly — it goes
// through the package-level emit helpers (QuestionAsked, LPSolve, ...),
// each of which is a no-op on a nil Observer. A nil observer therefore
// costs one nil check per event site, allocates nothing, consumes no
// randomness, and leaves every algorithm's question transcript bit-identical
// to an uninstrumented run (asserted by TestNilObserverTranscripts in
// internal/core). The obsnil analyzer in internal/analysis enforces the
// wrappers-only rule mechanically.
//
// Timing discipline: this package never reads the wall clock. Durations
// arrive in events from callers (who measure on an injected clock.Clock),
// and the JSONL writer stamps records from the clock it was constructed
// with — so the wallclock analyzer stays clean and traces are replayable
// under a fake clock.
package obs

import (
	"sync"
	"time"
)

// EventKind labels a trace event. Kinds are strings so traces are
// self-describing in JSONL without a decoder table.
type EventKind string

// The event taxonomy (DESIGN.md §9). One event is emitted per occurrence,
// in algorithm order, from the goroutine running the algorithm.
const (
	// KindQuestionAsked fires immediately before the oracle is consulted;
	// I and J are the indices of the compared points.
	KindQuestionAsked EventKind = "question-asked"
	// KindAnswerReceived fires after the oracle returns; Answer is true when
	// the user preferred point I over point J. The span between a
	// QuestionAsked and its AnswerReceived brackets real user latency in a
	// live session.
	KindAnswerReceived EventKind = "answer-received"
	// KindHalfspaceCut fires when an answered halfspace cuts a polytope;
	// Status is the pre-cut classification, Before/After are vertex counts.
	KindHalfspaceCut EventKind = "halfspace-cut"
	// KindCandidatePruned fires when answers eliminate candidate partitions
	// or sweep intervals; Count is how many were removed.
	KindCandidatePruned EventKind = "candidate-pruned"
	// KindLPSolve fires per linear-program solve; Status, Count (simplex
	// iterations) and Duration describe it.
	KindLPSolve EventKind = "lp-solve"
	// KindConvexPointTest fires per convex-point decision: with I/OK for an
	// exact per-candidate LP test, or with Count/Note summarizing a whole
	// sampling (or 2-d envelope) detection.
	KindConvexPointTest EventKind = "convex-point-test"
	// KindDegradationStep fires when the budget's degradation ladder trades
	// quality for time; Note is the human-readable step.
	KindDegradationStep EventKind = "degradation-step"
	// KindStopConditionCheck fires per stopping-rule evaluation (Lemma 5.5
	// and friends); OK reports whether the run may stop.
	KindStopConditionCheck EventKind = "stop-check"
)

// Event is one structured trace record. Only the fields meaningful for the
// Kind are set; the rest stay zero and are omitted from JSON.
type Event struct {
	Kind EventKind `json:"kind"`
	// I, J are point indices (questions, convex tests).
	I int `json:"i,omitempty"`
	J int `json:"j,omitempty"`
	// Answer is AnswerReceived's verdict: the user preferred point I.
	Answer bool `json:"answer,omitempty"`
	// OK is the outcome of a stop check or a convex-point test.
	OK bool `json:"ok,omitempty"`
	// Count is the kind's cardinality: pruned candidates, LP iterations,
	// convex points found.
	Count int `json:"count,omitempty"`
	// Before/After are polytope vertex counts around a halfspace cut.
	Before int `json:"before,omitempty"`
	After  int `json:"after,omitempty"`
	// Status is an LP solve status or a cut classification.
	Status string `json:"status,omitempty"`
	// Duration is the LP solve time, measured by the caller on its clock.
	Duration time.Duration `json:"durationNs,omitempty"`
	// Note carries free-form detail (degradation steps, detection method).
	Note string `json:"note,omitempty"`
}

// Observer receives trace events. Implementations must tolerate calls from
// the single goroutine running the observed algorithm; a shared observer
// (e.g. the server's metrics bridge) must be internally synchronized.
//
// Library code must not call Event directly: use the package-level emit
// helpers, which are nil-safe (the obsnil analyzer enforces this).
type Observer interface {
	Event(Event)
}

// Emit forwards e to o, tolerating a nil observer. It is the single choke
// point every other helper goes through.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Event(e)
	}
}

// QuestionAsked records that the pair (i, j) is about to be put to the user.
func QuestionAsked(o Observer, i, j int) {
	Emit(o, Event{Kind: KindQuestionAsked, I: i, J: j})
}

// AnswerReceived records the user's verdict on the pair (i, j).
func AnswerReceived(o Observer, i, j int, preferFirst bool) {
	Emit(o, Event{Kind: KindAnswerReceived, I: i, J: j, Answer: preferFirst})
}

// HalfspaceCut records an answered halfspace cutting a polytope.
func HalfspaceCut(o Observer, class string, vertsBefore, vertsAfter int) {
	Emit(o, Event{Kind: KindHalfspaceCut, Status: class, Before: vertsBefore, After: vertsAfter})
}

// CandidatePruned records count candidates eliminated by an answer.
func CandidatePruned(o Observer, count int) {
	if count <= 0 {
		return // an answer that removed nothing is not a prune
	}
	Emit(o, Event{Kind: KindCandidatePruned, Count: count})
}

// LPSolve records one linear-program solve.
func LPSolve(o Observer, status string, iterations int, d time.Duration) {
	Emit(o, Event{Kind: KindLPSolve, Status: status, Count: iterations, Duration: d})
}

// ConvexPointTest records one exact per-candidate convex-point decision.
func ConvexPointTest(o Observer, candidate int, confirmed bool) {
	Emit(o, Event{Kind: KindConvexPointTest, I: candidate, OK: confirmed})
}

// ConvexPointsFound summarizes a whole convex-point detection (sampling or
// the 2-d envelope, which have no per-candidate decision to report).
func ConvexPointsFound(o Observer, count int, method string) {
	Emit(o, Event{Kind: KindConvexPointTest, OK: true, Count: count, Note: method})
}

// DegradationStep records a quality trade-off taken by the budget ladder.
func DegradationStep(o Observer, note string) {
	Emit(o, Event{Kind: KindDegradationStep, Note: note})
}

// StopConditionCheck records one stopping-rule evaluation and its outcome.
func StopConditionCheck(o Observer, ok bool) {
	Emit(o, Event{Kind: KindStopConditionCheck, OK: ok})
}

// Multi fans events out to several observers; nil members are skipped.
// Combine returns nil when every argument is nil, preserving the fast path.
func Combine(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []Observer

// Event implements Observer.
func (m multiObserver) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// Counting tallies events by kind — the cheap observer behind benchmarks
// and the per-question counters of BENCH_4.json. Safe for concurrent use.
type Counting struct {
	mu     sync.Mutex
	counts map[EventKind]int64
	sums   map[EventKind]int64
}

// NewCounting returns an empty counting observer.
func NewCounting() *Counting {
	return &Counting{counts: map[EventKind]int64{}, sums: map[EventKind]int64{}}
}

// Event implements Observer.
func (c *Counting) Event(e Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.sums[e.Kind] += int64(e.Count)
	c.mu.Unlock()
}

// Count returns how many events of the kind were observed.
func (c *Counting) Count(kind EventKind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[kind]
}

// Sum returns the total of the Count field over events of the kind (e.g.
// total candidates pruned, total LP iterations).
func (c *Counting) Sum(kind EventKind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sums[kind]
}

// Func adapts a plain function to an Observer.
type Func func(Event)

// Event implements Observer.
func (f Func) Event(e Event) { f(e) }
