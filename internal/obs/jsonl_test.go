package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"ist/internal/clock"
)

func TestJSONLFakeClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	var sb strings.Builder
	j := NewJSONL(&sb, fake)
	QuestionAsked(j, 3, 7)
	fake.Advance(1500 * time.Millisecond)
	AnswerReceived(j, 3, 7, true)

	var recs []map[string]any
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, m)
	}
	if len(recs) != 2 {
		t.Fatalf("wrote %d records, want 2", len(recs))
	}
	if recs[0]["seq"] != 1.0 || recs[1]["seq"] != 2.0 {
		t.Fatalf("sequence numbers = %v, %v", recs[0]["seq"], recs[1]["seq"])
	}
	if recs[0]["tSeconds"] != 0.0 || recs[1]["tSeconds"] != 1.5 {
		t.Fatalf("timestamps = %v, %v; want 0, 1.5", recs[0]["tSeconds"], recs[1]["tSeconds"])
	}
	if recs[0]["kind"] != "question-asked" || recs[1]["kind"] != "answer-received" {
		t.Fatalf("kinds = %v, %v", recs[0]["kind"], recs[1]["kind"])
	}
	if recs[1]["answer"] != true {
		t.Fatalf("answer field = %v, want true", recs[1]["answer"])
	}
	// Zero-valued fields stay omitted: the first record has no answer key.
	if _, ok := recs[0]["answer"]; ok {
		t.Fatal("omitempty violated: zero answer serialized")
	}
}

type closableBuffer struct {
	strings.Builder
	closed int
}

func (c *closableBuffer) Close() error {
	c.closed++
	return nil
}

func TestJSONLClose(t *testing.T) {
	var buf closableBuffer
	j := NewJSONL(&buf, clock.NewFake(time.Unix(0, 0)))
	QuestionAsked(j, 0, 1)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if buf.closed != 1 {
		t.Fatalf("underlying writer closed %d times, want 1", buf.closed)
	}
	before := buf.Len()
	QuestionAsked(j, 2, 3) // dropped after close
	if buf.Len() != before {
		t.Fatal("event written after Close")
	}
	if err := j.Close(); err != nil || buf.closed != 1 {
		t.Fatal("Close is not idempotent")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLWriteError(t *testing.T) {
	j := NewJSONL(failingWriter{}, clock.NewFake(time.Unix(0, 0)))
	QuestionAsked(j, 0, 1)
	if j.Err() == nil {
		t.Fatal("write error not surfaced via Err")
	}
	QuestionAsked(j, 2, 3) // must not panic; stream is dead
}
