package obs

import (
	"strings"
	"testing"
	"time"

	"ist/internal/clock"
)

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("ist_questions_vs_upper_bound", "Ratio.", "algorithm")
	gv.With("2dpi").Set(0.5)
	gv.With("rh").Set(1.25)
	out := expose(r)
	for _, want := range []string{
		"# TYPE ist_questions_vs_upper_bound gauge",
		`ist_questions_vs_upper_bound{algorithm="2dpi"} 0.5`,
		`ist_questions_vs_upper_bound{algorithm="rh"} 1.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if g := gv.With("2dpi"); g != gv.With("2dpi") {
		t.Error("With is not idempotent per label value")
	}
}

func TestGaugeVecArityPanics(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("ist_g", "g.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	gv.With("only-one")
}

// TestExemplarsOnlyInOpenMetrics is the compatibility contract: the 0.0.4
// exposition (WritePrometheus) must stay byte-identical whether or not
// exemplars were recorded; only WriteOpenMetrics renders them.
func TestExemplarsOnlyInOpenMetrics(t *testing.T) {
	plain := NewRegistry()
	ph := plain.Histogram("ist_question_latency_seconds", "Latency.", []float64{0.1, 1})
	ph.Observe(0.05)
	ph.Observe(0.5)
	want004 := expose(plain)

	traced := NewRegistry()
	th := traced.Histogram("ist_question_latency_seconds", "Latency.", []float64{0.1, 1})
	th.ObserveExemplar(0.05, "0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
	th.ObserveExemplar(0.5, "0af7651916cd43dd8448eb211c80319c", "00f067aa0ba902b7")
	if got := expose(traced); got != want004 {
		t.Fatalf("exemplars leaked into the 0.0.4 exposition:\n%s\nwant:\n%s", got, want004)
	}

	var sb strings.Builder
	traced.WriteOpenMetrics(&sb)
	om := sb.String()
	for _, want := range []string{
		`ist_question_latency_seconds_bucket{le="0.1"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c",span_id="b7ad6b7169203331"} 0.05`,
		`ist_question_latency_seconds_bucket{le="1"} 2 # {trace_id="0af7651916cd43dd8448eb211c80319c",span_id="00f067aa0ba902b7"} 0.5`,
		"# EOF",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics exposition missing %q in:\n%s", want, om)
		}
	}
	if !strings.HasSuffix(strings.TrimRight(om, "\n"), "# EOF") {
		t.Error("OpenMetrics exposition does not end with # EOF")
	}
}

func TestJSONLSizeCap(t *testing.T) {
	var sb strings.Builder
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	r := NewRegistry()
	bytes := r.Counter(MetricTraceBytes, "Trace bytes.")
	j := NewJSONLLimited(&sb, fake, 256, bytes)

	for i := 0; i < 100; i++ {
		j.Event(Event{Kind: KindQuestionAsked, I: i, J: i + 1})
	}
	if !j.Truncated() {
		t.Fatal("cap never fired")
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	// Everything before the marker respects the cap; the marker itself may
	// straddle it (it replaces the first over-cap record).
	if kept := len(out) - len(last) - 1; int64(kept) > 256 {
		t.Fatalf("wrote %d bytes of events past the 256-byte cap", kept)
	}
	if !strings.Contains(last, `"kind":"_truncated"`) || !strings.Contains(last, "size cap reached") {
		t.Fatalf("last line %q is not the truncation marker", last)
	}
	for _, line := range lines[:len(lines)-1] {
		if strings.Contains(line, "_truncated") {
			t.Fatalf("truncation marker appears mid-file: %q", line)
		}
	}
	if got := bytes.Value(); got != int64(len(out)) {
		t.Fatalf("ist_trace_bytes_total = %d, file has %d bytes", got, len(out))
	}
	// The stream stays quiet after the marker.
	before := sb.Len()
	j.Event(Event{Kind: KindQuestionAsked})
	if sb.Len() != before {
		t.Error("events were written after the truncation marker")
	}
}

func TestJSONLUnlimitedNeverTruncates(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb, clock.NewFake(time.Unix(1_700_000_000, 0)))
	for i := 0; i < 500; i++ {
		j.Event(Event{Kind: KindHalfspaceCut, Before: i, After: i + 1})
	}
	if j.Truncated() {
		t.Fatal("unlimited stream reported truncation")
	}
	if strings.Contains(sb.String(), "_truncated") {
		t.Fatal("unlimited stream wrote a truncation marker")
	}
}
