package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the zero-dependency metrics half of the observability layer:
// counters, gauges and fixed-bucket histograms, registered by name on a
// Registry and rendered in the Prometheus text exposition format (version
// 0.0.4, the format every Prometheus-compatible scraper accepts). There is
// deliberately no global default registry: istserve owns one and wires it
// to /metrics; tests build their own.

// Registry holds named metrics and renders them for scraping. Registration
// is idempotent: asking for an existing name returns the existing metric
// (and panics if the kind differs — that is a programming error).
type Registry struct {
	mu      sync.Mutex
	ordered []metric // exposition order = registration order
	byName  map[string]metric
}

// metric is anything the registry can expose.
type metric interface {
	name() string
	help() string
	kind() string // "counter" | "gauge" | "histogram"
	expose(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// register adds m under its name, or returns the already-registered metric.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name()]; ok {
		if prev.kind() != m.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", m.name(), m.kind(), prev.kind()))
		}
		return prev
	}
	checkMetricName(m.name())
	r.byName[m.name()] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or returns) a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(&Counter{nm: name, hp: help}).(*Counter)
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(&Gauge{nm: name, hp: help}).(*Gauge)
}

// Histogram registers (or returns) a fixed-bucket histogram. Buckets are
// upper bounds in increasing order; the implicit +Inf bucket is added at
// exposition. Passing nil uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &Histogram{nm: name, hp: help, upper: append([]float64(nil), buckets...)}
	sort.Float64s(h.upper)
	h.counts = make([]uint64, len(h.upper))
	return r.register(h).(*Histogram)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name(), escapeHelp(m.help()))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name(), m.kind())
		m.expose(w)
	}
}

// WriteOpenMetrics renders every registered metric in the 0.0.4 text shape
// extended with OpenMetrics histogram exemplars and the terminating "# EOF"
// marker. Scrapers that negotiate application/openmetrics-text get span-id
// exemplars on the latency histograms; plain Prometheus scrapers keep the
// untouched 0.0.4 output from WritePrometheus.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	r.mu.Lock()
	metrics := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name(), escapeHelp(m.help()))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name(), m.kind())
		if h, ok := m.(*Histogram); ok {
			h.exposeExemplars(w, true)
			continue
		}
		m.expose(w)
	}
	fmt.Fprintln(w, "# EOF")
}

// Counter is a monotonically increasing integer counter. The zero value is
// usable but unregistered; get counters from a Registry.
type Counter struct {
	nm, hp string
	v      atomic.Int64
	labels string // pre-rendered {k="v",...} for labeled children, or ""
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be >= 0; counters never go down).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }
func (c *Counter) kind() string { return "counter" }
func (c *Counter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s%s %s\n", c.nm, c.labels, strconv.FormatInt(c.v.Load(), 10))
}

// CounterVec is a counter family with one fixed label dimension per child.
type CounterVec struct {
	nm, hp string
	keys   []string
	mu     sync.Mutex
	kids   map[string]*Counter // keyed by rendered label string
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	for _, k := range labelKeys {
		checkMetricName(k)
	}
	cv := &CounterVec{nm: name, hp: help, keys: labelKeys, kids: map[string]*Counter{}}
	return r.register(cv).(*CounterVec)
}

// With returns the child counter for the given label values (one per key,
// in key order), creating it on first use.
func (cv *CounterVec) With(values ...string) *Counter {
	if len(values) != len(cv.keys) {
		panic(fmt.Sprintf("obs: counter %s wants %d label values, got %d", cv.nm, len(cv.keys), len(values)))
	}
	key := renderLabels(cv.keys, values)
	cv.mu.Lock()
	defer cv.mu.Unlock()
	kid, ok := cv.kids[key]
	if !ok {
		kid = &Counter{nm: cv.nm, labels: key}
		cv.kids[key] = kid
	}
	return kid
}

func (cv *CounterVec) name() string { return cv.nm }
func (cv *CounterVec) help() string { return cv.hp }
func (cv *CounterVec) kind() string { return "counter" }
func (cv *CounterVec) expose(w io.Writer) {
	cv.mu.Lock()
	keys := make([]string, 0, len(cv.kids))
	for k := range cv.kids {
		keys = append(keys, k)
	}
	kids := make([]*Counter, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		kids = append(kids, cv.kids[k])
	}
	cv.mu.Unlock()
	for _, kid := range kids {
		kid.expose(w)
	}
}

// Gauge is a value that can go up and down. Stored as float bits so Set can
// carry non-integer values (utilization ratios) atomically.
type Gauge struct {
	nm, hp string
	bits   atomic.Uint64
	labels string // pre-rendered {k="v",...} for labeled children, or ""
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }
func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) expose(w io.Writer) {
	fmt.Fprintf(w, "%s%s %s\n", g.nm, g.labels, formatFloat(g.Value()))
}

// GaugeVec is a gauge family with one fixed label dimension per child —
// the shape of the questions-vs-theory-bound series, labeled by algorithm.
type GaugeVec struct {
	nm, hp string
	keys   []string
	mu     sync.Mutex
	kids   map[string]*Gauge // keyed by rendered label string
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	for _, k := range labelKeys {
		checkMetricName(k)
	}
	gv := &GaugeVec{nm: name, hp: help, keys: labelKeys, kids: map[string]*Gauge{}}
	return r.register(gv).(*GaugeVec)
}

// With returns the child gauge for the given label values (one per key, in
// key order), creating it on first use.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(gv.keys) {
		panic(fmt.Sprintf("obs: gauge %s wants %d label values, got %d", gv.nm, len(gv.keys), len(values)))
	}
	key := renderLabels(gv.keys, values)
	gv.mu.Lock()
	defer gv.mu.Unlock()
	kid, ok := gv.kids[key]
	if !ok {
		kid = &Gauge{nm: gv.nm, labels: key}
		gv.kids[key] = kid
	}
	return kid
}

func (gv *GaugeVec) name() string { return gv.nm }
func (gv *GaugeVec) help() string { return gv.hp }
func (gv *GaugeVec) kind() string { return "gauge" }
func (gv *GaugeVec) expose(w io.Writer) {
	gv.mu.Lock()
	keys := make([]string, 0, len(gv.kids))
	for k := range gv.kids {
		keys = append(keys, k)
	}
	kids := make([]*Gauge, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		kids = append(kids, gv.kids[k])
	}
	gv.mu.Unlock()
	for _, kid := range kids {
		kid.expose(w)
	}
}

// DefBuckets are the default histogram buckets (seconds), matching the
// Prometheus client convention so dashboards transfer.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// QuestionCountBuckets suit "questions until X" distributions: powers of
// two up to far beyond any reasonable interactive session.
var QuestionCountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// FsyncBuckets suit storage-latency distributions: fsync on a healthy
// local disk lands well under DefBuckets' 5ms floor, so these extend two
// decades further down while keeping a tail for stalled devices.
var FsyncBuckets = []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	nm, hp string
	upper  []float64 // sorted upper bounds, excluding +Inf

	mu     sync.Mutex
	counts []uint64 // per-bucket (non-cumulative) observation counts
	inf    uint64   // observations above the last bound
	sum    float64
	total  uint64
	// exemplars[i] is the most recent traced observation landing in bucket
	// i; infEx covers the +Inf bucket. Rendered only by WriteOpenMetrics.
	exemplars []Exemplar
	infEx     Exemplar
}

// Exemplar links one histogram observation back to the span that produced
// it, so a latency outlier on a dashboard leads straight to its trace.
type Exemplar struct {
	TraceID string
	SpanID  string
	Value   float64
}

func (e Exemplar) valid() bool { return e.TraceID != "" && e.SpanID != "" }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "", "")
}

// ObserveExemplar records one observation and, when trace/span ids are
// given, remembers them as the bucket's exemplar (last writer wins).
func (h *Histogram) ObserveExemplar(v float64, traceID, spanID string) {
	ex := Exemplar{TraceID: traceID, SpanID: spanID, Value: v}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.total++
	for i, up := range h.upper {
		if v <= up {
			h.counts[i]++
			if ex.valid() {
				if h.exemplars == nil {
					h.exemplars = make([]Exemplar, len(h.upper))
				}
				h.exemplars[i] = ex
			}
			return
		}
	}
	h.inf++
	if ex.valid() {
		h.infEx = ex
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) name() string       { return h.nm }
func (h *Histogram) help() string       { return h.hp }
func (h *Histogram) kind() string       { return "histogram" }
func (h *Histogram) expose(w io.Writer) { h.exposeExemplars(w, false) }

// exposeExemplars renders the histogram; withEx additionally appends
// OpenMetrics "# {trace_id=...,span_id=...} value" exemplar suffixes to
// bucket lines that have one. The 0.0.4 path (withEx=false) stays
// byte-identical to pre-exemplar output.
func (h *Histogram) exposeExemplars(w io.Writer, withEx bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	suffix := func(ex Exemplar) string {
		if !withEx || !ex.valid() {
			return ""
		}
		return fmt.Sprintf(" # {trace_id=\"%s\",span_id=\"%s\"} %s",
			escapeLabel(ex.TraceID), escapeLabel(ex.SpanID), formatFloat(ex.Value))
	}
	cum := uint64(0)
	for i, up := range h.upper {
		cum += h.counts[i]
		var ex Exemplar
		if h.exemplars != nil {
			ex = h.exemplars[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d%s\n", h.nm, formatFloat(up), cum, suffix(ex))
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", h.nm, h.total, suffix(h.infEx))
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.total)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the exposition format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels pre-renders a {k="v",...} label block in key order.
func renderLabels(keys, values []string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, k, escapeLabel(values[i]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value body: backslash, double quote, newline
// (the caller supplies the surrounding quotes).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// checkMetricName panics on names the exposition format would reject.
func checkMetricName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}
