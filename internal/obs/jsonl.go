package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"ist/internal/clock"
)

// KindTruncated is the synthetic marker record a size-capped JSONL trace
// writes as its final line when the cap is hit: every event after it was
// dropped, not lost in transit. Note carries the cap.
const KindTruncated EventKind = "_truncated"

// JSONL streams trace events as one JSON object per line, stamped with a
// sequence number and seconds since the first event — measured on the
// injected clock, so traces written under a fake clock are deterministic
// and the wallclock invariant holds. It is what istserve's -trace-dir and
// istcli's -trace produce.
//
// A byte limit (NewJSONLLimited) keeps long sessions from growing the trace
// dir unboundedly: once the next record would push the file past the cap, a
// single KindTruncated marker is written and the stream goes quiet.
type JSONL struct {
	mu        sync.Mutex
	w         io.Writer
	clk       clock.Clock
	start     time.Time
	started   bool
	seq       int64
	err       error
	closed    bool
	limit     int64    // max bytes to write (0 = unlimited)
	written   int64    // bytes written so far
	truncated bool     // the cap fired; drop everything after the marker
	bytes     *Counter // optional ist_trace_bytes_total
}

// jsonlRecord is the on-disk shape: the event plus trace bookkeeping.
type jsonlRecord struct {
	Seq int64   `json:"seq"`
	T   float64 `json:"tSeconds"`
	Event
}

// NewJSONL returns a JSONL observer writing to w, timing on clk (nil means
// the real clock), with no size cap.
func NewJSONL(w io.Writer, clk clock.Clock) *JSONL {
	return NewJSONLLimited(w, clk, 0, nil)
}

// NewJSONLLimited is NewJSONL with a byte cap (0 = unlimited) and an
// optional counter accumulating bytes actually written (the server passes
// ist_trace_bytes_total so /metrics tracks total trace-dir growth).
func NewJSONLLimited(w io.Writer, clk clock.Clock, maxBytes int64, bytes *Counter) *JSONL {
	if clk == nil {
		clk = clock.Real
	}
	return &JSONL{w: w, clk: clk, limit: maxBytes, bytes: bytes}
}

// Event implements Observer.
func (j *JSONL) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.err != nil || j.truncated {
		return
	}
	now := j.clk.Now()
	if !j.started {
		j.start, j.started = now, true
	}
	j.seq++
	rec := jsonlRecord{Seq: j.seq, T: now.Sub(j.start).Seconds(), Event: e}
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	line = append(line, '\n')
	if j.limit > 0 && j.written+int64(len(line)) > j.limit {
		// Cap hit: replace this record with the truncation marker so the
		// file's last line says explicitly that the tail is missing.
		j.truncated = true
		rec.Event = Event{Kind: KindTruncated, Note: "size cap reached"}
		line, err = json.Marshal(rec)
		if err != nil {
			j.err = err
			return
		}
		line = append(line, '\n')
	}
	j.writeLocked(line)
}

// writeLocked writes one rendered line, keeping the first error sticky and
// the byte accounting straight.
func (j *JSONL) writeLocked(line []byte) {
	n, err := j.w.Write(line)
	j.written += int64(n)
	if j.bytes != nil && n > 0 {
		j.bytes.Add(int64(n))
	}
	if err != nil && j.err == nil {
		j.err = err // keep the first error; drop later events
	}
}

// Truncated reports whether the byte cap fired.
func (j *JSONL) Truncated() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.truncated
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close stops the stream and closes the underlying writer when it is an
// io.Closer. Safe to call more than once.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if c, ok := j.w.(io.Closer); ok {
		if err := c.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}
