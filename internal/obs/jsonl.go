package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"ist/internal/clock"
)

// JSONL streams trace events as one JSON object per line, stamped with a
// sequence number and seconds since the first event — measured on the
// injected clock, so traces written under a fake clock are deterministic
// and the wallclock invariant holds. It is what istserve's -trace-dir and
// istcli's -trace produce.
type JSONL struct {
	mu      sync.Mutex
	enc     *json.Encoder
	w       io.Writer
	clk     clock.Clock
	start   time.Time
	started bool
	seq     int64
	err     error
	closed  bool
}

// jsonlRecord is the on-disk shape: the event plus trace bookkeeping.
type jsonlRecord struct {
	Seq int64   `json:"seq"`
	T   float64 `json:"tSeconds"`
	Event
}

// NewJSONL returns a JSONL observer writing to w, timing on clk (nil means
// the real clock).
func NewJSONL(w io.Writer, clk clock.Clock) *JSONL {
	if clk == nil {
		clk = clock.Real
	}
	return &JSONL{enc: json.NewEncoder(w), w: w, clk: clk}
}

// Event implements Observer.
func (j *JSONL) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.err != nil {
		return
	}
	now := j.clk.Now()
	if !j.started {
		j.start, j.started = now, true
	}
	j.seq++
	rec := jsonlRecord{Seq: j.seq, T: now.Sub(j.start).Seconds(), Event: e}
	if err := j.enc.Encode(rec); err != nil {
		j.err = err // keep the first error; drop later events
	}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close stops the stream and closes the underlying writer when it is an
// io.Closer. Safe to call more than once.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if c, ok := j.w.(io.Closer); ok {
		if err := c.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}
