package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"ist/internal/clock"
)

func testTracer(sink SpanSink, seed int64) (*Tracer, *clock.Fake) {
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	return NewTracer(fake, sink, rand.New(rand.NewSource(seed))), fake
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr, _ := testTracer(nil, 1)
	ctx := tr.Start("root").Context()
	if !ctx.Valid() {
		t.Fatal("fresh span has invalid context")
	}
	got, ok := ParseTraceparent(ctx.Traceparent())
	if !ok || got != ctx {
		t.Fatalf("ParseTraceparent(%q) = %v, %v; want %v", ctx.Traceparent(), got, ok, ctx)
	}
	for _, bad := range []string{
		"", "garbage", "00-zz-yy-01",
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero ids are invalid per W3C
		"00-abc-def-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed value", bad)
		}
	}
	// Any version byte must parse (future-proofing required by the spec).
	if _, ok := ParseTraceparent("cc-" + ctx.Trace.String() + "-" + ctx.Span.String() + "-00"); !ok {
		t.Error("ParseTraceparent rejected a future version byte")
	}
}

func TestNilTracerIsFullyInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("nothing", WithAttrs(Attr{Key: "k", Value: "v"}))
	if sp != nil {
		t.Fatal("nil tracer started a non-nil span")
	}
	// Every method must be callable on the nil span without panicking.
	sp.SetAttr("a", "b")
	sp.SetStatus(nil)
	sp.End()
	sp.EndAt(time.Time{})
	if c := sp.StartChild("child"); c != nil {
		t.Error("child of a nil span is non-nil")
	}
	if ctx := sp.Context(); ctx.Valid() {
		t.Error("nil span has a valid context")
	}
	if id := sp.TraceID(); !id.IsZero() {
		t.Error("nil span has a trace id")
	}
	if MultiSink(nil, nil) != nil {
		t.Error("MultiSink of all-nil sinks is non-nil")
	}
	if NewSpanObserver(nil, nil) != nil {
		t.Error("NewSpanObserver with nil tracer is non-nil")
	}
	var so *SpanObserver
	so.Event(Event{Kind: KindQuestionAsked}) // must not panic
	so.Finish()
	if so.QuestionSpan() != nil {
		t.Error("nil SpanObserver has a question span")
	}
}

// TestNilTracerConsumesNoRandomness is half of the bit-identical guarantee:
// an algorithm run holding a nil tracer must leave an injected RNG exactly
// where an uninstrumented run would.
func TestNilTracerConsumesNoRandomness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	want := rng.Uint64()
	rng = rand.New(rand.NewSource(7))
	var tr *Tracer
	for i := 0; i < 10; i++ {
		sp := tr.Start("x")
		sp.StartChild("y").End()
		sp.End()
	}
	if got := rng.Uint64(); got != want {
		t.Fatalf("nil-tracer path consumed randomness: next draw %d, want %d", got, want)
	}
}

func TestSpanLifecycle(t *testing.T) {
	var got []SpanData
	var mu sync.Mutex
	sink := SinkFunc(func(d SpanData) { mu.Lock(); got = append(got, d); mu.Unlock() })
	tr, fake := testTracer(sink, 2)

	root := tr.Start("session", WithAttrs(Attr{Key: "session", Value: "s1"}))
	fake.Advance(time.Second)
	child := root.StartChild("question")
	child.SetAttr("seq", "0")
	child.SetStatus(nil)
	fake.Advance(2 * time.Second)
	child.End()
	child.End() // idempotent: only one delivery
	root.End()

	if len(got) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(got))
	}
	q, s := got[0], got[1]
	if q.Name != "question" || s.Name != "session" {
		t.Fatalf("delivery order %q, %q; want question then session", q.Name, s.Name)
	}
	if q.Trace != s.Trace {
		t.Error("child span not in parent's trace")
	}
	if q.Parent != s.ID {
		t.Error("child's parent is not the root span")
	}
	if q.Duration() != 2*time.Second {
		t.Errorf("child duration %s, want 2s", q.Duration())
	}
	if q.Status != "ok" || q.Attr("seq") != "0" {
		t.Errorf("child status %q attrs %v", q.Status, q.Attrs)
	}
	if s.Duration() != 3*time.Second {
		t.Errorf("root duration %s, want 3s", s.Duration())
	}
}

func TestSetStatusError(t *testing.T) {
	var got SpanData
	tr, _ := testTracer(SinkFunc(func(d SpanData) { got = d }), 3)
	sp := tr.Start("x")
	sp.SetStatus(errBoom)
	sp.End()
	if got.Status != "error" || got.Note != "boom" {
		t.Fatalf("status %q note %q, want error/boom", got.Status, got.Note)
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom = boomErr{}

func TestRemoteContinuesTrace(t *testing.T) {
	clientTr, _ := testTracer(nil, 4)
	serverStore := NewSpanStore(0, 0)
	serverTr, _ := testTracer(serverStore, 5)

	attempt := clientTr.Start("attempt")
	wire := attempt.Context().Traceparent()

	remote, ok := ParseTraceparent(wire)
	if !ok {
		t.Fatal("server failed to parse the propagated header")
	}
	srv := serverTr.Start("session", Remote(remote))
	srv.End()

	if srv.Context().Trace != attempt.Context().Trace {
		t.Fatal("server span did not join the client's trace")
	}
	spans, _ := serverStore.Trace(attempt.Context().Trace)
	if len(spans) != 1 || spans[0].Parent != attempt.Context().Span {
		t.Fatalf("stored server span %+v does not hang off the client attempt", spans)
	}
	// An invalid remote context roots a fresh trace instead of failing.
	fresh := serverTr.Start("session", Remote(SpanContext{}))
	if fresh.Context().Trace == attempt.Context().Trace || fresh.Context().Trace.IsZero() {
		t.Error("invalid remote context should root a fresh trace")
	}
}

// TestTracerConcurrentSessions exercises the locking under -race: many
// goroutines, each its own per-session tracer (the server's arrangement),
// all delivering into one shared SpanStore, plus concurrent attribute
// writes on a shared span.
func TestTracerConcurrentSessions(t *testing.T) {
	store := NewSpanStore(64, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tr, _ := testTracer(store, seed)
			root := tr.Start("session")
			for i := 0; i < 50; i++ {
				q := root.StartChild("question")
				q.SetAttr("seq", "0")
				q.SetStatus(nil)
				q.End()
			}
			root.End()
		}(int64(g + 1))
	}
	// One shared span hammered from several goroutines.
	shared, _ := testTracer(store, 99)
	sp := shared.Start("shared")
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp.SetAttr("k", "v")
				_ = sp.Context()
				_ = sp.TraceID()
				sp.StartChild("c").End()
			}
		}(g)
	}
	wg.Wait()
	sp.End()
	if got := len(store.Traces()); got != 9 {
		t.Fatalf("store holds %d traces, want 9 (8 sessions + 1 shared)", got)
	}
	for _, sum := range store.Traces() {
		spans, _ := store.Trace(sum.Trace)
		for _, d := range spans {
			if d.Trace != sum.Trace {
				t.Fatal("span filed under the wrong trace")
			}
		}
	}
}

// TestMetricsBridgeConcurrent drives the Metrics observer from concurrent
// sessions under -race: counters are atomic and the histogram is mutexed,
// so parallel events must neither race nor lose counts.
func TestMetricsBridgeConcurrent(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	var wg sync.WaitGroup
	const goroutines, events = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				m.Event(Event{Kind: KindAnswerReceived})
				m.Event(Event{Kind: KindLPSolve, Status: "optimal", Count: 3, Duration: time.Millisecond})
				m.Event(Event{Kind: KindHalfspaceCut})
			}
		}()
	}
	wg.Wait()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"ist_questions_total 1600",
		"ist_lp_solves_total 1600",
		"ist_lp_iterations_total 4800",
		"ist_halfspace_cuts_total 1600",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestSpanStoreBounds(t *testing.T) {
	store := NewSpanStore(2, 3)
	tr, _ := testTracer(store, 6)
	var traces []TraceID
	for i := 0; i < 3; i++ {
		root := tr.Start("session")
		traces = append(traces, root.TraceID())
		for j := 0; j < 5; j++ {
			root.StartChild("q").End()
		}
		root.End()
	}
	// Trace 0 was least recently updated: evicted by trace 2's arrival.
	if spans, _ := store.Trace(traces[0]); spans != nil {
		t.Error("oldest trace survived past the maxTraces cap")
	}
	spans, dropped := store.Trace(traces[2])
	if len(spans) != 3 {
		t.Errorf("per-trace cap kept %d spans, want 3", len(spans))
	}
	if dropped != 3 { // 6 ended spans (5 q + root), cap 3
		t.Errorf("dropped = %d, want 3", dropped)
	}
	sums := store.Traces()
	if len(sums) != 2 || sums[0].Trace != traces[2] {
		t.Errorf("listing = %+v, want trace %s first", sums, traces[2])
	}
}

func TestBuildTreeOrphans(t *testing.T) {
	tr, _ := testTracer(nil, 7)
	root := tr.Start("root")
	child := root.StartChild("child")
	grand := child.StartChild("grand")

	// The store only ever saw child and grand: root is still open (or
	// evicted). grand must nest under child; child becomes a root itself.
	spans := []SpanData{
		{Trace: root.TraceID(), ID: grand.Context().Span, Parent: child.Context().Span, Name: "grand"},
		{Trace: root.TraceID(), ID: child.Context().Span, Parent: root.Context().Span, Name: "child"},
	}
	forest := BuildTree(spans)
	if len(forest) != 1 || forest[0].Name != "child" {
		t.Fatalf("forest roots = %+v, want the orphaned child", forest)
	}
	if len(forest[0].Children) != 1 || forest[0].Children[0].Name != "grand" {
		t.Fatalf("child's children = %+v, want grand", forest[0].Children)
	}
}

func TestWaterfallSmoke(t *testing.T) {
	store := NewSpanStore(0, 0)
	tr, fake := testTracer(store, 8)
	root := tr.Start("session")
	q := root.StartChild("question")
	fake.Advance(time.Second)
	q.SetStatus(errBoom)
	q.End()
	root.End()

	spans, _ := store.Trace(root.TraceID())
	var sb strings.Builder
	if err := WriteWaterfall(&sb, root.TraceID(), spans); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", root.TraceID().String(), "session", "question", "span err",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q", want)
		}
	}
}

// TestSpanObserverAssemblesTree feeds a realistic event sequence through the
// SpanObserver and checks the span-tree shape the CI smoke asserts on: each
// question span opens at the first event computing toward that question (the
// hull LP solves of session create for question 0) and closes when its
// answer arrives, with the phase spans as its children.
func TestSpanObserverAssemblesTree(t *testing.T) {
	store := NewSpanStore(0, 0)
	tr, fake := testTracer(store, 9)
	root := tr.Start("session")
	so := NewSpanObserver(tr, root)

	// Create: two solves compute question 0; the user thinks for a second.
	so.Event(Event{Kind: KindLPSolve, Status: "optimal", Count: 4, Duration: 100 * time.Millisecond})
	so.Event(Event{Kind: KindLPSolve, Status: "optimal", Count: 2, Duration: 50 * time.Millisecond})
	so.Event(Event{Kind: KindQuestionAsked, I: 1, J: 2})
	fake.Advance(time.Second)
	so.Event(Event{Kind: KindAnswerReceived, Answer: true})
	// The answer triggers a cut that yields question 1.
	so.Event(Event{Kind: KindHalfspaceCut, Status: "upper", Before: 5, After: 6})
	so.Event(Event{Kind: KindQuestionAsked, I: 3, J: 4})
	fake.Advance(time.Second)
	so.Event(Event{Kind: KindAnswerReceived, Answer: false})
	// Trailing certification compute: a prune, then the session finishes.
	so.Event(Event{Kind: KindCandidatePruned, Count: 2})
	so.Finish()
	root.End()

	spans, _ := store.Trace(root.TraceID())
	forest := BuildTree(spans)
	if len(forest) != 1 || forest[0].Name != "session" {
		t.Fatalf("root = %+v, want the session span", forest)
	}
	var questions []*SpanNode
	for _, n := range forest[0].Children {
		if n.Name == "question" {
			questions = append(questions, n)
		}
	}
	if len(questions) != 3 {
		t.Fatalf("%d question spans, want 2 answered + 1 certification tail", len(questions))
	}
	q0 := questions[0]
	if q0.Attr("seq") != "0" || q0.Attr("i") != "1" || q0.Attr("answer") != "true" {
		t.Errorf("first question attrs = %v", q0.Attrs)
	}
	// The solves that computed question 0 are its children — that is the
	// question→lp-solve nesting the waterfall promises.
	names := map[string]int{}
	for _, c := range q0.Children {
		names[c.Name]++
	}
	if names["lp-solve"] != 2 {
		t.Fatalf("first question's children = %v, want two lp-solves", names)
	}
	first := q0.Children[0]
	if first.Duration() != 100*time.Millisecond {
		t.Errorf("lp-solve duration %s, want the reported 100ms", first.Duration())
	}
	if first.Attr("iterations") != "4" {
		t.Errorf("lp-solve iterations attr = %q", first.Attr("iterations"))
	}
	if q1 := questions[1]; q1.Attr("i") != "3" || q1.Attr("answer") != "false" {
		t.Errorf("second question attrs = %v", q1.Attrs)
	} else if got := len(q1.Children); got != 1 || q1.Children[0].Name != "halfspace-cut" {
		t.Errorf("second question's children = %d %v, want the one halfspace-cut", got, q1.Children)
	}
	// The tail span brackets the certification compute: no question surfaced.
	tail := questions[2]
	if tail.Attr("final") != "true" || tail.Attr("i") != "" {
		t.Errorf("certification tail attrs = %v", tail.Attrs)
	}
	if got := len(tail.Children); got != 1 || tail.Children[0].Name != "prune" {
		t.Errorf("tail children = %d, want the one prune", got)
	}
	// Question 0 spans compute + think time: it closes when its answer lands.
	if got := q0.Duration(); got != time.Second {
		t.Errorf("question 0 lasted %s, want the 1s think time", got)
	}
}

// TestSpanObserverLazyWindows: no spans at all without events, and the
// question span only opens once something computes toward it.
func TestSpanObserverLazyWindows(t *testing.T) {
	store := NewSpanStore(0, 0)
	tr, _ := testTracer(store, 10)
	root := tr.Start("session")
	so := NewSpanObserver(tr, root)

	if so.QuestionSpan() != nil {
		t.Error("question span open before any event")
	}
	so.Event(Event{Kind: KindLPSolve, Status: "optimal", Count: 1})
	q := so.QuestionSpan()
	if q == nil {
		t.Fatal("no question span after an lp-solve event")
	}
	so.Event(Event{Kind: KindQuestionAsked, I: 0, J: 1})
	if so.QuestionSpan() != q {
		t.Error("question-asked replaced the window its compute opened")
	}
	so.Event(Event{Kind: KindAnswerReceived, Answer: true})
	if so.QuestionSpan() != nil {
		t.Error("question span still open after its answer")
	}
	so.Finish()
	root.End()

	spans, _ := store.Trace(root.TraceID())
	byName := map[string]SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	if byName["lp-solve"].Parent != byName["question"].ID {
		t.Error("create-phase lp-solve is not a child of the first question span")
	}
	if byName["question"].Parent != root.Context().Span {
		t.Error("question span is not a child of the session root")
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	tr, _ := testTracer(f, 11)
	for i := 0; i < 5; i++ {
		sp := tr.Start("s")
		sp.SetAttr("n", string(rune('0'+i)))
		sp.End()
	}
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(snap))
	}
	for i, d := range snap {
		if want := string(rune('0' + 2 + i)); d.Attr("n") != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first)", i, d.Attr("n"), want)
		}
	}
	if got := len(NewFlightRecorder(0).Snapshot()); got != 0 {
		t.Errorf("fresh recorder snapshot has %d spans", got)
	}
}
