package obs

// This file bridges the trace stream into the metrics registry: a Metrics
// observer increments the standard ist_* counters for every event flowing
// through it. istserve shares one Metrics across all sessions (counters are
// atomic), so /metrics aggregates the whole process.

// Standard metric names (DESIGN.md §9). Registered eagerly by NewMetrics so
// /metrics exposes them at zero before the first event.
const (
	MetricQuestions        = "ist_questions_total"
	MetricLPSolves         = "ist_lp_solves_total"
	MetricLPIterations     = "ist_lp_iterations_total"
	MetricCuts             = "ist_halfspace_cuts_total"
	MetricPruned           = "ist_candidates_pruned_total"
	MetricStopChecks       = "ist_stop_checks_total"
	MetricConvexTests      = "ist_convex_point_tests_total"
	MetricDegradations     = "ist_degradation_steps_total"
	MetricLPSolveSeconds   = "ist_lp_solve_seconds"
	MetricQuestionLatency  = "ist_question_latency_seconds"
	MetricQuestionsCertify = "ist_questions_to_certify"
	MetricSessionsTotal    = "ist_sessions_total"
	MetricSessionsLive     = "ist_sessions_live"

	// Exactly-once protocol and overload-safety series (DESIGN.md §12).
	MetricStoreErrors   = "ist_store_errors_total"
	MetricAnswerReplays = "ist_answer_replays_total"
	MetricSeqConflicts  = "ist_seq_conflicts_total"
	MetricShed          = "ist_shed_total"

	// Span-tracing and theory-bound series (DESIGN.md §13). The bound
	// gauges compare each certified session's question count against the
	// paper's 2-d bounds: vs_upper <= 1.0 means the run kept the O(log₂
	// ⌈2n/(k+1)⌉) guarantee (Thm 4.5), vs_lower ~ 1.0 means it is close to
	// the Ω(log₂(n/k)) information-theoretic floor (Thm 3.2).
	MetricQuestionsVsLower = "ist_questions_vs_lower_bound"
	MetricQuestionsVsUpper = "ist_questions_vs_upper_bound"
	MetricTraceBytes       = "ist_trace_bytes_total"
	MetricFlightDumps      = "ist_flight_dumps_total"

	// Shared preprocessing cache series (DESIGN.md §14.3). Hits/misses are
	// cumulative across every algorithm-level cache access (session create,
	// rehydration, budgeted lookups); bytes is the resident size of the
	// memoized values. Refreshed from prep.Cache.Stats at scrape time.
	MetricPrepCacheHits   = "ist_preprocess_cache_hits"
	MetricPrepCacheMisses = "ist_preprocess_cache_misses"
	MetricPrepCacheBytes  = "ist_preprocess_cache_bytes"

	// Client-side series, registered by the ist/client package when it is
	// given a registry.
	MetricClientRequests     = "ist_client_requests_total"
	MetricClientRetries      = "ist_client_retries_total"
	MetricClientBreakerTrips = "ist_client_breaker_trips_total"
)

// Metrics is an Observer that counts events into a Registry.
type Metrics struct {
	questions    *Counter
	lpSolves     *Counter
	lpIterations *Counter
	lpStatus     *CounterVec
	cuts         *Counter
	pruned       *Counter
	stopChecks   *Counter
	convexTests  *Counter
	degradations *Counter
	lpSeconds    *Histogram
}

// NewMetrics registers the standard event-driven metrics on reg and returns
// the bridge. Idempotent per registry: a second call returns a bridge over
// the same metrics.
func NewMetrics(reg *Registry) *Metrics {
	return &Metrics{
		questions:    reg.Counter(MetricQuestions, "Pairwise preference questions answered by users."),
		lpSolves:     reg.Counter(MetricLPSolves, "Linear-program solves in the simplex core."),
		lpIterations: reg.Counter(MetricLPIterations, "Total simplex pivot iterations."),
		lpStatus:     reg.CounterVec("ist_lp_solves_by_status_total", "Linear-program solves by final status.", "status"),
		cuts:         reg.Counter(MetricCuts, "Halfspace cuts applied to utility-space polytopes by answers."),
		pruned:       reg.Counter(MetricPruned, "Candidate partitions/intervals eliminated by answers."),
		stopChecks:   reg.Counter(MetricStopChecks, "Stopping-rule (Lemma 5.5) evaluations."),
		convexTests:  reg.Counter(MetricConvexTests, "Convex-point detection decisions."),
		degradations: reg.Counter(MetricDegradations, "Degradation-ladder steps taken under budget pressure."),
		lpSeconds:    reg.Histogram(MetricLPSolveSeconds, "LP solve latency in seconds.", DefBuckets),
	}
}

// Event implements Observer.
func (m *Metrics) Event(e Event) {
	switch e.Kind {
	case KindAnswerReceived:
		m.questions.Inc()
	case KindLPSolve:
		m.lpSolves.Inc()
		m.lpIterations.Add(int64(e.Count))
		m.lpStatus.With(e.Status).Inc()
		m.lpSeconds.Observe(e.Duration.Seconds())
	case KindHalfspaceCut:
		m.cuts.Inc()
	case KindCandidatePruned:
		m.pruned.Add(int64(e.Count))
	case KindStopConditionCheck:
		m.stopChecks.Inc()
	case KindConvexPointTest:
		m.convexTests.Inc()
	case KindDegradationStep:
		m.degradations.Inc()
	}
}
