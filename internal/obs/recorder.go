package obs

// Recorder buffers events for deferred, in-order replay. It is the building
// block of the deterministic parallel paths (DESIGN.md §14): each speculative
// worker records the events its work would have emitted into a private
// Recorder, and the dispatcher replays exactly the buffers of committed work
// — in commit order — into the real observer, so the merged stream is
// bit-identical to a serial run. The preprocessing cache (internal/prep)
// stores a Recorder's tape next to each memoized value for the same reason:
// a cache hit replays the recorded events so cached and cold sessions emit
// identical streams.
//
// A Recorder is NOT safe for concurrent use; each worker owns its own.
// Events hold only value types, so a recorded event replays bit-identically.
type Recorder struct {
	events []Event
}

// Event implements Observer.
func (r *Recorder) Event(e Event) { r.events = append(r.events, e) }

// Events returns the recorded tape in arrival order. The slice aliases the
// recorder's buffer; callers that outlive the recorder should copy it.
func (r *Recorder) Events() []Event { return r.events }

// Len reports how many events are buffered.
func (r *Recorder) Len() int { return len(r.events) }

// Replay emits every recorded event, in order, to o (nil-safe: replaying
// into a nil observer is a no-op, like every emit in this package).
func (r *Recorder) Replay(o Observer) {
	for _, e := range r.events {
		Emit(o, e)
	}
}

// ReplayTape emits a recorded tape into o — Replay for tapes that were
// detached from their Recorder (e.g. stored in the preprocessing cache).
func ReplayTape(tape []Event, o Observer) {
	for _, e := range tape {
		Emit(o, e)
	}
}

// Reset drops the buffered events, keeping capacity for reuse.
func (r *Recorder) Reset() { r.events = r.events[:0] }
